"""Per-cell crash/recovery drive for the campaign.

For one :class:`~repro.campaign.grid.Scenario` the engine:

1. replays the workload on a fresh functional secure memory, producing
   the persist journal (the writer's intent);
2. derives each persist's delivered tuple components from the scheme's
   crash semantics (2SP locking, Invariant-2 ordering, EP epochs, LCA
   coalescing delegation) and the scenario's victim/drops;
3. drives a real :class:`~repro.mem.wpq.WritePendingQueue` through
   :meth:`~repro.mem.wpq.WritePendingQueue.crash_flush` to decide what
   reaches NVM, cross-checking the WPQ state against the paper's
   invariants;
4. converts the flush outcome into a :class:`CrashInjector`, crashes
   the memory, and runs :class:`~repro.recovery.checker.RecoveryChecker`
   differentially against the intent;
5. classifies the cell.

Outcome taxonomy:

* ``recovered`` — verification passes and every expected plaintext is
  back (vacuously, when nothing was expected durable).
* ``detected_failure`` — the integrity machinery (BMT root or a MAC)
  rejects the image: data was lost, but the loss is *visible*.
* ``silent_corruption`` — verification passes yet a recovered plaintext
  differs from the writer's intent: the worst outcome, invisible loss.
* ``invariant_violation`` — the scheme claims crash recoverability
  (2SP + ordered root) but the cell did not fully recover, or the WPQ
  drive itself broke a mechanical invariant (a complete entry missing
  items, a non-prefix release under ordered persists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.core.coalescing import CoalescingUnit
from repro.core.invariants import check_tuple_complete
from repro.crypto.bmt import BMTGeometry
from repro.mem.wpq import TupleItem, WritePendingQueue
from repro.recovery.checker import RecoveryChecker
from repro.recovery.crash import CrashInjector
from repro.campaign.grid import (
    Scenario,
    SchemeSemantics,
    WORKLOADS,
    build_memory,
    replay,
    semantics_for,
)

OUTCOME_RECOVERED = "recovered"
OUTCOME_DETECTED = "detected_failure"
OUTCOME_SILENT_CORRUPTION = "silent_corruption"
OUTCOME_INVARIANT_VIOLATION = "invariant_violation"
OUTCOMES = (
    OUTCOME_RECOVERED,
    OUTCOME_DETECTED,
    OUTCOME_SILENT_CORRUPTION,
    OUTCOME_INVARIANT_VIOLATION,
)

_NVM_ITEMS = (TupleItem.DATA, TupleItem.COUNTER, TupleItem.MAC)


@dataclass
class CampaignCell:
    """One classified grid cell (JSON-primitive fields only, so cells
    round-trip bit-identically through the campaign cache)."""

    scheme: str
    workload: str
    victim: int
    drops: List[str]
    compliant: bool
    classification: str
    bmt_ok: bool
    consistent: bool
    intent_ok: bool
    vacuous: bool
    durable_persists: int
    total_persists: int
    relaxed: bool = False
    persisted: List[int] = field(default_factory=list)
    invalidated: List[int] = field(default_factory=list)
    epochs_complete: List[List[int]] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    blocks: List[Dict] = field(default_factory=list)

    def block_outcome(self, block: int) -> str:
        """Table-I-style outcome string for one checked block."""
        for entry in self.blocks:
            if entry["block"] == block:
                return entry["outcome"]
        raise KeyError(f"block {block} was not checked in this cell")


def _delivery_plan(
    sem: SchemeSemantics,
    journal: Sequence,
    victim: int,
    drops: Set[TupleItem],
    geometry: BMTGeometry,
) -> List[Set[TupleItem]]:
    """Which tuple components arrive at the WPQ for each persist.

    The WPQ is the serialization point of the functional model: under
    2SP an in-flight victim stalls younger gathers (EP's out-of-order
    freedom lives in the BMT update-engine timing, which the timing
    simulator models; functionally the persist release order is FIFO).
    The unordered strawman gathers everything with no locking, so every
    non-victim persist lands in full — Tables I & II.
    """
    n = len(journal)
    last_issued = n - 1 if victim == -1 else victim

    # Step 1: non-root components gathered per persist.
    gathered: List[Set[TupleItem]] = []
    for p in range(n):
        if sem.atomic and p > last_issued:
            gathered.append(set())
        elif p == victim:
            gathered.append(set(_NVM_ITEMS) - drops)
        else:
            gathered.append(set(_NVM_ITEMS))

    # Step 2: whose own BMT root work finished.
    root_done: List[bool] = []
    for p in range(n):
        if sem.atomic and p > last_issued:
            root_done.append(False)
        elif p == victim:
            root_done.append(TupleItem.ROOT_ACK not in drops)
        else:
            root_done.append(True)

    # Step 3: coalescing delegates a leading persist's root ack to the
    # trailing persist of its pair — per epoch, in journal order.
    resolve = list(range(n))
    if sem.coalesced and n:
        unit = CoalescingUnit(geometry, policy="paired")
        by_epoch: Dict[int, List[int]] = {}
        for p, record in enumerate(journal):
            by_epoch.setdefault(record.epoch_id, []).append(p)
        for indices in by_epoch.values():
            coalesced = unit.coalesce_epoch(
                [(p, journal[p].page) for p in indices]
            )
            finals = unit.resolve_delegates(coalesced)
            for p in indices:
                resolve[p] = finals[p]

    # Step 4: root acks, chained per Invariant 2 when the scheme orders
    # root updates.
    acked: List[bool] = []
    for p in range(n):
        ok = root_done[resolve[p]]
        if sem.ordered_root and p > 0:
            ok = ok and acked[p - 1]
        acked.append(ok)

    return [
        gathered[p] | ({TupleItem.ROOT_ACK} if acked[p] else set())
        for p in range(n)
    ]


@dataclass
class FlushOutcome:
    """What the WPQ power-failure flush decided for one crash cell.

    Shared between the memory-level and app-level engines (and reused
    combinatorially, without crypto, by the crash-plan pruner in
    :mod:`repro.campaign.plans`).
    """

    persisted: List
    invalidated: List
    problems: List[str]
    epochs_complete: List[List[int]]

    @property
    def persisted_ids(self) -> List[int]:
        return sorted(e.persist_id for e in self.persisted)

    @property
    def invalidated_ids(self) -> List[int]:
        return sorted(e.persist_id for e in self.invalidated)


def drive_wpq(
    sem: SchemeSemantics,
    journal: Sequence,
    victim: int,
    drops: Set[TupleItem],
    geometry: BMTGeometry,
    telemetry=None,
) -> FlushOutcome:
    """Drive a real WPQ through the power failure for one crash cell."""
    n = len(journal)
    wpq = WritePendingQueue(capacity=max(1, n), telemetry=telemetry)
    arrived = _delivery_plan(sem, journal, victim, drops, geometry)
    for p, record in enumerate(journal):
        wpq.allocate(p, epoch_id=record.epoch_id, locked=sem.atomic)
        for item in _NVM_ITEMS:
            if item in arrived[p]:
                wpq.deliver(p, item)
    for p in range(n):
        if TupleItem.ROOT_ACK in arrived[p]:
            wpq.ack_root(p)

    entries = [wpq.entry(p) for p in range(n)]
    problems = check_tuple_complete(entries)
    epochs_complete = [
        [epoch, int(wpq.epoch_complete(epoch))]
        for epoch in sorted({r.epoch_id for r in journal})
    ]
    persisted, invalidated = wpq.crash_flush()

    if sem.atomic:
        # Relaxed-root schemes legally release non-prefix sets: a
        # victim's unchained ack failure invalidates only the victim,
        # while younger complete persists still release.
        persisted_ids = sorted(e.persist_id for e in persisted)
        if sem.ordered_root and persisted_ids != list(range(len(persisted_ids))):
            problems.append(
                f"ordered release is not a journal prefix: {persisted_ids}"
            )
        for entry in invalidated:
            if entry.drained:
                drained = sorted(item.value for item in entry.drained)
                problems.append(
                    f"locked persist {entry.persist_id} invalidated with "
                    f"drained items: {drained}"
                )
    return FlushOutcome(persisted, invalidated, problems, epochs_complete)


def build_injector(sem: SchemeSemantics, outcome: FlushOutcome) -> CrashInjector:
    """Convert a flush outcome into the fault injection it implies."""
    injector = CrashInjector()
    for entry in outcome.persisted:
        lost = [item for item in _NVM_ITEMS if item not in entry.drained]
        if TupleItem.ROOT_ACK not in entry.arrived:
            lost.append(TupleItem.ROOT_ACK)
        if lost:
            injector.drop(entry.persist_id, *lost)
    for entry in outcome.invalidated:
        lost = list(_NVM_ITEMS)
        # 2SP commits the durable-root register at entry release, so an
        # invalidated entry's root update is discarded with its tuple;
        # the unordered strawman's register races ahead of gathering.
        if sem.atomic or TupleItem.ROOT_ACK not in entry.arrived:
            lost.append(TupleItem.ROOT_ACK)
        injector.drop(entry.persist_id, *lost)
    return injector


def run_scenario(scenario: Scenario, telemetry=None) -> CampaignCell:
    """Crash, recover, and classify one grid cell.

    Args:
        scenario: The grid cell to run.
        telemetry: Optional :class:`~repro.telemetry.bus.Telemetry`; the
            campaign's WPQ records its enqueue/release/invalidate events
            against the bus's logical clock.
    """
    sem = semantics_for(scenario.scheme)
    mem = build_memory(sem)
    replay(mem, WORKLOADS[scenario.workload])
    journal = mem.journal
    n = len(journal)
    if scenario.victim >= n:
        raise ValueError(
            f"victim {scenario.victim} out of range: "
            f"({scenario.scheme}, {scenario.workload}) journals {n} persists"
        )
    drops = set(scenario.drop_items)

    # ---- drive a real WPQ through the power failure ------------------
    outcome = drive_wpq(
        sem, journal, scenario.victim, drops, mem.geometry, telemetry
    )
    problems = outcome.problems
    epochs_complete = outcome.epochs_complete
    persisted_ids = outcome.persisted_ids
    invalidated_ids = outcome.invalidated_ids

    # ---- flush outcome -> fault injection ----------------------------
    injector = build_injector(sem, outcome)

    # ---- writer's intent ---------------------------------------------
    intent: Dict[int, bytes] = {}
    if sem.persistent:
        guaranteed = (
            [journal[p] for p in persisted_ids] if sem.atomic else list(journal)
        )
        for record in guaranteed:
            intent[record.block] = record.plaintext

    # ---- crash, recover, classify ------------------------------------
    mem.crash(injector)
    if sem.rebuild_root:
        # The documented relaxation (triad_nvm/phoenix): recovery does
        # not trust the register's ordering — it re-derives the root
        # from the persisted, MAC-protected counters and adopts it, so
        # verification rests on the per-block MACs.
        checker = RecoveryChecker(mem.geometry, mem.keys)
        mem.durable_root.commit(checker.rebuild_root(mem.nvm))
    report = mem.recover(expected=intent)

    intent_ok = all(b.plaintext_correct for b in report.blocks)
    if problems or (
        (sem.compliant or sem.relaxed)
        and not (report.consistent and intent_ok)
    ):
        classification = OUTCOME_INVARIANT_VIOLATION
    elif not report.consistent:
        classification = OUTCOME_DETECTED
    elif not intent_ok:
        classification = OUTCOME_SILENT_CORRUPTION
    else:
        classification = OUTCOME_RECOVERED

    return CampaignCell(
        scheme=scenario.scheme,
        workload=scenario.workload,
        victim=scenario.victim,
        drops=list(scenario.drops),
        compliant=sem.compliant,
        classification=classification,
        relaxed=sem.relaxed,
        bmt_ok=report.bmt_ok,
        consistent=report.consistent,
        intent_ok=intent_ok,
        vacuous=report.vacuous,
        durable_persists=len(persisted_ids),
        total_persists=n,
        persisted=persisted_ids,
        invalidated=invalidated_ids,
        epochs_complete=epochs_complete,
        problems=problems,
        blocks=[
            {
                "block": b.block,
                "plaintext_correct": b.plaintext_correct,
                "mac_ok": b.mac_ok,
                "outcome": report.outcome_row(b.block),
            }
            for b in report.blocks
        ],
    )
