"""Systematic crash-injection campaign over the scheme grid.

The campaign sweeps (crash point) x (dropped tuple-component subset) x
(update scheme) over a set of small deterministic workloads, drives the
functional secure memory through a real
:class:`~repro.mem.wpq.WritePendingQueue` power-failure flush, and
classifies every cell of the grid by running the recovery checker
differentially against the writer's intent.

See :mod:`repro.campaign.grid` for the grid enumeration,
:mod:`repro.campaign.engine` for the per-cell crash/recovery drive, and
:mod:`repro.campaign.runner` for the parallel, cached campaign run.
"""

from repro.campaign.grid import (
    CAMPAIGN_SCHEMES,
    DROP_SUBSETS,
    SINGLETON_SUBSETS,
    WORKLOADS,
    Scenario,
    SchemeSemantics,
    enumerate_grid,
    journal_plan,
    scenario_key,
    semantics_for,
)
from repro.campaign.engine import (
    OUTCOME_DETECTED,
    OUTCOME_INVARIANT_VIOLATION,
    OUTCOME_RECOVERED,
    OUTCOME_SILENT_CORRUPTION,
    OUTCOMES,
    CampaignCell,
    run_scenario,
)
from repro.campaign.runner import (
    AppCampaignCache,
    CampaignCache,
    default_campaign_cache_root,
    run_app_campaign,
    run_campaign,
)
from repro.campaign.app_engine import (
    APP_CAMPAIGN_SCHEMES,
    AppCampaignCell,
    AppScenario,
    app_journal_plan,
    app_scenario_key,
    run_app_scenario,
)
from repro.campaign.plans import (
    CrashPlan,
    PlanSet,
    crosscheck_pruning,
    generate_plans,
)

__all__ = [
    "APP_CAMPAIGN_SCHEMES",
    "AppCampaignCache",
    "AppCampaignCell",
    "AppScenario",
    "CAMPAIGN_SCHEMES",
    "CrashPlan",
    "PlanSet",
    "app_journal_plan",
    "app_scenario_key",
    "crosscheck_pruning",
    "generate_plans",
    "run_app_campaign",
    "run_app_scenario",
    "CampaignCache",
    "CampaignCell",
    "DROP_SUBSETS",
    "OUTCOMES",
    "OUTCOME_DETECTED",
    "OUTCOME_INVARIANT_VIOLATION",
    "OUTCOME_RECOVERED",
    "OUTCOME_SILENT_CORRUPTION",
    "SINGLETON_SUBSETS",
    "Scenario",
    "SchemeSemantics",
    "WORKLOADS",
    "default_campaign_cache_root",
    "enumerate_grid",
    "journal_plan",
    "run_campaign",
    "run_scenario",
    "scenario_key",
    "semantics_for",
]
