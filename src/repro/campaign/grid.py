"""Campaign grid: scenarios, workloads, and per-scheme crash semantics.

A *scenario* is one cell of the campaign grid: a scheme, a workload, a
crash point, and the subset of the victim persist's memory-tuple
components ``(C, γ, M, R)`` that fail to reach NVM.  Crash points are
indexed by position in the persist journal:

* ``victim == -1`` — the crash strikes after every issued persist
  completed (the trailing persist boundary).
* ``victim == v, drops == ()`` — the boundary right after persist ``v``
  completed; younger persists have not begun gathering.
* ``victim == v, drops != ()`` — mid-gather: persist ``v`` is in flight
  and the listed components never arrive.

Scenarios are frozen, hashable, and JSON-trivial (drop subsets are
sorted tuples of :class:`~repro.mem.wpq.TupleItem` values) so they can
cross process boundaries and key a content-addressed cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.schemes import UpdateScheme
from repro.crypto.primitives import BLOCK_SIZE
from repro.mem.wpq import TupleItem
from repro.persistency.models import PersistencyModel
from repro.system.secure_memory import FunctionalSecureMemory, PersistRecord

CAMPAIGN_PAGES = 64
"""Pages in the campaign's functional memory (64-leaf, 8-ary BMT)."""

ITEM_ORDER: Tuple[TupleItem, ...] = (
    TupleItem.DATA,
    TupleItem.COUNTER,
    TupleItem.MAC,
    TupleItem.ROOT_ACK,
)

# All 16 subsets of the tuple, smallest first, in stable item order.
DROP_SUBSETS: Tuple[Tuple[str, ...], ...] = tuple(
    sorted(
        (
            tuple(
                item.value
                for i, item in enumerate(ITEM_ORDER)
                if (mask >> i) & 1
            )
            for mask in range(16)
        ),
        key=lambda subset: (len(subset), subset),
    )
)

SINGLETON_SUBSETS: Tuple[Tuple[str, ...], ...] = ((),) + tuple(
    (item.value,) for item in ITEM_ORDER
)

# Workloads: short deterministic op lists.  Blocks are chosen on
# distinct counter pages (64 blocks/page) so persists touch distinct
# BMT leaves; "overwrite" intentionally reuses one block.
WORKLOADS: Dict[str, Tuple[Tuple, ...]] = {
    # Two persists of the same block: the younger tuple supersedes.
    "overwrite": (("store", 0, 1), ("store", 0, 2), ("barrier",)),
    # The paper's Table II ordered pair P1 -> P2 on distinct pages.
    "ordered_pair": (("store", 0, 1), ("store", 64, 2), ("barrier",)),
    # Two epochs under EP; four persists under strict.
    "epoch_mix": (
        ("store", 0, 1),
        ("store", 64, 2),
        ("barrier",),
        ("store", 0, 3),
        ("store", 192, 4),
        ("barrier",),
    ),
    # A closed epoch followed by an open (never-persisted) epoch.
    "open_epoch": (
        ("store", 0, 1),
        ("store", 128, 2),
        ("barrier",),
        ("store", 0, 5),
    ),
}

CAMPAIGN_SCHEMES: Tuple[str, ...] = (
    "secure_wb",
    "unordered",
    "sp",
    "pipeline",
    "o3",
    "coalescing",
    "triad_nvm",
    "phoenix",
    "secpm_wt",
    "anubis",
)
"""Table IV schemes plus the cross-paper zoo.  ``sgx_sp`` is excluded:
its whole-path persistence requirement is not part of the functional
NVM model (see ``UpdateScheme.persists_whole_path``)."""


def payload(tag: int) -> bytes:
    """Deterministic 64 B plaintext for a workload op tag."""
    return bytes([tag & 0xFF]) * BLOCK_SIZE


@dataclass(frozen=True)
class Scenario:
    """One campaign grid cell (scheme x workload x crash point x drops)."""

    scheme: str
    workload: str
    victim: int
    drops: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        UpdateScheme.from_name(self.scheme)
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        valid = {item.value for item in TupleItem}
        bad = set(self.drops) - valid
        if bad:
            raise ValueError(f"unknown tuple items in drops: {sorted(bad)}")
        object.__setattr__(self, "drops", tuple(sorted(set(self.drops))))
        if self.victim < -1:
            raise ValueError("victim must be -1 (boundary) or a journal index")
        if self.victim == -1 and self.drops:
            raise ValueError("drops require an in-flight victim persist")

    @property
    def drop_items(self) -> frozenset:
        return frozenset(TupleItem(value) for value in self.drops)


@dataclass(frozen=True)
class SchemeSemantics:
    """How a scheme's crash machinery behaves in the functional model.

    Attributes:
        scheme: The scheme.
        model: Persistency model the campaign memory runs under.
        persistent: Whether stores are journaled at all (``secure_wb``
            provides no persistency: nothing is guaranteed durable).
        atomic: 2SP locking — incomplete entries are invalidated
            wholesale at power failure, and the durable-root register
            only commits at entry release.
        ordered_root: Invariant 2 — a persist's root (and, with 2SP,
            its whole tuple) persists only after every older persist's.
        coalesced: BMT updates coalesce at the LCA within an epoch; a
            leading persist's root ack is delegated to the trailing one.
        rebuild_root: The scheme's documented Invariant-2 relaxation
            (``triad_nvm``/``phoenix``): recovery does not trust the
            on-chip root register's ordering but re-derives the root
            from the persisted, MAC-protected metadata and adopts it
            before verification.
    """

    scheme: UpdateScheme
    model: PersistencyModel
    persistent: bool
    atomic: bool
    ordered_root: bool
    coalesced: bool
    rebuild_root: bool = False

    @property
    def compliant(self) -> bool:
        """2SP + ordered root updates: both paper invariants hold."""
        return self.persistent and self.atomic and self.ordered_root

    @property
    def relaxed(self) -> bool:
        """Recovers via a documented relaxation instead of Invariant 2."""
        return self.rebuild_root and self.persistent and self.atomic


_SEMANTICS: Dict[UpdateScheme, SchemeSemantics] = {
    UpdateScheme.SECURE_WB: SchemeSemantics(
        UpdateScheme.SECURE_WB, PersistencyModel.NONE, False, False, False, False
    ),
    # The strawman *claims* strict persistency (the memory journals every
    # store) but gathers without locking or ordering — Tables I & II.
    UpdateScheme.UNORDERED: SchemeSemantics(
        UpdateScheme.UNORDERED, PersistencyModel.STRICT, True, False, False, False
    ),
    UpdateScheme.SP: SchemeSemantics(
        UpdateScheme.SP, PersistencyModel.STRICT, True, True, True, False
    ),
    UpdateScheme.PIPELINE: SchemeSemantics(
        UpdateScheme.PIPELINE, PersistencyModel.STRICT, True, True, True, False
    ),
    UpdateScheme.O3: SchemeSemantics(
        UpdateScheme.O3, PersistencyModel.EPOCH, True, True, True, False
    ),
    UpdateScheme.COALESCING: SchemeSemantics(
        UpdateScheme.COALESCING, PersistencyModel.EPOCH, True, True, True, True
    ),
    # The zoo.  secpm_wt and anubis keep both invariants (write-through
    # tuples, ordered root acks); triad_nvm and phoenix gather with 2SP
    # locking but relax root ordering — recovery rebuilds the root from
    # the persisted metadata instead (``rebuild_root``).
    UpdateScheme.SECPM_WT: SchemeSemantics(
        UpdateScheme.SECPM_WT, PersistencyModel.STRICT, True, True, True, False
    ),
    UpdateScheme.ANUBIS: SchemeSemantics(
        UpdateScheme.ANUBIS, PersistencyModel.STRICT, True, True, True, False
    ),
    UpdateScheme.TRIAD_NVM: SchemeSemantics(
        UpdateScheme.TRIAD_NVM,
        PersistencyModel.STRICT,
        True,
        True,
        False,
        False,
        rebuild_root=True,
    ),
    UpdateScheme.PHOENIX: SchemeSemantics(
        UpdateScheme.PHOENIX,
        PersistencyModel.STRICT,
        True,
        True,
        False,
        False,
        rebuild_root=True,
    ),
}


def semantics_for(scheme: str) -> SchemeSemantics:
    """Crash semantics for a campaign scheme."""
    resolved = UpdateScheme.from_name(scheme)
    try:
        return _SEMANTICS[resolved]
    except KeyError:
        raise ValueError(
            f"scheme {scheme!r} is not part of the crash campaign "
            f"(supported: {', '.join(CAMPAIGN_SCHEMES)})"
        ) from None


def build_memory(sem: SchemeSemantics) -> FunctionalSecureMemory:
    """A fresh campaign memory for one scenario run.

    ``atomic_tuples=False``: the WPQ drive in the engine — not the
    journal shortcut — decides what persists; the injector it derives is
    applied faithfully.
    """
    return FunctionalSecureMemory(
        num_pages=CAMPAIGN_PAGES,
        persistency=sem.model,
        epoch_size=None,
        atomic_tuples=False,
    )


def replay(mem: FunctionalSecureMemory, ops: Sequence[Tuple]) -> None:
    """Apply a workload's ops to a functional memory."""
    for op in ops:
        if op[0] == "store":
            _, block, tag = op
            mem.store(block * BLOCK_SIZE, payload(tag))
        elif op[0] == "barrier":
            mem.barrier()
        else:
            raise ValueError(f"unknown workload op {op[0]!r}")


def journal_plan(scheme: str, workload: str) -> Tuple[PersistRecord, ...]:
    """The persist journal a (scheme, workload) pair produces.

    Used by the grid enumeration to find every crash point, and by the
    engine to drive the WPQ.  Persist IDs equal journal indices.
    """
    sem = semantics_for(scheme)
    mem = build_memory(sem)
    replay(mem, WORKLOADS[workload])
    return mem.journal


def enumerate_grid(
    schemes: Optional[Iterable[str]] = None,
    workloads: Optional[Iterable[str]] = None,
    subsets: Optional[Sequence[Tuple[str, ...]]] = None,
) -> List[Scenario]:
    """Every scenario of the campaign grid, in deterministic order.

    Args:
        schemes: Scheme names (default: all of :data:`CAMPAIGN_SCHEMES`).
        workloads: Workload names (default: all of :data:`WORKLOADS`).
        subsets: Drop subsets per mid-gather victim (default: all 16
            subsets of the tuple, :data:`DROP_SUBSETS`).  The empty
            subset yields the persist-boundary crash points.
    """
    scheme_list = list(schemes) if schemes is not None else list(CAMPAIGN_SCHEMES)
    workload_list = (
        sorted(workloads) if workloads is not None else sorted(WORKLOADS)
    )
    subset_list = list(subsets) if subsets is not None else list(DROP_SUBSETS)
    if () not in subset_list:
        subset_list = [()] + subset_list

    grid: List[Scenario] = []
    for scheme in scheme_list:
        for workload in workload_list:
            persists = len(journal_plan(scheme, workload))
            grid.append(Scenario(scheme, workload, victim=-1))
            for victim in range(persists):
                for subset in subset_list:
                    grid.append(Scenario(scheme, workload, victim, subset))
    return grid


CAMPAIGN_FORMAT = 2
"""Bump to invalidate cached campaign cells on semantic changes.

v2: zoo schemes joined the grid and ``CampaignCell`` grew the
``relaxed`` classification flag."""


def scenario_key(scenario: Scenario, code: str) -> str:
    """Content-addressed cache key for one scenario's cell."""
    blob = json.dumps(
        {
            "format": CAMPAIGN_FORMAT,
            "scheme": scenario.scheme,
            "workload": scenario.workload,
            "victim": scenario.victim,
            "drops": list(scenario.drops),
            "code": code,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()
