"""Parallel, cached execution of the campaign grid.

Cells fan out through the generic sweep engine
(:func:`repro.sweep.runner.run_tasks`): identical scenarios are
deduplicated, cached cells are loaded from the content-addressed
:class:`CampaignCache` (keyed by scenario + campaign format + code
version), and the rest run across a fork-based process pool.  Cells are
plain-JSON dataclasses, so parallel results are bit-identical to a
sequential run, cold or warm.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.app_engine import (
    AppCampaignCell,
    AppScenario,
    app_scenario_key,
    run_app_scenario,
)
from repro.campaign.engine import CampaignCell, run_scenario
from repro.campaign.grid import Scenario, scenario_key
from repro.sweep.cache import JSONCache, caching_disabled, code_version
from repro.sweep.runner import SweepReport, run_tasks


def default_campaign_cache_root() -> Path:
    env = os.environ.get("PLP_CAMPAIGN_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "plp-repro" / "campaign"


class CampaignCache(JSONCache):
    """Directory of content-addressed :class:`CampaignCell` JSON files."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        super().__init__(root if root is not None else default_campaign_cache_root())

    def _encode(self, value: CampaignCell) -> Dict:
        return asdict(value)

    def _decode(self, payload: Dict) -> CampaignCell:
        return CampaignCell(**payload)


def run_campaign(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
    cache: Union[CampaignCache, str, bool, None] = True,
) -> Tuple[List[CampaignCell], SweepReport]:
    """Run every scenario, in parallel, through the campaign cache.

    Args:
        scenarios: Grid cells, in output order.
        workers: Process count (``None``: ``PLP_SWEEP_JOBS`` or CPU
            count; ``1`` runs inline).
        cache: ``True`` for the default on-disk cache, ``False``/``None``
            to disable, or a :class:`CampaignCache`/path.
            ``PLP_NO_RESULT_CACHE=1`` forces caching off.

    Returns:
        ``(cells, report)`` with ``cells[i]`` the classified outcome of
        ``scenarios[i]`` — bit-identical to a sequential run.
    """
    cell_cache: Optional[CampaignCache] = None
    if not caching_disabled():
        if isinstance(cache, CampaignCache):
            cell_cache = cache
        elif cache is True:
            cell_cache = CampaignCache()
        elif isinstance(cache, (str, os.PathLike)):
            cell_cache = CampaignCache(cache)

    code = code_version()
    keys = [scenario_key(scenario, code) for scenario in scenarios]
    return run_tasks(
        list(scenarios), keys, run_scenario, workers=workers, cache=cell_cache
    )


class AppCampaignCache(JSONCache):
    """Content-addressed :class:`AppCampaignCell` files.

    Lives in an ``app/`` subdirectory of the campaign cache root so the
    two cell shapes never share a directory.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        super().__init__(
            root if root is not None else default_campaign_cache_root() / "app"
        )

    def _encode(self, value: AppCampaignCell) -> Dict:
        return asdict(value)

    def _decode(self, payload: Dict) -> AppCampaignCell:
        return AppCampaignCell(**payload)


def run_app_campaign(
    scenarios: Sequence[AppScenario],
    workers: Optional[int] = None,
    cache: Union[AppCampaignCache, str, bool, None] = True,
) -> Tuple[List[AppCampaignCell], SweepReport]:
    """Run app-campaign cells in parallel through the app cell cache.

    Mirrors :func:`run_campaign`; only roster workloads are cacheable
    (dynamic :class:`~repro.app.kvstore.AppWorkload` objects must go
    through :func:`~repro.campaign.app_engine.run_app_scenario`
    directly, as their content is not part of the scenario key).
    """
    cell_cache: Optional[AppCampaignCache] = None
    if not caching_disabled():
        if isinstance(cache, AppCampaignCache):
            cell_cache = cache
        elif cache is True:
            cell_cache = AppCampaignCache()
        elif isinstance(cache, (str, os.PathLike)):
            cell_cache = AppCampaignCache(cache)

    code = code_version()
    keys = [app_scenario_key(scenario, code) for scenario in scenarios]
    return run_tasks(
        list(scenarios), keys, run_app_scenario, workers=workers, cache=cell_cache
    )
