"""Parallel, cached execution of the campaign grid.

Cells fan out through the generic sweep engine
(:func:`repro.sweep.runner.run_tasks`): identical scenarios are
deduplicated, cached cells are loaded from the content-addressed
:class:`CampaignCache` (keyed by scenario + campaign format + code
version), and the rest run across a fork-based process pool.  Cells are
plain-JSON dataclasses, so parallel results are bit-identical to a
sequential run, cold or warm.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.engine import CampaignCell, run_scenario
from repro.campaign.grid import Scenario, scenario_key
from repro.sweep.cache import JSONCache, caching_disabled, code_version
from repro.sweep.runner import SweepReport, run_tasks


def default_campaign_cache_root() -> Path:
    env = os.environ.get("PLP_CAMPAIGN_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "plp-repro" / "campaign"


class CampaignCache(JSONCache):
    """Directory of content-addressed :class:`CampaignCell` JSON files."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        super().__init__(root if root is not None else default_campaign_cache_root())

    def _encode(self, value: CampaignCell) -> Dict:
        return asdict(value)

    def _decode(self, payload: Dict) -> CampaignCell:
        return CampaignCell(**payload)


def run_campaign(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
    cache: Union[CampaignCache, str, bool, None] = True,
) -> Tuple[List[CampaignCell], SweepReport]:
    """Run every scenario, in parallel, through the campaign cache.

    Args:
        scenarios: Grid cells, in output order.
        workers: Process count (``None``: ``PLP_SWEEP_JOBS`` or CPU
            count; ``1`` runs inline).
        cache: ``True`` for the default on-disk cache, ``False``/``None``
            to disable, or a :class:`CampaignCache`/path.
            ``PLP_NO_RESULT_CACHE=1`` forces caching off.

    Returns:
        ``(cells, report)`` with ``cells[i]`` the classified outcome of
        ``scenarios[i]`` — bit-identical to a sequential run.
    """
    cell_cache: Optional[CampaignCache] = None
    if not caching_disabled():
        if isinstance(cache, CampaignCache):
            cell_cache = cache
        elif cache is True:
            cell_cache = CampaignCache()
        elif isinstance(cache, (str, os.PathLike)):
            cell_cache = CampaignCache(cache)

    code = code_version()
    keys = [scenario_key(scenario, code) for scenario in scenarios]
    return run_tasks(
        list(scenarios), keys, run_scenario, workers=workers, cache=cell_cache
    )
