"""Per-cell crash/recovery drive for the *application* campaign.

Where :mod:`repro.campaign.engine` asks "did the memory tuples come
back?", this engine asks the Silhouette question: after the same crash,
does the *application's own recovery procedure* land in a state the
program could legally be in?

For one :class:`AppScenario` the engine:

1. lowers the KV workload under its durability idiom and replays it on
   a fresh functional secure memory (journaling the persists);
2. reuses the memory engine's WPQ drive
   (:func:`~repro.campaign.engine.drive_wpq`) to decide what the crash
   leaves durable for the scenario's victim/drops;
3. crashes, applies the scheme's documented root handling (relaxed
   schemes adopt the rebuilt root), and runs the paper's recovery;
4. runs the *idiom's* recovery procedure over verified loads and
   classifies the recovered store against the in-flight operation's
   pre/post frames via
   :func:`~repro.recovery.checker.classify_app_state`.

Outcome taxonomy (:data:`~repro.recovery.checker.APP_OUTCOMES`):

* ``pre_op`` / ``post_op`` — the recovered store equals a legal frame
  of the in-flight operation: crash-consistent.
* ``detected`` — the integrity machinery rejected the image (BMT root
  mismatch, or a MAC/BMT failure on a block the recovery read): data
  was lost *visibly*.
* ``mismatch`` — verification accepted the image but the store is in a
  state the program never produced (torn or stale values): the
  application-level analogue of silent corruption.  Forbidden for
  compliant and relaxed schemes — :func:`repro.analysis.campaign.verify_campaign`
  fails loudly on it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.app.kvstore import AppTrace, AppWorkload, lower, recover_app, replay_app
from repro.app.workloads import resolve_workload
from repro.campaign.engine import build_injector, drive_wpq
from repro.campaign.grid import SchemeSemantics, build_memory, semantics_for
from repro.core.schemes import UpdateScheme
from repro.crypto.primitives import BLOCK_SIZE
from repro.mem.wpq import TupleItem
from repro.persistency.models import PersistencyModel
from repro.recovery.checker import (
    APP_DETECTED,
    RecoveryChecker,
    classify_app_state,
)
from repro.system.secure_memory import IntegrityError

from repro.app.kvstore import IDIOMS

APP_CAMPAIGN_SCHEMES: Tuple[str, ...] = (
    "sp",
    "pipeline",
    "o3",
    "coalescing",
    "triad_nvm",
    "phoenix",
    "secpm_wt",
    "anubis",
)
"""The eight persistent schemes the app campaign runs by default: the
paper's four plus the cross-paper zoo.  ``secure_wb`` guarantees
nothing durable (an app-level differential is meaningless) and the
``unordered`` strawman is opt-in for demonstration runs."""

APP_CAMPAIGN_FORMAT = 1
"""Bump to invalidate cached app-campaign cells on semantic changes."""


@dataclass(frozen=True)
class AppScenario:
    """One app-campaign cell (scheme x idiom x workload x crash point)."""

    scheme: str
    idiom: str
    workload: str
    victim: int
    drops: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        UpdateScheme.from_name(self.scheme)
        if self.idiom not in IDIOMS:
            raise ValueError(f"unknown idiom {self.idiom!r}")
        valid = {item.value for item in TupleItem}
        bad = set(self.drops) - valid
        if bad:
            raise ValueError(f"unknown tuple items in drops: {sorted(bad)}")
        object.__setattr__(self, "drops", tuple(sorted(set(self.drops))))
        if self.victim < -1:
            raise ValueError("victim must be -1 (boundary) or a journal index")
        if self.victim == -1 and self.drops:
            raise ValueError("drops require an in-flight victim persist")

    @property
    def drop_items(self) -> frozenset:
        return frozenset(TupleItem(value) for value in self.drops)


@dataclass
class AppCampaignCell:
    """One classified app-campaign cell (JSON-primitive fields only)."""

    scheme: str
    idiom: str
    workload: str
    victim: int
    drops: List[str]
    compliant: bool
    relaxed: bool
    classification: str
    bmt_ok: bool
    in_flight_op: int
    durable_persists: int
    total_persists: int
    recovered: Optional[List[List[str]]]
    expected_pre: List[List[str]]
    expected_post: List[List[str]]
    problems: List[str] = field(default_factory=list)

    @property
    def consistent_frame(self) -> bool:
        """Did the store land in a legal (pre- or post-op) frame?"""
        return self.classification in ("pre_op", "post_op")


class PersistInfo(NamedTuple):
    """Provenance of one journaled persist in the app trace."""

    app_index: int
    role: str
    block: int


def persist_map(sem: SchemeSemantics, trace: AppTrace) -> List[PersistInfo]:
    """Map persist journal indices to the app actions that caused them.

    Replays the persistency model's lowering logic without the crypto:
    under STRICT every store journals one persist; under EPOCH the
    epoch's dirty blocks materialize at the barrier with same-block
    collapse, in first-store insertion order (matching
    :class:`~repro.system.secure_memory.FunctionalSecureMemory`).
    """
    infos: List[PersistInfo] = []
    if sem.model is PersistencyModel.STRICT:
        for record in trace.records:
            if record.kind == "store":
                infos.append(PersistInfo(record.app_index, record.role, record.block))
        return infos
    if sem.model is not PersistencyModel.EPOCH:
        raise ValueError(f"app campaign cannot map persists under {sem.model}")
    epoch_dirty: Dict[int, PersistInfo] = {}
    for record in trace.records:
        if record.kind == "store":
            # Same-block collapse keeps the first store's queue position
            # but the *latest* store's provenance wins the persist.
            epoch_dirty[record.block] = PersistInfo(
                record.app_index, record.role, record.block
            )
        elif record.kind == "barrier":
            infos.extend(epoch_dirty.values())
            epoch_dirty.clear()
    # A trailing open epoch never journals (mirrors the functional
    # memory); the lowering closes every mutating op with a barrier.
    return infos


def encode_state(state: Optional[Dict[int, bytes]]) -> Optional[List[List[str]]]:
    """JSON-primitive encoding of a KV state (sorted ``[key, hex]`` pairs)."""
    if state is None:
        return None
    return [[str(key), state[key].hex()] for key in sorted(state)]


def run_app_scenario(
    scenario: AppScenario,
    workload: Optional[AppWorkload] = None,
    telemetry=None,
) -> AppCampaignCell:
    """Crash, recover the application, and classify one app cell.

    Args:
        scenario: The cell to run.
        workload: Override the workload object (for dynamically built
            workloads, e.g. hypothesis-generated ones, that are not in
            the :data:`~repro.app.workloads.APP_WORKLOADS` roster).
        telemetry: Optional telemetry bus for the WPQ drive.
    """
    sem = semantics_for(scenario.scheme)
    if not sem.persistent:
        raise ValueError(
            f"scheme {scenario.scheme!r} guarantees nothing durable; "
            "an application-state differential is meaningless"
        )
    wl = workload if workload is not None else resolve_workload(scenario.workload)
    trace = lower(scenario.idiom, wl)

    mem = build_memory(sem)
    replay_app(mem, trace)
    journal = mem.journal
    n = len(journal)
    if scenario.victim >= n:
        raise ValueError(
            f"victim {scenario.victim} out of range: "
            f"({scenario.scheme}, {scenario.idiom}, {wl.name}) "
            f"journals {n} persists"
        )
    pmap = persist_map(sem, trace)
    if len(pmap) != n:
        raise RuntimeError(
            f"persist map ({len(pmap)}) disagrees with the journal ({n}); "
            "the lowering replay drifted from the functional memory"
        )

    # ---- crash: same WPQ drive as the memory campaign ----------------
    outcome = drive_wpq(
        sem, journal, scenario.victim, set(scenario.drop_items), mem.geometry,
        telemetry,
    )
    problems = outcome.problems
    persisted_ids = outcome.persisted_ids
    injector = build_injector(sem, outcome)

    mem.crash(injector)
    if sem.rebuild_root:
        # Documented relaxation (triad_nvm/phoenix): adopt the root
        # rebuilt from the persisted, MAC-protected counters.
        checker = RecoveryChecker(mem.geometry, mem.keys)
        mem.durable_root.commit(checker.rebuild_root(mem.nvm))
    report = mem.recover(expected={})

    # ---- the differential frame: which op was in flight? -------------
    op_count = trace.op_count
    if sem.atomic:
        # 2SP releases a journal prefix; the first missing persist is
        # the in-flight operation.
        k = len(persisted_ids)
        in_flight = pmap[k].app_index if k < n else -1
    else:
        # The unordered strawman issues everything; only the victim's
        # tuple is damaged, so the legal frames are the last op's.
        k = len(persisted_ids)
        in_flight = -1
    if in_flight < 0:
        pre_state = trace.states[op_count - 1] if op_count else {}
        post_state = trace.states[op_count] if op_count else {}
    else:
        pre_state = trace.states[in_flight]
        post_state = trace.states[in_flight + 1]

    # ---- the application's own recovery over verified loads ----------
    recovered: Optional[Dict[int, bytes]] = None
    if not report.bmt_ok:
        # The root register rejects the image before the app runs.
        classification = APP_DETECTED
    else:
        try:
            recovered = recover_app(
                scenario.idiom, wl, lambda block: mem.load(block * BLOCK_SIZE)
            )
            classification = classify_app_state(recovered, pre_state, post_state)
        except IntegrityError:
            recovered = None
            classification = APP_DETECTED

    return AppCampaignCell(
        scheme=scenario.scheme,
        idiom=scenario.idiom,
        workload=wl.name,
        victim=scenario.victim,
        drops=list(scenario.drops),
        compliant=sem.compliant,
        relaxed=sem.relaxed,
        classification=classification,
        bmt_ok=report.bmt_ok,
        in_flight_op=in_flight,
        durable_persists=len(persisted_ids),
        total_persists=n,
        recovered=encode_state(recovered),
        expected_pre=encode_state(pre_state),
        expected_post=encode_state(post_state),
        problems=problems,
    )


def app_journal_plan(scheme: str, idiom: str, workload) -> int:
    """How many persists a (scheme, idiom, workload) triple journals."""
    sem = semantics_for(scheme)
    wl = resolve_workload(workload)
    mem = build_memory(sem)
    replay_app(mem, lower(idiom, wl))
    return len(mem.journal)


def app_scenario_key(scenario: AppScenario, code: str) -> str:
    """Content-addressed cache key for one app cell."""
    blob = json.dumps(
        {
            "format": APP_CAMPAIGN_FORMAT,
            "scheme": scenario.scheme,
            "idiom": scenario.idiom,
            "workload": scenario.workload,
            "victim": scenario.victim,
            "drops": list(scenario.drops),
            "code": code,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()
