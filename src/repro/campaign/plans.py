"""Silhouette-style crash-plan generation with mechanism pruning.

The exhaustive app crash space for one (scheme, idiom, workload) triple
is ``1 + 16 * n`` cells: the trailing boundary plus every journaled
persist as victim x every subset of its ``(C, γ, M, R)`` tuple.  Most
of those cells cannot change what the application recovers:

* Under 2SP (every scheme in the default roster) the WPQ releases a
  journal *prefix* — persists younger than an in-flight victim never
  even gather.  The post-crash NVM image, and with it the recovered
  application state, is a pure function of the durable prefix length
  ``k``; all 16 drop subsets of a victim collapse onto at most two
  distinct ``k`` values.
* Within one prefix length, what recovery returns is decided by the
  idiom's *mechanism* at the first missing persist: which operation is
  in flight, the persist's protocol role (``snap_slot`` vs the
  ``snap_ptr`` commit point; ``log_rec``/``log_head``/``slot_write``
  vs ``log_commit``), and how many commits landed before it.  Two
  crash points with the same (op, role, commits-before) signature
  recover identically.

The pruner therefore computes each exhaustive cell's durable outcome
*combinatorially* — one crypto replay to journal the workload, then a
cheap WPQ drive per cell, no encryption, no recovery — groups cells by
equivalence class, and emits one representative plan per class.  For
non-atomic schemes (the opt-in ``unordered`` strawman) the prefix
argument does not hold, so classes degrade to the exact durable-damage
signature: only genuinely identical outcomes merge.

:func:`crosscheck_pruning` is the soundness instrument: it *runs* every
exhaustive cell through the real engine and verifies each one classifies
identically to its class representative — in particular, that no
mismatch-producing plan was pruned away.  The property test in
``tests/test_app_campaign.py`` hammers this on hypothesis-generated
workloads; the bench gate and ``plp-repro app-campaign --exhaustive``
run it on the ``smoke`` trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.app.kvstore import AppWorkload, lower
from repro.app.workloads import resolve_workload
from repro.campaign.app_engine import (
    AppScenario,
    PersistInfo,
    persist_map,
    run_app_scenario,
)
from repro.campaign.engine import build_injector, drive_wpq
from repro.campaign.grid import DROP_SUBSETS, build_memory, semantics_for
from repro.app.kvstore import replay_app
from repro.mem.wpq import TupleItem


@dataclass(frozen=True)
class CrashPlan:
    """One emitted crash plan: a representative of its equivalence class."""

    scheme: str
    idiom: str
    workload: str
    victim: int
    drops: Tuple[str, ...]
    class_key: str
    represented: int
    """How many exhaustive cells this plan stands for (including itself)."""

    @property
    def scenario(self) -> AppScenario:
        return AppScenario(
            self.scheme, self.idiom, self.workload, self.victim, self.drops
        )


@dataclass(frozen=True)
class PlanSet:
    """The pruned crash-plan set for one (scheme, idiom, workload)."""

    scheme: str
    idiom: str
    workload: str
    total_persists: int
    exhaustive_cells: int
    plans: Tuple[CrashPlan, ...]

    @property
    def skipped_cells(self) -> int:
        """Exhaustive cells the pruner proved redundant and skipped."""
        return self.exhaustive_cells - len(self.plans)

    @property
    def prune_ratio(self) -> float:
        """Fraction of the exhaustive space skipped (0.0 when empty)."""
        if not self.exhaustive_cells:
            return 0.0
        return self.skipped_cells / self.exhaustive_cells

    def as_dict(self) -> Dict:
        return {
            "scheme": self.scheme,
            "idiom": self.idiom,
            "workload": self.workload,
            "total_persists": self.total_persists,
            "exhaustive_cells": self.exhaustive_cells,
            "emitted_plans": len(self.plans),
            "skipped_cells": self.skipped_cells,
            "prune_ratio": self.prune_ratio,
        }


def exhaustive_cells(
    n: int, subsets: Sequence[Tuple[str, ...]]
) -> List[Tuple[int, Tuple[str, ...]]]:
    """The full crash space: boundary + every victim x drop subset."""
    cells: List[Tuple[int, Tuple[str, ...]]] = [(-1, ())]
    for victim in range(n):
        for subset in subsets:
            cells.append((victim, tuple(subset)))
    return cells


def _atomic_class_key(
    k: int, n: int, pmap: Sequence[PersistInfo], commit_roles: frozenset
) -> str:
    """Mechanism signature of a durable prefix of length ``k``."""
    if k >= n:
        return "end"
    info = pmap[k]
    commits = sum(1 for i in range(k) if pmap[i].role in commit_roles)
    return f"op{info.app_index}:{info.role}:c{commits}"


def _damage_signature(n: int, injector) -> str:
    """Exact durable-damage signature (non-atomic fallback).

    Two cells merge only when the crash injector they imply is
    identical — the recovered image is a deterministic function of it.
    """
    parts = []
    for pid in range(n):
        dropped = injector.dropped_items(pid)
        if dropped:
            parts.append((pid, tuple(sorted(item.value for item in dropped))))
    return f"sig:{parts!r}"


def generate_plans(
    scheme: str,
    idiom: str,
    workload,
    subsets: Optional[Sequence[Tuple[str, ...]]] = None,
) -> PlanSet:
    """Prune the exhaustive crash space down to one plan per class.

    Args:
        scheme: Campaign scheme name.
        idiom: ``"snapshot"`` or ``"undolog"``.
        workload: Roster name or an :class:`~repro.app.kvstore.AppWorkload`.
        subsets: Drop subsets per victim (default: all 16).

    Returns:
        A :class:`PlanSet` whose plans are the first exhaustive cell of
        each equivalence class, in enumeration order, each annotated
        with how many cells it represents.
    """
    from repro.app.kvstore import COMMIT_ROLES

    sem = semantics_for(scheme)
    if not sem.persistent:
        raise ValueError(f"scheme {scheme!r} journals nothing; no crash plans")
    wl = resolve_workload(workload)
    trace = lower(idiom, wl)
    mem = build_memory(sem)
    replay_app(mem, trace)
    journal = mem.journal
    n = len(journal)
    pmap = persist_map(sem, trace)
    subset_list = list(subsets) if subsets is not None else list(DROP_SUBSETS)

    cells = exhaustive_cells(n, subset_list)
    classes: Dict[str, List[Tuple[int, Tuple[str, ...]]]] = {}
    order: List[str] = []
    for victim, drops in cells:
        drop_items = {TupleItem(value) for value in drops}
        outcome = drive_wpq(sem, journal, victim, drop_items, mem.geometry)
        if sem.atomic:
            key = _atomic_class_key(
                len(outcome.persisted_ids), n, pmap, COMMIT_ROLES
            )
        else:
            key = _damage_signature(n, build_injector(sem, outcome))
        if key not in classes:
            classes[key] = []
            order.append(key)
        classes[key].append((victim, drops))

    plans = tuple(
        CrashPlan(
            scheme=scheme,
            idiom=idiom,
            workload=wl.name,
            victim=classes[key][0][0],
            drops=classes[key][0][1],
            class_key=key,
            represented=len(classes[key]),
        )
        for key in order
    )
    return PlanSet(
        scheme=scheme,
        idiom=idiom,
        workload=wl.name,
        total_persists=n,
        exhaustive_cells=len(cells),
        plans=plans,
    )


def crosscheck_pruning(
    scheme: str,
    idiom: str,
    workload,
    subsets: Optional[Sequence[Tuple[str, ...]]] = None,
) -> Dict:
    """Prove pruning soundness by running the whole exhaustive space.

    Every exhaustive cell is run through the real crash/recovery engine
    and compared against its class representative's classification.  A
    sound pruner produces zero disagreements — in particular, zero
    mismatch-producing plans hiding in a class whose representative
    classified clean.

    Returns:
        A dict with ``cells``, ``plans``, ``skipped``, ``agree``,
        ``missed_mismatches``, and the per-cell ``disagreements`` list
        (empty when sound).
    """
    wl = resolve_workload(workload)
    plan_set = generate_plans(scheme, idiom, wl, subsets=subsets)
    subset_list = list(subsets) if subsets is not None else list(DROP_SUBSETS)

    rep_class: Dict[str, str] = {}
    for plan in plan_set.plans:
        cell = run_app_scenario(plan.scenario, workload=wl)
        rep_class[plan.class_key] = cell.classification

    # Re-derive each exhaustive cell's class key exactly as the pruner
    # did, then run the cell for real and compare.
    from repro.app.kvstore import COMMIT_ROLES

    sem = semantics_for(scheme)
    trace = lower(idiom, wl)
    mem = build_memory(sem)
    replay_app(mem, trace)
    journal = mem.journal
    n = len(journal)
    pmap = persist_map(sem, trace)

    disagreements: List[Dict] = []
    missed_mismatches = 0
    cells = exhaustive_cells(n, subset_list)
    for victim, drops in cells:
        drop_items = {TupleItem(value) for value in drops}
        outcome = drive_wpq(sem, journal, victim, drop_items, mem.geometry)
        if sem.atomic:
            key = _atomic_class_key(
                len(outcome.persisted_ids), n, pmap, COMMIT_ROLES
            )
        else:
            key = _damage_signature(n, build_injector(sem, outcome))
        scenario = AppScenario(scheme, idiom, wl.name, victim, drops)
        actual = run_app_scenario(scenario, workload=wl).classification
        expected = rep_class[key]
        if actual != expected:
            disagreements.append(
                {
                    "victim": victim,
                    "drops": list(drops),
                    "class_key": key,
                    "expected": expected,
                    "actual": actual,
                }
            )
            if actual == "mismatch":
                missed_mismatches += 1
    return {
        "scheme": scheme,
        "idiom": idiom,
        "workload": wl.name,
        "cells": len(cells),
        "plans": len(plan_set.plans),
        "skipped": plan_set.skipped_cells,
        "prune_ratio": plan_set.prune_ratio,
        "agree": not disagreements,
        "missed_mismatches": missed_mismatches,
        "disagreements": disagreements,
    }
