"""Command-line interface.

Examples::

    plp-repro list
    plp-repro run gamess --schemes secure_wb,sp,coalescing --ki 20
    plp-repro sweep --benchmark gcc --scheme coalescing \\
        --param epoch_size --values 4,8,16,32,64,128,256
    plp-repro trace gcc --ki 25 --out gcc.trace
    plp-repro crash --drop mac
    plp-repro crash-campaign --jobs 4 --out campaign.json
    plp-repro rebuild-time --pages 4096

(Or ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.report import Table
from repro.core.schemes import UpdateScheme
from repro.mem.wpq import TupleItem
from repro.recovery.crash import CrashInjector
from repro.recovery.rebuild import RecoveryTimeModel
from repro.system.config import SystemConfig
from repro.sweep import SweepJob, run_jobs
from repro.system.factory import run_benchmark
from repro.system.secure_memory import FunctionalSecureMemory
from repro.workloads.spec_profiles import SPEC_PROFILES

DEFAULT_SCHEMES = "secure_wb,sp,pipeline,o3,coalescing"

_DROP_ITEMS = {
    "data": TupleItem.DATA,
    "counter": TupleItem.COUNTER,
    "mac": TupleItem.MAC,
    "root": TupleItem.ROOT_ACK,
}


def _parse_schemes(raw: str) -> List[UpdateScheme]:
    return [UpdateScheme.from_name(name.strip()) for name in raw.split(",") if name.strip()]


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_list(_args: argparse.Namespace) -> int:
    table = Table("Schemes (paper Table IV + extensions)", ["name", "persistency", "crash recoverable"])
    for scheme in UpdateScheme:
        table.add_row(scheme.value, scheme.persistency.value, str(scheme.crash_recoverable))
    print(table)
    print()
    bench = Table("Benchmarks (Table V profiles)", ["name", "stores/KI", "non-stack/KI", "o3/KI", "core IPC"])
    for name, profile in SPEC_PROFILES.items():
        bench.add_row(
            name,
            f"{profile.sp_full_ppki:.2f}",
            f"{profile.sp_ppki:.2f}",
            f"{profile.o3_ppki:.2f}",
            f"{profile.core_ipc:.2f}",
        )
    print(bench)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    schemes = _parse_schemes(args.schemes)
    if args.benchmark not in SPEC_PROFILES:
        print(f"unknown benchmark {args.benchmark!r}; see `plp-repro list`", file=sys.stderr)
        return 2
    jobs = [
        SweepJob.make(
            args.benchmark,
            scheme.value,
            kilo_instructions=args.ki,
            seed=args.seed,
            protect_stack=args.full_memory,
        )
        for scheme in schemes
    ]
    flat, report = run_jobs(jobs, workers=args.jobs, cache=not args.no_cache)
    results = {scheme.value: result for scheme, result in zip(schemes, flat)}
    base_name = schemes[0].value
    base = results[base_name]
    table = Table(
        f"{args.benchmark} ({args.ki} KI, {'full memory' if args.full_memory else 'non-stack'})",
        ["scheme", "cycles", "IPC", "PPKI", f"vs {base_name}"],
    )
    for name, result in results.items():
        table.add_row(
            name,
            f"{result.cycles:,}",
            f"{result.ipc:.3f}",
            f"{result.ppki:.2f}",
            f"{result.slowdown_vs(base):.2f}x",
        )
    print(table)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    scheme = UpdateScheme.from_name(args.scheme)
    values = [int(v) for v in args.values.split(",")]
    if not hasattr(SystemConfig(), args.param):
        print(f"unknown SystemConfig parameter {args.param!r}", file=sys.stderr)
        return 2
    jobs = [
        SweepJob.make(
            args.benchmark,
            name,
            kilo_instructions=args.ki,
            **{args.param: value},
        )
        for value in values
        for name in ("secure_wb", scheme.value)
    ]
    if args.shards > 1:
        # Scale-out mode: each simulation is split at epoch-drain
        # boundaries and run across the persistent worker pool, merged
        # back bit-identically (so the table below matches --shards 1).
        from repro.sweep import cached_profile_trace, run_sharded

        flat = []
        for job in jobs:
            trace = cached_profile_trace(job.benchmark, job.kilo_instructions, job.seed)
            flat.append(
                run_sharded(
                    trace,
                    job.resolved_config(),
                    shards=args.shards,
                    warmup_fraction=job.warmup_fraction,
                    workers=args.jobs if args.jobs > 1 else None,
                )
            )
        footer = f"sweep: {len(jobs)} points, {args.shards} shards each"
    else:
        flat, report = run_jobs(jobs, workers=args.jobs, cache=not args.no_cache)
        footer = f"sweep: {report.summary()}"
    table = Table(
        f"{args.benchmark} / {scheme.value}: sweep of {args.param}",
        [args.param, "cycles", "vs secure_wb"],
    )
    for i, value in enumerate(values):
        base, result = flat[2 * i], flat[2 * i + 1]
        table.add_row(str(value), f"{result.cycles:,}", f"{result.slowdown_vs(base):.3f}x")
    print(table)
    print(footer)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Export, inspect or stream-generate a packed trace artifact."""
    from repro.sweep import cached_profile_trace
    from repro.workloads.trace import OpKind

    if args.inspect is not None:
        return _trace_inspect(args.inspect)
    if args.stream is not None:
        return _trace_stream(args)
    if args.benchmark is None:
        print("benchmark required (or use --inspect/--stream)", file=sys.stderr)
        return 2
    if args.benchmark not in SPEC_PROFILES:
        print(f"unknown benchmark {args.benchmark!r}; see `plp-repro list`", file=sys.stderr)
        return 2
    trace = cached_profile_trace(args.benchmark, args.ki, args.seed)
    if args.out is not None:
        if args.format == "binary":
            trace.save_binary(args.out)
        else:
            trace.save(args.out)
        import os as _os

        size = _os.path.getsize(args.out)
        print(f"wrote {args.out} ({args.format}, {size:,} bytes)")
    table = Table(
        f"trace {trace.name} ({args.ki} KI, seed {args.seed})",
        ["metric", "value"],
    )
    table.add_row("records", f"{len(trace):,}")
    table.add_row("instructions", f"{trace.instruction_count:,}")
    table.add_row("loads", f"{trace.count(OpKind.LOAD):,}")
    table.add_row("stores", f"{trace.count(OpKind.STORE):,}")
    table.add_row("persistent stores", f"{trace.count(OpKind.STORE, persistent_only=True):,}")
    table.add_row("sfences", f"{trace.count(OpKind.SFENCE):,}")
    table.add_row("touched blocks", f"{trace.touched_blocks():,}")
    table.add_row("stores/KI", f"{trace.stores_per_kilo_instruction():.2f}")
    print(table)
    return 0


def _trace_inspect(path: str) -> int:
    """Summarize a trace file from its header + segment index alone.

    For a chunked v2 file this reads O(1) bytes regardless of trace
    length — the columns are never touched.
    """
    from repro.workloads.trace import TraceFormatError, TraceReader

    try:
        with TraceReader(path) as reader:
            summary = reader.summary()
    except (TraceFormatError, OSError) as exc:
        print(f"cannot inspect {path!r}: {exc}", file=sys.stderr)
        return 1
    table = Table(f"trace file {path}", ["metric", "value"])
    table.add_row("name", summary.name)
    table.add_row("format version", str(summary.version))
    table.add_row("records", f"{summary.record_count:,}")
    table.add_row("segments", f"{summary.num_segments:,} x {summary.segment_ops:,} ops")
    table.add_row("instructions", f"{summary.instruction_count:,}")
    table.add_row("loads", f"{summary.loads:,}")
    table.add_row("stores", f"{summary.stores:,}")
    table.add_row("persistent stores", f"{summary.persistent_stores:,}")
    table.add_row("sfences", f"{summary.sfences:,}")
    table.add_row("stores/KI", f"{summary.stores_per_kilo_instruction():.2f}")
    print(table)
    return 0


_STREAM_GENERATORS = ("synthetic", "lca_pingpong", "multi_tenant")


def _trace_stream(args: argparse.Namespace) -> int:
    """Stream-generate a chunked v2 trace straight to disk.

    Peak memory is one segment's columns, so ``--ops 10000000`` works on
    a small machine; the result is inspectable with ``--inspect``.
    """
    from repro.workloads.synthetic import (
        SyntheticSpec,
        lca_pingpong_ops,
        multi_tenant_ops,
        stream_trace,
        synthetic_ops,
    )

    if args.out is None:
        print("--stream requires --out", file=sys.stderr)
        return 2
    kind = args.stream
    if kind == "synthetic":
        # synthetic_ops sizes the trace in kilo-instructions; ~300 ops/KI
        # at the default rates, so scale the requested op count.
        spec = SyntheticSpec(name="synthetic-stream", seed=args.seed)
        ops_per_ki = spec.stores_per_ki + spec.loads_per_ki
        spec.kilo_instructions = max(1, round(args.ops / ops_per_ki))
        ops = synthetic_ops(spec)
    elif kind == "lca_pingpong":
        ops = lca_pingpong_ops(args.ops, seed=args.seed)
    else:
        per_client = max(1, args.ops // args.clients)
        ops = multi_tenant_ops(
            clients=args.clients, ops_per_client=per_client, seed=args.seed
        )
    count = stream_trace(args.out, ops, name=kind, segment_ops=args.segment_ops)
    import os as _os

    size = _os.path.getsize(args.out)
    print(f"wrote {args.out} ({count:,} records, {size:,} bytes, v2 chunked)")
    return 0


def cmd_crash(args: argparse.Namespace) -> int:
    item = _DROP_ITEMS[args.drop]
    mem = FunctionalSecureMemory(num_pages=64, atomic_tuples=args.atomic)
    mem.store(0, b"old value".ljust(64, b"\0"))
    victim = mem.store(0, b"new value".ljust(64, b"\0"))
    mem.crash(CrashInjector().drop(victim, item))
    report = mem.recover()
    mode = "2SP atomic" if args.atomic else "non-atomic (broken)"
    print(f"mode: {mode}; dropped tuple item: {args.drop}")
    print(f"recovered consistently: {report.recovered}")
    if report.recovered:
        value = mem.load(0).rstrip(b"\0").decode()
        print(f"durable value after recovery: {value!r}")
    else:
        print(f"failure outcome: {report.outcome_row(0)}")
    return 0


def cmd_crash_campaign(args: argparse.Namespace) -> int:
    """Systematic crash-injection campaign over the scheme grid."""
    import json
    from dataclasses import asdict

    from repro.analysis.campaign import (
        CampaignViolation,
        summarize,
        table1,
        table2,
        verify_campaign,
    )
    from repro.campaign import (
        CAMPAIGN_SCHEMES,
        SINGLETON_SUBSETS,
        WORKLOADS,
        enumerate_grid,
        run_campaign,
    )

    schemes = (
        [s.strip() for s in args.schemes.split(",") if s.strip()]
        if args.schemes
        else list(CAMPAIGN_SCHEMES)
    )
    workloads = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else None
    )
    subsets = SINGLETON_SUBSETS if args.drops == "singletons" else None
    grid = enumerate_grid(schemes=schemes, workloads=workloads, subsets=subsets)
    cells, report = run_campaign(grid, workers=args.jobs, cache=not args.no_cache)

    print(summarize(cells))
    full_tables = set(schemes) >= {"unordered"} and (
        workloads is None or {"overwrite", "ordered_pair"} <= set(workloads)
    )
    if full_tables:
        print()
        print(table1(cells))
        print()
        print(table2(cells))
    print()
    print(f"campaign: {report.summary()}")

    if args.out:
        payload = {
            "cells": [asdict(cell) for cell in cells],
            "report": report.as_dict(),
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        print(f"wrote {args.out} ({len(cells)} cells)")

    try:
        verify_campaign(cells, require_tables=full_tables)
    except CampaignViolation as violation:
        print(f"\nFAIL: {violation}", file=sys.stderr)
        return 1
    print("verify: zero silent corruptions or invariant violations in compliant schemes")
    return 0


def cmd_app_campaign(args: argparse.Namespace) -> int:
    """Application-level crash-plan campaign over the KV store idioms."""
    import json
    from dataclasses import asdict

    from repro.analysis.campaign import (
        CampaignViolation,
        summarize_app,
        verify_campaign,
    )
    from repro.app.workloads import APP_WORKLOADS, CROSSCHECK_WORKLOAD
    from repro.campaign import (
        APP_CAMPAIGN_SCHEMES,
        crosscheck_pruning,
        generate_plans,
        run_app_campaign,
    )
    from repro.app.kvstore import IDIOMS

    schemes = (
        [s.strip() for s in args.schemes.split(",") if s.strip()]
        if args.schemes
        else list(APP_CAMPAIGN_SCHEMES)
    )
    idioms = (
        [i.strip() for i in args.idioms.split(",") if i.strip()]
        if args.idioms
        else list(IDIOMS)
    )
    workloads = (
        [w.strip() for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else sorted(APP_WORKLOADS)
    )

    plan_sets = []
    scenarios = []
    for scheme in schemes:
        for idiom in idioms:
            for workload in workloads:
                plan_set = generate_plans(scheme, idiom, workload)
                plan_sets.append(plan_set)
                scenarios.extend(plan.scenario for plan in plan_set.plans)
    cells, report = run_app_campaign(
        scenarios, workers=args.jobs, cache=not args.no_cache
    )

    print(summarize_app(cells, plan_sets))
    exhaustive = sum(ps.exhaustive_cells for ps in plan_sets)
    skipped = sum(ps.skipped_cells for ps in plan_sets)
    print()
    print(
        f"pruning: ran {len(scenarios)} representative plans for "
        f"{exhaustive} exhaustive cells ({skipped} skipped, "
        f"{skipped / exhaustive:.1%})" if exhaustive else "pruning: empty grid"
    )
    print(f"campaign: {report.summary()}")

    crosschecks = []
    if args.exhaustive:
        print()
        for scheme in schemes:
            for idiom in idioms:
                result = crosscheck_pruning(scheme, idiom, CROSSCHECK_WORKLOAD)
                crosschecks.append(result)
                verdict = "sound" if result["agree"] else "UNSOUND"
                print(
                    f"cross-check {scheme}/{idiom}/{CROSSCHECK_WORKLOAD}: "
                    f"{result['cells']} cells vs {result['plans']} plans -> "
                    f"{verdict} ({result['missed_mismatches']} missed mismatches)"
                )

    if args.out:
        payload = {
            "plan_sets": [ps.as_dict() for ps in plan_sets],
            "cells": [asdict(cell) for cell in cells],
            "crosschecks": crosschecks,
            "report": report.as_dict(),
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
        print(f"wrote {args.out} ({len(cells)} cells)")

    if any(not result["agree"] for result in crosschecks):
        print("\nFAIL: pruning cross-check found a missed plan", file=sys.stderr)
        return 1
    try:
        verify_campaign(cells, require_tables=False)
    except CampaignViolation as violation:
        print(f"\nFAIL: {violation}", file=sys.stderr)
        return 1
    print(
        "verify: every compliant/relaxed cell recovered to a legal "
        "pre-op/post-op state (zero mismatches)"
    )
    return 0


def _bar(value: float, scale: float, width: int = 40) -> str:
    filled = max(1, round(value / scale * width)) if value > 0 else 0
    return "#" * min(width, filled)


def cmd_figure(args: argparse.Namespace) -> int:
    """Render a paper figure as ASCII bars from fresh simulations."""
    import math

    figures = {
        "fig8": (["unordered", "sp", "pipeline"], True),
        "fig10": (["o3", "coalescing"], False),
    }
    if args.name not in figures:
        print(f"unknown figure {args.name!r}; choose from {sorted(figures)}", file=sys.stderr)
        return 2
    schemes, log2 = figures[args.name]
    rows = []
    for bench in SPEC_PROFILES:
        results = run_benchmark(bench, ["secure_wb"] + schemes, kilo_instructions=args.ki)
        base = results["secure_wb"]
        rows.append((bench, {s: results[s].slowdown_vs(base) for s in schemes}))
    scale = max(
        (math.log2(max(v, 1.01)) if log2 else v)
        for _, values in rows
        for v in values.values()
    )
    unit = "log2 slowdown" if log2 else "slowdown"
    print(f"{args.name}: exec time normalized to secure_WB ({unit})")
    for bench, values in rows:
        print(bench)
        for scheme in schemes:
            value = values[scheme]
            magnitude = math.log2(max(value, 1.01)) if log2 else value
            print(f"  {scheme:10s} {value:7.2f}x |{_bar(magnitude, scale)}")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Telemetry timeline: occupancy tables + Perfetto/JSONL export."""
    from repro.analysis.timeline import run_timeline
    from repro.telemetry.export import render_timeline, write_chrome_trace, write_jsonl

    if args.benchmark not in SPEC_PROFILES:
        print(f"unknown benchmark {args.benchmark!r}; see `plp-repro list`", file=sys.stderr)
        return 2
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    report = run_timeline(
        args.benchmark,
        schemes=schemes,
        kilo_instructions=args.ki,
        seed=args.seed,
    )
    print(report.occupancy_table())
    print()
    print(report.level_table())
    if args.render:
        for timeline in report.timelines:
            print()
            print(f"[{timeline.scheme}]")
            print(render_timeline(timeline.telemetry, width=args.width))
    if args.export == "chrome":
        out = args.out or f"timeline-{args.benchmark}.trace.json"
        count = write_chrome_trace(out, report.telemetries())
        print(f"\nwrote {out} ({count:,} trace events; open in Perfetto / about://tracing)")
    elif args.export == "jsonl":
        for timeline in report.timelines:
            out = (args.out or f"timeline-{args.benchmark}") + f".{timeline.scheme}.jsonl"
            count = write_jsonl(out, timeline.telemetry)
            print(f"wrote {out} ({count:,} lines)")
    return 0


def cmd_rebuild_time(args: argparse.Namespace) -> int:
    config = SystemConfig()
    model = RecoveryTimeModel.from_config(config)
    table = Table(
        f"Post-crash BMT rebuild ({config.memory_bytes // 2**30} GB memory, "
        f"{args.pages} touched pages)",
        ["strategy", "counter reads", "nodes hashed", "cycles", "time"],
    )
    for estimate in (model.estimate("full"), model.estimate("touched", range(args.pages))):
        table.add_row(
            estimate.strategy,
            f"{estimate.counter_blocks_read:,}",
            f"{estimate.nodes_recomputed:,}",
            f"{estimate.total_cycles:,}",
            f"{estimate.total_seconds() * 1000:.3f} ms",
        )
    print(table)
    return 0


def cmd_recovery_table(args: argparse.Namespace) -> int:
    from repro.analysis.recovery import RECOVERY_TABLE_SCHEMES, build_recovery_table

    if args.schemes:
        schemes = [UpdateScheme.from_name(s) for s in args.schemes.split(",")]
    else:
        schemes = list(RECOVERY_TABLE_SCHEMES)
    touched = range(args.touched_pages) if args.touched_pages else None
    table = build_recovery_table(
        args.benchmark,
        schemes,
        kilo_instructions=args.ki,
        touched_pages=touched,
        seed=args.seed,
    )
    print(table.to_markdown() if args.markdown else table)
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="plp-repro",
        description="Persist Level Parallelism (MICRO 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list schemes and benchmark profiles").set_defaults(func=cmd_list)

    run = sub.add_parser("run", help="simulate one benchmark under several schemes")
    run.add_argument("benchmark", help="Table V benchmark name")
    run.add_argument("--schemes", default=DEFAULT_SCHEMES, help="comma-separated scheme list")
    run.add_argument("--ki", type=int, default=25, help="trace length in kilo-instructions")
    run.add_argument("--seed", type=int, default=2020)
    run.add_argument("--full-memory", action="store_true", help="persist the stack too ('_full' configs)")
    run.add_argument("--jobs", type=int, default=1, help="worker processes for the simulations")
    run.add_argument("--no-cache", action="store_true", help="bypass the on-disk result cache")
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser("sweep", help="sweep one SystemConfig parameter")
    sweep.add_argument("--benchmark", default="gamess")
    sweep.add_argument("--scheme", default="coalescing")
    sweep.add_argument("--param", default="epoch_size")
    sweep.add_argument("--values", default="4,8,16,32,64,128,256")
    sweep.add_argument("--ki", type=int, default=25)
    sweep.add_argument("--jobs", type=int, default=1, help="worker processes for the sweep")
    sweep.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split each simulation at epoch-drain boundaries across the "
        "worker pool and merge bit-identically (scale-out mode)",
    )
    sweep.add_argument("--no-cache", action="store_true", help="bypass the on-disk result cache")
    sweep.set_defaults(func=cmd_sweep)

    trace = sub.add_parser(
        "trace", help="export, inspect or stream-generate a packed trace"
    )
    trace.add_argument("benchmark", nargs="?", default=None, help="Table V benchmark name")
    trace.add_argument("--ki", type=int, default=25, help="trace length in kilo-instructions")
    trace.add_argument("--seed", type=int, default=2020)
    trace.add_argument("--out", default=None, help="write the trace to this path")
    trace.add_argument(
        "--format",
        choices=["binary", "text"],
        default="binary",
        help="serialization for --out (default: packed binary)",
    )
    trace.add_argument(
        "--inspect",
        metavar="PATH",
        default=None,
        help="summarize a trace file from its header/index only (O(1) for v2)",
    )
    trace.add_argument(
        "--stream",
        choices=_STREAM_GENERATORS,
        default=None,
        help="stream-generate a v2 trace straight to --out in bounded memory",
    )
    trace.add_argument(
        "--ops", type=int, default=1_000_000, help="record count for --stream"
    )
    trace.add_argument(
        "--clients", type=int, default=4, help="tenant count for --stream multi_tenant"
    )
    trace.add_argument(
        "--segment-ops",
        type=int,
        default=262_144,
        help="v2 segment size for --stream output",
    )
    trace.set_defaults(func=cmd_trace)

    crash = sub.add_parser("crash", help="crash-injection demo (Table I rows)")
    crash.add_argument("--drop", choices=sorted(_DROP_ITEMS), default="mac")
    crash.add_argument("--atomic", action="store_true", help="enable the 2SP defense")
    crash.set_defaults(func=cmd_crash)

    campaign = sub.add_parser(
        "crash-campaign",
        help="systematic crash-injection campaign over the scheme grid",
    )
    campaign.add_argument(
        "--schemes",
        default=None,
        help="comma-separated campaign schemes (default: all Table IV schemes)",
    )
    campaign.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: all)",
    )
    campaign.add_argument(
        "--drops",
        choices=["all", "singletons"],
        default="all",
        help="drop subsets per crash point: all 16, or singletons only",
    )
    campaign.add_argument("--jobs", type=int, default=1, help="worker processes")
    campaign.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk campaign cache"
    )
    campaign.add_argument("--out", default=None, help="write campaign JSON here")
    campaign.set_defaults(func=cmd_crash_campaign)

    app_campaign = sub.add_parser(
        "app-campaign",
        help="application-level crash-plan campaign (crash-safe KV store)",
    )
    app_campaign.add_argument(
        "--schemes",
        default=None,
        help="comma-separated schemes (default: the app-campaign roster)",
    )
    app_campaign.add_argument(
        "--idioms",
        default=None,
        help="comma-separated durability idioms (default: snapshot,undolog)",
    )
    app_campaign.add_argument(
        "--workloads",
        default=None,
        help="comma-separated app workload names (default: all)",
    )
    app_campaign.add_argument(
        "--exhaustive",
        action="store_true",
        help="also run the exhaustive pruning cross-check on the smoke workload",
    )
    app_campaign.add_argument("--jobs", type=int, default=1, help="worker processes")
    app_campaign.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk app-cell cache"
    )
    app_campaign.add_argument("--out", default=None, help="write campaign JSON here")
    app_campaign.set_defaults(func=cmd_app_campaign)

    timeline = sub.add_parser(
        "timeline",
        help="telemetry timeline: BMT/WPQ occupancy tables and Perfetto export",
    )
    timeline.add_argument("benchmark", nargs="?", default="gamess", help="Table V benchmark name")
    timeline.add_argument(
        "--schemes",
        default="sp,pipeline",
        help="comma-separated scheme list (default: sp,pipeline)",
    )
    timeline.add_argument("--ki", type=int, default=10, help="trace length in kilo-instructions")
    timeline.add_argument("--seed", type=int, default=2020)
    timeline.add_argument(
        "--export",
        choices=["none", "chrome", "jsonl"],
        default="none",
        help="write the event streams (chrome = Perfetto-loadable JSON)",
    )
    timeline.add_argument("--out", default=None, help="export path (default: timeline-<bench>...)")
    timeline.add_argument(
        "--render", action="store_true", help="print per-track ASCII occupancy strips"
    )
    timeline.add_argument("--width", type=int, default=72, help="ASCII strip width")
    timeline.set_defaults(func=cmd_timeline)

    rebuild = sub.add_parser("rebuild-time", help="estimate post-crash BMT rebuild time")
    rebuild.add_argument("--pages", type=int, default=4096, help="touched pages")
    rebuild.set_defaults(func=cmd_rebuild_time)

    recovery = sub.add_parser(
        "recovery-table",
        help="cross-paper recovery latency vs runtime overhead (scheme zoo)",
    )
    recovery.add_argument("--benchmark", default="gcc", help="Table V benchmark name")
    recovery.add_argument(
        "--schemes",
        default=None,
        help="comma-separated scheme list (default: PLP schemes + the zoo)",
    )
    recovery.add_argument("--ki", type=int, default=20, help="trace length in kilo-instructions")
    recovery.add_argument("--seed", type=int, default=2020)
    recovery.add_argument(
        "--touched-pages",
        type=int,
        default=0,
        help="persisted touched-page map size; whole-tree schemes then "
        "recover 'touched' instead of 'full'",
    )
    recovery.add_argument(
        "--markdown", action="store_true", help="emit GitHub-flavoured markdown"
    )
    recovery.set_defaults(func=cmd_recovery_table)

    figure = sub.add_parser("figure", help="render a paper figure as ASCII bars")
    figure.add_argument("name", choices=["fig8", "fig10"])
    figure.add_argument("--ki", type=int, default=15)
    figure.set_defaults(func=cmd_figure)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
