"""System integration: configuration, the functional secure memory, and
the trace-driven timing simulator.

Two top-level entry points:

* :class:`~repro.system.secure_memory.FunctionalSecureMemory` — byte-
  accurate secure NVMM with crash/recovery semantics (correctness
  experiments, Tables I/II, examples);
* :class:`~repro.system.timing.TraceSimulator` — cycle-level performance
  model over workload traces (Figures 8–12, Table V, sensitivity
  studies).
"""

from repro.system.config import SystemConfig
from repro.system.secure_memory import FunctionalSecureMemory, IntegrityError
from repro.system.timing import TraceSimulator, SimResult
from repro.system.factory import build_simulator, run_benchmark, run_trace

__all__ = [
    "SystemConfig",
    "FunctionalSecureMemory",
    "IntegrityError",
    "TraceSimulator",
    "SimResult",
    "build_simulator",
    "run_benchmark",
    "run_trace",
]
