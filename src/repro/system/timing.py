"""Trace-driven cycle-level simulation of the six evaluated schemes.

The simulator walks a :class:`~repro.workloads.trace.MemoryTrace` and
advances a core-cycle clock:

* non-memory instructions retire at the profile's base IPC;
* loads probe the L1/L2/L3 hierarchy; NVM reads (plus counter/MAC
  metadata fetches) stall the core, damped by a memory-level-parallelism
  factor (decryption and integrity verification overlap use, per §VI);
* stores follow the scheme's persist path:

  - ``secure_wb`` — write-back caches; dirty LLC evictions produce
    unordered tuple writes and *sequential* BMT updates at the MC;
  - ``unordered``/``sp``/``pipeline`` — write-through: every persistent
    store allocates a WPQ slot (stalling when full) and submits a BMT
    update to its scheme's scoreboard;
  - ``o3``/``coalescing`` — write-back within an epoch; the epoch
    boundary flushes the epoch's unique dirty blocks as persists through
    the OOO/coalescing scoreboard, gated by the 2-entry ETT.

BMT update timing runs on the scheme's scoreboard, in the engine family
selected by ``SystemConfig.engine``: the skip-ahead event-queue engine
(default) jumps the clock straight to each pending completion event,
while the per-cycle ``"stepped"`` reference burns every cycle and acts
as the validation oracle — both are bit-identical by construction (see
:mod:`repro.core.schedulers` and :mod:`repro.core.stepped`).

The result reports total cycles, IPC, and persists-per-kilo-instruction
(Table V's PPKI metric).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.schedulers import OccupancyRing, make_scoreboard
from repro.core.schemes import UpdateScheme
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.metadata_cache import MetadataCaches
from repro.mem.nvm import NVMModel
from repro.persistency.epochs import Epoch, EpochTracker
from repro.sim.stats import StatsRegistry
from repro.system.config import SystemConfig
from repro.telemetry.bus import Telemetry
from repro.telemetry.events import EventKind
from repro.workloads.trace import KIND_LOAD, KIND_SFENCE, MemoryTrace


@dataclass
class SimResult:
    """Outcome of one trace simulation."""

    scheme: str
    trace_name: str
    cycles: int
    instructions: int
    persists: int
    node_updates: int
    bmt_cache_misses: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def ppki(self) -> float:
        """Persists per kilo-instruction (Table V metric)."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.persists / self.instructions

    def slowdown_vs(self, baseline: "SimResult") -> float:
        """Execution-time ratio against a baseline run of the same trace."""
        if baseline.instructions != self.instructions:
            raise ValueError("slowdown comparison requires identical traces")
        return self.cycles / baseline.cycles


def merge_results(partials: List["SimResult"]) -> "SimResult":
    """Merge per-shard partial :class:`SimResult`\\ s into the whole-run one.

    Every top-level field of a partial is a *delta* over its shard
    (cycles are the integer-truncated end-cycle difference between
    consecutive shard boundaries, so they telescope; the counter stats
    are flat per-shard differences), which makes the merge exact: sums
    of deltas reproduce the unsharded integers bit for bit.  The sharded
    runner's differential check (``bench_perf``/tests) asserts exactly
    that against a direct run for every scheme.
    """
    if not partials:
        raise ValueError("merge_results needs at least one partial result")
    first = partials[0]
    for other in partials[1:]:
        if other.scheme != first.scheme or other.trace_name != first.trace_name:
            raise ValueError(
                "cannot merge results from different schemes or traces: "
                f"{first.scheme}/{first.trace_name} vs {other.scheme}/{other.trace_name}"
            )
    from repro.sim.stats import merge_stat_dicts

    return SimResult(
        scheme=first.scheme,
        trace_name=first.trace_name,
        cycles=max(sum(p.cycles for p in partials), 1),
        instructions=sum(p.instructions for p in partials),
        persists=sum(p.persists for p in partials),
        node_updates=sum(p.node_updates for p in partials),
        bmt_cache_misses=sum(p.bmt_cache_misses for p in partials),
        stats=merge_stat_dicts([p.stats for p in partials]),
    )


def _source_name_len(source) -> Tuple[str, int]:
    """Name and op count of a chunk source (TraceReader or MemoryTrace)."""
    if hasattr(source, "summary"):
        summary = source.summary()
        return summary.name, summary.record_count
    return source.name, len(source)


def _source_chunks(source, segment_ops: Optional[int]):
    """Chunk iterator of a source, honoring an explicit chunk size.

    On-disk readers chunk at the segment boundaries baked into the v2
    file; only in-memory traces accept a chunk-size override.
    """
    if segment_ops is not None and isinstance(source, MemoryTrace):
        return source.chunks(segment_ops)
    return source.chunks()


class _WriteCombiner:
    """WPQ write-combining: merges back-to-back writes to one block.

    The WPQ holds tens of entries; a persist whose counter or MAC block
    was written moments ago merges into the pending entry instead of
    issuing a second NVM write.
    """

    __slots__ = ("capacity", "_recent")

    def __init__(self, capacity: int = 16) -> None:
        self.capacity = capacity
        self._recent: "OrderedDict[Tuple[str, int], None]" = OrderedDict()

    def absorbs(self, kind: str, block: int) -> bool:
        """True if this write merges with a recent one (no NVM traffic)."""
        key = (kind, block)
        if key in self._recent:
            self._recent.move_to_end(key)
            return True
        self._recent[key] = None
        if len(self._recent) > self.capacity:
            self._recent.popitem(last=False)
        return False


@dataclass
class _WindowSnapshot:
    """Counter values at the start of the measured window."""

    cycles: float = 0.0
    instructions: int = 0
    persists: int = 0
    node_updates: int = 0
    bmt_misses: int = 0


class TraceSimulator:
    """Cycle-level model configured by a :class:`SystemConfig`."""

    __slots__ = (
        "config",
        "scheme",
        "geometry",
        "stats",
        "hierarchy",
        "metadata",
        "nvm",
        "wpq_ring",
        "scoreboard",
        "epochs",
        "telemetry",
        "_combiner",
        "_num_leaves",
        "_blocks_per_counter_block",
        "_protect_stack",
        "_write_through",
        "_dirty_window",
        "_dirty_window_capacity",
        "_in_warmup",
        "_ticks",
        "_clock_base",
        "_clock_ticks0",
        "_cpi",
        "_next_persist_id",
        "_persist_count",
        "_last_completion",
        "_wpq_stall",
        "_load_stall",
        "_flush_stall",
        "_extra_persist_writes",
    )

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.scheme = config.scheme
        self.geometry = config.geometry()
        self.stats = StatsRegistry()
        # Telemetry observes timing; it never feeds back into it, so
        # SimResults are bit-identical with the bus on or off.
        self.telemetry = (
            Telemetry(config.telemetry) if config.telemetry.enabled else None
        )
        if self.telemetry is not None:
            self.telemetry.clock = self._clock_int
        if config.engine == "batched":
            # The batched engine replays all replacement state in its
            # functional prepass (repro.sim.batched) and never touches a
            # live hierarchy; skip allocating the per-set LRU structures
            # but register the stat counters in construction order so
            # ``stats.as_dict()`` carries the same keys either way.
            self.hierarchy = None
            for level in ("l1", "l2", "l3"):
                for suffix in ("hits", "misses", "evictions", "dirty_evictions"):
                    self.stats.counter(f"{level}.{suffix}")
        else:
            self.hierarchy = CacheHierarchy(
                l1_bytes=config.l1_bytes,
                l2_bytes=config.l2_bytes,
                l3_bytes=config.l3_bytes,
                l1_assoc=config.l1_assoc,
                l2_assoc=config.l2_assoc,
                l3_assoc=config.l3_assoc,
                write_through=self.scheme.write_through,
                stats=self.stats,
            )
        self.metadata = MetadataCaches(
            self.geometry,
            counter_bytes=config.counter_cache_bytes,
            mac_bytes=config.mac_cache_bytes,
            bmt_bytes=config.bmt_cache_bytes,
            assoc=config.metadata_assoc,
            ideal=config.ideal_metadata,
            blocks_per_counter_block=config.blocks_per_counter_block,
            stats=self.stats,
            telemetry=self.telemetry,
        )
        self.nvm = NVMModel(config.nvm, stats=self.stats)
        self.wpq_ring = OccupancyRing(config.wpq_entries)
        self.scoreboard = make_scoreboard(
            self.scheme,
            self.geometry,
            mac_latency=config.mac_latency,
            bmt_miss_latency=config.nvm.read_latency,
            metadata=self.metadata,
            ett_capacity=config.ett_entries,
            wpq_ring=self.wpq_ring if self.scheme.uses_epochs else None,
            telemetry=self.telemetry,
            engine=config.engine,
            triad_levels=config.triad_persist_levels,
        )
        # NVM writes issued per persist beyond the data/counter/MAC
        # tuple: the tree nodes (or shadow entries) each zoo scheme
        # pushes into the persistence domain.  sgx_sp writes its whole
        # path; triad_nvm its lowest N levels; phoenix every counter
        # leaf; anubis one shadow-table entry; all others none.
        scheme = self.scheme
        if scheme.persists_whole_path:
            self._extra_persist_writes = self.geometry.levels - 1
        elif scheme is UpdateScheme.TRIAD_NVM:
            self._extra_persist_writes = min(
                config.triad_persist_levels, self.geometry.levels
            )
        elif scheme in (UpdateScheme.PHOENIX, UpdateScheme.ANUBIS):
            self._extra_persist_writes = 1
        else:
            self._extra_persist_writes = 0
        self.epochs = (
            EpochTracker(config.epoch_size) if self.scheme.uses_epochs else None
        )
        self._combiner = _WriteCombiner()
        self._num_leaves = self.geometry.num_leaves
        self._blocks_per_counter_block = config.blocks_per_counter_block
        self._protect_stack = config.protect_stack
        self._write_through = self.scheme.write_through
        self._dirty_window: "OrderedDict[int, None]" = OrderedDict()
        self._dirty_window_capacity = 512
        self._in_warmup = False
        # Prime the residency window with "prehistoric" dirty blocks so
        # the steady-state displacement starts immediately (see
        # _track_dirty); a reserved low region supplies their addresses.
        for i in range(self._dirty_window_capacity):
            self._dirty_window[0x100000 + i * 9] = None
        # The core clock is kept in decomposed form: an integer count of
        # retire ticks since the last stall, plus the float cycle the
        # stall anchored at.  ``_clock() = base + (ticks - ticks0) * cpi``
        # is order-insensitive in the tick count, so the batched engine
        # can bulk-jump over event-free spans and still read the exact
        # same float the scalar loop would have accumulated — even for
        # the non-dyadic CPIs in the SPEC profile table.
        self._ticks = 0
        self._clock_base = 0.0
        self._clock_ticks0 = 0
        self._cpi = 1.0 / config.core_ipc
        self._next_persist_id = 0
        self._persist_count = 0
        self._last_completion = 0
        self._wpq_stall = self.stats.counter("core.wpq_stall_cycles")
        self._load_stall = self.stats.counter("core.load_stall_cycles")
        self._flush_stall = self.stats.counter("core.epoch_flush_cycles")

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, trace: MemoryTrace, warmup_fraction: float = 0.2) -> SimResult:
        """Simulate a trace and report the steady-state window.

        Args:
            trace: The workload.
            warmup_fraction: Leading fraction of the trace simulated to
                warm caches and queues but excluded from the reported
                cycle/instruction counts (the paper measures
                fast-forwarded, warm regions of each benchmark).
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.config.engine == "batched":
            from repro.sim.batched import run_batched

            return run_batched(self, trace, warmup_fraction)
        return self._run_scalar(trace, warmup_fraction)

    def _run_scalar(
        self, trace: MemoryTrace, warmup_fraction: float
    ) -> SimResult:
        boundary = int(len(trace) * warmup_fraction)
        instructions = 0
        window = _WindowSnapshot()
        self._in_warmup = boundary > 0
        # Local bindings: this loop dominates simulation wall-clock.  It
        # walks the trace's packed columns directly — integer kind codes
        # and primitive array values, no per-record object and no enum
        # identity checks.  The clock only needs materializing inside
        # the handlers, so the loop advances the integer tick count.
        protect_stack = self._protect_stack
        load = self._load
        store = self._store
        barrier = self._barrier
        sfence = KIND_SFENCE
        load_kind = KIND_LOAD
        ticks = self._ticks
        index = 0
        for kind, address, gap, persistent in zip(
            trace.kind_codes, trace.addresses, trace.gaps, trace.persistent_flags
        ):
            if index == boundary:
                self._in_warmup = False
                self._ticks = ticks
                window = self._snapshot(instructions)
            index += 1
            instructions += gap + 1
            if kind == sfence:
                self._ticks = ticks + gap
                ticks = self._ticks
                barrier()
            elif kind == load_kind:
                ticks += gap + 1
                self._ticks = ticks
                load(address >> 6)
            else:
                ticks += gap + 1
                self._ticks = ticks
                store(address >> 6, persistent or protect_stack)
        self._ticks = ticks
        self._drain()
        return self._make_result(trace.name, window, instructions)

    def run_stream(
        self, source, warmup_fraction: float = 0.2, segment_ops: Optional[int] = None
    ) -> SimResult:
        """Simulate a chunked trace source without materializing it.

        ``source`` is anything yielding packed column chunks — a
        :class:`~repro.workloads.trace.TraceReader` over an on-disk v2
        trace (the bounded-memory path) or an in-memory
        :class:`MemoryTrace`.  The result is bit-identical to
        ``run(trace, warmup_fraction)`` on the materialized trace for
        every engine; only the memory profile differs: peak RSS is
        O(chunk), the prepass/metadata memos are skipped, and closed
        epochs are counted, not retained.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.epochs is not None:
            self.epochs.retain_closed = False
        if self.config.engine == "batched":
            from repro.sim.stream import run_batched_stream

            return run_batched_stream(self, source, warmup_fraction, segment_ops)
        return self._run_scalar_stream(source, warmup_fraction, segment_ops)

    def _run_scalar_stream(
        self, source, warmup_fraction: float, segment_ops: Optional[int] = None
    ) -> SimResult:
        """The scalar loop of ``_run_scalar``, fed one chunk at a time."""
        name, total = _source_name_len(source)
        boundary = int(total * warmup_fraction)
        instructions = 0
        window = _WindowSnapshot()
        self._in_warmup = boundary > 0
        protect_stack = self._protect_stack
        load = self._load
        store = self._store
        barrier = self._barrier
        sfence = KIND_SFENCE
        load_kind = KIND_LOAD
        ticks = self._ticks
        index = 0
        for chunk in _source_chunks(source, segment_ops):
            for kind, address, gap, persistent in zip(
                chunk.kind_codes, chunk.addresses, chunk.gaps, chunk.persistent_flags
            ):
                if index == boundary:
                    self._in_warmup = False
                    self._ticks = ticks
                    window = self._snapshot(instructions)
                index += 1
                instructions += gap + 1
                if kind == sfence:
                    self._ticks = ticks + gap
                    ticks = self._ticks
                    barrier()
                elif kind == load_kind:
                    ticks += gap + 1
                    self._ticks = ticks
                    load(address >> 6)
                else:
                    ticks += gap + 1
                    self._ticks = ticks
                    store(address >> 6, persistent or protect_stack)
        self._ticks = ticks
        self._drain()
        return self._make_result(name, window, instructions)

    def _make_result(
        self, trace_name: str, window: "_WindowSnapshot", instructions: int
    ) -> SimResult:
        end_cycle = max(self._clock(), float(self._last_completion))
        cycles = int(end_cycle - window.cycles)
        return SimResult(
            scheme=self.scheme.value,
            trace_name=trace_name,
            cycles=max(cycles, 1),
            instructions=instructions - window.instructions,
            persists=self._persist_count - window.persists,
            node_updates=self.scoreboard.node_update_count - window.node_updates,
            bmt_cache_misses=self.scoreboard.bmt_cache_misses - window.bmt_misses,
            stats=self.stats.as_dict(),
        )

    # ------------------------------------------------------------------
    # the decomposed core clock
    # ------------------------------------------------------------------

    def _clock(self) -> float:
        """Current core cycle (float), derived from the tick count."""
        return self._clock_base + (self._ticks - self._clock_ticks0) * self._cpi

    def _clock_int(self) -> int:
        return int(self._clock_base + (self._ticks - self._clock_ticks0) * self._cpi)

    def _anchor(self, cycle: float) -> None:
        """Re-anchor the clock at ``cycle`` (a stall landed there)."""
        self._clock_base = cycle
        self._clock_ticks0 = self._ticks

    def _snapshot(self, instructions: int) -> "_WindowSnapshot":
        return _WindowSnapshot(
            cycles=self._clock(),
            instructions=instructions,
            persists=self._persist_count,
            node_updates=self.scoreboard.node_update_count,
            bmt_misses=self.scoreboard.bmt_cache_misses,
        )

    # ------------------------------------------------------------------
    # loads
    # ------------------------------------------------------------------

    def _load(self, block: int) -> None:
        result = self.hierarchy.access(block, is_write=False)
        self._load_timed(block, result.writebacks, result.memory_access)

    def _load_timed(
        self, block: int, writebacks: Tuple[int, ...], memory_access: bool
    ) -> None:
        """Timed half of a load: writebacks, fill and verification stall.

        Shared verbatim between the scalar loop (fed by the live
        hierarchy) and the batched engine (fed by prepass events), so
        both compute identical stalls.
        """
        for victim in writebacks:
            self._handle_writeback(victim)
        if not memory_access:
            return
        now_f = self._clock()
        now = int(now_f)
        done = self.nvm.read(now)
        # Counter and MAC must be on-chip to decrypt/verify the fill.
        if not self.metadata.access_counter(block, is_write=False):
            done = max(done, self.nvm.read(now))
        if not self.metadata.access_mac(block, is_write=False):
            done = max(done, self.nvm.read(now))
        # The fill is integrity-verified up the BMT; verification is
        # overlapped with use (§VI) so it adds no latency, but its node
        # reads occupy — and pollute — the BMT cache.
        access_bmt = self.metadata.access_bmt_node
        for label in self.geometry.path_tuple(self._leaf_of(block)):
            if access_bmt(label, is_write=False):
                break  # verification stops at the first trusted cached node
        # The fill's demand verification queues behind in-flight BMT
        # updates (bounded: demand requests are prioritized after at most
        # one full update path) — the effect that lets the PLP schemes
        # match or beat secure_WB on eviction-heavy workloads like milc.
        backlog_cap = now + self.config.mac_latency * self.geometry.levels
        done = max(done, min(self.scoreboard.engine_busy_until(), backlog_cap))
        stall = (done - now) / self.config.load_mlp
        self._load_stall.add(int(stall))
        self._anchor(now_f + stall)

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------

    def _store(self, block: int, persistent: bool) -> None:
        result = self.hierarchy.access(block, is_write=True)
        for victim in result.writebacks:
            self._handle_writeback(victim)
        if result.memory_access:
            self._allocate_stall()
        if not self._write_through:
            self._track_dirty(block)
        if not persistent:
            return
        if self.scheme is UpdateScheme.SECURE_WB:
            return  # persists happen on natural write-backs
        if self.epochs is not None:  # epoch persistency (o3 / coalescing)
            closed = self.epochs.record_store(block)
            if closed is not None:
                self._flush_epoch(closed)
            return
        self._persist_store(block)

    def _allocate_stall(self) -> None:
        """Write-allocate fetch stall for a store that missed the LLC."""
        now_f = self._clock()
        now = int(now_f)
        done = self.nvm.read(now)
        stall = (done - now) / self.config.load_mlp
        self._load_stall.add(int(stall))
        self._anchor(now_f + stall)

    def _track_dirty(self, block: int) -> None:
        """Steady-state dirty residency for write-back schemes.

        The paper measures warm 100 M-instruction regions in which the
        LLC already brims with old dirty data, so each newly dirtied
        block eventually displaces an old one.  Short synthetic traces
        never fill a 4 MB LLC; this bounded residency window models the
        displacement: the block dirtied longest ago (without reuse) is
        written back.
        """
        window = self._dirty_window
        if block in window:
            window.move_to_end(block)
            return
        window[block] = None
        if len(window) > self._dirty_window_capacity:
            victim, _ = window.popitem(last=False)
            self.hierarchy.clean_block(victim)
            # Warm-up displacements only maintain window state — their
            # writebacks belong to the unmeasured prehistory.
            if not self._in_warmup:
                self._handle_writeback(victim)

    def _persist_store(self, block: int) -> None:
        """Write-through persist (unordered / sp / pipeline)."""
        now = int(self._clock())
        admit = self.wpq_ring.admit(now)
        if admit > now:
            self._wpq_stall.add(admit - now)
            self._anchor(float(admit))
            arrival = admit
        else:
            arrival = now
        arrival = self._metadata_update(block, arrival)
        persist_id = self._next_persist_id
        timing = self.scoreboard.submit(persist_id, self._leaf_of(block), arrival)
        self._next_persist_id += 1
        self._persist_count += 1
        self._last_completion = max(self._last_completion, timing.completion)
        self.wpq_ring.occupy(timing.completion)
        tel = self.telemetry
        if tel is not None:
            tel.instant(
                EventKind.WPQ_ENQUEUE, arrival, "wpq", ident=persist_id,
                args={"block": block},
            )
            tel.instant(
                EventKind.WPQ_RELEASE, timing.completion, "wpq", ident=persist_id
            )
            tel.sample(
                "wpq.occupancy", arrival, self.wpq_ring.occupancy(arrival)
            )
        # Tuple writes drain to NVM in the background (bandwidth).
        self._tuple_writes(block, arrival)
        # Extra per-persist metadata writes (SGX whole path, Triad-NVM
        # persisted frontier, Phoenix leaf, Anubis shadow entry).
        for _ in range(self._extra_persist_writes):
            self.nvm.write(arrival)


    def _leaf_of(self, block: int) -> int:
        """Map a block's counter block to a BMT leaf (folding large
        traces into the configured memory size)."""
        return (
            block // self._blocks_per_counter_block
        ) % self._num_leaves

    def _tuple_writes(self, block: int, when: int) -> None:
        """Issue the persist's NVM writes, with WPQ write-combining."""
        if not self._combiner.absorbs("data", block):
            self.nvm.write(when)
        if not self._combiner.absorbs("ctr", self.metadata.counter_block_of(block)):
            self.nvm.write(when)
        if not self._combiner.absorbs("mac", block >> 3):
            self.nvm.write(when)

    def _metadata_update(self, block: int, arrival: int) -> int:
        """Counter and MAC updates for a persist; misses delay it."""
        if not self.metadata.access_counter(block, is_write=True):
            arrival = self.nvm.read(arrival)
        if not self.metadata.access_mac(block, is_write=True):
            arrival = max(arrival, self.nvm.read(arrival))
        return arrival

    # ------------------------------------------------------------------
    # epoch persistency
    # ------------------------------------------------------------------

    def _barrier(self) -> None:
        if self.epochs is None:
            return
        closed = self.epochs.barrier()
        if closed is not None:
            self._flush_epoch(closed)

    def _flush_epoch(self, epoch: Epoch) -> None:
        """Flush an epoch's unique dirty blocks as persists."""
        for block in epoch.dirty_blocks:  # first-store order
            self.hierarchy.clean_block(block)
            self._dirty_window.pop(block, None)  # persisted: now clean
        self._flush_timed(tuple(epoch.dirty_blocks))

    def _flush_timed(self, blocks: Tuple[int, ...]) -> None:
        """Timed half of an epoch flush (shared with the batched engine).

        The functional half — cleaning the flushed blocks out of the
        hierarchy and the dirty-residency window — happens before this
        is called; it never touches the clock, so splitting it off
        preserves the scalar path's arithmetic exactly.
        """
        now = int(self._clock())
        persists: List[Tuple[int, int]] = []
        arrival = now
        for block in blocks:  # first-store order
            arrival = self._metadata_update(block, arrival)
            self._tuple_writes(block, now)
            persists.append((self._next_persist_id, self._leaf_of(block)))
            self._next_persist_id += 1
        if not persists:
            return
        tel = self.telemetry
        if tel is not None:
            for persist_id, _ in persists:
                tel.instant(
                    EventKind.WPQ_ENQUEUE, arrival, "wpq", ident=persist_id
                )
            tel.sample("wpq.occupancy", arrival, self.wpq_ring.occupancy(arrival))
        timings = self.scoreboard.submit_epoch(persists, arrival)
        self._persist_count += len(persists)
        for timing in timings:
            self._last_completion = max(self._last_completion, timing.completion)
            if tel is not None:
                tel.instant(
                    EventKind.WPQ_RELEASE,
                    timing.completion,
                    "wpq",
                    ident=timing.persist_id,
                )
        # The core stalls while flush issue waits for WPQ slots / the ETT.
        issue_done = self.scoreboard.last_issue_time
        now_f = self._clock()
        if issue_done > now_f:
            self._flush_stall.add(int(issue_done - now_f))
            self._anchor(float(issue_done))

    # ------------------------------------------------------------------
    # write-backs (secure_wb background persists; EP stack spills)
    # ------------------------------------------------------------------

    def _handle_writeback(self, block: int) -> None:
        now = int(self._clock())
        arrival = self._metadata_update(block, now)
        self._tuple_writes(block, now)
        if self.scheme is not UpdateScheme.SECURE_WB:
            return
        # secure_WB performs sequential BMT updates for evicted blocks;
        # the WPQ gates how far the core can run ahead of the engine.
        admit = self.wpq_ring.admit(now)
        if admit > now:
            self._wpq_stall.add(admit - now)
            self._anchor(float(admit))
            arrival = max(arrival, admit)
        persist_id = self._next_persist_id
        timing = self.scoreboard.submit(persist_id, self._leaf_of(block), arrival)
        self._next_persist_id += 1
        self._persist_count += 1
        self._last_completion = max(self._last_completion, timing.completion)
        self.wpq_ring.occupy(timing.completion)
        tel = self.telemetry
        if tel is not None:
            tel.instant(
                EventKind.WPQ_ENQUEUE, arrival, "wpq", ident=persist_id,
                args={"block": block, "writeback": True},
            )
            tel.instant(
                EventKind.WPQ_RELEASE, timing.completion, "wpq", ident=persist_id
            )
            tel.sample(
                "wpq.occupancy", arrival, self.wpq_ring.occupancy(arrival)
            )

    # ------------------------------------------------------------------
    # end of trace
    # ------------------------------------------------------------------

    def _drain(self) -> None:
        if self.epochs is not None:
            closed = self.epochs.flush()
            if closed is not None:
                self._flush_epoch(closed)
