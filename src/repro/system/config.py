"""System configuration (paper Table III defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry
from repro.mem.nvm import NVMConfig
from repro.telemetry.config import TelemetryConfig

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

BLOCK_BYTES = 64
PAGE_BYTES = 4096

_GEOMETRY_CACHE: dict = {}


def _shared_geometry(num_leaves: int, arity: int, min_levels: int) -> BMTGeometry:
    key = (num_leaves, arity, min_levels)
    geometry = _GEOMETRY_CACHE.get(key)
    if geometry is None:
        geometry = BMTGeometry(num_leaves=num_leaves, arity=arity, min_levels=min_levels)
        _GEOMETRY_CACHE[key] = geometry
    return geometry


@dataclass
class SystemConfig:
    """Full-system parameters.

    Defaults reproduce Table III: 4 GHz OOO core, 64 KB L1 / 512 KB L2 /
    4 MB L3, 32-entry WPQ, 128 KB counter/MAC/BMT caches, 9-level BMT,
    40-cycle MAC latency, 8 GB PCM, epoch size 32, 64-entry PTT,
    2-entry ETT.
    """

    scheme: UpdateScheme = UpdateScheme.SP

    # Core.
    clock_ghz: float = 4.0
    core_ipc: float = 2.0
    load_mlp: float = 4.0

    # Data caches.
    l1_bytes: int = 64 * KB
    l2_bytes: int = 512 * KB
    l3_bytes: int = 4 * MB
    l1_assoc: int = 8
    l2_assoc: int = 16
    l3_assoc: int = 32

    # Memory controller / WPQ.
    wpq_entries: int = 32

    # Metadata caches.
    counter_cache_bytes: int = 128 * KB
    mac_cache_bytes: int = 128 * KB
    bmt_cache_bytes: int = 128 * KB
    metadata_assoc: int = 8
    ideal_metadata: bool = False

    # Security engine.
    mac_latency: int = 40
    bmt_arity: int = 8
    bmt_min_levels: int = 9
    triad_persist_levels: int = 2
    """Tree levels (leaf upward) persisted per store by ``triad_nvm``
    (Triad-NVM's N; the paper evaluates N = 1, 2, 4).  Higher N slows
    every persist but shrinks the post-crash rebuild frontier."""
    counter_organization: str = "split"
    """``"split"`` (per-page major + 64 minor counters, 1.56 % storage
    overhead) or ``"monolithic"`` (64-bit per block, 12.5 % overhead,
    SGX-style).  Affects counter-cache reach and BMT leaf count."""

    # Memory.
    memory_bytes: int = 8 * GB
    nvm: NVMConfig = field(default_factory=NVMConfig)

    # Persistency.
    epoch_size: int = 32
    ptt_entries: int = 64
    ett_entries: int = 2
    protect_stack: bool = False
    """``True`` models the paper's '_full' configurations where every
    store (including the stack) is persistent."""

    # Observability.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    """Structured event tracing / occupancy gauges (off by default).
    Never affects simulation results and is excluded from result-cache
    keys, so toggling it cannot invalidate or fork cached sweeps."""

    # Timing engine.
    engine: str = "batched"
    """Timing-engine family: ``"batched"`` (array-native independence
    runs over the packed trace columns, the default), ``"skip_ahead"``
    (the scalar event-queue engine), or ``"stepped"`` (the per-cycle
    reference oracle).  All three produce bit-identical ``SimResult``s
    and telemetry streams — skip_ahead validates the batched partition,
    stepped validates the skip-ahead arithmetic — so, like
    ``telemetry``, this knob is excluded from result-cache keys."""

    def __post_init__(self) -> None:
        if self.engine not in ("batched", "skip_ahead", "stepped"):
            raise ValueError(
                "engine must be 'batched', 'skip_ahead' or 'stepped', "
                f"got {self.engine!r}"
            )
        if self.mac_latency < 0:
            raise ValueError("mac_latency must be non-negative")
        # Degenerate capacities used to slip through silently and blow
        # up far from the constructor (epoch_size=0 reaches a
        # mod-by-zero in sweep/shard.plan_shards and corrupts epoch
        # accounting; wpq_entries=0 cannot admit any persist).
        for name in (
            "epoch_size",
            "wpq_entries",
            "ptt_entries",
            "ett_entries",
            "bmt_arity",
            "triad_persist_levels",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.memory_bytes % PAGE_BYTES:
            raise ValueError("memory size must be page aligned")
        if self.counter_organization not in ("split", "monolithic"):
            raise ValueError(
                "counter_organization must be 'split' or 'monolithic'"
            )

    @property
    def num_pages(self) -> int:
        return self.memory_bytes // PAGE_BYTES

    @property
    def num_blocks(self) -> int:
        return self.memory_bytes // BLOCK_BYTES

    @property
    def blocks_per_counter_block(self) -> int:
        """Data blocks covered by one 64 B counter block."""
        return 64 if self.counter_organization == "split" else 8

    @property
    def leaves_per_page(self) -> int:
        """BMT leaves (counter blocks) covering one 4 KB page: 1 under
        the split organization, 8 under monolithic."""
        return (PAGE_BYTES // BLOCK_BYTES) // self.blocks_per_counter_block

    @property
    def counter_storage_overhead(self) -> float:
        """Counter storage as a fraction of protected memory (§II:
        1.56 % split vs 12.5 % monolithic)."""
        return BLOCK_BYTES / (self.blocks_per_counter_block * BLOCK_BYTES)

    def geometry(self) -> BMTGeometry:
        """The BMT over this memory's counter blocks.

        Geometries are immutable, so identical shapes are shared
        process-wide; sharing also shares the label-arithmetic memo
        caches across every simulator in a sweep.
        """
        return _shared_geometry(
            self.num_blocks // self.blocks_per_counter_block,
            self.bmt_arity,
            self.bmt_min_levels,
        )

    def with_scheme(self, scheme: UpdateScheme) -> "SystemConfig":
        """Copy with a different update scheme (benchmark sweeps)."""
        return replace(self, scheme=scheme)

    def variant(self, **changes) -> "SystemConfig":
        """Copy with arbitrary field overrides."""
        return replace(self, **changes)
