"""Byte-accurate functional model of a crash-recoverable secure NVMM.

This is the correctness half of the reproduction.  Every persistent
store runs the full pipeline — split-counter increment, counter-mode
encryption, stateful MAC, BMT update path — and lands its memory tuple
``(C, γ, M, R)`` in a persist journal that models the WPQ's two-step
persist.  A :meth:`crash` applies the journal to the NVM image (with
optional fault injection), and :meth:`recover` replays the paper's
recovery procedure.

Two compliance modes:

* ``atomic_tuples=True`` (default) — 2SP semantics: a persist whose
  tuple was only partially durable at the crash is invalidated wholesale
  (along with every younger ordered persist), so recovery always
  verifies.  This is the behaviour the paper's invariants guarantee.
* ``atomic_tuples=False`` — the broken strawman: tuple items drain
  independently, so injected drops and reorderings surface exactly the
  Table I/II failure outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.bmt import BMTGeometry, BonsaiMerkleTree
from repro.crypto.counters import MINOR_COUNTER_MAX, CounterStore, SplitCounter
from repro.crypto.encryption import CounterModeEncryptor
from repro.crypto.keys import KeySchedule
from repro.crypto.mac import StatefulMAC
from repro.crypto.primitives import BLOCK_SIZE
from repro.mem.wpq import TupleItem
from repro.persistency.models import PersistencyModel
from repro.recovery.checker import RecoveryChecker, RecoveryReport
from repro.recovery.crash import CrashInjector
from repro.recovery.tuple_state import DurableRoot, NVMImage

BLOCKS_PER_PAGE = 64


class IntegrityError(RuntimeError):
    """Raised when a load fails MAC or BMT verification."""


@dataclass
class PersistRecord:
    """One persist's journaled memory tuple."""

    persist_id: int
    epoch_id: int
    block: int
    plaintext: bytes
    ciphertext: bytes
    page: int
    counter_block: bytes
    mac: bytes
    root_after: bytes


class FunctionalSecureMemory:
    """A functional secure persistent memory with crash semantics."""

    def __init__(
        self,
        num_pages: int = 4096,
        persistency: PersistencyModel = PersistencyModel.STRICT,
        epoch_size: Optional[int] = 32,
        atomic_tuples: bool = True,
        keys: Optional[KeySchedule] = None,
        geometry: Optional[BMTGeometry] = None,
    ) -> None:
        self.persistency = persistency
        self.epoch_size = epoch_size
        self.atomic_tuples = atomic_tuples
        self.keys = keys or KeySchedule()
        self.geometry = geometry or BMTGeometry(num_pages, arity=8)
        if self.geometry.num_leaves < num_pages:
            raise ValueError("geometry too small for the requested pages")
        self.num_pages = num_pages

        self._encryptor = CounterModeEncryptor(self.keys)
        self._mac = StatefulMAC(self.keys)
        self._counters = CounterStore(num_pages)
        self._bmt = BonsaiMerkleTree(self.geometry, self.keys)

        self.nvm = NVMImage()
        self.durable_root = DurableRoot()
        self.durable_root.commit(self._bmt.root)

        # Volatile state lost at a crash.
        self._volatile_data: Dict[int, bytes] = {}
        self._journal: List[PersistRecord] = []
        self._epoch_dirty: Dict[int, bytes] = {}  # block -> plaintext
        self._epoch_store_count = 0
        self._next_persist_id = 0
        self._current_epoch = 0
        # Expected durable plaintexts, per commit point.
        self._committed: Dict[int, bytes] = {}
        self._epoch_committed: Dict[int, bytes] = {}
        self.crashed = False

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _block_of(address: int) -> int:
        return address >> 6

    def _check_address(self, address: int) -> None:
        if address % BLOCK_SIZE:
            raise ValueError("accesses must be 64-byte aligned")
        if not 0 <= address < self.num_pages * BLOCKS_PER_PAGE * BLOCK_SIZE:
            raise IndexError(f"address out of range: {address:#x}")

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------

    def store(self, address: int, plaintext: bytes, persistent: bool = True) -> Optional[int]:
        """Store one 64 B block.

        Args:
            address: 64-byte-aligned address.
            plaintext: Exactly 64 bytes.
            persistent: Non-persistent (e.g. stack) stores stay volatile.

        Returns:
            The persist ID under strict persistency, else ``None`` (EP
            persists materialize at the epoch boundary).
        """
        self._check_live()
        self._check_address(address)
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError("stores are 64-byte blocks")
        block = self._block_of(address)
        self._volatile_data[block] = bytes(plaintext)
        if not persistent:
            return None
        if self.persistency is PersistencyModel.STRICT:
            return self._persist_block(block, bytes(plaintext), epoch_id=0)
        if self.persistency is PersistencyModel.EPOCH:
            self._epoch_dirty[block] = bytes(plaintext)
            self._epoch_store_count += 1
            # Epoch size is measured in stores (Table III), not unique
            # blocks — the same-block collapse is what EP exploits.
            if (
                self.epoch_size is not None
                and self._epoch_store_count >= self.epoch_size
            ):
                self.barrier()
            return None
        return None  # PersistencyModel.NONE: volatile until eviction (not modelled)

    def barrier(self) -> List[int]:
        """Close the current epoch, persisting its dirty blocks (``sfence``).

        Returns:
            Persist IDs issued at this boundary.
        """
        self._check_live()
        if self.persistency is not PersistencyModel.EPOCH:
            return []
        ids = []
        for block, plaintext in self._epoch_dirty.items():
            ids.append(self._persist_block(block, plaintext, self._current_epoch))
        self._epoch_dirty.clear()
        self._epoch_store_count = 0
        if ids:
            self._current_epoch += 1
            # The epoch boundary is the recovery commit point under EP.
            self._epoch_committed = dict(self._committed)
        return ids

    def _persist_block(self, block: int, plaintext: bytes, epoch_id: int) -> int:
        page, block_in_page = block >> 6, block & (BLOCKS_PER_PAGE - 1)
        counter = self._counters.page(page)
        # A minor-counter overflow resets every minor counter in the
        # page: all sibling blocks' pads change, so the whole page must
        # be re-encrypted (the split-counter cost noted in §II).
        neighbors: List[Tuple[int, bytes]] = []
        if counter.minors[block_in_page] == MINOR_COUNTER_MAX:
            neighbors = self._page_plaintexts(page, exclude=block)
        self._counters.increment(page, block_in_page)
        persist_id = self._journal_tuple(block, plaintext, epoch_id, counter)
        for neighbor_block, neighbor_plain in neighbors:
            self._journal_tuple(neighbor_block, neighbor_plain, epoch_id, counter)
        return persist_id

    def _journal_tuple(
        self, block: int, plaintext: bytes, epoch_id: int, counter: SplitCounter
    ) -> int:
        """Encrypt, MAC, update the BMT, and journal one block's tuple."""
        page, block_in_page = block >> 6, block & (BLOCKS_PER_PAGE - 1)
        seed = counter.seed(block_in_page)
        address = block << 6
        ciphertext = self._encryptor.encrypt(plaintext, address, seed)
        mac = self._mac.compute(ciphertext, address, seed)
        counter_bytes = counter.to_bytes()
        self._bmt.update_leaf(page, counter_bytes)
        record = PersistRecord(
            persist_id=self._next_persist_id,
            epoch_id=epoch_id,
            block=block,
            plaintext=plaintext,
            ciphertext=ciphertext,
            page=page,
            counter_block=counter_bytes,
            mac=mac,
            root_after=self._bmt.root,
        )
        self._next_persist_id += 1
        self._journal.append(record)
        self._committed[block] = plaintext
        return record.persist_id

    def _page_plaintexts(self, page: int, exclude: int) -> List[Tuple[int, bytes]]:
        """Plaintexts of the page's other written blocks (for the page
        re-encryption forced by a minor-counter overflow)."""
        out: List[Tuple[int, bytes]] = []
        first = page * BLOCKS_PER_PAGE
        for block in range(first, first + BLOCKS_PER_PAGE):
            if block == exclude:
                continue
            if block in self._volatile_data:
                out.append((block, self._volatile_data[block]))
            elif block in self.nvm.data:
                out.append((block, self._load_from_nvm(block, verify=False)))
        return out

    # ------------------------------------------------------------------
    # loads
    # ------------------------------------------------------------------

    def load(self, address: int, verify: bool = True) -> bytes:
        """Load one 64 B block, decrypting and verifying on an NVM read."""
        self._check_live()
        self._check_address(address)
        block = self._block_of(address)
        cached = self._volatile_data.get(block)
        if cached is not None:
            return cached
        return self._load_from_nvm(block, verify)

    def _load_from_nvm(self, block: int, verify: bool) -> bytes:
        if block not in self.nvm.data and block not in self.nvm.macs:
            # Uninitialized memory: MACs are initialized lazily on first
            # write, so never-written blocks read as zero, unverified.
            plaintext = bytes(BLOCK_SIZE)
            self._volatile_data[block] = plaintext
            return plaintext
        page, block_in_page = block >> 6, block & (BLOCKS_PER_PAGE - 1)
        raw_counter = self.nvm.counters.get(page)
        counter = (
            SplitCounter.from_bytes(raw_counter)
            if raw_counter is not None
            else SplitCounter()
        )
        seed = counter.seed(block_in_page)
        address = block << 6
        ciphertext = self.nvm.data.get(block, bytes(BLOCK_SIZE))
        if verify:
            stored_mac = self.nvm.macs.get(block, bytes(8))
            if not self._mac.verify(ciphertext, address, seed, stored_mac):
                raise IntegrityError(f"MAC verification failed for block {block:#x}")
            counter_bytes = (
                raw_counter if raw_counter is not None else SplitCounter().to_bytes()
            )
            if not self._bmt.verify_leaf(page, counter_bytes):
                raise IntegrityError(
                    f"BMT verification failed for counter page {page:#x}"
                )
        plaintext = self._encryptor.decrypt(ciphertext, address, seed)
        self._volatile_data[block] = plaintext
        return plaintext

    # ------------------------------------------------------------------
    # durability: drain, crash, recover
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Flush the persist journal to NVM (normal, crash-free path)."""
        self._check_live()
        for record in self._journal:
            self._apply_record(record)
            self.durable_root.commit(record.root_after)
        self._journal.clear()

    def _apply_record(
        self, record: PersistRecord, skip: Optional[Set[TupleItem]] = None
    ) -> None:
        skip = skip or set()
        if TupleItem.DATA not in skip:
            self.nvm.write_data(record.block, record.ciphertext)
        if TupleItem.COUNTER not in skip:
            self.nvm.write_counter(record.page, record.counter_block)
        if TupleItem.MAC not in skip:
            self.nvm.write_mac(record.block, record.mac)

    def crash(self, injector: Optional[CrashInjector] = None) -> None:
        """Power failure: apply the journal (with faults) and lose SRAM.

        With ``atomic_tuples`` (2SP), a persist with any dropped item is
        invalidated together with every younger persist — the WPQ holds
        them incomplete and discards them.  Without it, surviving items
        drain independently, exposing partial tuples.
        """
        self._check_live()
        injector = injector or CrashInjector()
        journal = self._journal
        if self.atomic_tuples and not injector.empty:
            cutoff = min(
                (r.persist_id for r in journal if injector.dropped_items(r.persist_id)),
                default=None,
            )
            if cutoff is not None:
                dropped = [r for r in journal if r.persist_id >= cutoff]
                journal = [r for r in journal if r.persist_id < cutoff]
                for record in dropped:
                    for expected in (self._committed, self._epoch_committed):
                        expected.pop(record.block, None)
                        # An older committed value may still be durable.
                        for older in journal:
                            if older.block == record.block:
                                expected[record.block] = older.plaintext
        for record in journal:
            drops = injector.dropped_items(record.persist_id)
            self._apply_record(record, skip=drops)
            if TupleItem.ROOT_ACK not in drops:
                self.durable_root.commit(record.root_after)
        self._journal.clear()
        self._volatile_data.clear()
        self._epoch_dirty.clear()
        self._epoch_store_count = 0
        self._bmt = BonsaiMerkleTree(self.geometry, self.keys)
        self._counters = CounterStore(self.num_pages)
        self.crashed = True

    def recover(self, expected: Optional[Dict[int, bytes]] = None) -> RecoveryReport:
        """Run post-crash recovery and verification.

        Args:
            expected: Override the expected durable plaintexts; defaults
                to the persists completed before the crash (strict
                persistency) or the last epoch boundary (epoch
                persistency).

        Returns:
            The recovery report; on success the volatile state is
            rebuilt from the NVM image.
        """
        if expected is None:
            expected = self._expected_durable()
        checker = RecoveryChecker(self.geometry, self.keys)
        report = checker.check(self.nvm, self.durable_root, expected)
        # Rebuild on cryptographic consistency: a vacuous report (nothing
        # was expected durable) with a verifying BMT is a legitimate
        # post-crash state, not a recovery failure.
        if report.recovered or (report.vacuous and report.bmt_ok):
            self._rebuild_volatile()
        return report

    def _expected_durable(self) -> Dict[int, bytes]:
        if self.persistency is PersistencyModel.EPOCH and not self.crashed:
            return dict(self._epoch_committed)
        if self.persistency is PersistencyModel.EPOCH:
            return dict(self._epoch_committed)
        return dict(self._committed)

    def _rebuild_volatile(self) -> None:
        self._bmt.rebuild_from_counters(dict(self.nvm.counters))
        for page, raw in self.nvm.counters.items():
            self._counters.set_page(page, SplitCounter.from_bytes(raw))
        self.crashed = False

    def _check_live(self) -> None:
        if self.crashed:
            raise RuntimeError("system has crashed; call recover() first")

    # ------------------------------------------------------------------
    # introspection (tests, examples)
    # ------------------------------------------------------------------

    @property
    def pending_persists(self) -> int:
        return len(self._journal)

    @property
    def journal(self) -> Tuple[PersistRecord, ...]:
        """Read-only view of the pending persist journal (issue order)."""
        return tuple(self._journal)

    @property
    def committed_state(self) -> Dict[int, bytes]:
        """The plaintexts the crash recovery observer may expect."""
        return self._expected_durable()

    def tamper_data(self, address: int, ciphertext: bytes) -> None:
        """Adversarially overwrite NVM ciphertext (splicing/tamper test)."""
        self.nvm.write_data(self._block_of(address), ciphertext)

    def tamper_counter(self, page: int, counter_block: bytes) -> None:
        """Adversarially overwrite a counter block (replay test)."""
        self.nvm.write_counter(page, counter_block)
