"""Convenience constructors for the benchmark harness and examples."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.core.schemes import UpdateScheme
from repro.system.config import SystemConfig
from repro.system.timing import SimResult, TraceSimulator
from repro.workloads.spec_profiles import SPEC_PROFILES, profile_trace
from repro.workloads.trace import MemoryTrace

SchemeLike = Union[str, UpdateScheme]


def _as_scheme(scheme: SchemeLike) -> UpdateScheme:
    if isinstance(scheme, UpdateScheme):
        return scheme
    return UpdateScheme.from_name(scheme)


def build_simulator(
    scheme: SchemeLike, config: Optional[SystemConfig] = None, **overrides
) -> TraceSimulator:
    """Build a :class:`TraceSimulator` for a scheme.

    Args:
        scheme: Table IV scheme name or enum.
        config: Base configuration (Table III defaults when omitted).
        **overrides: ``SystemConfig`` field overrides.
    """
    base = config or SystemConfig()
    cfg = base.variant(scheme=_as_scheme(scheme), **overrides)
    return TraceSimulator(cfg)


def run_trace(
    trace: MemoryTrace,
    scheme: SchemeLike,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.2,
    **overrides,
) -> SimResult:
    """Simulate one trace under one scheme.

    Args:
        trace: The workload.
        scheme: Table IV scheme name or enum.
        config: Base configuration.
        warmup_fraction: Leading trace fraction excluded from timing
            (the paper measures fast-forwarded, warm regions).
        **overrides: ``SystemConfig`` field overrides.
    """
    simulator = build_simulator(scheme, config, **overrides)
    return simulator.run(trace, warmup_fraction=warmup_fraction)


def run_benchmark(
    name: str,
    schemes: Iterable[SchemeLike],
    kilo_instructions: int = 50,
    config: Optional[SystemConfig] = None,
    seed: int = 2020,
    **overrides,
) -> Dict[str, SimResult]:
    """Run one Table V benchmark under several schemes.

    The profile's calibrated core IPC is applied automatically.

    Returns:
        ``scheme name -> SimResult``.
    """
    profile = SPEC_PROFILES[name]
    trace = profile_trace(name, kilo_instructions, seed)
    results = {}
    for scheme in schemes:
        scheme = _as_scheme(scheme)
        result = run_trace(
            trace, scheme, config, core_ipc=profile.core_ipc, **overrides
        )
        results[scheme.value] = result
    return results
