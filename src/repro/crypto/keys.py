"""Processor key schedule.

The trusted computing base holds one root key inside the processor
boundary and derives separate sub-keys for encryption, MAC generation,
and BMT hashing, so a leak of one derived key does not compromise the
others.  Derivation is a keyed hash of the root key and a role label.
"""

from __future__ import annotations

from repro.crypto.primitives import keyed_hash


class KeySchedule:
    """Derives role-separated keys from a single on-chip root key."""

    def __init__(self, root_key: bytes = b"plp-reproduction-root-key") -> None:
        if not root_key:
            raise ValueError("root key must be non-empty")
        self._root_key = bytes(root_key)

    def _derive(self, role: str) -> bytes:
        return keyed_hash(self._root_key, role.encode("ascii"), digest_size=32)

    @property
    def encryption_key(self) -> bytes:
        """Key for counter-mode pad generation."""
        return self._derive("encrypt")

    @property
    def mac_key(self) -> bytes:
        """Key for per-block stateful MACs."""
        return self._derive("mac")

    @property
    def bmt_key(self) -> bytes:
        """Key for Bonsai Merkle Tree node hashes."""
        return self._derive("bmt")

    def __repr__(self) -> str:
        return "KeySchedule(<root key hidden>)"
