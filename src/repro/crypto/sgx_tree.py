"""Intel SGX-style counter tree (paper §IV-D).

Unlike the BMT, an SGX counter tree node embeds per-child version
counters, and a node's MAC is keyed by *its own counter stored in the
parent*.  Verifying or recomputing any node therefore needs its parent's
counter, chaining all the way to on-chip root counters.

The consequence the paper highlights: to make a persist crash
recoverable, **every node on the leaf-to-root path must persist**, not
just the root.  The memory tuple of Invariant 1 grows from
``(C, γ, M, R)`` to ``(C, γ, M, path...)`` and the persist cost scales
with the tree height.  :mod:`benchmarks.bench_sgx_tree` quantifies this
against the BMT.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.crypto.bmt import BMTGeometry
from repro.crypto.keys import KeySchedule
from repro.crypto.primitives import HASH_SIZE, int_bytes, keyed_hash


class SGXCounterTree:
    """A functional counter tree with parent-keyed node MACs."""

    def __init__(self, geometry: BMTGeometry, keys: KeySchedule) -> None:
        self.geometry = geometry
        self._key = keys.bmt_key
        # counters[label][slot] = version counter of child `slot` of node
        # `label`.  The root's counters are on-chip (label 0 entry).
        self._counters: Dict[int, List[int]] = {}
        self._macs: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _slots(self, label: int) -> List[int]:
        slots = self._counters.get(label)
        if slots is None:
            slots = [0] * self.geometry.arity
            self._counters[label] = slots
        return slots

    def _child_slot(self, child_label: int) -> Tuple[int, int]:
        """Return ``(parent_label, slot_index)`` for a child node."""
        parent = self.geometry.parent(child_label)
        first_child = parent * self.geometry.arity + 1
        return parent, child_label - first_child

    def _node_mac(self, label: int, parent_counter: int) -> bytes:
        """MAC over a node's counters, keyed by its counter in the parent."""
        slots = self._counters.get(label, [0] * self.geometry.arity)
        payload = b"".join(int_bytes(c) for c in slots)
        return keyed_hash(
            self._key,
            b"sgx-node",
            int_bytes(label),
            int_bytes(parent_counter),
            payload,
            digest_size=HASH_SIZE,
        )

    def parent_counter_of(self, label: int) -> int:
        """The freshness counter protecting ``label`` (0 for the root)."""
        if label == self.geometry.ROOT_LABEL:
            return 0
        parent, slot = self._child_slot(label)
        return self._counters.get(parent, [0] * self.geometry.arity)[slot]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def leaf_version(self, leaf_index: int) -> int:
        """Current version counter of a leaf (counter block)."""
        label = self.geometry.leaf_label(leaf_index)
        parent, slot = self._child_slot(label)
        return self._counters.get(parent, [0] * self.geometry.arity)[slot]

    def write(self, leaf_index: int) -> List[int]:
        """Record a write to a leaf, updating the whole path.

        Every node on the path gets one counter incremented and its MAC
        recomputed, so every node on the path becomes dirty and — for
        crash recovery — must persist.

        Returns:
            Labels of the nodes that must persist, ordered leaf-parent
            to root.  (Length = tree levels − 1; contrast with the BMT
            where only the root must persist.)
        """
        label = self.geometry.leaf_label(leaf_index)
        dirty: List[int] = []
        # Walk up: increment the child's slot in each ancestor.
        while label != self.geometry.ROOT_LABEL:
            parent, slot = self._child_slot(label)
            self._slots(parent)[slot] += 1
            dirty.append(parent)
            label = parent
        # Re-MAC every dirtied node, now that all counters are final.
        for node in dirty:
            self._macs[node] = self._node_mac(node, self.parent_counter_of(node))
        return dirty

    def verify_leaf(self, leaf_index: int) -> bool:
        """Verify the chain of node MACs from the leaf's parent to the root.

        The root's counters are trusted (on-chip), so the chain is
        anchored there.
        """
        label = self.geometry.leaf_label(leaf_index)
        node = self.geometry.parent(label)
        while True:
            expected = self._macs.get(node)
            parent_counter = self.parent_counter_of(node)
            if expected is None:
                # A node whose freshness counter in the parent is nonzero
                # was updated at some point; its absence (or a default
                # value) means the update was lost or rolled back.
                if parent_counter != 0:
                    return False
            elif expected != self._node_mac(node, parent_counter):
                return False
            if node == self.geometry.ROOT_LABEL:
                return True
            node = self.geometry.parent(node)

    def tamper_counter(self, label: int, slot: int, value: int) -> None:
        """Overwrite a node counter without re-MACing (attack injection)."""
        self._slots(label)[slot] = value

    def drop_node(self, label: int) -> None:
        """Simulate a node update that failed to persist across a crash."""
        self._counters.pop(label, None)
        self._macs.pop(label, None)

    def snapshot(self) -> Tuple[Dict[int, List[int]], Dict[int, bytes]]:
        return (
            {k: list(v) for k, v in self._counters.items()},
            dict(self._macs),
        )

    def restore(self, snapshot: Tuple[Dict[int, List[int]], Dict[int, bytes]]) -> None:
        counters, macs = snapshot
        self._counters = {k: list(v) for k, v in counters.items()}
        self._macs = dict(macs)

    def persist_cost_per_write(self) -> int:
        """Nodes that must persist per write (levels − 1, vs 1 for BMT)."""
        return self.geometry.levels - 1
