"""Stateful MACs over (ciphertext, address, counter).

A stateful MAC binds the data block to its address (anti-splicing) and
its counter (anti-replay): modifying any input, or the MAC itself, is
detectable.  Because the counter carries freshness, the Bonsai Merkle
Tree only needs to cover counters, not data — the key observation behind
BMT (Rogers et al., MICRO 2007) that this paper builds on.
"""

from __future__ import annotations

from repro.crypto.keys import KeySchedule
from repro.crypto.primitives import HASH_SIZE, int_bytes, keyed_hash


class StatefulMAC:
    """Computes and verifies 64-bit stateful MACs."""

    def __init__(self, keys: KeySchedule) -> None:
        self._key = keys.mac_key

    def compute(self, ciphertext: bytes, address: int, counter_seed: bytes) -> bytes:
        """MAC one block.

        Args:
            ciphertext: The encrypted block contents.
            address: Block-aligned physical address.
            counter_seed: Serialized block counter.

        Returns:
            ``HASH_SIZE`` (8) bytes.
        """
        return keyed_hash(
            self._key,
            ciphertext,
            int_bytes(address),
            counter_seed,
            digest_size=HASH_SIZE,
        )

    def verify(
        self,
        ciphertext: bytes,
        address: int,
        counter_seed: bytes,
        expected: bytes,
    ) -> bool:
        """Check a stored MAC against a freshly computed one."""
        return self.compute(ciphertext, address, counter_seed) == expected
