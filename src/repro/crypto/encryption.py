"""Counter-mode memory encryption.

Encryption XORs plaintext with a pseudo one-time pad derived from the
key, the block address (spatial uniqueness) and the block counter
(temporal uniqueness).  Decrypting with a stale counter therefore yields
garbage rather than the old plaintext — the behaviour the crash-recovery
experiments in Table I depend on.
"""

from __future__ import annotations

from repro.crypto.keys import KeySchedule
from repro.crypto.primitives import BLOCK_SIZE, one_time_pad, xor_bytes


class CounterModeEncryptor:
    """Encrypts/decrypts 64 B blocks with counter-mode pads."""

    def __init__(self, keys: KeySchedule) -> None:
        self._key = keys.encryption_key

    def encrypt(self, plaintext: bytes, address: int, counter_seed: bytes) -> bytes:
        """Encrypt one block.

        Args:
            plaintext: Exactly ``BLOCK_SIZE`` bytes.
            address: Block-aligned physical address of the block.
            counter_seed: Serialized block counter (see
                :meth:`repro.crypto.counters.SplitCounter.seed`).

        Returns:
            The ciphertext block.
        """
        self._check_block(plaintext)
        pad = one_time_pad(self._key, address, counter_seed, BLOCK_SIZE)
        return xor_bytes(plaintext, pad)

    def decrypt(self, ciphertext: bytes, address: int, counter_seed: bytes) -> bytes:
        """Decrypt one block.  Counter-mode decryption mirrors encryption."""
        self._check_block(ciphertext)
        pad = one_time_pad(self._key, address, counter_seed, BLOCK_SIZE)
        return xor_bytes(ciphertext, pad)

    @staticmethod
    def _check_block(data: bytes) -> None:
        if len(data) != BLOCK_SIZE:
            raise ValueError(
                f"encryption operates on {BLOCK_SIZE}-byte blocks, got {len(data)}"
            )
