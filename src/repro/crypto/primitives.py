"""Low-level keyed-hash primitives.

Everything in the security substrate bottoms out in :func:`keyed_hash`,
a keyed BLAKE2b digest truncated to the requested width.  The paper's
hardware uses AES counter-mode pads and 64-bit stateful MAC hashes; the
reproduction keeps the same interface widths (64-byte blocks, 8-byte
hashes) with a software construction.
"""

from __future__ import annotations

import hashlib
import struct

BLOCK_SIZE = 64
"""Cache-block granularity, in bytes, used across the whole system."""

HASH_SIZE = 8
"""Width of a BMT hash / MAC value in bytes (64-bit, as in the paper)."""


def keyed_hash(key: bytes, *parts: bytes, digest_size: int = HASH_SIZE) -> bytes:
    """Return a keyed digest over the concatenation of ``parts``.

    Args:
        key: MAC/encryption key (up to 64 bytes).
        *parts: Byte strings that are length-prefixed before hashing so
            that distinct tuples never collide via concatenation ambiguity.
        digest_size: Output width in bytes.

    Returns:
        ``digest_size`` bytes.
    """
    h = hashlib.blake2b(key=key, digest_size=digest_size)
    for part in parts:
        h.update(struct.pack("<I", len(part)))
        h.update(part)
    return h.digest()


def int_bytes(value: int, width: int = 8) -> bytes:
    """Encode a non-negative integer as ``width`` little-endian bytes."""
    if value < 0:
        raise ValueError("int_bytes requires a non-negative value")
    return value.to_bytes(width, "little")


def one_time_pad(key: bytes, address: int, counter_seed: bytes, length: int) -> bytes:
    """Generate an encryption pad for counter-mode encryption.

    The pad is a function of the key, the block address (spatial
    uniqueness) and the counter seed (temporal uniqueness), mirroring the
    seed construction of counter-mode memory encryption.

    Args:
        key: Encryption key.
        address: Block-aligned physical address.
        counter_seed: Serialized counter value for the block.
        length: Number of pad bytes needed.

    Returns:
        ``length`` pseudo-random bytes.
    """
    pad = bytearray()
    chunk_index = 0
    while len(pad) < length:
        pad.extend(
            keyed_hash(
                key,
                int_bytes(address),
                counter_seed,
                int_bytes(chunk_index),
                digest_size=32,
            )
        )
        chunk_index += 1
    return bytes(pad[:length])


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("xor_bytes requires equal-length inputs")
    return bytes(x ^ y for x, y in zip(a, b))
