"""Encryption counter organizations.

The paper assumes the *split counter* organization of Yan et al.: each
4 KB page owns one 64-byte counter block holding a 64-bit major counter
plus sixty-four 7-bit minor counters (one per 64 B data block).  A block's
effective counter is the concatenation ``major || minor``.  When a minor
counter overflows, the major counter increments, every minor counter in
the page resets, and the whole page must be re-encrypted.

A monolithic organization (64-bit counter per block, as in SGX) is also
provided for comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.primitives import BLOCK_SIZE, int_bytes

BLOCKS_PER_PAGE = 64
"""Number of 64 B data blocks covered by one counter block (a 4 KB page)."""

MINOR_COUNTER_BITS = 7
MINOR_COUNTER_MAX = (1 << MINOR_COUNTER_BITS) - 1

PAGE_SIZE = BLOCK_SIZE * BLOCKS_PER_PAGE


class SplitCounter:
    """One page's counter block: a major counter and 64 minor counters."""

    __slots__ = ("major", "minors")

    def __init__(self) -> None:
        self.major = 0
        self.minors: List[int] = [0] * BLOCKS_PER_PAGE

    def increment(self, block_in_page: int) -> bool:
        """Advance the minor counter for one block.

        Args:
            block_in_page: Index 0..63 of the data block within the page.

        Returns:
            ``True`` if the minor counter overflowed (page must be
            re-encrypted under the new major counter), else ``False``.
        """
        self._check_index(block_in_page)
        if self.minors[block_in_page] == MINOR_COUNTER_MAX:
            self.major += 1
            self.minors = [0] * BLOCKS_PER_PAGE
            self.minors[block_in_page] = 1
            return True
        self.minors[block_in_page] += 1
        return False

    def value(self, block_in_page: int) -> Tuple[int, int]:
        """Return ``(major, minor)`` for one block."""
        self._check_index(block_in_page)
        return self.major, self.minors[block_in_page]

    def seed(self, block_in_page: int) -> bytes:
        """Serialize the block's effective counter for pad/MAC input."""
        major, minor = self.value(block_in_page)
        return int_bytes(major) + int_bytes(minor, width=1)

    def to_bytes(self) -> bytes:
        """Serialize the whole counter block (64 bytes, as stored in NVM).

        Layout: 8-byte little-endian major counter followed by 64 packed
        7-bit minor counters (56 bytes).
        """
        bits = 0
        acc = 0
        out = bytearray(int_bytes(self.major))
        for minor in self.minors:
            acc |= minor << bits
            bits += MINOR_COUNTER_BITS
            while bits >= 8:
                out.append(acc & 0xFF)
                acc >>= 8
                bits -= 8
        if bits:
            out.append(acc & 0xFF)
        if len(out) != BLOCK_SIZE:
            raise AssertionError(f"counter block serialized to {len(out)} bytes")
        return bytes(out)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SplitCounter":
        """Inverse of :meth:`to_bytes`."""
        if len(raw) != BLOCK_SIZE:
            raise ValueError("counter block must be 64 bytes")
        ctr = cls()
        ctr.major = int.from_bytes(raw[:8], "little")
        acc = int.from_bytes(raw[8:], "little")
        ctr.minors = [
            (acc >> (i * MINOR_COUNTER_BITS)) & MINOR_COUNTER_MAX
            for i in range(BLOCKS_PER_PAGE)
        ]
        return ctr

    def copy(self) -> "SplitCounter":
        dup = SplitCounter()
        dup.major = self.major
        dup.minors = list(self.minors)
        return dup

    @staticmethod
    def _check_index(block_in_page: int) -> None:
        if not 0 <= block_in_page < BLOCKS_PER_PAGE:
            raise IndexError(f"block_in_page out of range: {block_in_page}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SplitCounter)
            and self.major == other.major
            and self.minors == other.minors
        )

    def __repr__(self) -> str:
        hot = sum(1 for m in self.minors if m)
        return f"SplitCounter(major={self.major}, hot_minors={hot})"


class MonolithicCounter:
    """A 64-bit per-block counter (the SGX-style organization)."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def increment(self) -> bool:
        """Advance the counter.  Returns ``True`` on 64-bit wraparound."""
        self.value += 1
        if self.value >= 1 << 64:
            self.value = 0
            return True
        return False

    def seed(self) -> bytes:
        return int_bytes(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MonolithicCounter) and self.value == other.value

    def __repr__(self) -> str:
        return f"MonolithicCounter({self.value})"


@dataclass
class CounterBlock:
    """A (page index, counter) pair as it travels through the system."""

    page_index: int
    counter: SplitCounter = field(default_factory=SplitCounter)

    def to_bytes(self) -> bytes:
        return self.counter.to_bytes()


class CounterStore:
    """All counter blocks of the protected region, indexed by page.

    Pages that were never written keep an implicit all-zero counter
    block, which is what the sparse BMT model uses as its default leaf.
    """

    def __init__(
        self,
        num_pages: int,
        on_page_overflow: Optional[Callable[[int], None]] = None,
    ) -> None:
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        self.num_pages = num_pages
        self._pages: Dict[int, SplitCounter] = {}
        self._on_page_overflow = on_page_overflow
        self.overflow_count = 0

    def page(self, page_index: int) -> SplitCounter:
        """Return (creating if needed) the counter block for a page."""
        self._check_page(page_index)
        ctr = self._pages.get(page_index)
        if ctr is None:
            ctr = SplitCounter()
            self._pages[page_index] = ctr
        return ctr

    def peek(self, page_index: int) -> SplitCounter:
        """Return the page's counter without creating storage for it."""
        self._check_page(page_index)
        return self._pages.get(page_index) or SplitCounter()

    def increment(self, page_index: int, block_in_page: int) -> SplitCounter:
        """Advance a block's counter, handling minor-counter overflow.

        Returns:
            The page's counter block after the increment.
        """
        ctr = self.page(page_index)
        if ctr.increment(block_in_page):
            self.overflow_count += 1
            if self._on_page_overflow is not None:
                self._on_page_overflow(page_index)
        return ctr

    def set_page(self, page_index: int, counter: SplitCounter) -> None:
        """Overwrite a page's counter block (used by crash recovery)."""
        self._check_page(page_index)
        self._pages[page_index] = counter

    def touched_pages(self) -> List[int]:
        """Pages whose counters differ from the all-zero default."""
        return sorted(self._pages)

    def snapshot(self) -> Dict[int, SplitCounter]:
        """Deep-copy the store (crash-injection experiments)."""
        return {page: ctr.copy() for page, ctr in self._pages.items()}

    def restore(self, snapshot: Dict[int, SplitCounter]) -> None:
        self._pages = {page: ctr.copy() for page, ctr in snapshot.items()}

    def _check_page(self, page_index: int) -> None:
        if not 0 <= page_index < self.num_pages:
            raise IndexError(f"page index out of range: {page_index}")
