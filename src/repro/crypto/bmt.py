"""Bonsai Merkle Tree: geometry, labelling, and a functional hash tree.

The BMT covers only the encryption counter blocks (one per 4 KB page).
Its root lives inside the processor boundary and is the single piece of
persistent on-chip integrity state; everything else (interior nodes,
leaf hashes, the counter blocks themselves) is cacheable and can be
rebuilt, but the root must reflect every persisted counter update —
which is exactly why the paper's persist-order invariant centres on it.

Two views of the tree live here:

* :class:`BMTGeometry` — pure arithmetic over node *labels* (the paper's
  §V-C labelling: root is 0, parent of n is ``(n-1) // arity``).  The
  timing models and the coalescing logic use only this.
* :class:`BonsaiMerkleTree` — a sparse functional hash tree with real
  byte values, used by the crash-recovery experiments.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.keys import KeySchedule
from repro.crypto.primitives import HASH_SIZE, int_bytes, keyed_hash


class BMTGeometry:
    """Shape and label arithmetic for a complete ``arity``-ary tree.

    Levels are numbered from the root: level 0 is the root, level
    ``depth`` is the leaf-hash level with one node per counter block.
    An *update path* runs from a leaf to the root inclusive, so its
    length is ``depth + 1`` — the number of MAC computations a persist
    must perform (9 levels in the paper's Table III configuration).
    """

    def __init__(self, num_leaves: int, arity: int = 8, min_levels: int = 1) -> None:
        if num_leaves <= 0:
            raise ValueError("num_leaves must be positive")
        if arity < 2:
            raise ValueError("arity must be at least 2")
        if min_levels < 1:
            raise ValueError("min_levels must be at least 1")
        self.arity = arity
        self.num_leaves = num_leaves
        depth = 0
        capacity = 1
        while capacity < num_leaves:
            capacity *= arity
            depth += 1
        # Table III pins the BMT at 9 levels; allow padding shallow trees.
        self.depth = max(depth, min_levels - 1)
        self.levels = self.depth + 1
        # offset(l) = number of nodes above level l = (arity**l - 1)/(arity - 1)
        self._level_offsets = [
            (arity**level - 1) // (arity - 1) for level in range(self.levels + 1)
        ]
        self._leaf_offset = self._level_offsets[self.depth]
        # Label-arithmetic memo caches.  Geometries are immutable, so a
        # leaf's update path / a label's ancestor chain / an LCA never
        # change; the trace simulators hammer these on every persist and
        # every verified load fill.  Hit/miss counters support the memo
        # unit tests and the perf harness.
        self._path_cache: Dict[int, Tuple[int, ...]] = {}
        self._ancestor_cache: Dict[int, Tuple[int, ...]] = {}
        self._lca_cache: Dict[Tuple[int, int], int] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    # ------------------------------------------------------------------
    # label <-> (level, index)
    # ------------------------------------------------------------------

    def label(self, level: int, index: int) -> int:
        """Label of the ``index``-th node at ``level``."""
        self._check_level(level)
        if not 0 <= index < self.nodes_at_level(level):
            raise IndexError(f"index {index} out of range at level {level}")
        return self._level_offsets[level] + index

    def level_of(self, label: int) -> int:
        """Level a label belongs to."""
        if label < 0 or label >= self._level_offsets[self.levels]:
            raise IndexError(f"label out of range: {label}")
        return bisect_right(self._level_offsets, label, 1, self.levels) - 1

    def index_of(self, label: int) -> int:
        """Index of a label within its level."""
        return label - self._level_offsets[self.level_of(label)]

    def nodes_at_level(self, level: int) -> int:
        self._check_level(level)
        return self.arity**level

    # ------------------------------------------------------------------
    # tree navigation
    # ------------------------------------------------------------------

    ROOT_LABEL = 0

    def parent(self, label: int) -> int:
        """Parent label; the root has no parent."""
        if label == self.ROOT_LABEL:
            raise ValueError("the BMT root has no parent")
        return (label - 1) // self.arity

    def children(self, label: int) -> List[int]:
        """Labels of a node's children (empty for leaf-level nodes)."""
        if self.level_of(label) == self.depth:
            return []
        first = label * self.arity + 1
        return list(range(first, first + self.arity))

    def leaf_label(self, leaf_index: int) -> int:
        """Label of the leaf-hash node covering counter block ``leaf_index``."""
        if not 0 <= leaf_index < self.num_leaves:
            raise IndexError(f"leaf index out of range: {leaf_index}")
        return self._leaf_offset + leaf_index

    def leaf_index(self, label: int) -> int:
        """Inverse of :meth:`leaf_label`."""
        if self.level_of(label) != self.depth:
            raise ValueError(f"label {label} is not a leaf")
        return label - self._level_offsets[self.depth]

    def update_path(self, leaf_index: int) -> List[int]:
        """Labels from the leaf to the root inclusive (the BMT update path)."""
        return list(self.path_tuple(leaf_index))

    def path_tuple(self, leaf_index: int) -> Tuple[int, ...]:
        """Memoized update path as an immutable tuple (hot-path variant).

        The returned tuple is cached and shared; callers that need a
        mutable copy should use :meth:`update_path`.
        """
        cached = self._path_cache.get(leaf_index)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        label = self.leaf_label(leaf_index)
        path = [label]
        arity = self.arity
        while label:
            label = (label - 1) // arity
            path.append(label)
        cached = tuple(path)
        self._path_cache[leaf_index] = cached
        return cached

    def ancestors(self, label: int) -> List[int]:
        """Labels strictly above ``label`` up to and including the root."""
        cached = self._ancestor_cache.get(label)
        if cached is not None:
            self.memo_hits += 1
            return list(cached)
        self.memo_misses += 1
        out = []
        walk = label
        while walk != self.ROOT_LABEL:
            walk = self.parent(walk)
            out.append(walk)
        self._ancestor_cache[label] = tuple(out)
        return out

    def lca(self, label_a: int, label_b: int) -> int:
        """Least common ancestor of two node labels.

        Implements the paper's §V-C scheme: lift the deeper label until
        both are at the same level, then walk both up in lock-step.
        """
        key = (label_a, label_b) if label_a <= label_b else (label_b, label_a)
        cached = self._lca_cache.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        level_a, level_b = self.level_of(label_a), self.level_of(label_b)
        while level_a > level_b:
            label_a = self.parent(label_a)
            level_a -= 1
        while level_b > level_a:
            label_b = self.parent(label_b)
            level_b -= 1
        while label_a != label_b:
            label_a = self.parent(label_a)
            label_b = self.parent(label_b)
        self._lca_cache[key] = label_a
        return label_a

    def memo_info(self) -> Dict[str, int]:
        """Memo-cache statistics (see the perf harness / memo tests)."""
        return {
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "paths": len(self._path_cache),
            "ancestors": len(self._ancestor_cache),
            "lcas": len(self._lca_cache),
        }

    def lca_of_leaves(self, leaf_a: int, leaf_b: int) -> int:
        """LCA of the update paths of two counter-block leaves."""
        return self.lca(self.leaf_label(leaf_a), self.leaf_label(leaf_b))

    def path_through(self, leaf_index: int, stop_label: int) -> List[int]:
        """Update-path labels from the leaf up to (excluding) ``stop_label``.

        Used by coalescing: the leading persist updates only this prefix
        and delegates ``stop_label`` and above to the trailing persist.
        """
        path = []
        for label in self.update_path(leaf_index):
            if label == stop_label:
                return path
            path.append(label)
        raise ValueError(
            f"label {stop_label} is not on the update path of leaf {leaf_index}"
        )

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.depth:
            raise IndexError(f"level out of range: {level}")

    def __repr__(self) -> str:
        return (
            f"BMTGeometry(leaves={self.num_leaves}, arity={self.arity}, "
            f"levels={self.levels})"
        )


class BonsaiMerkleTree:
    """A sparse functional BMT over counter blocks.

    Node values are 8-byte keyed hashes.  Leaf hashes cover the 64-byte
    serialized counter block; interior hashes cover the concatenation of
    their children's hashes.  Untouched subtrees fall back to
    precomputed per-level default hashes, so an 8 GB tree costs memory
    only proportional to the number of pages actually written.
    """

    def __init__(self, geometry: BMTGeometry, keys: KeySchedule) -> None:
        self.geometry = geometry
        self._key = keys.bmt_key
        self._nodes: Dict[int, bytes] = {}
        self._default_leaf_block = bytes(64)
        self._defaults = self._compute_defaults()

    def _compute_defaults(self) -> List[bytes]:
        """Default node hash per level for all-zero counter subtrees."""
        defaults = [b""] * self.geometry.levels
        defaults[self.geometry.depth] = self._hash_leaf(self._default_leaf_block)
        for level in range(self.geometry.depth - 1, -1, -1):
            child = defaults[level + 1]
            defaults[level] = self._hash_children([child] * self.geometry.arity)
        return defaults

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------

    def _hash_leaf(self, counter_block: bytes) -> bytes:
        return keyed_hash(self._key, b"leaf", counter_block, digest_size=HASH_SIZE)

    def _hash_children(self, child_hashes: Sequence[bytes]) -> bytes:
        return keyed_hash(self._key, b"node", *child_hashes, digest_size=HASH_SIZE)

    # ------------------------------------------------------------------
    # node access
    # ------------------------------------------------------------------

    def node_hash(self, label: int) -> bytes:
        """Stored (or default) hash of a node."""
        value = self._nodes.get(label)
        if value is not None:
            return value
        return self._defaults[self.geometry.level_of(label)]

    def set_node_hash(self, label: int, value: bytes) -> None:
        """Directly overwrite a node hash (tamper injection in tests)."""
        if len(value) != HASH_SIZE:
            raise ValueError("node hashes are 8 bytes")
        self._nodes[label] = value

    @property
    def root(self) -> bytes:
        """The on-chip root hash."""
        return self.node_hash(self.geometry.ROOT_LABEL)

    # ------------------------------------------------------------------
    # updates and verification
    # ------------------------------------------------------------------

    def update_leaf(self, leaf_index: int, counter_block: bytes) -> List[int]:
        """Recompute the update path after a counter-block change.

        Args:
            leaf_index: Counter block (page) index.
            counter_block: The new 64-byte serialized counter block.

        Returns:
            The labels updated, ordered leaf to root — the paper's BMT
            update path.
        """
        path = self.geometry.update_path(leaf_index)
        leaf_label = path[0]
        self._nodes[leaf_label] = self._hash_leaf(counter_block)
        for label in path[1:]:
            children = self.geometry.children(label)
            self._nodes[label] = self._hash_children(
                [self.node_hash(child) for child in children]
            )
        return path

    def verify_leaf(self, leaf_index: int, counter_block: bytes) -> bool:
        """Check a counter block against the tree up to the root.

        Recomputes the leaf hash from the counter block and climbs to the
        root using stored sibling hashes; the reconstruction must equal
        the trusted on-chip root.
        """
        current = self._hash_leaf(counter_block)
        label = self.geometry.leaf_label(leaf_index)
        while label != self.geometry.ROOT_LABEL:
            parent = self.geometry.parent(label)
            siblings = []
            for child in self.geometry.children(parent):
                siblings.append(current if child == label else self.node_hash(child))
            current = self._hash_children(siblings)
            label = parent
        return current == self.root

    def rebuild_from_counters(self, counter_blocks: Dict[int, bytes]) -> bytes:
        """Recompute the whole tree from a set of counter blocks.

        Args:
            counter_blocks: Mapping ``leaf_index -> serialized counter
                block`` for every non-default page.

        Returns:
            The recomputed root hash (also installed in the tree).
        """
        self._nodes.clear()
        dirty_parents = set()
        for leaf_index, block in counter_blocks.items():
            label = self.geometry.leaf_label(leaf_index)
            self._nodes[label] = self._hash_leaf(block)
            dirty_parents.add(self.geometry.parent(label))
        level = self.geometry.depth - 1
        while True:
            next_dirty = set()
            for label in dirty_parents:
                children = self.geometry.children(label)
                self._nodes[label] = self._hash_children(
                    [self.node_hash(child) for child in children]
                )
                if label != self.geometry.ROOT_LABEL:
                    next_dirty.add(self.geometry.parent(label))
            if not dirty_parents or level <= 0:
                break
            dirty_parents = next_dirty
            level -= 1
        return self.root

    def snapshot(self) -> Dict[int, bytes]:
        """Copy the stored (non-default) nodes for crash experiments."""
        return dict(self._nodes)

    def restore(self, snapshot: Dict[int, bytes]) -> None:
        self._nodes = dict(snapshot)

    def stored_node_count(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"BonsaiMerkleTree({self.geometry!r}, stored={len(self._nodes)})"
