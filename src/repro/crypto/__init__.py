"""Functional security substrate: counters, encryption, MACs, integrity trees.

These models operate on real bytes so that the crash-recovery experiments
(Tables I and II of the paper) observe genuine verification failures: a
dropped or reordered tuple item makes decryption return the wrong
plaintext or makes MAC/BMT verification fail, exactly as the paper's
analysis predicts.

Cryptographic primitives are keyed BLAKE2 constructions.  They are not
meant to be side-channel-hardened AES replacements; the reproduction only
needs deterministic, collision-resistant, key-dependent functions plus a
configurable *modelled* latency (Table III: MAC latency 40 cycles).
"""

from repro.crypto.keys import KeySchedule
from repro.crypto.counters import CounterBlock, MonolithicCounter, SplitCounter
from repro.crypto.encryption import CounterModeEncryptor
from repro.crypto.mac import StatefulMAC
from repro.crypto.bmt import BMTGeometry, BonsaiMerkleTree
from repro.crypto.sgx_tree import SGXCounterTree

__all__ = [
    "KeySchedule",
    "CounterBlock",
    "MonolithicCounter",
    "SplitCounter",
    "CounterModeEncryptor",
    "StatefulMAC",
    "BMTGeometry",
    "BonsaiMerkleTree",
    "SGXCounterTree",
]
