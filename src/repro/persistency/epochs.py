"""Epoch bookkeeping for epoch persistency.

An :class:`EpochTracker` assigns stores to epochs.  Epochs are closed
either explicitly (an ``sfence`` in the trace) or implicitly after a
configured number of stores — the evaluation's "epoch size" parameter
(Table III: default 32 stores, swept 4..256 in Figs. 11/12).

The tracker also maintains the per-epoch *dirty block set*: with
write-back caches, multiple stores to one block within an epoch collapse
into a single persist at the epoch boundary.  That collapse is the
source of the PPKI reduction in Table V (sp 32.60 → o3 12.41).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Epoch:
    """One epoch's persist bookkeeping.

    ``dirty_blocks`` preserves first-store order — the order in which
    the boundary flush issues persists, which the coalescing hardware
    sees (persists pair with their arrival predecessor).
    """

    epoch_id: int
    store_count: int = 0
    dirty_blocks: Dict[int, None] = field(default_factory=dict)
    closed: bool = False

    def mark_dirty(self, block: int) -> None:
        self.dirty_blocks.setdefault(block, None)

    @property
    def persist_count(self) -> int:
        """Persists issued at the epoch boundary (unique dirty blocks)."""
        return len(self.dirty_blocks)


class EpochTracker:
    """Assigns persistent stores to epochs and tracks their dirty sets."""

    def __init__(
        self, epoch_size: Optional[int] = 32, retain_closed: bool = True
    ) -> None:
        """Create a tracker.

        Args:
            epoch_size: Implicit epoch boundary after this many stores;
                ``None`` disables implicit boundaries (explicit sfences
                only).
            retain_closed: Keep every closed :class:`Epoch` object in
                ``closed_epochs``.  Streaming/sharded runs disable this
                so epoch bookkeeping stays O(1) in trace length; the
                aggregate counters (``closed_count``, ``total_persists``,
                ``total_stores``) are maintained either way.
        """
        if epoch_size is not None and epoch_size <= 0:
            raise ValueError("epoch_size must be positive")
        self.epoch_size = epoch_size
        self.retain_closed = retain_closed
        self._current = Epoch(epoch_id=0)
        self._closed: List[Epoch] = []
        self.closed_count = 0
        self.closed_store_count = 0
        self.closed_persist_count = 0

    @property
    def current_epoch(self) -> Epoch:
        return self._current

    @property
    def closed_epochs(self) -> List[Epoch]:
        """Closed epochs (empty when ``retain_closed`` is off)."""
        return self._closed

    def record_store(self, block: int) -> Optional[Epoch]:
        """Record a persistent store to ``block``.

        Returns:
            The closed epoch if this store filled the epoch, else ``None``.
        """
        self._current.store_count += 1
        self._current.mark_dirty(block)
        if (
            self.epoch_size is not None
            and self._current.store_count >= self.epoch_size
        ):
            return self.barrier()
        return None

    def barrier(self) -> Optional[Epoch]:
        """Close the current epoch (``sfence``).

        Empty epochs are not emitted — consecutive barriers collapse.

        Returns:
            The closed epoch, or ``None`` if it held no stores.
        """
        if self._current.store_count == 0:
            return None
        closed = self._current
        closed.closed = True
        self.closed_count += 1
        self.closed_store_count += closed.store_count
        self.closed_persist_count += closed.persist_count
        if self.retain_closed:
            self._closed.append(closed)
        self._current = Epoch(epoch_id=closed.epoch_id + 1)
        return closed

    def flush(self) -> Optional[Epoch]:
        """Close any trailing partial epoch at end of trace."""
        return self.barrier()

    def total_persists(self) -> int:
        """Total boundary persists across all closed epochs."""
        return self.closed_persist_count

    def total_stores(self) -> int:
        return self.closed_store_count + self._current.store_count
