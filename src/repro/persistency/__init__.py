"""Memory persistency models: strict and epoch persistency.

Persistency models define the order in which stores become durable, as
observed by a post-crash *crash recovery observer*.  The paper's point
is that on secure NVMM the ordering obligation extends beyond the data
block to its entire memory tuple — counter, MAC, and BMT root update.
"""

from repro.persistency.models import PersistencyModel
from repro.persistency.epochs import EpochTracker, Epoch
from repro.persistency.ordering import PersistOrderLog, OrderViolation

__all__ = [
    "PersistencyModel",
    "EpochTracker",
    "Epoch",
    "PersistOrderLog",
    "OrderViolation",
]
