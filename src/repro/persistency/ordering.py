"""Persist-order logging and violation detection.

The paper's Invariant 2 requires that if persist α1 precedes α2, every
memory-tuple component of α1 persists before the corresponding
component of α2 — in particular the BMT root updates.  The
:class:`PersistOrderLog` records component-persist events emitted by an
update engine (or a deliberately broken one) and reports violations;
it backs both the unit tests and the Table II experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mem.wpq import TupleItem
from repro.persistency.models import PersistencyModel


@dataclass(frozen=True)
class OrderViolation:
    """A detected Invariant 2 violation."""

    item: TupleItem
    older_persist: int
    younger_persist: int
    older_time: int
    younger_time: int

    def describe(self) -> str:
        return (
            f"{self.item.value}: persist {self.younger_persist} persisted its "
            f"component at t={self.younger_time}, before older persist "
            f"{self.older_persist} (t={self.older_time})"
        )


class PersistOrderLog:
    """Records (persist, component, time) events and checks Invariant 2."""

    def __init__(self, model: PersistencyModel = PersistencyModel.STRICT) -> None:
        self.model = model
        # persist_id -> epoch_id (program order == persist_id order)
        self._epochs: Dict[int, int] = {}
        # (persist_id, item) -> persist time
        self._events: Dict[Tuple[int, TupleItem], int] = {}

    def register_persist(self, persist_id: int, epoch_id: int = 0) -> None:
        """Declare a persist and its epoch, in program order."""
        if persist_id in self._epochs:
            raise ValueError(f"persist {persist_id} already registered")
        self._epochs[persist_id] = epoch_id

    def record(self, persist_id: int, item: TupleItem, time: int) -> None:
        """Record that a tuple component became durable at ``time``."""
        if persist_id not in self._epochs:
            raise KeyError(f"persist {persist_id} was not registered")
        key = (persist_id, item)
        if key in self._events:
            raise ValueError(f"duplicate persist event for {key}")
        self._events[key] = time

    def violations(self) -> List[OrderViolation]:
        """All Invariant 2 violations under the configured model.

        For each tuple component, persists that the model orders must
        have non-decreasing persist times in program order.
        """
        out: List[OrderViolation] = []
        ordered_ids = sorted(self._epochs)
        for item in TupleItem:
            timeline = [
                (pid, self._events[(pid, item)])
                for pid in ordered_ids
                if (pid, item) in self._events
            ]
            # Ordering is transitive across unordered runs (e.g. two
            # same-epoch persists are unordered with each other but both
            # ordered against an older epoch), so compare every ordered
            # pair, not just adjacent ones.
            for younger_pos, (younger_id, younger_t) in enumerate(timeline):
                for older_id, older_t in timeline[:younger_pos]:
                    must_order = self.model.requires_ordering(
                        self._epochs[older_id], self._epochs[younger_id]
                    )
                    if must_order and younger_t < older_t:
                        out.append(
                            OrderViolation(
                                item=item,
                                older_persist=older_id,
                                younger_persist=younger_id,
                                older_time=older_t,
                                younger_time=younger_t,
                            )
                        )
        return out

    def is_consistent(self) -> bool:
        return not self.violations()
