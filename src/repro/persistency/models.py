"""Persistency model definitions.

* **Strict persistency (SP)** — persists follow the sequential program
  order of stores.  Every pair of persists is ordered, so Invariant 2
  applies between every consecutive pair; with write-back caches this
  forces write-through behaviour (the paper's 2SP baseline).
* **Epoch persistency (EP)** — code is divided into epochs by persist
  barriers (``sfence``).  Persists within an epoch are unordered (and
  may be overlapped, reordered, or coalesced); persists in an older
  epoch must complete before any persist of a younger epoch.
* **Buffered epoch persistency (BEP)** — as EP, but execution may run
  ahead of persistence by a bounded number of epochs.  The paper's
  2-entry ETT implements exactly this: two epochs may be in flight.
"""

from __future__ import annotations

import enum


class PersistencyModel(enum.Enum):
    """Which persist-ordering contract the system enforces."""

    NONE = "none"
    STRICT = "strict"
    EPOCH = "epoch"

    @property
    def orders_all_persists(self) -> bool:
        """True if every pair of persists is ordered (SP)."""
        return self is PersistencyModel.STRICT

    @property
    def orders_across_epochs(self) -> bool:
        """True if persists are ordered at epoch granularity (EP)."""
        return self is PersistencyModel.EPOCH

    def requires_ordering(self, epoch_a: int, epoch_b: int) -> bool:
        """Whether a persist in ``epoch_a`` must precede one in ``epoch_b``.

        Args:
            epoch_a: Epoch of the older (program-order) persist.
            epoch_b: Epoch of the younger persist.
        """
        if self is PersistencyModel.NONE:
            return False
        if self is PersistencyModel.STRICT:
            return True
        return epoch_a < epoch_b
