"""Reproduction of *Persist Level Parallelism: Streamlining Integrity
Tree Updates for Secure Persistent Memory* (Freij, Yuan, Zhou, Solihin —
MICRO 2020).

The package provides:

* a byte-accurate **functional secure NVMM** (counter-mode encryption,
  stateful MACs, Bonsai Merkle Tree) with crash/recovery semantics —
  :class:`repro.system.FunctionalSecureMemory`;
* the paper's **PLP update mechanisms** (sequential, pipelined,
  out-of-order, coalescing) as both cycle-accurate hardware-table models
  and fast scoreboards — :mod:`repro.core`;
* a **trace-driven timing simulator** with SPEC2006-calibrated synthetic
  workloads — :class:`repro.system.TraceSimulator`,
  :mod:`repro.workloads`;
* **crash injection and recovery checking** reproducing the paper's
  Table I/II failure analysis — :mod:`repro.recovery`.

Quickstart::

    from repro.system import run_benchmark

    results = run_benchmark("gamess", ["secure_wb", "sp", "coalescing"])
    base = results["secure_wb"]
    for name, result in results.items():
        print(name, result.slowdown_vs(base))
"""

from repro.core.schemes import UpdateScheme
from repro.persistency.models import PersistencyModel
from repro.system import (
    FunctionalSecureMemory,
    IntegrityError,
    SimResult,
    SystemConfig,
    TraceSimulator,
    build_simulator,
    run_benchmark,
    run_trace,
)

__version__ = "1.0.0"

__all__ = [
    "UpdateScheme",
    "PersistencyModel",
    "FunctionalSecureMemory",
    "IntegrityError",
    "SimResult",
    "SystemConfig",
    "TraceSimulator",
    "build_simulator",
    "run_benchmark",
    "run_trace",
    "__version__",
]
