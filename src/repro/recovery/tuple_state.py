"""Durable state: the NVM image and the on-chip persistent BMT root.

The :class:`NVMImage` holds everything that lives in the non-volatile
DIMM — ciphertext blocks, serialized counter blocks, MAC blocks.  BMT
interior nodes are cacheable and reconstructible, so they are not part
of the recovery-critical image; the root lives in :class:`DurableRoot`,
the single on-chip persistent register the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class NVMImage:
    """Byte-level contents of the non-volatile DIMM."""

    def __init__(self) -> None:
        self.data: Dict[int, bytes] = {}       # block -> ciphertext (64 B)
        self.counters: Dict[int, bytes] = {}   # page  -> counter block (64 B)
        self.macs: Dict[int, bytes] = {}       # block -> MAC (8 B)

    def write_data(self, block: int, ciphertext: bytes) -> None:
        self.data[block] = bytes(ciphertext)

    def write_counter(self, page: int, counter_block: bytes) -> None:
        self.counters[page] = bytes(counter_block)

    def write_mac(self, block: int, mac: bytes) -> None:
        self.macs[block] = bytes(mac)

    def snapshot(self) -> "NVMImage":
        dup = NVMImage()
        dup.data = dict(self.data)
        dup.counters = dict(self.counters)
        dup.macs = dict(self.macs)
        return dup

    def __repr__(self) -> str:
        return (
            f"NVMImage(blocks={len(self.data)}, counter_pages="
            f"{len(self.counters)}, macs={len(self.macs)})"
        )


@dataclass
class DurableRoot:
    """The persistent on-chip BMT root register.

    Every committed persist moves this register forward; it survives
    crashes by construction (it is inside the processor's persistence
    domain), so recovery validates the rebuilt tree against it.
    """

    value: Optional[bytes] = None
    update_count: int = 0

    def commit(self, root: bytes) -> None:
        self.value = bytes(root)
        self.update_count += 1
