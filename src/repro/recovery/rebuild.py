"""Post-crash recovery-time estimation.

Recovering a secure NVMM means re-establishing the BMT: read the
persisted counter blocks, recompute the tree, and compare the root
against the on-chip register.  The paper assumes this procedure
(§III: "Recovering from a crash requires recomputing the BMT root and
validating it against the stored root") but does not evaluate its
latency; related work (Triad-NVM, Anubis) shows it dominates recovery.

This model estimates recovery time for two strategies:

* **full** — rebuild the whole tree from every counter block (no extra
  metadata, longest recovery);
* **touched** — rebuild only the subtrees of pages that were ever
  written (requires a persisted touched-page map, e.g. allocation
  bitmaps; sparse workloads recover much faster).

On top of those, :meth:`RecoveryTimeModel.estimate_for_scheme` maps
each :class:`~repro.core.schemes.UpdateScheme` to what its persisted
metadata leaves to rebuild — the cross-paper recovery-latency axis the
scheme zoo exists to compare (see PAPERS.md).

Costs: one NVM block read per counter block fetched, one MAC-unit pass
per recomputed node, with a configurable number of parallel MAC units.

Touched *pages* are 4 KB regions of protected memory, not BMT leaves:
one page covers ``leaves_per_page`` counter-block leaves (1 under the
split counter organization, 8 under monolithic), so the model must
expand pages to leaf labels before walking ancestor paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Set

from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry, BonsaiMerkleTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system.config import SystemConfig

STRATEGIES = ("full", "touched")


@dataclass
class RecoveryEstimate:
    """Breakdown of an estimated recovery."""

    strategy: str
    counter_blocks_read: int
    nodes_recomputed: int
    read_cycles: int
    hash_cycles: int

    @property
    def total_cycles(self) -> int:
        # Reads and hashing pipeline against each other; the longer
        # stream dominates, the shorter adds only its ramp.
        return max(self.read_cycles, self.hash_cycles) + min(
            self.read_cycles, self.hash_cycles
        ) // 8

    def total_seconds(self, clock_ghz: float = 4.0) -> float:
        return self.total_cycles / (clock_ghz * 1e9)


class RecoveryTimeModel:
    """Estimates BMT reconstruction latency after a crash."""

    def __init__(
        self,
        geometry: BMTGeometry,
        mac_latency: int = 40,
        nvm_read_cycles: int = 240,
        read_bandwidth_cycles: int = 8,
        hash_units: int = 4,
        leaves_per_page: int = 1,
    ) -> None:
        """Create a model.

        Args:
            geometry: Tree shape.
            mac_latency: Cycles per node hash.
            nvm_read_cycles: Latency of one counter-block read.
            read_bandwidth_cycles: Channel occupancy per block read
                (streams of reads are bandwidth-bound, not latency-bound).
            hash_units: Parallel MAC units available to the rebuild.
            leaves_per_page: Counter-block leaves covering one touched
                page (``SystemConfig.leaves_per_page``: 1 split,
                8 monolithic).
        """
        if hash_units <= 0:
            raise ValueError("hash_units must be positive")
        if leaves_per_page <= 0:
            raise ValueError("leaves_per_page must be positive")
        self.geometry = geometry
        self.mac_latency = mac_latency
        self.nvm_read_cycles = nvm_read_cycles
        self.read_bandwidth_cycles = read_bandwidth_cycles
        self.hash_units = hash_units
        self.leaves_per_page = leaves_per_page

    @classmethod
    def from_config(cls, config: "SystemConfig", **overrides) -> "RecoveryTimeModel":
        """Build a model matching a :class:`SystemConfig`.

        Picks up the geometry, MAC latency, NVM read latency, and —
        crucially — the counter organization's page→leaf fan-out, so
        touched-page estimates count monolithic leaves correctly.
        """
        params = dict(
            mac_latency=config.mac_latency,
            nvm_read_cycles=config.nvm.read_latency,
            leaves_per_page=config.leaves_per_page,
        )
        params.update(overrides)
        return cls(config.geometry(), **params)

    # ------------------------------------------------------------------
    # node counting
    # ------------------------------------------------------------------

    def touched_leaves(self, touched_pages: Iterable[int]) -> Set[int]:
        """Expand touched page indices to BMT leaf indices.

        A page covers ``leaves_per_page`` consecutive counter-block
        leaves; under the split organization the mapping is identity,
        under monolithic each page fans out to 8 leaves.  Pages beyond
        the tree's coverage clamp to no leaves.
        """
        per = self.leaves_per_page
        num_leaves = self.geometry.num_leaves
        leaves: Set[int] = set()
        for page in touched_pages:
            base = page * per
            for leaf in range(base, base + per):
                if 0 <= leaf < num_leaves:
                    leaves.add(leaf)
        return leaves

    def full_rebuild_nodes(self) -> int:
        """Nodes recomputed by a whole-tree rebuild."""
        return sum(
            self.geometry.nodes_at_level(level)
            for level in range(self.geometry.levels)
        )

    def touched_rebuild_nodes(self, touched_pages: Iterable[int]) -> int:
        """Nodes recomputed when only touched subtrees are rebuilt.

        Every leaf of every touched page is rehashed, then each
        distinct ancestor once.
        """
        labels: Set[int] = set()
        for leaf in self.touched_leaves(touched_pages):
            labels.update(self.geometry.update_path(leaf))
        return len(labels)

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------

    def estimate(
        self,
        strategy: str = "full",
        touched_pages: Optional[Iterable[int]] = None,
    ) -> RecoveryEstimate:
        """Estimate recovery latency.

        Args:
            strategy: ``"full"`` or ``"touched"``.
            touched_pages: Required for the ``touched`` strategy.

        Returns:
            A :class:`RecoveryEstimate`.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}")
        if strategy == "full":
            reads = self.geometry.num_leaves
            nodes = self.full_rebuild_nodes()
        else:
            if touched_pages is None:
                raise ValueError("touched strategy requires touched_pages")
            leaves = self.touched_leaves(touched_pages)
            reads = len(leaves)
            nodes = self.touched_rebuild_nodes(touched_pages)
        return self._estimate_from_counts(strategy, reads, nodes)

    def _estimate_from_counts(
        self, strategy: str, reads: int, nodes: int
    ) -> RecoveryEstimate:
        read_cycles = self.nvm_read_cycles + reads * self.read_bandwidth_cycles
        hash_cycles = math.ceil(nodes / self.hash_units) * self.mac_latency
        return RecoveryEstimate(
            strategy=strategy,
            counter_blocks_read=reads,
            nodes_recomputed=nodes,
            read_cycles=read_cycles,
            hash_cycles=hash_cycles,
        )

    def estimate_for_scheme(
        self,
        scheme: UpdateScheme,
        touched_pages: Optional[Iterable[int]] = None,
        triad_persist_levels: int = 2,
        shadow_entries: int = 2048,
    ) -> RecoveryEstimate:
        """Estimate recovery latency under a scheme's persisted metadata.

        What a crash leaves durable differs per design, and with it the
        post-crash work:

        * PLP schemes (``sp``/``pipeline``/``o3``/``coalescing``) and
          ``secpm_wt``/``secure_wb``/``unordered`` persist counters but
          no tree interior — recovery is the paper's whole-tree rebuild
          (``touched`` when a touched-page map survives, else ``full``).
        * ``triad_nvm`` persists the lowest N tree levels; only the
          relaxed levels above the frontier are recomputed, and only
          the frontier nodes (not the leaves) are re-read.
        * ``phoenix`` restores lazily: upfront recovery verifies one
          root path, the rest amortizes into execution.
        * ``anubis`` replays the (cache-sized) shadow table: reads and
          rehashes are bounded by ``shadow_entries``, not memory size.
        * ``sgx_sp`` persisted every path node already — recovery reads
          and checks the root block only.
        """
        geometry = self.geometry
        if scheme is UpdateScheme.TRIAD_NVM:
            if triad_persist_levels <= 0:
                raise ValueError("triad_persist_levels must be positive")
            persisted = min(triad_persist_levels, geometry.levels)
            # Relaxed interior: every level above the persisted
            # frontier, rebuilt from the frontier level's nodes.
            frontier_level = geometry.levels - 1 - persisted
            if frontier_level < 0:
                return self._estimate_from_counts("triad_frontier", 1, 1)
            reads = geometry.nodes_at_level(frontier_level + 1)
            nodes = sum(
                geometry.nodes_at_level(level)
                for level in range(frontier_level + 1)
            )
            return self._estimate_from_counts("triad_frontier", reads, nodes)
        if scheme is UpdateScheme.PHOENIX:
            # Lazy restoration: upfront cost is one leaf-to-root path
            # verification; subtree restores overlap execution.
            depth = geometry.levels
            return self._estimate_from_counts("lazy_path", depth, depth)
        if scheme is UpdateScheme.ANUBIS:
            if shadow_entries <= 0:
                raise ValueError("shadow_entries must be positive")
            # Shadow-table replay: bounded by the persisted shadow
            # region (metadata-cache sized), one read + rehash per
            # entry plus the ancestor paths of the replayed leaves.
            entries = min(shadow_entries, geometry.num_leaves)
            nodes = entries + geometry.levels - 1
            return self._estimate_from_counts("shadow_replay", entries, nodes)
        if scheme is UpdateScheme.SGX_SP:
            # The whole path persisted with each store: recovery only
            # validates the stored root.
            return self._estimate_from_counts("root_check", 1, 1)
        if touched_pages is not None:
            return self.estimate("touched", touched_pages)
        return self.estimate("full")

    def measure(
        self,
        mem,
        scheme: Optional[UpdateScheme] = None,
        triad_persist_levels: int = 2,
        shadow_entries: int = 2048,
    ) -> "MeasuredRecovery":
        """Convenience wrapper: :func:`measure_recovery` with this model."""
        return measure_recovery(
            mem,
            model=self,
            scheme=scheme,
            triad_persist_levels=triad_persist_levels,
            shadow_entries=shadow_entries,
        )

    def speedup_touched_vs_full(self, touched_pages: Iterable[int]) -> float:
        """How much faster touched-only recovery is for a workload.

        An empty touched set recovers "instantly" (nothing to rebuild
        beyond the first read's latency), reported as the full/touched
        ratio of total cycles — never a division by zero, since the
        fixed ``nvm_read_cycles`` term keeps both totals positive.
        """
        full = self.estimate("full")
        touched = self.estimate("touched", touched_pages)
        if touched.total_cycles == 0:
            return float("inf")
        return full.total_cycles / touched.total_cycles


# ----------------------------------------------------------------------
# measured recovery: the replay the analytic model predicts
# ----------------------------------------------------------------------


@dataclass
class MeasuredRecovery:
    """A recovery actually executed against a durable image.

    Where :meth:`RecoveryTimeModel.estimate_for_scheme` *predicts* how
    many counter blocks a recovery reads and how many tree nodes it
    rehashes, this records how many a real replay on the functional
    memory's NVM image performed — with the recomputed root checked
    against the persistent on-chip register, so the counted work is the
    work of a recovery that demonstrably succeeded.
    """

    strategy: str
    counter_blocks_read: int
    nodes_recomputed: int
    root_ok: bool
    estimate: RecoveryEstimate
    """Timing of the measured counts under the same cost model."""


class _CountingTree(BonsaiMerkleTree):
    """A functional BMT that counts every hash it computes."""

    def __init__(self, geometry: BMTGeometry, keys) -> None:
        self.hash_count = 0
        super().__init__(geometry, keys)
        # The per-level default hashes are precomputed constants, not
        # recovery work.
        self.hash_count = 0

    def _hash_leaf(self, counter_block: bytes) -> bytes:
        self.hash_count += 1
        return super()._hash_leaf(counter_block)

    def _hash_children(self, child_hashes) -> bytes:
        self.hash_count += 1
        return super()._hash_children(child_hashes)


def measure_recovery(
    mem,
    model: Optional[RecoveryTimeModel] = None,
    scheme: Optional[UpdateScheme] = None,
    triad_persist_levels: int = 2,
    shadow_entries: int = 2048,
) -> MeasuredRecovery:
    """Execute (and count) a real recovery on a functional memory image.

    Args:
        mem: A :class:`~repro.system.secure_memory.FunctionalSecureMemory`
            (or anything exposing ``geometry``, ``keys``, ``nvm``, and
            ``durable_root``), typically post-crash.
        model: Cost model used to turn the measured counts into cycles
            (default: a :class:`RecoveryTimeModel` over ``mem.geometry``).
        scheme: Replay the recovery procedure of this scheme's persisted
            metadata (see :meth:`RecoveryTimeModel.estimate_for_scheme`);
            ``None`` runs the paper's counter-block rebuild.
        triad_persist_levels: Persisted-frontier depth for Triad-NVM.
        shadow_entries: Shadow-table capacity for Anubis.

    Returns:
        A :class:`MeasuredRecovery` with exact read/hash counts and the
        root-validation verdict.

    The measured replay works on the *sparse* durable image: untouched
    subtrees hash to precomputed defaults and cost nothing, so schemes
    whose analytic estimate assumes dense levels (Triad-NVM's frontier,
    Anubis' cache-sized shadow region) measure below their estimates on
    small workloads — the regression test in ``tests/test_rebuild.py``
    documents the per-scheme tolerance.
    """
    geometry: BMTGeometry = mem.geometry
    model = model or RecoveryTimeModel(geometry)
    counters: Dict[int, bytes] = dict(mem.nvm.counters)
    durable = mem.durable_root.value

    if scheme is UpdateScheme.SGX_SP:
        # Every path node persisted in place: recovery reads the stored
        # root block and compares it to the on-chip register — no
        # recomputation at all.
        reference = BonsaiMerkleTree(geometry, mem.keys)
        reference.rebuild_from_counters(counters)
        return MeasuredRecovery(
            strategy="root_check",
            counter_blocks_read=1,
            nodes_recomputed=0,
            root_ok=reference.root == durable,
            estimate=model._estimate_from_counts("root_check", 1, 0),
        )

    if scheme is UpdateScheme.TRIAD_NVM:
        if triad_persist_levels <= 0:
            raise ValueError("triad_persist_levels must be positive")
        persisted = min(triad_persist_levels, geometry.levels)
        frontier_level = geometry.levels - 1 - persisted
        # What Triad-NVM left durable: the tree levels at and below the
        # frontier, reconstructed here from the counter blocks (in
        # hardware they were persisted eagerly, so this rebuild is not
        # counted as recovery work).
        reference = BonsaiMerkleTree(geometry, mem.keys)
        reference.rebuild_from_counters(counters)
        if frontier_level < 0:
            return MeasuredRecovery(
                strategy="triad_frontier",
                counter_blocks_read=1,
                nodes_recomputed=0,
                root_ok=reference.root == durable,
                estimate=model._estimate_from_counts("triad_frontier", 1, 0),
            )
        tree = _CountingTree(geometry, mem.keys)
        frontier_nodes = [
            label
            for label in reference.snapshot()
            if geometry.level_of(label) == frontier_level + 1
        ]
        for label in frontier_nodes:
            tree.set_node_hash(label, reference.node_hash(label))
        reads = len(frontier_nodes)
        dirty = {geometry.parent(label) for label in frontier_nodes}
        for level in range(frontier_level, -1, -1):
            next_dirty = set()
            for label in sorted(dirty):
                tree.set_node_hash(
                    label,
                    tree._hash_children(
                        [tree.node_hash(child) for child in geometry.children(label)]
                    ),
                )
                if label != geometry.ROOT_LABEL:
                    next_dirty.add(geometry.parent(label))
            dirty = next_dirty
        return MeasuredRecovery(
            strategy="triad_frontier",
            counter_blocks_read=reads,
            nodes_recomputed=tree.hash_count,
            root_ok=tree.root == durable,
            estimate=model._estimate_from_counts(
                "triad_frontier", reads, tree.hash_count
            ),
        )

    if scheme is UpdateScheme.PHOENIX:
        # Lazy restoration's upfront cost: verify one leaf-to-root path
        # against the on-chip register; everything else overlaps
        # execution.  Sibling hashes come from the persisted metadata
        # image (reconstructed reference tree).
        reference = BonsaiMerkleTree(geometry, mem.keys)
        reference.rebuild_from_counters(counters)
        leaf = min(counters) if counters else 0
        tree = _CountingTree(geometry, mem.keys)
        current = tree._hash_leaf(counters.get(leaf, bytes(64)))
        label = geometry.leaf_label(leaf)
        reads = 1
        while label != geometry.ROOT_LABEL:
            parent = geometry.parent(label)
            siblings = [
                current if child == label else reference.node_hash(child)
                for child in geometry.children(parent)
            ]
            current = tree._hash_children(siblings)
            reads += 1
            label = parent
        return MeasuredRecovery(
            strategy="lazy_path",
            counter_blocks_read=reads,
            nodes_recomputed=tree.hash_count,
            root_ok=current == durable,
            estimate=model._estimate_from_counts(
                "lazy_path", reads, tree.hash_count
            ),
        )

    if scheme is UpdateScheme.ANUBIS:
        if shadow_entries <= 0:
            raise ValueError("shadow_entries must be positive")
        # Shadow-table replay: the shadow region records which metadata
        # lines were dirty — on the functional image, exactly the
        # touched counter pages (bounded by the table's capacity).
        entries = sorted(counters)[:shadow_entries]
        tree = _CountingTree(geometry, mem.keys)
        tree.rebuild_from_counters({page: counters[page] for page in entries})
        return MeasuredRecovery(
            strategy="shadow_replay",
            counter_blocks_read=len(entries),
            nodes_recomputed=tree.hash_count,
            root_ok=tree.root == durable and len(entries) == len(counters),
            estimate=model._estimate_from_counts(
                "shadow_replay", len(entries), tree.hash_count
            ),
        )

    # Default: the paper's counter-block rebuild, restricted to what is
    # actually durable (the measured twin of the "touched" strategy).
    tree = _CountingTree(geometry, mem.keys)
    tree.rebuild_from_counters(counters)
    return MeasuredRecovery(
        strategy="touched",
        counter_blocks_read=len(counters),
        nodes_recomputed=tree.hash_count,
        root_ok=tree.root == durable,
        estimate=model._estimate_from_counts(
            "touched", len(counters), tree.hash_count
        ),
    )
