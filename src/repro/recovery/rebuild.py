"""Post-crash recovery-time estimation.

Recovering a secure NVMM means re-establishing the BMT: read the
persisted counter blocks, recompute the tree, and compare the root
against the on-chip register.  The paper assumes this procedure
(§III: "Recovering from a crash requires recomputing the BMT root and
validating it against the stored root") but does not evaluate its
latency; related work (Triad-NVM, Anubis) shows it dominates recovery.

This model estimates recovery time for two strategies:

* **full** — rebuild the whole tree from every counter block (no extra
  metadata, longest recovery);
* **touched** — rebuild only the subtrees of pages that were ever
  written (requires a persisted touched-page map, e.g. allocation
  bitmaps; sparse workloads recover much faster).

Costs: one NVM block read per counter block fetched, one MAC-unit pass
per recomputed node, with a configurable number of parallel MAC units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.crypto.bmt import BMTGeometry

STRATEGIES = ("full", "touched")


@dataclass
class RecoveryEstimate:
    """Breakdown of an estimated recovery."""

    strategy: str
    counter_blocks_read: int
    nodes_recomputed: int
    read_cycles: int
    hash_cycles: int

    @property
    def total_cycles(self) -> int:
        # Reads and hashing pipeline against each other; the longer
        # stream dominates, the shorter adds only its ramp.
        return max(self.read_cycles, self.hash_cycles) + min(
            self.read_cycles, self.hash_cycles
        ) // 8

    def total_seconds(self, clock_ghz: float = 4.0) -> float:
        return self.total_cycles / (clock_ghz * 1e9)


class RecoveryTimeModel:
    """Estimates BMT reconstruction latency after a crash."""

    def __init__(
        self,
        geometry: BMTGeometry,
        mac_latency: int = 40,
        nvm_read_cycles: int = 240,
        read_bandwidth_cycles: int = 8,
        hash_units: int = 4,
    ) -> None:
        """Create a model.

        Args:
            geometry: Tree shape.
            mac_latency: Cycles per node hash.
            nvm_read_cycles: Latency of one counter-block read.
            read_bandwidth_cycles: Channel occupancy per block read
                (streams of reads are bandwidth-bound, not latency-bound).
            hash_units: Parallel MAC units available to the rebuild.
        """
        if hash_units <= 0:
            raise ValueError("hash_units must be positive")
        self.geometry = geometry
        self.mac_latency = mac_latency
        self.nvm_read_cycles = nvm_read_cycles
        self.read_bandwidth_cycles = read_bandwidth_cycles
        self.hash_units = hash_units

    # ------------------------------------------------------------------
    # node counting
    # ------------------------------------------------------------------

    def full_rebuild_nodes(self) -> int:
        """Nodes recomputed by a whole-tree rebuild."""
        return sum(
            self.geometry.nodes_at_level(level)
            for level in range(self.geometry.levels)
        )

    def touched_rebuild_nodes(self, touched_pages: Iterable[int]) -> int:
        """Nodes recomputed when only touched subtrees are rebuilt.

        Every touched leaf is rehashed, then each distinct ancestor once.
        """
        labels: Set[int] = set()
        for page in touched_pages:
            labels.update(self.geometry.update_path(page))
        return len(labels)

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------

    def estimate(
        self,
        strategy: str = "full",
        touched_pages: Optional[Iterable[int]] = None,
    ) -> RecoveryEstimate:
        """Estimate recovery latency.

        Args:
            strategy: ``"full"`` or ``"touched"``.
            touched_pages: Required for the ``touched`` strategy.

        Returns:
            A :class:`RecoveryEstimate`.
        """
        if strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}")
        if strategy == "full":
            reads = self.geometry.num_leaves
            nodes = self.full_rebuild_nodes()
        else:
            if touched_pages is None:
                raise ValueError("touched strategy requires touched_pages")
            pages = set(touched_pages)
            reads = len(pages)
            nodes = self.touched_rebuild_nodes(pages)
        read_cycles = self.nvm_read_cycles + reads * self.read_bandwidth_cycles
        hash_cycles = math.ceil(nodes / self.hash_units) * self.mac_latency
        return RecoveryEstimate(
            strategy=strategy,
            counter_blocks_read=reads,
            nodes_recomputed=nodes,
            read_cycles=read_cycles,
            hash_cycles=hash_cycles,
        )

    def speedup_touched_vs_full(self, touched_pages: Iterable[int]) -> float:
        """How much faster touched-only recovery is for a workload."""
        full = self.estimate("full")
        touched = self.estimate("touched", touched_pages)
        if touched.total_cycles == 0:
            return float("inf")
        return full.total_cycles / touched.total_cycles
