"""Post-crash recovery verification.

The checker replays the recovery procedure the paper assumes: rebuild
the BMT from the persisted counter blocks and validate it against the
on-chip root register, then decrypt every data block with its persisted
counter and verify its stateful MAC.  Comparing decrypted plaintext
against the writer's intent distinguishes *wrong plaintext* from
*verification failure* — the two failure axes of Tables I and II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.bmt import BMTGeometry, BonsaiMerkleTree
from repro.crypto.counters import SplitCounter
from repro.crypto.encryption import CounterModeEncryptor
from repro.crypto.keys import KeySchedule
from repro.crypto.mac import StatefulMAC
from repro.recovery.tuple_state import DurableRoot, NVMImage

BLOCKS_PER_PAGE = 64

# ----------------------------------------------------------------------
# application-state differential classification
# ----------------------------------------------------------------------
#
# The app campaign (repro.campaign.app_engine) recovers a KV store from
# the crashed image and asks which legal state it landed in.  A store
# that equals neither frame is the application-level analogue of silent
# corruption: verification accepted the image, but the program sees a
# state it could never have been in (torn or stale values).

APP_PRE_OP = "pre_op"
APP_POST_OP = "post_op"
APP_MISMATCH = "mismatch"
APP_DETECTED = "detected"
APP_OUTCOMES = (APP_PRE_OP, APP_POST_OP, APP_MISMATCH, APP_DETECTED)


def classify_app_state(
    recovered: Dict[int, bytes],
    pre_state: Dict[int, bytes],
    post_state: Dict[int, bytes],
) -> str:
    """Classify a recovered application state against its two legal frames.

    Args:
        recovered: ``key -> value`` the application's recovery returned.
        pre_state: The state before the in-flight operation.
        post_state: The state after it.

    Returns:
        :data:`APP_POST_OP` when the recovered store equals the post-op
        frame (checked first: a completed no-op is indistinguishable
        from its pre-state and counts as completed), :data:`APP_PRE_OP`
        for the pre-op frame, else :data:`APP_MISMATCH`.
    """
    if recovered == post_state:
        return APP_POST_OP
    if recovered == pre_state:
        return APP_PRE_OP
    return APP_MISMATCH


@dataclass
class BlockOutcome:
    """Recovery outcome for one data block."""

    block: int
    plaintext_correct: bool
    mac_ok: bool
    recovered_plaintext: bytes

    @property
    def ok(self) -> bool:
        return self.plaintext_correct and self.mac_ok


@dataclass
class RecoveryReport:
    """Whole-system recovery outcome.

    Attributes:
        bmt_ok: Rebuilt tree root matches the on-chip root register.
        blocks: Per-block outcomes for every checked block.
    """

    bmt_ok: bool
    blocks: List[BlockOutcome] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Full success: plaintexts correct, MACs verify, BMT verifies.

        A report that checked zero blocks is *not* "recovered" — it is
        :attr:`vacuous`; use :attr:`consistent` for the verification-only
        question where an empty image is legitimately consistent.
        """
        return self.bmt_ok and bool(self.blocks) and all(b.ok for b in self.blocks)

    @property
    def vacuous(self) -> bool:
        """True when no blocks were checked (nothing to recover)."""
        return not self.blocks

    @property
    def consistent(self) -> bool:
        """Cryptographic verification only: BMT + MACs (vacuously true).

        Unlike :attr:`recovered` this ignores the differential plaintext
        comparison, so it answers "would the integrity machinery accept
        this image?" — the axis on which silent corruption hides.
        """
        return self.bmt_ok and all(b.mac_ok for b in self.blocks)

    @property
    def mac_failures(self) -> List[int]:
        return [b.block for b in self.blocks if not b.mac_ok]

    @property
    def wrong_plaintext(self) -> List[int]:
        return [b.block for b in self.blocks if not b.plaintext_correct]

    def outcome_row(self, block: int) -> str:
        """Render a block's outcome in the style of Table I's column.

        E.g. ``"Wrong plaintext, MAC failure"`` or ``"BMT failure"``.
        """
        entry = next((b for b in self.blocks if b.block == block), None)
        if entry is None:
            raise KeyError(f"block {block} was not checked")
        parts = []
        if not entry.plaintext_correct:
            parts.append("Wrong plaintext")
        failures = []
        if not self.bmt_ok:
            failures.append("BMT")
        if not entry.mac_ok:
            failures.append("MAC")
        if failures:
            parts.append(" & ".join(failures) + " failure")
        return ", ".join(parts) if parts else "Recovered"


class RecoveryChecker:
    """Replays crash recovery over an :class:`NVMImage`."""

    def __init__(self, geometry: BMTGeometry, keys: KeySchedule) -> None:
        self.geometry = geometry
        self.keys = keys
        self._encryptor = CounterModeEncryptor(keys)
        self._mac = StatefulMAC(keys)

    def rebuild_root(self, image: NVMImage) -> bytes:
        """Recompute the BMT root from the persisted counter blocks."""
        tree = BonsaiMerkleTree(self.geometry, self.keys)
        return tree.rebuild_from_counters(dict(image.counters))

    def check(
        self,
        image: NVMImage,
        durable_root: DurableRoot,
        expected: Dict[int, bytes],
    ) -> RecoveryReport:
        """Run recovery.

        Args:
            image: Post-crash NVM contents.
            durable_root: On-chip persistent root register.
            expected: ``block -> plaintext`` the crash recovery observer
                expects (the values whose persists were completed).

        Returns:
            A :class:`RecoveryReport`.
        """
        rebuilt = self.rebuild_root(image)
        bmt_ok = durable_root.value is not None and rebuilt == durable_root.value
        report = RecoveryReport(bmt_ok=bmt_ok)
        for block, want in sorted(expected.items()):
            report.blocks.append(self._check_block(image, block, want))
        return report

    def _check_block(self, image: NVMImage, block: int, want: bytes) -> BlockOutcome:
        page, block_in_page = block >> 6, block & (BLOCKS_PER_PAGE - 1)
        counter_raw = image.counters.get(page)
        counter = (
            SplitCounter.from_bytes(counter_raw)
            if counter_raw is not None
            else SplitCounter()
        )
        seed = counter.seed(block_in_page)
        address = block << 6
        ciphertext = image.data.get(block, bytes(64))
        plaintext = self._encryptor.decrypt(ciphertext, address, seed)
        stored_mac = image.macs.get(block, bytes(8))
        mac_ok = self._mac.verify(ciphertext, address, seed, stored_mac)
        return BlockOutcome(
            block=block,
            plaintext_correct=plaintext == want,
            mac_ok=mac_ok,
            recovered_plaintext=plaintext,
        )
