"""Crash injection and post-crash recovery verification.

These components implement the paper's §III analysis as executable
experiments: drop or reorder memory-tuple items across a simulated power
failure and observe exactly the recovery outcomes of Tables I and II —
wrong plaintext, MAC verification failure, BMT verification failure.
"""

from repro.recovery.tuple_state import NVMImage, DurableRoot
from repro.recovery.crash import CrashInjector, DropSpec
from repro.recovery.rebuild import RecoveryEstimate, RecoveryTimeModel
from repro.recovery.checker import (
    BlockOutcome,
    RecoveryChecker,
    RecoveryReport,
)

__all__ = [
    "NVMImage",
    "DurableRoot",
    "CrashInjector",
    "DropSpec",
    "RecoveryEstimate",
    "RecoveryTimeModel",
    "BlockOutcome",
    "RecoveryChecker",
    "RecoveryReport",
]
