"""Crash injection: selectively losing tuple items across a power failure.

The injector models the failure modes of §III.  A *compliant* system
(2SP, ordered root updates) never exposes these states; the experiments
run the functional memory with atomic gathering disabled, drop the
specified items, and let the recovery checker observe the damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from repro.mem.wpq import TupleItem


@dataclass(frozen=True)
class DropSpec:
    """Which tuple items of which persist fail to persist.

    Attributes:
        persist_id: The victim persist.
        items: Tuple components that never reach NVM (e.g.
            ``{TupleItem.MAC}`` reproduces Table I row 2).  Any iterable
            of :class:`TupleItem` is accepted and coerced to a
            ``frozenset`` so the spec stays hashable and immutable.
    """

    persist_id: int
    items: frozenset

    def __post_init__(self) -> None:
        items = frozenset(self.items)
        bad = {i for i in items if not isinstance(i, TupleItem)}
        if bad:
            raise TypeError(f"items must be TupleItem values, got {bad}")
        object.__setattr__(self, "items", items)


class CrashInjector:
    """Accumulates drop specs and answers 'did this item persist?'."""

    def __init__(self) -> None:
        self._drops: Dict[int, Set[TupleItem]] = {}

    def drop(self, persist_id: int, *items: TupleItem) -> "CrashInjector":
        """Schedule items of a persist to be lost at the crash.

        Returns ``self`` so specs can be chained.
        """
        if not items:
            raise ValueError("specify at least one tuple item to drop")
        self._drops.setdefault(persist_id, set()).update(items)
        return self

    def add_spec(self, spec: DropSpec) -> "CrashInjector":
        """Apply a :class:`DropSpec`; empty specs are a no-op."""
        if spec.items:
            self.drop(spec.persist_id, *spec.items)
        return self

    @classmethod
    def from_specs(cls, specs: Iterable[DropSpec]) -> "CrashInjector":
        injector = cls()
        for spec in specs:
            injector.add_spec(spec)
        return injector

    def survives(self, persist_id: int, item: TupleItem) -> bool:
        """Whether this persist's item reaches NVM despite the crash."""
        return item not in self._drops.get(persist_id, set())

    @property
    def empty(self) -> bool:
        return not self._drops

    def dropped_items(self, persist_id: int) -> Set[TupleItem]:
        return set(self._drops.get(persist_id, set()))
