"""Campaign aggregation: summaries, Table I/II regeneration, gating.

This module turns a list of classified
:class:`~repro.campaign.engine.CampaignCell` objects into the paper's
tables and into a hard pass/fail verdict:

* :func:`summarize` — scheme x outcome count matrix.
* :func:`table1` / :func:`table2` — regenerate Tables I and II from the
  unordered-strawman cells of the campaign (not from hand-picked demo
  runs), pinning the paper's exact outcome strings.
* :func:`verify_campaign` — raises :class:`CampaignViolation` when a
  compliant (2SP + ordered-root) configuration shows *any* silent
  corruption or non-recovered cell, when any cell broke a mechanical
  WPQ invariant, or when a Table I/II row does not match the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.report import Table
from repro.campaign.app_engine import AppCampaignCell
from repro.campaign.engine import (
    OUTCOME_INVARIANT_VIOLATION,
    OUTCOME_RECOVERED,
    OUTCOME_SILENT_CORRUPTION,
    OUTCOMES,
    CampaignCell,
)
from repro.recovery.checker import APP_MISMATCH, APP_OUTCOMES

TABLE1_SCHEME = "unordered"
TABLE1_WORKLOAD = "overwrite"

TABLE1_EXPECTED: Dict[str, str] = {
    "root_ack": "BMT failure",
    "mac": "MAC failure",
    "counter": "Wrong plaintext, BMT & MAC failure",
    "data": "Wrong plaintext, MAC failure",
}
"""Paper Table I: outcome of losing one tuple component of the youngest
persist of an overwritten block."""

TABLE2_WORKLOAD = "ordered_pair"

TABLE2_ROWS = (
    # (label, victim, dropped item, observed block, expected outcome)
    ("gamma of P1 after P2", 0, "counter", 0, "Wrong plaintext, BMT & MAC failure"),
    ("M of P1 after P2", 0, "mac", 0, "MAC failure"),
    ("R of P2 before P1 lost", 1, "root_ack", 64, "BMT failure"),
)
"""Paper Table II: ordering violations over the persist pair P1 -> P2."""


class CampaignViolation(RuntimeError):
    """The campaign observed an outcome the paper's invariants forbid."""


def _cell(
    cells: Iterable[CampaignCell],
    scheme: str,
    workload: str,
    victim: int,
    drops: Sequence[str],
) -> Optional[CampaignCell]:
    want = tuple(sorted(drops))
    for cell in cells:
        if (
            cell.scheme == scheme
            and cell.workload == workload
            and cell.victim == victim
            and tuple(cell.drops) == want
        ):
            return cell
    return None


def summarize(cells: Sequence[CampaignCell]) -> Table:
    """Scheme x outcome count matrix over the whole campaign.

    The ``guarantees`` column distinguishes fully compliant schemes
    (both paper invariants) from the zoo's documented relaxations
    (``relaxed``: 2SP without ordered root, recovery adopts the rebuilt
    root) and from non-recoverable configurations.
    """
    table = Table(
        "Crash-injection campaign summary",
        ["scheme", "guarantees", "cells"] + list(OUTCOMES),
    )
    schemes: List[str] = []
    for cell in cells:
        if cell.scheme not in schemes:
            schemes.append(cell.scheme)
    for scheme in schemes:
        mine = [c for c in cells if c.scheme == scheme]
        counts = {outcome: 0 for outcome in OUTCOMES}
        for cell in mine:
            counts[cell.classification] += 1
        if mine[0].compliant:
            guarantees = "compliant"
        elif mine[0].relaxed:
            guarantees = "relaxed"
        else:
            guarantees = "none"
        table.add_row(
            scheme,
            guarantees,
            len(mine),
            *(counts[outcome] for outcome in OUTCOMES),
        )
    return table


def summarize_app(
    cells: Sequence[AppCampaignCell],
    plan_sets: Optional[Sequence] = None,
) -> Table:
    """(Scheme, idiom) x app-outcome matrix, with pruning accounting.

    Args:
        cells: Classified app-campaign cells.
        plan_sets: The :class:`~repro.campaign.plans.PlanSet` objects the
            cells were generated from; when given, the exhaustive-cell
            and skipped-cell counters (the Silhouette headline number)
            are added per row.
    """
    table = Table(
        "Application crash-plan campaign summary",
        ["scheme", "idiom", "guarantees", "plans"]
        + list(APP_OUTCOMES)
        + ["exhaustive", "skipped"],
    )
    groups: List[tuple] = []
    for cell in cells:
        key = (cell.scheme, cell.idiom)
        if key not in groups:
            groups.append(key)
    for scheme, idiom in groups:
        mine = [c for c in cells if (c.scheme, c.idiom) == (scheme, idiom)]
        counts = {outcome: 0 for outcome in APP_OUTCOMES}
        for cell in mine:
            counts[cell.classification] += 1
        if mine[0].compliant:
            guarantees = "compliant"
        elif mine[0].relaxed:
            guarantees = "relaxed"
        else:
            guarantees = "none"
        exhaustive = skipped = 0
        for plan_set in plan_sets or ():
            if (plan_set.scheme, plan_set.idiom) == (scheme, idiom):
                exhaustive += plan_set.exhaustive_cells
                skipped += plan_set.skipped_cells
        table.add_row(
            scheme,
            idiom,
            guarantees,
            len(mine),
            *(counts[outcome] for outcome in APP_OUTCOMES),
            exhaustive,
            skipped,
        )
    return table


def _verify_app_cells(cells: Sequence[AppCampaignCell], failures: List[str]) -> None:
    """App-campaign arm of the gate: mismatch = app-level silent corruption."""
    for cell in cells:
        where = (
            f"{cell.scheme}/{cell.idiom}/{cell.workload} "
            f"victim={cell.victim} drops={','.join(cell.drops) or '-'}"
        )
        if cell.problems:
            failures.append(f"{where}: mechanical invariant broke: {cell.problems}")
        if cell.classification == APP_MISMATCH and (cell.compliant or cell.relaxed):
            label = "compliant" if cell.compliant else "relaxed"
            failures.append(
                f"{where}: APP-STATE MISMATCH in a {label} scheme "
                f"(recovered {cell.recovered!r}, legal frames "
                f"pre={cell.expected_pre!r} post={cell.expected_post!r})"
            )
        elif (cell.compliant or cell.relaxed) and not cell.consistent_frame:
            label = "compliant" if cell.compliant else "relaxed"
            failures.append(
                f"{where}: {label} scheme classified {cell.classification}"
            )


def _table1_victim(cells: Sequence[CampaignCell]) -> int:
    """Table I's crash point: the youngest persist of the overwrite."""
    for cell in cells:
        if cell.scheme == TABLE1_SCHEME and cell.workload == TABLE1_WORKLOAD:
            return cell.total_persists - 1
    raise CampaignViolation(
        "campaign output has no unordered/overwrite cells; "
        "Table I cannot be regenerated"
    )


def table1(cells: Sequence[CampaignCell]) -> Table:
    """Regenerate paper Table I from the campaign's unordered cells."""
    victim = _table1_victim(cells)
    table = Table(
        "Table I: losing one tuple item of an in-flight persist (unordered)",
        ["dropped item", "outcome", "expected", "match"],
    )
    for item, expected in TABLE1_EXPECTED.items():
        cell = _cell(cells, TABLE1_SCHEME, TABLE1_WORKLOAD, victim, (item,))
        outcome = cell.block_outcome(0) if cell is not None else "<missing cell>"
        table.add_row(item, outcome, expected, "yes" if outcome == expected else "NO")
    return table


def table2(cells: Sequence[CampaignCell]) -> Table:
    """Regenerate paper Table II from the campaign's unordered cells."""
    table = Table(
        "Table II: persist-order violations over P1 -> P2 (unordered)",
        ["violation", "outcome", "expected", "match"],
    )
    for label, victim, item, block, expected in TABLE2_ROWS:
        cell = _cell(cells, TABLE1_SCHEME, TABLE2_WORKLOAD, victim, (item,))
        outcome = (
            cell.block_outcome(block) if cell is not None else "<missing cell>"
        )
        table.add_row(label, outcome, expected, "yes" if outcome == expected else "NO")
    return table


def verify_campaign(
    cells: Sequence, require_tables: bool = True
) -> None:
    """Gate the campaign: raise on any paper-invariant violation.

    Accepts memory-level :class:`CampaignCell` and application-level
    :class:`AppCampaignCell` objects, mixed freely.  App cells are held
    to the mirror of the silent-corruption gate: a ``mismatch``
    classification (verification accepted the image but the recovered
    store is in a state the program never produced) in a compliant or
    relaxed scheme fails loudly, as does any classification outside the
    legal pre-op/post-op frames.

    Args:
        cells: Classified campaign cells (memory-level, app-level, or
            both).
        require_tables: Also require every Table I/II row to be present
            and to match the paper (disable for filtered grids that
            exclude the unordered strawman or its workloads — forced
            off when no memory-level cells are present).

    Raises:
        CampaignViolation: a compliant scheme silently corrupted or
            failed to recover, an app cell mismatched or left the legal
            frames, a mechanical WPQ invariant broke, or a regenerated
            Table I/II row mismatches the paper.
    """
    failures: List[str] = []
    app_cells = [c for c in cells if isinstance(c, AppCampaignCell)]
    cells = [c for c in cells if not isinstance(c, AppCampaignCell)]
    _verify_app_cells(app_cells, failures)
    if not cells:
        require_tables = False

    for cell in cells:
        where = (
            f"{cell.scheme}/{cell.workload} victim={cell.victim} "
            f"drops={','.join(cell.drops) or '-'}"
        )
        if cell.problems:
            failures.append(f"{where}: mechanical invariant broke: {cell.problems}")
        if cell.compliant or cell.relaxed:
            # Relaxed schemes (documented Invariant-2 relaxation with
            # root adoption) are held to the same recovery bar as fully
            # compliant ones: every cell recovered, nothing silent.
            label = "compliant" if cell.compliant else "relaxed"
            if cell.consistent and not cell.intent_ok:
                failures.append(f"{where}: SILENT CORRUPTION in a {label} scheme")
            elif cell.classification != OUTCOME_RECOVERED:
                failures.append(
                    f"{where}: {label} scheme classified {cell.classification}"
                )
        elif cell.classification == OUTCOME_INVARIANT_VIOLATION:
            failures.append(f"{where}: mechanical invariant violation")

    if require_tables:
        victim = _table1_victim(cells)
        for item, expected in TABLE1_EXPECTED.items():
            cell = _cell(cells, TABLE1_SCHEME, TABLE1_WORKLOAD, victim, (item,))
            if cell is None:
                failures.append(f"Table I row for {item}: cell missing from campaign")
            elif cell.block_outcome(0) != expected:
                failures.append(
                    f"Table I row for {item}: got {cell.block_outcome(0)!r}, "
                    f"expected {expected!r}"
                )
        for label, row_victim, item, block, expected in TABLE2_ROWS:
            cell = _cell(cells, TABLE1_SCHEME, TABLE2_WORKLOAD, row_victim, (item,))
            if cell is None:
                failures.append(f"Table II row {label!r}: cell missing from campaign")
            elif cell.block_outcome(block) != expected:
                failures.append(
                    f"Table II row {label!r}: got {cell.block_outcome(block)!r}, "
                    f"expected {expected!r}"
                )

    if failures:
        raise CampaignViolation(
            f"{len(failures)} campaign violation(s):\n  " + "\n  ".join(failures)
        )
