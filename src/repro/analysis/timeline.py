"""Timeline analysis: figure-style occupancy summaries from telemetry.

The paper's pipelining argument (§IV-B) is about *occupancy*: under
strict sequential updates (sp) at most one BMT level is busy at a time,
while the pipelined scheme keeps several levels occupied concurrently.
This module derives those occupancy numbers from a telemetry event
stream instead of from the analytical model, so the reproduced claim is
measured on the same simulations the performance figures use:

* per-BMT-level **busy fraction** — the union of that level's update
  intervals divided by the observation window;
* **average occupied levels** — the sum of the busy fractions, i.e. the
  expected number of simultaneously busy levels at a random cycle;
* WPQ occupancy / PTT-ETT utilization gauge rollups.

``plp-repro timeline`` renders the comparison table and exports the raw
streams (Chrome trace JSON for Perfetto, JSONL for pandas).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import Table
from repro.core.schemes import UpdateScheme
from repro.system.config import SystemConfig
from repro.system.timing import SimResult, TraceSimulator
from repro.telemetry.bus import Telemetry
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.export import paired_spans
from repro.workloads.spec_profiles import SPEC_PROFILES, profile_trace

DEFAULT_TIMELINE_SCHEMES = ("sp", "pipeline")

_LEVEL_PREFIX = "bmt.L"


def merged_length(intervals: Sequence[Tuple[int, int]]) -> int:
    """Total length of the union of half-open ``[start, end)`` intervals."""
    if not intervals:
        return 0
    ordered = sorted(intervals)
    total = 0
    current_start, current_end = ordered[0]
    for start, end in ordered[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    total += current_end - current_start
    return total


def level_intervals(telemetry: Telemetry) -> Dict[int, List[Tuple[int, int]]]:
    """Per-BMT-level update intervals (level 0 = root) from the stream.

    Both span sources are understood: closed-form scoreboards emit
    ``BMT_LEVEL_SPAN`` complete spans, the cycle-accurate engine emits
    enter/leave pairs that :func:`paired_spans` closes.
    """
    per_level: Dict[int, List[Tuple[int, int]]] = {}
    for span in paired_spans(telemetry.events()):
        if not span.track.startswith(_LEVEL_PREFIX):
            continue
        level = int(span.track[len(_LEVEL_PREFIX) :])
        per_level.setdefault(level, []).append((span.time, span.end()))
    return per_level


def level_busy_fractions(
    telemetry: Telemetry,
) -> Tuple[Dict[int, float], Tuple[int, int]]:
    """Busy fraction per BMT level over the common observation window.

    Returns:
        ``(fractions, (t0, t1))`` where the window spans the first span
        start to the last span end across *all* levels, so fractions of
        different levels are comparable.
    """
    per_level = level_intervals(telemetry)
    if not per_level:
        return {}, (0, 0)
    t0 = min(start for ivs in per_level.values() for start, _ in ivs)
    t1 = max(end for ivs in per_level.values() for _, end in ivs)
    window = max(1, t1 - t0)
    fractions = {
        level: merged_length(ivs) / window for level, ivs in sorted(per_level.items())
    }
    return fractions, (t0, t1)


def average_occupied_levels(telemetry: Telemetry) -> float:
    """Expected number of simultaneously busy BMT levels.

    The sum of per-level busy fractions: at a uniformly random cycle of
    the observation window, how many levels hold an in-flight update on
    average.  ~1 for the strict sequential baseline (one level at a
    time, minus idle gaps); noticeably higher once updates pipeline.
    """
    fractions, _ = level_busy_fractions(telemetry)
    return sum(fractions.values())


@dataclass
class SchemeTimeline:
    """One scheme's simulation result plus its telemetry-derived occupancy."""

    scheme: str
    result: SimResult
    telemetry: Telemetry
    level_busy: Dict[int, float] = field(default_factory=dict)
    window: Tuple[int, int] = (0, 0)

    @property
    def occupied_levels(self) -> float:
        return sum(self.level_busy.values())

    def gauge_summary(self, name: str) -> Optional[dict]:
        series = self.telemetry.gauges().get(name)
        return series.summary() if series is not None else None


@dataclass
class TimelineReport:
    """Timelines of several schemes over the same trace."""

    benchmark: str
    kilo_instructions: int
    seed: int
    timelines: List[SchemeTimeline]

    def telemetries(self) -> Dict[str, Telemetry]:
        return {t.scheme: t.telemetry for t in self.timelines}

    def occupancy_table(self) -> Table:
        table = Table(
            f"BMT level occupancy — {self.benchmark} "
            f"({self.kilo_instructions} KI, seed {self.seed})",
            ["scheme", "cycles", "avg occupied levels", "busiest level",
             "wpq occ (mean/p95)", "events"],
        )
        for timeline in self.timelines:
            if timeline.level_busy:
                busiest, fraction = max(
                    timeline.level_busy.items(), key=lambda kv: kv[1]
                )
                busiest_cell = f"L{busiest} ({fraction:.0%})"
            else:
                busiest_cell = "-"
            wpq = timeline.gauge_summary("wpq.occupancy")
            wpq_cell = f"{wpq['mean']:.1f}/{wpq['p95']:.1f}" if wpq else "-"
            table.add_row(
                timeline.scheme,
                f"{timeline.result.cycles:,}",
                f"{timeline.occupied_levels:.2f}",
                busiest_cell,
                wpq_cell,
                f"{timeline.telemetry.emitted:,}",
            )
        return table

    def level_table(self) -> Table:
        """Per-level busy fraction breakdown (level 0 = root)."""
        levels = sorted(
            {level for t in self.timelines for level in t.level_busy}
        )
        table = Table(
            "Per-level busy fraction (L0 = root)",
            ["scheme"] + [f"L{level}" for level in levels],
        )
        for timeline in self.timelines:
            table.add_row(
                timeline.scheme,
                *[
                    f"{timeline.level_busy.get(level, 0.0):.1%}"
                    for level in levels
                ],
            )
        return table


def run_timeline(
    benchmark: str,
    schemes: Sequence[str] = DEFAULT_TIMELINE_SCHEMES,
    kilo_instructions: int = 10,
    seed: int = 2020,
    warmup_fraction: float = 0.2,
    config: Optional[SystemConfig] = None,
    telemetry_config: Optional[TelemetryConfig] = None,
) -> TimelineReport:
    """Simulate ``benchmark`` under each scheme with telemetry enabled.

    Runs in-process (unlike the sweep runner) because the telemetry bus
    lives on the simulator; results and event streams are deterministic
    for a fixed ``(benchmark, ki, seed)``.
    """
    if benchmark not in SPEC_PROFILES:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    profile = SPEC_PROFILES[benchmark]
    trace = profile_trace(benchmark, kilo_instructions, seed)
    tel_config = telemetry_config or TelemetryConfig(enabled=True)
    base = config or SystemConfig()
    timelines = []
    for scheme in schemes:
        cfg = base.variant(
            scheme=UpdateScheme.from_name(scheme) if isinstance(scheme, str) else scheme,
            core_ipc=profile.core_ipc,
            telemetry=tel_config,
        )
        simulator = TraceSimulator(cfg)
        result = simulator.run(trace, warmup_fraction=warmup_fraction)
        telemetry = simulator.telemetry
        assert telemetry is not None  # tel_config.enabled is required
        fractions, window = level_busy_fractions(telemetry)
        timelines.append(
            SchemeTimeline(
                scheme=cfg.scheme.value,
                result=result,
                telemetry=telemetry,
                level_busy=fractions,
                window=window,
            )
        )
    return TimelineReport(
        benchmark=benchmark,
        kilo_instructions=kilo_instructions,
        seed=seed,
        timelines=timelines,
    )
