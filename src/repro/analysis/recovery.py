"""The cross-paper recovery-latency vs runtime-overhead table.

The scheme zoo (``UpdateScheme``) exists to compare designs on the axis
the PLP paper assumes away: how long a crashed machine takes to
re-establish its integrity tree.  This module pairs each scheme's
steady-state runtime overhead (slowdown vs the non-persistent
``secure_wb`` baseline on a Table V benchmark) with its estimated
post-crash recovery latency (:mod:`repro.recovery.rebuild`), and
renders both as one :class:`~repro.analysis.report.Table` — the trade
space of Triad-NVM, Phoenix, SecPM, Anubis, and the PLP designs
side by side (see PAPERS.md for the sources).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.report import Table
from repro.core.schemes import UpdateScheme
from repro.recovery.rebuild import RecoveryTimeModel
from repro.system.config import SystemConfig
from repro.system.factory import run_benchmark

BASELINE_SCHEME = UpdateScheme.SECURE_WB

RECOVERY_TABLE_SCHEMES: Tuple[UpdateScheme, ...] = (
    UpdateScheme.SP,
    UpdateScheme.PIPELINE,
    UpdateScheme.O3,
    UpdateScheme.COALESCING,
    UpdateScheme.TRIAD_NVM,
    UpdateScheme.PHOENIX,
    UpdateScheme.SECPM_WT,
    UpdateScheme.ANUBIS,
)
"""The acceptance-criteria roster: the paper's evaluated PLP schemes
plus the four zoo designs."""


def classification(scheme: UpdateScheme) -> str:
    """How the crash campaign classifies the scheme's guarantees."""
    if scheme.crash_recoverable:
        return "invariants 1+2"
    if scheme.relaxes_root_order:
        return "relaxed root order"
    return "not recoverable"


@dataclass
class RecoveryRow:
    """One scheme's position in the recovery/overhead trade space."""

    scheme: UpdateScheme
    slowdown: float
    recovery_strategy: str
    recovery_reads: int
    recovery_nodes: int
    recovery_cycles: int
    recovery_ms: float
    classification: str


def recovery_rows(
    benchmark: str = "gcc",
    schemes: Sequence[UpdateScheme] = RECOVERY_TABLE_SCHEMES,
    kilo_instructions: int = 20,
    config: Optional[SystemConfig] = None,
    touched_pages: Optional[Iterable[int]] = None,
    seed: int = 2020,
) -> List[RecoveryRow]:
    """Measure runtime overhead and estimate recovery per scheme.

    Args:
        benchmark: Table V workload name driving the overhead runs.
        schemes: Schemes to compare (baseline ``secure_wb`` is always
            added for normalization, never reported).
        kilo_instructions: Trace length for the overhead runs.
        config: Base configuration (Table III defaults when omitted).
        touched_pages: Optional persisted touched-page map; whole-tree
            schemes then recover ``touched`` instead of ``full``.
        seed: Trace generation seed.
    """
    base = config or SystemConfig()
    roster = list(dict.fromkeys([BASELINE_SCHEME, *schemes]))
    results = run_benchmark(
        benchmark,
        roster,
        kilo_instructions=kilo_instructions,
        config=base,
        seed=seed,
    )
    baseline = results[BASELINE_SCHEME.value]
    model = RecoveryTimeModel.from_config(base)
    pages = list(touched_pages) if touched_pages is not None else None
    rows = []
    for scheme in schemes:
        estimate = model.estimate_for_scheme(
            scheme,
            touched_pages=pages,
            triad_persist_levels=base.triad_persist_levels,
        )
        rows.append(
            RecoveryRow(
                scheme=scheme,
                slowdown=results[scheme.value].slowdown_vs(baseline),
                recovery_strategy=estimate.strategy,
                recovery_reads=estimate.counter_blocks_read,
                recovery_nodes=estimate.nodes_recomputed,
                recovery_cycles=estimate.total_cycles,
                recovery_ms=estimate.total_seconds(base.clock_ghz) * 1e3,
                classification=classification(scheme),
            )
        )
    return rows


def recovery_table(rows: Sequence[RecoveryRow], benchmark: str = "gcc") -> Table:
    """Render recovery rows as the report table."""
    table = Table(
        f"Recovery latency vs runtime overhead ({benchmark}, "
        "slowdown normalized to secure_wb)",
        [
            "scheme",
            "slowdown",
            "strategy",
            "reads",
            "nodes",
            "recovery_cycles",
            "recovery_ms",
            "guarantees",
        ],
    )
    for row in rows:
        table.add_row(
            row.scheme.value,
            row.slowdown,
            row.recovery_strategy,
            row.recovery_reads,
            row.recovery_nodes,
            row.recovery_cycles,
            row.recovery_ms,
            row.classification,
        )
    return table


def build_recovery_table(
    benchmark: str = "gcc",
    schemes: Sequence[UpdateScheme] = RECOVERY_TABLE_SCHEMES,
    kilo_instructions: int = 20,
    config: Optional[SystemConfig] = None,
    touched_pages: Optional[Iterable[int]] = None,
    seed: int = 2020,
) -> Table:
    """One-call convenience: measure, estimate, and render."""
    rows = recovery_rows(
        benchmark,
        schemes,
        kilo_instructions=kilo_instructions,
        config=config,
        touched_pages=touched_pages,
        seed=seed,
    )
    return recovery_table(rows, benchmark)
