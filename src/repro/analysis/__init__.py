"""Result aggregation and table/figure rendering for the harness."""

from repro.analysis.report import Table, format_series, normalized

__all__ = ["Table", "format_series", "normalized"]
