"""Result aggregation and table/figure rendering for the harness."""

from repro.analysis.report import Table, format_series, normalized
from repro.analysis.campaign import (
    CampaignViolation,
    summarize,
    summarize_app,
    table1,
    table2,
    verify_campaign,
)

__all__ = [
    "CampaignViolation",
    "Table",
    "format_series",
    "normalized",
    "summarize",
    "summarize_app",
    "table1",
    "table2",
    "verify_campaign",
]
