"""Plain-text table and series rendering.

The benchmark harness prints every reproduced table/figure as aligned
text so that ``pytest benchmarks/ --benchmark-only -s`` shows the same
rows/series the paper reports, ready to paste into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


class Table:
    """A simple aligned text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Union[str, Number]) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
        lines = [self.title]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (README/docs)."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell: Union[str, Number]) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def normalized(
    results: Mapping[str, Number], baseline_key: str
) -> Dict[str, float]:
    """Normalize a metric map to one entry (the paper's 'normalized to
    secure_WB' presentation)."""
    base = results[baseline_key]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {key: value / base for key, value in results.items()}


def format_series(
    name: str, xs: Iterable[Number], ys: Iterable[Number], x_label: str = "x"
) -> str:
    """Render one figure series as aligned (x, y) pairs."""
    lines = [f"{name} [{x_label} -> value]"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:>10} -> {_fmt(float(y))}")
    return "\n".join(lines)
