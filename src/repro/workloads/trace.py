"""Memory trace container and record format.

A trace is a sequence of memory operations annotated with the number of
non-memory instructions preceding each (``gap``), whether the access
targets the persistent region, and explicit epoch barriers (``SFENCE``)
where the workload encodes them.  Addresses are byte addresses; block
and page arithmetic uses 64 B blocks and 4 KB pages throughout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

BLOCK_SHIFT = 6
PAGE_SHIFT = 12


class OpKind(enum.Enum):
    """Trace operation type."""

    LOAD = "L"
    STORE = "S"
    SFENCE = "F"


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        kind: Load, store, or persist barrier.
        address: Byte address (0 for SFENCE).
        gap: Non-memory instructions executed since the previous record.
        persistent: Whether the address lies in the persistent region
            (stack accesses are ``False`` under the paper's default).
    """

    kind: OpKind
    address: int = 0
    gap: int = 0
    persistent: bool = True

    @property
    def block(self) -> int:
        return self.address >> BLOCK_SHIFT

    @property
    def page(self) -> int:
        return self.address >> PAGE_SHIFT


class MemoryTrace:
    """An in-memory trace with summary statistics and (de)serialization."""

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None, name: str = "trace") -> None:
        self.name = name
        self.records: List[TraceRecord] = list(records) if records is not None else []

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total instructions: every record (sfence included) plus gaps."""
        return len(self.records) + sum(r.gap for r in self.records)

    def count(self, kind: OpKind, persistent_only: bool = False) -> int:
        return sum(
            1
            for r in self.records
            if r.kind is kind and (r.persistent or not persistent_only)
        )

    def stores_per_kilo_instruction(self, persistent_only: bool = False) -> float:
        """Store PPKI — comparable to Table V's 'num stores' columns."""
        instructions = self.instruction_count
        if instructions == 0:
            return 0.0
        return 1000.0 * self.count(OpKind.STORE, persistent_only) / instructions

    def touched_blocks(self) -> int:
        return len({r.block for r in self.records if r.kind is not OpKind.SFENCE})

    # ------------------------------------------------------------------
    # (de)serialization: one record per line, "K address gap persistent"
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        with open(path, "w", encoding="ascii") as fh:
            fh.write(f"# trace {self.name}\n")
            for r in self.records:
                fh.write(
                    f"{r.kind.value} {r.address:x} {r.gap} {int(r.persistent)}\n"
                )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MemoryTrace":
        trace = cls(name=Path(path).stem)
        with open(path, "r", encoding="ascii") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                kind_s, addr_s, gap_s, persistent_s = line.split()
                trace.append(
                    TraceRecord(
                        kind=OpKind(kind_s),
                        address=int(addr_s, 16),
                        gap=int(gap_s),
                        persistent=bool(int(persistent_s)),
                    )
                )
        return trace
