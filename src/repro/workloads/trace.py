"""Memory trace container and record format.

A trace is a sequence of memory operations annotated with the number of
non-memory instructions preceding each (``gap``), whether the access
targets the persistent region, and explicit epoch barriers (``SFENCE``)
where the workload encodes them.  Addresses are byte addresses; block
and page arithmetic uses 64 B blocks and 4 KB pages throughout.

Storage is **columnar**: a :class:`MemoryTrace` packs its records into
four parallel primitive arrays (kind codes, addresses, gaps, persistent
flags) instead of a list of per-record objects.  A million-record trace
is four contiguous buffers (~14 B/record) rather than a million boxed
dataclasses, and the simulator hot loop iterates the columns directly
with integer kind codes.  :class:`TraceRecord` and the ``records``
sequence remain as a thin compatibility view for callers that want
object-per-record semantics.

Two interchangeable serializations are provided:

* a human-readable **text format** (one ``K address gap persistent``
  line per record, ``# trace <name>`` header) via :meth:`MemoryTrace.save`
  / :meth:`MemoryTrace.load`, and
* a versioned **binary format** (:data:`TRACE_MAGIC` header followed by
  the raw column bytes, written with ``array.tofile``) via
  :meth:`MemoryTrace.save_binary` / :meth:`MemoryTrace.load_binary` —
  the packed artifact the sweep trace cache stores and memory-maps
  loads from.
"""

from __future__ import annotations

import enum
import struct
import sys
from array import array
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union, overload

BLOCK_SHIFT = 6
PAGE_SHIFT = 12

# Integer kind codes used in the packed kind column (and by the
# simulator hot loop, which never touches the OpKind enum).
KIND_LOAD = 0
KIND_STORE = 1
KIND_SFENCE = 2


class OpKind(enum.Enum):
    """Trace operation type."""

    LOAD = "L"
    STORE = "S"
    SFENCE = "F"

    @property
    def code(self) -> int:
        """The packed integer code stored in the kind column."""
        return _KIND_TO_CODE[self]


_KIND_TO_CODE = {OpKind.LOAD: KIND_LOAD, OpKind.STORE: KIND_STORE, OpKind.SFENCE: KIND_SFENCE}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}
_VALUE_TO_CODE = {kind.value: code for kind, code in _KIND_TO_CODE.items()}
_CODE_TO_VALUE = {code: kind.value for kind, code in _KIND_TO_CODE.items()}


class TraceRecord:
    """One trace entry (compatibility view over the packed columns).

    Attributes:
        kind: Load, store, or persist barrier.
        address: Byte address (0 for SFENCE).
        gap: Non-memory instructions executed since the previous record.
        persistent: Whether the address lies in the persistent region
            (stack accesses are ``False`` under the paper's default).
    """

    __slots__ = ("kind", "address", "gap", "persistent")

    def __init__(
        self,
        kind: OpKind,
        address: int = 0,
        gap: int = 0,
        persistent: bool = True,
    ) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "address", address)
        object.__setattr__(self, "gap", gap)
        object.__setattr__(self, "persistent", persistent)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"TraceRecord is immutable; cannot set {name!r}")

    def __repr__(self) -> str:
        return (
            f"TraceRecord(kind={self.kind!r}, address={self.address!r}, "
            f"gap={self.gap!r}, persistent={self.persistent!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.address == other.address
            and self.gap == other.gap
            and self.persistent == other.persistent
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.address, self.gap, self.persistent))

    @property
    def block(self) -> int:
        return self.address >> BLOCK_SHIFT

    @property
    def page(self) -> int:
        return self.address >> PAGE_SHIFT


class _RecordsView(Sequence):
    """Read-only sequence of :class:`TraceRecord` over a trace's columns.

    Records are materialized on demand; two views over equal columns
    compare equal without building any record objects.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "MemoryTrace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace.kind_codes)

    @overload
    def __getitem__(self, index: int) -> TraceRecord: ...

    @overload
    def __getitem__(self, index: slice) -> List[TraceRecord]: ...

    def __getitem__(self, index):
        trace = self._trace
        if isinstance(index, slice):
            rng = range(*index.indices(len(self)))
            return [trace.record_at(i) for i in rng]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("trace record index out of range")
        return trace.record_at(index)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._trace)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _RecordsView):
            a, b = self._trace, other._trace
            return (
                a.kind_codes == b.kind_codes
                and a.addresses == b.addresses
                and a.gaps == b.gaps
                and a.persistent_flags == b.persistent_flags
            )
        if isinstance(other, (list, tuple)):
            # Compare the packed columns against the records directly —
            # no TraceRecord is materialized on our side.
            trace = self._trace
            if len(self) != len(other):
                return False
            code_to_kind = _CODE_TO_KIND
            for code, address, gap, persistent, theirs in zip(
                trace.kind_codes,
                trace.addresses,
                trace.gaps,
                trace.persistent_flags,
                other,
            ):
                if not isinstance(theirs, TraceRecord):
                    return False
                if (
                    code_to_kind[code] is not theirs.kind
                    or address != theirs.address
                    or gap != theirs.gap
                    or bool(persistent) != theirs.persistent
                ):
                    return False
            return True
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"<records view of {self._trace!r}>"


# Binary trace format: little-endian header followed by the raw bytes
# of the four columns in declaration order.
#
# v1 stores the whole trace column-major (all kind codes, then all
# addresses, ...), so loading is four bulk reads but anything less than
# the full trace cannot be read without seeking per column.
#
# v2 is the chunked layout for multi-GB traces: the header grows a
# segment-size field and the offset of a trailing per-segment index,
# and the payload is a sequence of fixed-size *segments*, each holding
# its own four column slices back-to-back.  Every index entry carries
# the segment's byte offset plus summary statistics (loads, stores,
# persistent stores, sfences, gap sum), so inspecting a trace — or
# planning shard boundaries near even op splits — touches only the
# header and the index, never the column data.  The index lives at the
# end so :class:`TraceWriter` can stream segments to disk and backpatch
# the header on close.
TRACE_MAGIC = b"PLPTRACE"
TRACE_FORMAT_VERSION = 1
TRACE_FORMAT_VERSION_V2 = 2
_HEADER = struct.Struct("<8sHHIQ")  # magic, version, reserved, name length, record count
# v2 header: the v1 fields followed by segment size (ops), segment
# count, and the byte offset of the segment index.
_HEADER_V2 = struct.Struct("<8sHHIQIIQ")
# One index entry per segment: byte offset, op count, loads, stores,
# persistent stores, sfences, gap sum.
_SEGMENT_ENTRY = struct.Struct("<QIIIIIQ")
DEFAULT_SEGMENT_OPS = 1 << 18
_ROW_BYTES = 14  # 1 B kind + 8 B address + 4 B gap + 1 B flag
_BIG_ENDIAN = sys.byteorder == "big"


class TraceFormatError(ValueError):
    """Raised when binary trace bytes fail header or size validation."""


class MemoryTrace:
    """A columnar in-memory trace with summary statistics and (de)serialization.

    The four public column attributes (``kind_codes``, ``addresses``,
    ``gaps``, ``persistent_flags``) are parallel ``array`` instances of
    equal length; hot paths iterate them directly.  ``records`` exposes
    the classic record-object view.
    """

    __slots__ = (
        "name",
        "kind_codes",
        "addresses",
        "gaps",
        "persistent_flags",
        "_stat_cache",
    )

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None, name: str = "trace") -> None:
        self.name = name
        self.kind_codes = array("B")
        self.addresses = array("Q")
        self.gaps = array("I")
        self.persistent_flags = array("B")
        self._stat_cache: dict = {}
        if records is not None:
            for record in records:
                self.append(record)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def append(self, record: TraceRecord) -> None:
        self.append_op(
            _KIND_TO_CODE[record.kind],
            record.address,
            record.gap,
            1 if record.persistent else 0,
        )

    def append_op(self, code: int, address: int = 0, gap: int = 0, persistent: int = 1) -> None:
        """Append one packed record (fast path for generators)."""
        self.kind_codes.append(code)
        self.addresses.append(address)
        self.gaps.append(gap)
        self.persistent_flags.append(persistent)
        if self._stat_cache:
            self._stat_cache.clear()

    # ------------------------------------------------------------------
    # record view
    # ------------------------------------------------------------------

    def record_at(self, index: int) -> TraceRecord:
        """Materialize one :class:`TraceRecord` from the columns."""
        return TraceRecord(
            kind=_CODE_TO_KIND[self.kind_codes[index]],
            address=self.addresses[index],
            gap=self.gaps[index],
            persistent=bool(self.persistent_flags[index]),
        )

    @property
    def records(self) -> _RecordsView:
        return _RecordsView(self)

    @records.setter
    def records(self, value: Iterable[TraceRecord]) -> None:
        """Repack the columns from an iterable of records."""
        if isinstance(value, _RecordsView) and value._trace is self:
            return
        records = list(value)
        self.kind_codes = array("B")
        self.addresses = array("Q")
        self.gaps = array("I")
        self.persistent_flags = array("B")
        self._stat_cache = {}
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self.kind_codes)

    def __iter__(self) -> Iterator[TraceRecord]:
        code_to_kind = _CODE_TO_KIND
        for code, address, gap, persistent in zip(
            self.kind_codes, self.addresses, self.gaps, self.persistent_flags
        ):
            yield TraceRecord(code_to_kind[code], address, gap, bool(persistent))

    def __repr__(self) -> str:
        return f"MemoryTrace(name={self.name!r}, records={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryTrace):
            return NotImplemented
        # Column-direct comparison: four array equality checks, no
        # per-record materialization.
        return (
            self.name == other.name
            and self.kind_codes == other.kind_codes
            and self.addresses == other.addresses
            and self.gaps == other.gaps
            and self.persistent_flags == other.persistent_flags
        )

    # Traces stay identity-hashable (memo tables key on the instance).
    __hash__ = object.__hash__

    # ------------------------------------------------------------------
    # statistics (cached; invalidated by append / records assignment)
    # ------------------------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total instructions: every record (sfence included) plus gaps."""
        cached = self._stat_cache.get("instructions")
        if cached is None:
            cached = len(self.kind_codes) + sum(self.gaps)
            self._stat_cache["instructions"] = cached
        return cached

    def count(self, kind: OpKind, persistent_only: bool = False) -> int:
        key = ("count", kind, persistent_only)
        cached = self._stat_cache.get(key)
        if cached is None:
            code = _KIND_TO_CODE[kind]
            if persistent_only:
                cached = sum(
                    1
                    for k, p in zip(self.kind_codes, self.persistent_flags)
                    if k == code and p
                )
            else:
                cached = sum(1 for k in self.kind_codes if k == code)
            self._stat_cache[key] = cached
        return cached

    def stores_per_kilo_instruction(self, persistent_only: bool = False) -> float:
        """Store PPKI — comparable to Table V's 'num stores' columns."""
        instructions = self.instruction_count
        if instructions == 0:
            return 0.0
        return 1000.0 * self.count(OpKind.STORE, persistent_only) / instructions

    def touched_blocks(self) -> int:
        cached = self._stat_cache.get("touched_blocks")
        if cached is None:
            sfence = KIND_SFENCE
            cached = len(
                {
                    address >> BLOCK_SHIFT
                    for kind, address in zip(self.kind_codes, self.addresses)
                    if kind != sfence
                }
            )
            self._stat_cache["touched_blocks"] = cached
        return cached

    # ------------------------------------------------------------------
    # text (de)serialization: one record per line, "K address gap persistent"
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        code_to_value = _CODE_TO_VALUE
        with open(path, "w", encoding="ascii") as fh:
            fh.write(f"# trace {self.name}\n")
            for code, address, gap, persistent in zip(
                self.kind_codes, self.addresses, self.gaps, self.persistent_flags
            ):
                fh.write(f"{code_to_value[code]} {address:x} {gap} {persistent}\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MemoryTrace":
        # The header names the trace; fall back to the file stem for
        # headerless files.
        trace = cls(name=Path(path).stem)
        value_to_code = _VALUE_TO_CODE
        append_op = trace.append_op
        with open(path, "r", encoding="ascii") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    header = line[1:].strip()
                    if header.startswith("trace "):
                        trace.name = header[len("trace "):].strip()
                    continue
                kind_s, addr_s, gap_s, persistent_s = line.split()
                append_op(
                    value_to_code[kind_s],
                    int(addr_s, 16),
                    int(gap_s),
                    1 if int(persistent_s) else 0,
                )
        return trace

    # ------------------------------------------------------------------
    # binary (de)serialization: header + raw little-endian column bytes
    # ------------------------------------------------------------------

    def to_bytes(self, version: int = TRACE_FORMAT_VERSION, segment_ops: int = DEFAULT_SEGMENT_OPS) -> bytes:
        """Serialize to the versioned binary trace format.

        ``version=2`` emits the chunked layout (``segment_ops`` ops per
        segment) via an in-memory :class:`TraceWriter`.
        """
        if version == TRACE_FORMAT_VERSION_V2:
            import io

            buf = io.BytesIO()
            with TraceWriter(buf, name=self.name, segment_ops=segment_ops) as writer:
                writer.extend_packed(*self._columns())
            return buf.getvalue()
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(f"cannot serialize trace format version {version}")
        name_bytes = self.name.encode("utf-8")
        columns = self._columns()
        if _BIG_ENDIAN:
            columns = tuple(self._swapped(col) for col in columns)
        header = _HEADER.pack(
            TRACE_MAGIC, TRACE_FORMAT_VERSION, 0, len(name_bytes), len(self)
        )
        return b"".join((header, name_bytes, *(col.tobytes() for col in columns)))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MemoryTrace":
        """Parse the versioned binary trace format.

        Raises:
            TraceFormatError: On a bad magic, unsupported version, or a
                payload whose size disagrees with the header counts.
        """
        if len(blob) < _HEADER.size:
            raise TraceFormatError(
                f"binary trace too short: {len(blob)} bytes < {_HEADER.size}-byte header"
            )
        magic, version, _reserved, name_len, count = _HEADER.unpack_from(blob)
        if magic != TRACE_MAGIC:
            raise TraceFormatError(f"bad trace magic {magic!r} (expected {TRACE_MAGIC!r})")
        if version == TRACE_FORMAT_VERSION_V2:
            with TraceReader.from_bytes(blob) as reader:
                return reader.read_all()
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version} (expected "
                f"{TRACE_FORMAT_VERSION} or {TRACE_FORMAT_VERSION_V2})"
            )
        trace = cls()
        offset = _HEADER.size
        if len(blob) < offset + name_len:
            raise TraceFormatError(
                f"binary trace truncated inside the name: header promises "
                f"{name_len} name bytes, payload has {len(blob) - offset}"
            )
        try:
            trace.name = blob[offset : offset + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"binary trace name is not UTF-8: {exc}") from None
        offset += name_len
        expected = offset + sum(col.itemsize for col in trace._columns()) * count
        if len(blob) != expected:
            raise TraceFormatError(
                f"binary trace payload is {len(blob)} bytes; header implies {expected}"
            )
        try:
            for col in trace._columns():
                size = col.itemsize * count
                col.frombytes(blob[offset : offset + size])
                offset += size
        except ValueError:
            # Unreachable after the size check above (slices are exact
            # item multiples), but array-level errors must never escape.
            raise TraceFormatError(
                f"binary trace columns corrupt: header promised {count} records"
            ) from None
        if _BIG_ENDIAN:
            for col in trace._columns():
                col.byteswap()
        return trace

    def save_binary(
        self,
        path: Union[str, Path],
        version: int = TRACE_FORMAT_VERSION,
        segment_ops: int = DEFAULT_SEGMENT_OPS,
    ) -> None:
        """Write the binary trace format (columns via ``array.tofile``).

        ``version=2`` writes the chunked layout through
        :class:`TraceWriter` with ``segment_ops`` ops per segment.
        """
        if version == TRACE_FORMAT_VERSION_V2:
            with TraceWriter(path, name=self.name, segment_ops=segment_ops) as writer:
                writer.extend_packed(*self._columns())
            return
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(f"cannot serialize trace format version {version}")
        name_bytes = self.name.encode("utf-8")
        columns = self._columns()
        if _BIG_ENDIAN:
            columns = tuple(self._swapped(col) for col in columns)
        with open(path, "wb") as fh:
            fh.write(
                _HEADER.pack(
                    TRACE_MAGIC, TRACE_FORMAT_VERSION, 0, len(name_bytes), len(self)
                )
            )
            fh.write(name_bytes)
            for col in columns:
                col.tofile(fh)

    @classmethod
    def load_binary(cls, path: Union[str, Path]) -> "MemoryTrace":
        """Read the binary trace format (columns via ``array.fromfile``).

        Raises:
            TraceFormatError: On a corrupt or truncated file.
        """
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise TraceFormatError(
                    f"binary trace {path!s} truncated inside the header"
                )
            magic, version, _reserved, name_len, count = _HEADER.unpack(header)
            if magic != TRACE_MAGIC:
                raise TraceFormatError(
                    f"bad trace magic {magic!r} in {path!s} (expected {TRACE_MAGIC!r})"
                )
            if version == TRACE_FORMAT_VERSION_V2:
                with TraceReader(path) as reader:
                    return reader.read_all()
            if version != TRACE_FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {version} in {path!s}"
                )
            trace = cls()
            name_bytes = fh.read(name_len)
            if len(name_bytes) < name_len:
                raise TraceFormatError(f"binary trace {path!s} truncated inside the name")
            try:
                trace.name = name_bytes.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise TraceFormatError(
                    f"binary trace name in {path!s} is not UTF-8: {exc}"
                ) from None
            try:
                for col in trace._columns():
                    col.fromfile(fh, count)
            except (EOFError, ValueError):
                # EOFError for whole-item shortfalls; array raises
                # ValueError when truncation lands mid-item.
                raise TraceFormatError(
                    f"binary trace {path!s} truncated: header promised {count} records"
                ) from None
            if fh.read(1):
                raise TraceFormatError(
                    f"binary trace {path!s} has trailing bytes past {count} records"
                )
        if _BIG_ENDIAN:
            for col in trace._columns():
                col.byteswap()
        return trace

    def _columns(self) -> Tuple[array, array, array, array]:
        return (self.kind_codes, self.addresses, self.gaps, self.persistent_flags)

    def chunks(self, segment_ops: int = DEFAULT_SEGMENT_OPS) -> Iterator["TraceChunk"]:
        """Yield the packed columns as :class:`TraceChunk` slices.

        Gives an in-memory trace the same chunk-iterator shape a
        :class:`TraceReader` produces for an on-disk v2 trace, so the
        streaming engine entry points accept either source.
        """
        if segment_ops < 1:
            raise ValueError("segment_ops must be >= 1")
        total = len(self)
        for start in range(0, total, segment_ops):
            stop = min(start + segment_ops, total)
            yield TraceChunk(
                start,
                self.kind_codes[start:stop],
                self.addresses[start:stop],
                self.gaps[start:stop],
                self.persistent_flags[start:stop],
            )

    @staticmethod
    def _swapped(col: array) -> array:
        copy = array(col.typecode, col)
        copy.byteswap()
        return copy


class TraceChunk:
    """A contiguous run of packed trace columns starting at op ``start``.

    The unit the bounded-memory paths trade in: :class:`TraceReader`
    yields chunks from disk, :meth:`MemoryTrace.chunks` slices them from
    memory, and the streaming engine entry points consume them without
    ever materializing :class:`TraceRecord` objects.
    """

    __slots__ = ("start", "kind_codes", "addresses", "gaps", "persistent_flags")

    def __init__(
        self,
        start: int,
        kind_codes: array,
        addresses: array,
        gaps: array,
        persistent_flags: array,
    ) -> None:
        self.start = start
        self.kind_codes = kind_codes
        self.addresses = addresses
        self.gaps = gaps
        self.persistent_flags = persistent_flags

    def __len__(self) -> int:
        return len(self.kind_codes)

    def __repr__(self) -> str:
        return f"TraceChunk(start={self.start}, ops={len(self)})"


class TraceSegment:
    """One v2 index entry: where a segment lives and what it holds."""

    __slots__ = ("offset", "count", "loads", "stores", "persistent_stores", "sfences", "gap_sum")

    def __init__(
        self,
        offset: int,
        count: int,
        loads: int,
        stores: int,
        persistent_stores: int,
        sfences: int,
        gap_sum: int,
    ) -> None:
        self.offset = offset
        self.count = count
        self.loads = loads
        self.stores = stores
        self.persistent_stores = persistent_stores
        self.sfences = sfences
        self.gap_sum = gap_sum

    def __repr__(self) -> str:
        return (
            f"TraceSegment(offset={self.offset}, count={self.count}, "
            f"loads={self.loads}, stores={self.stores}, "
            f"persistent_stores={self.persistent_stores}, "
            f"sfences={self.sfences}, gap_sum={self.gap_sum})"
        )


class TraceSummary:
    """Whole-trace statistics assembled from the v2 segment index.

    For a v2 trace this costs only the header + index read (O(1) in the
    trace length); for v1 the reader streams the columns once in bounded
    memory.  ``touched_blocks`` is deliberately absent — it requires the
    address column.
    """

    __slots__ = (
        "name",
        "version",
        "record_count",
        "segment_ops",
        "num_segments",
        "loads",
        "stores",
        "persistent_stores",
        "sfences",
        "gap_sum",
    )

    def __init__(
        self,
        name: str,
        version: int,
        record_count: int,
        segment_ops: int,
        num_segments: int,
        loads: int,
        stores: int,
        persistent_stores: int,
        sfences: int,
        gap_sum: int,
    ) -> None:
        self.name = name
        self.version = version
        self.record_count = record_count
        self.segment_ops = segment_ops
        self.num_segments = num_segments
        self.loads = loads
        self.stores = stores
        self.persistent_stores = persistent_stores
        self.sfences = sfences
        self.gap_sum = gap_sum

    @property
    def instruction_count(self) -> int:
        """Every record (sfences included) plus the gaps between them."""
        return self.record_count + self.gap_sum

    def stores_per_kilo_instruction(self, persistent_only: bool = False) -> float:
        instructions = self.instruction_count
        if instructions == 0:
            return 0.0
        stores = self.persistent_stores if persistent_only else self.stores
        return 1000.0 * stores / instructions

    def __repr__(self) -> str:
        return (
            f"TraceSummary(name={self.name!r}, version={self.version}, "
            f"records={self.record_count}, segments={self.num_segments})"
        )


class TraceWriter:
    """Streaming v2 trace writer: append ops, segments flush to disk.

    Buffers at most one segment's columns in memory; ``close`` writes
    the trailing segment index and backpatches the header with the true
    record and segment counts.  Accepts a path or a writable seekable
    binary file object (``io.BytesIO`` works for in-memory round trips).
    """

    def __init__(
        self,
        path: Union[str, Path, object],
        name: str = "trace",
        segment_ops: int = DEFAULT_SEGMENT_OPS,
    ) -> None:
        if segment_ops < 1:
            raise ValueError("segment_ops must be >= 1")
        self.name = name
        self.segment_ops = segment_ops
        self._name_bytes = name.encode("utf-8")
        if hasattr(path, "write"):
            self._fh = path
            self._owns_fh = False
        else:
            self._fh = open(path, "wb")
            self._owns_fh = True
        self._count = 0
        self._entries: List[Tuple[int, int, int, int, int, int, int]] = []
        self._closed = False
        self._reset_buffers()
        # Placeholder header; count / num_segments / index_offset are
        # backpatched on close.
        self._fh.write(
            _HEADER_V2.pack(
                TRACE_MAGIC, TRACE_FORMAT_VERSION_V2, 0, len(self._name_bytes), 0, segment_ops, 0, 0
            )
        )
        self._fh.write(self._name_bytes)

    def _reset_buffers(self) -> None:
        self._kinds = array("B")
        self._addrs = array("Q")
        self._gaps = array("I")
        self._flags = array("B")

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def append_op(self, code: int, address: int = 0, gap: int = 0, persistent: int = 1) -> None:
        """Append one packed record (mirrors :meth:`MemoryTrace.append_op`)."""
        self._kinds.append(code)
        self._addrs.append(address)
        self._gaps.append(gap)
        self._flags.append(persistent)
        if len(self._kinds) >= self.segment_ops:
            self._flush_segment()

    def append(self, record: TraceRecord) -> None:
        self.append_op(
            _KIND_TO_CODE[record.kind],
            record.address,
            record.gap,
            1 if record.persistent else 0,
        )

    def extend_packed(self, kinds: array, addresses: array, gaps: array, flags: array) -> None:
        """Bulk-append parallel column slices (segment-boundary aware)."""
        total = len(kinds)
        pos = 0
        while pos < total:
            room = self.segment_ops - len(self._kinds)
            take = min(room, total - pos)
            end = pos + take
            self._kinds.extend(kinds[pos:end])
            self._addrs.extend(addresses[pos:end])
            self._gaps.extend(gaps[pos:end])
            self._flags.extend(flags[pos:end])
            pos = end
            if len(self._kinds) >= self.segment_ops:
                self._flush_segment()

    @property
    def count(self) -> int:
        """Ops appended so far (flushed segments plus the open buffer)."""
        return self._count + len(self._kinds)

    # ------------------------------------------------------------------
    # flushing / closing
    # ------------------------------------------------------------------

    def _flush_segment(self) -> None:
        kinds = self._kinds
        if not kinds:
            return
        flags = self._flags
        loads = kinds.count(KIND_LOAD)
        stores = kinds.count(KIND_STORE)
        sfences = kinds.count(KIND_SFENCE)
        store_code = KIND_STORE
        persistent_stores = sum(
            1 for k, f in zip(kinds, flags) if k == store_code and f
        )
        gap_sum = sum(self._gaps)
        offset = self._fh.tell()
        columns: Tuple[array, ...] = (kinds, self._addrs, self._gaps, flags)
        if _BIG_ENDIAN:
            columns = tuple(MemoryTrace._swapped(col) for col in columns)
        for col in columns:
            self._fh.write(col.tobytes())
        self._entries.append(
            (offset, len(kinds), loads, stores, persistent_stores, sfences, gap_sum)
        )
        self._count += len(kinds)
        self._reset_buffers()

    def close(self) -> None:
        if self._closed:
            return
        self._flush_segment()
        index_offset = self._fh.tell()
        pack = _SEGMENT_ENTRY.pack
        for entry in self._entries:
            self._fh.write(pack(*entry))
        self._fh.seek(0)
        self._fh.write(
            _HEADER_V2.pack(
                TRACE_MAGIC,
                TRACE_FORMAT_VERSION_V2,
                0,
                len(self._name_bytes),
                self._count,
                self.segment_ops,
                len(self._entries),
                index_offset,
            )
        )
        self._fh.seek(0, 2)
        if self._owns_fh:
            self._fh.close()
        self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Bounded-memory reader over the binary trace formats.

    Parses the header (and, for v2, the segment index) eagerly with the
    full hardening of :meth:`MemoryTrace.from_bytes`; the column data is
    only touched by :meth:`chunks`, one segment at a time.  v1 traces
    are chunked too (via per-column seeks), so every consumer can treat
    both versions uniformly.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._label = str(path)
        self._fh = open(path, "rb")
        try:
            self._parse()
        except BaseException:
            self._fh.close()
            raise

    @classmethod
    def from_bytes(cls, blob: bytes) -> "TraceReader":
        """A reader over an in-memory serialized trace (tests, caches)."""
        import io

        reader = cls.__new__(cls)
        reader._label = "<bytes>"
        reader._fh = io.BytesIO(blob)
        try:
            reader._parse()
        except BaseException:
            reader._fh.close()
            raise
        return reader

    # ------------------------------------------------------------------
    # header / index parsing
    # ------------------------------------------------------------------

    def _fail(self, detail: str) -> None:
        raise TraceFormatError(f"binary trace {self._label}: {detail}")

    def _read_exact(self, size: int, what: str) -> bytes:
        data = self._fh.read(size)
        if len(data) != size:
            self._fail(f"truncated reading {what}")
        return data

    def _parse(self) -> None:
        fh = self._fh
        fh.seek(0, 2)
        self._size = fh.tell()
        fh.seek(0)
        if self._size < _HEADER.size:
            self._fail(f"too short: {self._size} bytes < {_HEADER.size}-byte header")
        magic, version, _reserved, name_len, count = _HEADER.unpack(
            self._read_exact(_HEADER.size, "the header")
        )
        if magic != TRACE_MAGIC:
            self._fail(f"bad magic {magic!r} (expected {TRACE_MAGIC!r})")
        if version not in (TRACE_FORMAT_VERSION, TRACE_FORMAT_VERSION_V2):
            self._fail(f"unsupported trace format version {version}")
        self.version = version
        self.record_count = count
        if version == TRACE_FORMAT_VERSION_V2:
            tail = struct.Struct("<IIQ")
            segment_ops, num_segments, index_offset = tail.unpack(
                self._read_exact(tail.size, "the v2 header")
            )
            if segment_ops < 1:
                self._fail(f"segment size {segment_ops} is not positive")
            self.segment_ops = segment_ops
            self._num_segments = num_segments
            self._index_offset = index_offset
        else:
            self.segment_ops = DEFAULT_SEGMENT_OPS
            self._num_segments = 0
            self._index_offset = 0
        name_bytes = fh.read(name_len)
        if len(name_bytes) < name_len:
            self._fail(
                f"truncated inside the name: header promises {name_len} "
                f"name bytes, payload has {len(name_bytes)}"
            )
        try:
            self.name = name_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                f"binary trace {self._label}: name is not UTF-8: {exc}"
            ) from None
        self._data_start = fh.tell()
        if version == TRACE_FORMAT_VERSION_V2:
            self._parse_index()
            self.segments: Optional[List[TraceSegment]] = self._segments
        else:
            expected = self._data_start + _ROW_BYTES * count
            if self._size != expected:
                self._fail(f"payload is {self._size} bytes; header implies {expected}")
            self._segments = None
            self.segments = None

    def _parse_index(self) -> None:
        entry = _SEGMENT_ENTRY
        index_offset = self._index_offset
        num_segments = self._num_segments
        expected = index_offset + num_segments * entry.size
        if index_offset < self._data_start:
            self._fail(
                f"corrupt index: index offset {index_offset} overlaps the "
                f"header/name (data starts at {self._data_start})"
            )
        if self._size != expected:
            self._fail(
                f"corrupt index: payload is {self._size} bytes; header "
                f"implies {expected} ({num_segments} segments indexed at {index_offset})"
            )
        self._fh.seek(index_offset)
        raw = self._read_exact(num_segments * entry.size, "the segment index")
        segments: List[TraceSegment] = []
        cursor = self._data_start
        total = 0
        for i in range(num_segments):
            fields = entry.unpack_from(raw, i * entry.size)
            seg = TraceSegment(*fields)
            if seg.offset != cursor:
                self._fail(
                    f"corrupt index: segment {i} starts at byte {seg.offset}, "
                    f"expected {cursor}"
                )
            if seg.count < 1:
                self._fail(f"corrupt index: segment {i} is empty")
            if seg.loads + seg.stores + seg.sfences != seg.count:
                self._fail(
                    f"corrupt index: segment {i} op-kind counts "
                    f"({seg.loads}+{seg.stores}+{seg.sfences}) disagree with "
                    f"its op count {seg.count}"
                )
            if seg.persistent_stores > seg.stores:
                self._fail(
                    f"corrupt index: segment {i} claims more persistent "
                    f"stores ({seg.persistent_stores}) than stores ({seg.stores})"
                )
            cursor = seg.offset + seg.count * _ROW_BYTES
            total += seg.count
            segments.append(seg)
        if cursor != self._index_offset:
            self._fail(
                f"mid-column cut: segment data ends at byte {cursor} but the "
                f"index starts at {self._index_offset}"
            )
        if total != self.record_count:
            self._fail(
                f"corrupt index: segments hold {total} ops, header promises "
                f"{self.record_count}"
            )
        self._segments = segments

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.record_count

    def summary(self) -> TraceSummary:
        """Whole-trace statistics.

        O(header + index) for v2; a bounded-memory single pass for v1.
        """
        if self.version == TRACE_FORMAT_VERSION_V2:
            segs = self._segments or []
            return TraceSummary(
                self.name,
                self.version,
                self.record_count,
                self.segment_ops,
                len(segs),
                sum(s.loads for s in segs),
                sum(s.stores for s in segs),
                sum(s.persistent_stores for s in segs),
                sum(s.sfences for s in segs),
                sum(s.gap_sum for s in segs),
            )
        loads = stores = persistent_stores = sfences = gap_sum = 0
        store_code = KIND_STORE
        for chunk in self.chunks():
            kinds = chunk.kind_codes
            loads += kinds.count(KIND_LOAD)
            stores += kinds.count(store_code)
            sfences += kinds.count(KIND_SFENCE)
            persistent_stores += sum(
                1 for k, f in zip(kinds, chunk.persistent_flags) if k == store_code and f
            )
            gap_sum += sum(chunk.gaps)
        return TraceSummary(
            self.name,
            self.version,
            self.record_count,
            self.segment_ops,
            0,
            loads,
            stores,
            persistent_stores,
            sfences,
            gap_sum,
        )

    def chunks(self, start: int = 0, stop: Optional[int] = None) -> Iterator[TraceChunk]:
        """Yield packed column chunks covering ops ``[start, stop)``.

        At most one segment's columns are resident at a time.
        """
        total = self.record_count
        if stop is None:
            stop = total
        if not 0 <= start <= stop <= total:
            raise ValueError(
                f"chunk range [{start}, {stop}) out of bounds for {total} ops"
            )
        if start == stop:
            return
        if self.version == TRACE_FORMAT_VERSION_V2:
            yield from self._chunks_v2(start, stop)
        else:
            yield from self._chunks_v1(start, stop)

    def _read_columns(
        self, offsets: Tuple[int, int, int, int], count: int
    ) -> Tuple[array, array, array, array]:
        fh = self._fh
        columns = (array("B"), array("Q"), array("I"), array("B"))
        for col, offset in zip(columns, offsets):
            fh.seek(offset)
            col.frombytes(self._read_exact(col.itemsize * count, "column data"))
        if _BIG_ENDIAN:
            for col in columns:
                col.byteswap()
        return columns

    def _chunks_v2(self, start: int, stop: int) -> Iterator[TraceChunk]:
        base = 0
        for seg in self._segments or []:
            seg_start, seg_stop = base, base + seg.count
            base = seg_stop
            if seg_stop <= start:
                continue
            if seg_start >= stop:
                break
            # Column offsets within the segment payload.
            off = seg.offset
            offsets = (
                off,
                off + seg.count,
                off + seg.count * 9,
                off + seg.count * 13,
            )
            lo = max(start, seg_start) - seg_start
            hi = min(stop, seg_stop) - seg_start
            if lo == 0 and hi == seg.count:
                kinds, addrs, gaps, flags = self._read_columns(offsets, seg.count)
            else:
                # Partial overlap: shift each column offset to the
                # requested sub-range, read only hi - lo items.
                offsets = (
                    offsets[0] + lo,
                    offsets[1] + lo * 8,
                    offsets[2] + lo * 4,
                    offsets[3] + lo,
                )
                kinds, addrs, gaps, flags = self._read_columns(offsets, hi - lo)
            yield TraceChunk(seg_start + lo, kinds, addrs, gaps, flags)

    def _chunks_v1(self, start: int, stop: int) -> Iterator[TraceChunk]:
        count = self.record_count
        kind_base = self._data_start
        addr_base = kind_base + count
        gap_base = addr_base + count * 8
        flag_base = gap_base + count * 4
        step = self.segment_ops
        for lo in range(start, stop, step):
            hi = min(lo + step, stop)
            n = hi - lo
            offsets = (
                kind_base + lo,
                addr_base + lo * 8,
                gap_base + lo * 4,
                flag_base + lo,
            )
            kinds, addrs, gaps, flags = self._read_columns(offsets, n)
            yield TraceChunk(lo, kinds, addrs, gaps, flags)

    def read_all(self) -> MemoryTrace:
        """Materialize the whole trace (the ``load_binary`` v2 path)."""
        trace = MemoryTrace(name=self.name)
        for chunk in self.chunks():
            trace.kind_codes.extend(chunk.kind_codes)
            trace.addresses.extend(chunk.addresses)
            trace.gaps.extend(chunk.gaps)
            trace.persistent_flags.extend(chunk.persistent_flags)
        return trace

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
