"""Memory trace container and record format.

A trace is a sequence of memory operations annotated with the number of
non-memory instructions preceding each (``gap``), whether the access
targets the persistent region, and explicit epoch barriers (``SFENCE``)
where the workload encodes them.  Addresses are byte addresses; block
and page arithmetic uses 64 B blocks and 4 KB pages throughout.

Storage is **columnar**: a :class:`MemoryTrace` packs its records into
four parallel primitive arrays (kind codes, addresses, gaps, persistent
flags) instead of a list of per-record objects.  A million-record trace
is four contiguous buffers (~14 B/record) rather than a million boxed
dataclasses, and the simulator hot loop iterates the columns directly
with integer kind codes.  :class:`TraceRecord` and the ``records``
sequence remain as a thin compatibility view for callers that want
object-per-record semantics.

Two interchangeable serializations are provided:

* a human-readable **text format** (one ``K address gap persistent``
  line per record, ``# trace <name>`` header) via :meth:`MemoryTrace.save`
  / :meth:`MemoryTrace.load`, and
* a versioned **binary format** (:data:`TRACE_MAGIC` header followed by
  the raw column bytes, written with ``array.tofile``) via
  :meth:`MemoryTrace.save_binary` / :meth:`MemoryTrace.load_binary` —
  the packed artifact the sweep trace cache stores and memory-maps
  loads from.
"""

from __future__ import annotations

import enum
import struct
import sys
from array import array
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union, overload

BLOCK_SHIFT = 6
PAGE_SHIFT = 12

# Integer kind codes used in the packed kind column (and by the
# simulator hot loop, which never touches the OpKind enum).
KIND_LOAD = 0
KIND_STORE = 1
KIND_SFENCE = 2


class OpKind(enum.Enum):
    """Trace operation type."""

    LOAD = "L"
    STORE = "S"
    SFENCE = "F"

    @property
    def code(self) -> int:
        """The packed integer code stored in the kind column."""
        return _KIND_TO_CODE[self]


_KIND_TO_CODE = {OpKind.LOAD: KIND_LOAD, OpKind.STORE: KIND_STORE, OpKind.SFENCE: KIND_SFENCE}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}
_VALUE_TO_CODE = {kind.value: code for kind, code in _KIND_TO_CODE.items()}
_CODE_TO_VALUE = {code: kind.value for kind, code in _KIND_TO_CODE.items()}


class TraceRecord:
    """One trace entry (compatibility view over the packed columns).

    Attributes:
        kind: Load, store, or persist barrier.
        address: Byte address (0 for SFENCE).
        gap: Non-memory instructions executed since the previous record.
        persistent: Whether the address lies in the persistent region
            (stack accesses are ``False`` under the paper's default).
    """

    __slots__ = ("kind", "address", "gap", "persistent")

    def __init__(
        self,
        kind: OpKind,
        address: int = 0,
        gap: int = 0,
        persistent: bool = True,
    ) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "address", address)
        object.__setattr__(self, "gap", gap)
        object.__setattr__(self, "persistent", persistent)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"TraceRecord is immutable; cannot set {name!r}")

    def __repr__(self) -> str:
        return (
            f"TraceRecord(kind={self.kind!r}, address={self.address!r}, "
            f"gap={self.gap!r}, persistent={self.persistent!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.address == other.address
            and self.gap == other.gap
            and self.persistent == other.persistent
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.address, self.gap, self.persistent))

    @property
    def block(self) -> int:
        return self.address >> BLOCK_SHIFT

    @property
    def page(self) -> int:
        return self.address >> PAGE_SHIFT


class _RecordsView(Sequence):
    """Read-only sequence of :class:`TraceRecord` over a trace's columns.

    Records are materialized on demand; two views over equal columns
    compare equal without building any record objects.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "MemoryTrace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace.kind_codes)

    @overload
    def __getitem__(self, index: int) -> TraceRecord: ...

    @overload
    def __getitem__(self, index: slice) -> List[TraceRecord]: ...

    def __getitem__(self, index):
        trace = self._trace
        if isinstance(index, slice):
            rng = range(*index.indices(len(self)))
            return [trace.record_at(i) for i in rng]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("trace record index out of range")
        return trace.record_at(index)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._trace)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _RecordsView):
            a, b = self._trace, other._trace
            return (
                a.kind_codes == b.kind_codes
                and a.addresses == b.addresses
                and a.gaps == b.gaps
                and a.persistent_flags == b.persistent_flags
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"<records view of {self._trace!r}>"


# Binary trace format: little-endian header followed by the raw bytes
# of the four columns in declaration order.
TRACE_MAGIC = b"PLPTRACE"
TRACE_FORMAT_VERSION = 1
_HEADER = struct.Struct("<8sHHIQ")  # magic, version, reserved, name length, record count
_BIG_ENDIAN = sys.byteorder == "big"


class TraceFormatError(ValueError):
    """Raised when binary trace bytes fail header or size validation."""


class MemoryTrace:
    """A columnar in-memory trace with summary statistics and (de)serialization.

    The four public column attributes (``kind_codes``, ``addresses``,
    ``gaps``, ``persistent_flags``) are parallel ``array`` instances of
    equal length; hot paths iterate them directly.  ``records`` exposes
    the classic record-object view.
    """

    __slots__ = (
        "name",
        "kind_codes",
        "addresses",
        "gaps",
        "persistent_flags",
        "_stat_cache",
    )

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None, name: str = "trace") -> None:
        self.name = name
        self.kind_codes = array("B")
        self.addresses = array("Q")
        self.gaps = array("I")
        self.persistent_flags = array("B")
        self._stat_cache: dict = {}
        if records is not None:
            for record in records:
                self.append(record)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def append(self, record: TraceRecord) -> None:
        self.append_op(
            _KIND_TO_CODE[record.kind],
            record.address,
            record.gap,
            1 if record.persistent else 0,
        )

    def append_op(self, code: int, address: int = 0, gap: int = 0, persistent: int = 1) -> None:
        """Append one packed record (fast path for generators)."""
        self.kind_codes.append(code)
        self.addresses.append(address)
        self.gaps.append(gap)
        self.persistent_flags.append(persistent)
        if self._stat_cache:
            self._stat_cache.clear()

    # ------------------------------------------------------------------
    # record view
    # ------------------------------------------------------------------

    def record_at(self, index: int) -> TraceRecord:
        """Materialize one :class:`TraceRecord` from the columns."""
        return TraceRecord(
            kind=_CODE_TO_KIND[self.kind_codes[index]],
            address=self.addresses[index],
            gap=self.gaps[index],
            persistent=bool(self.persistent_flags[index]),
        )

    @property
    def records(self) -> _RecordsView:
        return _RecordsView(self)

    @records.setter
    def records(self, value: Iterable[TraceRecord]) -> None:
        """Repack the columns from an iterable of records."""
        if isinstance(value, _RecordsView) and value._trace is self:
            return
        records = list(value)
        self.kind_codes = array("B")
        self.addresses = array("Q")
        self.gaps = array("I")
        self.persistent_flags = array("B")
        self._stat_cache = {}
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self.kind_codes)

    def __iter__(self) -> Iterator[TraceRecord]:
        code_to_kind = _CODE_TO_KIND
        for code, address, gap, persistent in zip(
            self.kind_codes, self.addresses, self.gaps, self.persistent_flags
        ):
            yield TraceRecord(code_to_kind[code], address, gap, bool(persistent))

    def __repr__(self) -> str:
        return f"MemoryTrace(name={self.name!r}, records={len(self)})"

    # ------------------------------------------------------------------
    # statistics (cached; invalidated by append / records assignment)
    # ------------------------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total instructions: every record (sfence included) plus gaps."""
        cached = self._stat_cache.get("instructions")
        if cached is None:
            cached = len(self.kind_codes) + sum(self.gaps)
            self._stat_cache["instructions"] = cached
        return cached

    def count(self, kind: OpKind, persistent_only: bool = False) -> int:
        key = ("count", kind, persistent_only)
        cached = self._stat_cache.get(key)
        if cached is None:
            code = _KIND_TO_CODE[kind]
            if persistent_only:
                cached = sum(
                    1
                    for k, p in zip(self.kind_codes, self.persistent_flags)
                    if k == code and p
                )
            else:
                cached = sum(1 for k in self.kind_codes if k == code)
            self._stat_cache[key] = cached
        return cached

    def stores_per_kilo_instruction(self, persistent_only: bool = False) -> float:
        """Store PPKI — comparable to Table V's 'num stores' columns."""
        instructions = self.instruction_count
        if instructions == 0:
            return 0.0
        return 1000.0 * self.count(OpKind.STORE, persistent_only) / instructions

    def touched_blocks(self) -> int:
        cached = self._stat_cache.get("touched_blocks")
        if cached is None:
            sfence = KIND_SFENCE
            cached = len(
                {
                    address >> BLOCK_SHIFT
                    for kind, address in zip(self.kind_codes, self.addresses)
                    if kind != sfence
                }
            )
            self._stat_cache["touched_blocks"] = cached
        return cached

    # ------------------------------------------------------------------
    # text (de)serialization: one record per line, "K address gap persistent"
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        code_to_value = _CODE_TO_VALUE
        with open(path, "w", encoding="ascii") as fh:
            fh.write(f"# trace {self.name}\n")
            for code, address, gap, persistent in zip(
                self.kind_codes, self.addresses, self.gaps, self.persistent_flags
            ):
                fh.write(f"{code_to_value[code]} {address:x} {gap} {persistent}\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MemoryTrace":
        # The header names the trace; fall back to the file stem for
        # headerless files.
        trace = cls(name=Path(path).stem)
        value_to_code = _VALUE_TO_CODE
        append_op = trace.append_op
        with open(path, "r", encoding="ascii") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    header = line[1:].strip()
                    if header.startswith("trace "):
                        trace.name = header[len("trace "):].strip()
                    continue
                kind_s, addr_s, gap_s, persistent_s = line.split()
                append_op(
                    value_to_code[kind_s],
                    int(addr_s, 16),
                    int(gap_s),
                    1 if int(persistent_s) else 0,
                )
        return trace

    # ------------------------------------------------------------------
    # binary (de)serialization: header + raw little-endian column bytes
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the versioned binary trace format."""
        name_bytes = self.name.encode("utf-8")
        columns = self._columns()
        if _BIG_ENDIAN:
            columns = tuple(self._swapped(col) for col in columns)
        header = _HEADER.pack(
            TRACE_MAGIC, TRACE_FORMAT_VERSION, 0, len(name_bytes), len(self)
        )
        return b"".join((header, name_bytes, *(col.tobytes() for col in columns)))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MemoryTrace":
        """Parse the versioned binary trace format.

        Raises:
            TraceFormatError: On a bad magic, unsupported version, or a
                payload whose size disagrees with the header counts.
        """
        if len(blob) < _HEADER.size:
            raise TraceFormatError(
                f"binary trace too short: {len(blob)} bytes < {_HEADER.size}-byte header"
            )
        magic, version, _reserved, name_len, count = _HEADER.unpack_from(blob)
        if magic != TRACE_MAGIC:
            raise TraceFormatError(f"bad trace magic {magic!r} (expected {TRACE_MAGIC!r})")
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version} (expected {TRACE_FORMAT_VERSION})"
            )
        trace = cls()
        offset = _HEADER.size
        if len(blob) < offset + name_len:
            raise TraceFormatError(
                f"binary trace truncated inside the name: header promises "
                f"{name_len} name bytes, payload has {len(blob) - offset}"
            )
        try:
            trace.name = blob[offset : offset + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"binary trace name is not UTF-8: {exc}") from None
        offset += name_len
        expected = offset + sum(col.itemsize for col in trace._columns()) * count
        if len(blob) != expected:
            raise TraceFormatError(
                f"binary trace payload is {len(blob)} bytes; header implies {expected}"
            )
        try:
            for col in trace._columns():
                size = col.itemsize * count
                col.frombytes(blob[offset : offset + size])
                offset += size
        except ValueError:
            # Unreachable after the size check above (slices are exact
            # item multiples), but array-level errors must never escape.
            raise TraceFormatError(
                f"binary trace columns corrupt: header promised {count} records"
            ) from None
        if _BIG_ENDIAN:
            for col in trace._columns():
                col.byteswap()
        return trace

    def save_binary(self, path: Union[str, Path]) -> None:
        """Write the binary trace format (columns via ``array.tofile``)."""
        name_bytes = self.name.encode("utf-8")
        columns = self._columns()
        if _BIG_ENDIAN:
            columns = tuple(self._swapped(col) for col in columns)
        with open(path, "wb") as fh:
            fh.write(
                _HEADER.pack(
                    TRACE_MAGIC, TRACE_FORMAT_VERSION, 0, len(name_bytes), len(self)
                )
            )
            fh.write(name_bytes)
            for col in columns:
                col.tofile(fh)

    @classmethod
    def load_binary(cls, path: Union[str, Path]) -> "MemoryTrace":
        """Read the binary trace format (columns via ``array.fromfile``).

        Raises:
            TraceFormatError: On a corrupt or truncated file.
        """
        with open(path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise TraceFormatError(
                    f"binary trace {path!s} truncated inside the header"
                )
            magic, version, _reserved, name_len, count = _HEADER.unpack(header)
            if magic != TRACE_MAGIC:
                raise TraceFormatError(
                    f"bad trace magic {magic!r} in {path!s} (expected {TRACE_MAGIC!r})"
                )
            if version != TRACE_FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {version} in {path!s}"
                )
            trace = cls()
            name_bytes = fh.read(name_len)
            if len(name_bytes) < name_len:
                raise TraceFormatError(f"binary trace {path!s} truncated inside the name")
            try:
                trace.name = name_bytes.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise TraceFormatError(
                    f"binary trace name in {path!s} is not UTF-8: {exc}"
                ) from None
            try:
                for col in trace._columns():
                    col.fromfile(fh, count)
            except (EOFError, ValueError):
                # EOFError for whole-item shortfalls; array raises
                # ValueError when truncation lands mid-item.
                raise TraceFormatError(
                    f"binary trace {path!s} truncated: header promised {count} records"
                ) from None
            if fh.read(1):
                raise TraceFormatError(
                    f"binary trace {path!s} has trailing bytes past {count} records"
                )
        if _BIG_ENDIAN:
            for col in trace._columns():
                col.byteswap()
        return trace

    def _columns(self) -> Tuple[array, array, array, array]:
        return (self.kind_codes, self.addresses, self.gaps, self.persistent_flags)

    @staticmethod
    def _swapped(col: array) -> array:
        copy = array(col.typecode, col)
        copy.byteswap()
        return copy
