"""Synthetic trace generators.

The main entry point is :func:`generate_trace`, a statistics-driven
generator used to synthesize SPEC-like workloads.  Its store stream is
produced by a *working-pool* process: stores sample from a bounded pool
of active blocks while new blocks enter the pool at a configurable rate.
This yields the two properties the evaluation depends on:

* the number of **unique blocks per epoch grows sub-linearly** with the
  epoch size (Fig. 11's PPKI-vs-epoch-size curve), and
* new blocks are allocated **sequentially within pages**, giving the
  spatial locality that BMT update coalescing exploits (§IV-B2).

Smaller single-purpose generators (sequential, strided, zipf, pointer
chase, a key-value store) are provided for the examples and tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.workloads.trace import (
    DEFAULT_SEGMENT_OPS,
    KIND_LOAD,
    KIND_SFENCE,
    KIND_STORE,
    MemoryTrace,
    TraceWriter,
)

Op = Tuple[int, int, int, int]
"""One packed record: ``(kind_code, address, gap, persistent)``."""

BLOCK = 64
PAGE_BLOCKS = 64

HEAP_BASE = 0x1000_0000
"""Base of the persistent heap region."""

STACK_BASE = 0x7FFF_0000
"""Base of the (non-persistent) stack region."""

STACK_BLOCKS = 128
"""Stack footprint in blocks (8 KB)."""


@dataclass
class SyntheticSpec:
    """Parameters for the statistics-driven generator.

    Attributes:
        name: Workload label.
        kilo_instructions: Trace length in kilo-instructions.
        stores_per_ki: All stores per kilo-instruction (Table V
            'sp_full').
        loads_per_ki: Loads per kilo-instruction.
        stack_store_fraction: Fraction of stores that hit the stack
            (non-persistent under the paper's default protection).
        pool_blocks: Size of the store working pool; smaller pools mean
            more same-block reuse within an epoch.
        new_block_rate: Probability a store allocates a fresh,
            never-seen block (streaming-ness; drives LLC write-backs).
        page_run: Mean number of fresh blocks allocated in a page before
            allocation moves to the next page.  Small runs spread the
            working pool across many (adjacent) pages, which bounds how
            much BMT-update coalescing can save; large runs concentrate
            a pool in few counter blocks.
        page_scatter: Probability that a page advance jumps to a distant
            page instead of the adjacent one (spatial locality knob;
            high values hurt coalescing's deep shared ancestors).
        load_reuse_fraction: Fraction of loads that target recently
            stored blocks (cache hits).  The remaining loads stream
            through fresh, one-touch addresses — every one an LLC miss —
            so the miss rate is ``loads_per_ki * (1 - reuse)`` MPKI.
        seed: RNG seed (the generator is fully deterministic).
    """

    name: str = "synthetic"
    kilo_instructions: int = 100
    stores_per_ki: float = 100.0
    loads_per_ki: float = 200.0
    stack_store_fraction: float = 0.5
    pool_blocks: int = 16
    new_block_rate: float = 0.05
    page_run: float = 2.0
    page_scatter: float = 0.05
    load_reuse_fraction: float = 0.9
    seed: int = 2020


def expected_uniques(pool_blocks: int, new_rate: float, window: int) -> float:
    """Expected unique blocks among ``window`` stores of the pool process.

    Used to calibrate ``pool_blocks`` against a target per-epoch unique
    ratio (Table V's o3 column).
    """
    pool = max(1, pool_blocks)
    reuse_draws = window * (1.0 - new_rate)
    distinct_from_pool = pool * (1.0 - (1.0 - 1.0 / pool) ** reuse_draws)
    return min(float(window), distinct_from_pool + window * new_rate)


def calibrate_pool(target_uniques: float, new_rate: float, window: int) -> int:
    """Pool size whose expected uniques over ``window`` match the target."""
    lo, hi = 1, 1 << 16
    if expected_uniques(lo, new_rate, window) >= target_uniques:
        return lo
    while lo < hi:
        mid = (lo + hi) // 2
        if expected_uniques(mid, new_rate, window) < target_uniques:
            lo = mid + 1
        else:
            hi = mid
    return lo


class _StoreStream:
    """The working-pool store address process."""

    def __init__(
        self, spec: SyntheticSpec, rng: random.Random, base: int = HEAP_BASE
    ) -> None:
        self._spec = spec
        self._rng = rng
        self._next_block = base // BLOCK
        self._page_fill = 0
        # Pre-fill the working pool: the initial working set exists even
        # for workloads that never allocate fresh blocks (new_block_rate
        # of zero, e.g. gamess whose write-back rate is ~0).
        self._pool: List[int] = [
            self._fresh_block() for _ in range(max(1, spec.pool_blocks))
        ]

    def _fresh_block(self) -> int:
        """Allocate a new block, spreading runs across adjacent pages."""
        spec = self._spec
        advance = self._page_fill >= PAGE_BLOCKS or (
            self._page_fill > 0
            and self._rng.random() < 1.0 / max(1.0, spec.page_run)
        )
        if advance:
            step = 1
            if self._rng.random() < spec.page_scatter:
                # Distant jump: heap arenas spread allocations across a
                # wide region, so working-pool pages only share shallow
                # BMT ancestors (bounding what coalescing can save).
                step += self._rng.randrange(4096)
            self._next_block = (
                (self._next_block // PAGE_BLOCKS) + step
            ) * PAGE_BLOCKS
            self._page_fill = 0
        block = self._next_block
        self._next_block += 1
        self._page_fill += 1
        return block

    def next_block(self) -> int:
        spec = self._spec
        if self._rng.random() < spec.new_block_rate:
            block = self._fresh_block()
            self._pool.append(block)
            if len(self._pool) > spec.pool_blocks:
                self._pool.pop(0)
            return block
        return self._rng.choice(self._pool)

    def recent_blocks(self) -> List[int]:
        return self._pool


def generate_trace(spec: SyntheticSpec) -> MemoryTrace:
    """Generate a trace matching a :class:`SyntheticSpec`.

    The instruction budget is distributed as per-op gaps so that the
    trace's PPKI statistics match the spec's rates.
    """
    rng = random.Random(spec.seed)
    trace = MemoryTrace(name=spec.name)
    stores = max(1, round(spec.kilo_instructions * spec.stores_per_ki))
    loads = max(0, round(spec.kilo_instructions * spec.loads_per_ki))
    total_ops = stores + loads
    total_instructions = spec.kilo_instructions * 1000
    gap_budget = max(0, total_instructions - total_ops)
    base_gap, remainder = divmod(gap_budget, total_ops)

    store_stream = _StoreStream(spec, rng)
    load_frontier = HEAP_BASE // BLOCK + (1 << 20)
    stack_cursor = 0

    # Interleave loads and stores uniformly.
    ops: List[bool] = [True] * stores + [False] * loads  # True = store
    rng.shuffle(ops)

    append_op = trace.append_op
    for index, is_store in enumerate(ops):
        gap = base_gap + (1 if index < remainder else 0)
        if is_store:
            if rng.random() < spec.stack_store_fraction:
                stack_cursor = (stack_cursor + 1) % STACK_BLOCKS
                address = STACK_BASE + stack_cursor * BLOCK
                append_op(KIND_STORE, address, gap, 0)
            else:
                block = store_stream.next_block()
                append_op(KIND_STORE, block * BLOCK, gap, 1)
        else:
            pool = store_stream.recent_blocks()
            if pool and rng.random() < spec.load_reuse_fraction:
                block = rng.choice(pool)
            else:
                # One-touch streaming read: always a fresh block.
                block = load_frontier
                load_frontier += 1
            append_op(KIND_LOAD, block * BLOCK, gap, 1)
    return trace


# ----------------------------------------------------------------------
# Simple single-purpose generators (examples, tests)
# ----------------------------------------------------------------------


def sequential_stream(
    num_stores: int, start: int = HEAP_BASE, gap: int = 8, seed: int = 0
) -> MemoryTrace:
    """Stores marching sequentially through memory (streaming write)."""
    trace = MemoryTrace(name="sequential")
    append_op = trace.append_op
    for i in range(num_stores):
        append_op(KIND_STORE, start + i * BLOCK, gap)
    return trace


def strided_stream(
    num_stores: int, stride_blocks: int, start: int = HEAP_BASE, gap: int = 8
) -> MemoryTrace:
    """Stores with a fixed block stride (e.g. column-major sweeps)."""
    trace = MemoryTrace(name=f"stride{stride_blocks}")
    append_op = trace.append_op
    for i in range(num_stores):
        append_op(KIND_STORE, start + i * stride_blocks * BLOCK, gap)
    return trace


def uniform_random(
    num_stores: int, span_blocks: int, start: int = HEAP_BASE, gap: int = 8, seed: int = 7
) -> MemoryTrace:
    """Uniformly random stores over a span (worst case for coalescing)."""
    rng = random.Random(seed)
    trace = MemoryTrace(name="uniform")
    append_op = trace.append_op
    for _ in range(num_stores):
        block = rng.randrange(span_blocks)
        append_op(KIND_STORE, start + block * BLOCK, gap)
    return trace


def zipfian(
    num_stores: int,
    span_blocks: int,
    skew: float = 1.1,
    start: int = HEAP_BASE,
    gap: int = 8,
    seed: int = 11,
) -> MemoryTrace:
    """Zipf-distributed stores (hot-set reuse, e.g. index updates)."""
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = random.Random(seed)
    weights = [1.0 / (rank**skew) for rank in range(1, span_blocks + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    trace = MemoryTrace(name="zipf")
    for _ in range(num_stores):
        u = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        trace.append_op(KIND_STORE, start + lo * BLOCK, gap)
    return trace


def pointer_chase(
    num_loads: int, span_blocks: int, start: int = HEAP_BASE, gap: int = 16, seed: int = 13
) -> MemoryTrace:
    """Dependent loads over a shuffled ring (latency-bound reads)."""
    rng = random.Random(seed)
    order = list(range(span_blocks))
    rng.shuffle(order)
    trace = MemoryTrace(name="pointer_chase")
    position = 0
    append_op = trace.append_op
    for _ in range(num_loads):
        position = order[position % span_blocks]
        append_op(KIND_LOAD, start + position * BLOCK, gap)
    return trace


def kvstore_trace(
    num_ops: int,
    num_keys: int = 4096,
    put_fraction: float = 0.5,
    log_base: int = HEAP_BASE,
    table_base: int = HEAP_BASE + (1 << 26),
    gap: int = 12,
    seed: int = 17,
) -> MemoryTrace:
    """A persistent key-value store: append-only log plus random table.

    Each PUT appends a log record (sequential persistent stores — ideal
    coalescing) then updates the key's table slot (random persistent
    store) and issues an SFENCE, modelling a durable transaction commit.
    GETs read the table slot.
    """
    rng = random.Random(seed)
    trace = MemoryTrace(name="kvstore")
    log_cursor = 0
    append_op = trace.append_op
    for _ in range(num_ops):
        key = rng.randrange(num_keys)
        slot_addr = table_base + key * BLOCK
        if rng.random() < put_fraction:
            append_op(KIND_STORE, log_base + log_cursor * BLOCK, gap)
            log_cursor += 1
            append_op(KIND_STORE, slot_addr, 2)
            append_op(KIND_SFENCE)
        else:
            append_op(KIND_LOAD, slot_addr, gap)
    return trace


# ----------------------------------------------------------------------
# Streaming emission and adversarial generators
# ----------------------------------------------------------------------


def emit_ops(sink, ops: Iterable[Op]):
    """Feed an op iterator into any ``append_op`` sink.

    ``sink`` is either a :class:`MemoryTrace` (in-memory materialization)
    or a :class:`~repro.workloads.trace.TraceWriter` (bounded-memory
    emission straight to a v2 file) — both expose the same
    ``append_op(kind, address, gap, persistent)``.  Returns the sink.
    """
    append_op = sink.append_op
    for code, address, gap, persistent in ops:
        append_op(code, address, gap, persistent)
    return sink


def stream_trace(
    path,
    ops: Iterable[Op],
    name: str = "synthetic",
    segment_ops: int = DEFAULT_SEGMENT_OPS,
) -> int:
    """Write an op iterator straight to a chunked v2 trace file.

    Peak memory is one segment's columns regardless of trace length —
    this is how 10M-op benchmark traces are produced without ever
    holding a 10M-op :class:`MemoryTrace`.  Returns the record count.
    """
    with TraceWriter(path, name=name, segment_ops=segment_ops) as writer:
        emit_ops(writer, ops)
        return writer.count


def synthetic_ops(spec: SyntheticSpec) -> Iterator[Op]:
    """Streaming working-pool op process for arbitrarily long traces.

    The O(1)-memory sibling of :func:`generate_trace`: same store/load
    working-pool process and rates, but the store/load interleave is
    drawn by sequential sampling (exactly ``stores`` stores, uniformly
    interleaved) instead of materializing and shuffling an op-type list.
    The RNG consumption order therefore differs from
    :func:`generate_trace` — for a given seed the two produce different
    (equally valid) traces, and only this one can be piped through
    :func:`stream_trace` at 10M+ ops.
    """
    rng = random.Random(spec.seed)
    stores = max(1, round(spec.kilo_instructions * spec.stores_per_ki))
    loads = max(0, round(spec.kilo_instructions * spec.loads_per_ki))
    total_ops = stores + loads
    total_instructions = spec.kilo_instructions * 1000
    gap_budget = max(0, total_instructions - total_ops)
    base_gap, remainder = divmod(gap_budget, total_ops)

    store_stream = _StoreStream(spec, rng)
    load_frontier = HEAP_BASE // BLOCK + (1 << 20)
    stack_cursor = 0
    stores_left = stores

    for index in range(total_ops):
        gap = base_gap + (1 if index < remainder else 0)
        ops_left = total_ops - index
        if rng.random() * ops_left < stores_left:
            stores_left -= 1
            if rng.random() < spec.stack_store_fraction:
                stack_cursor = (stack_cursor + 1) % STACK_BLOCKS
                yield (KIND_STORE, STACK_BASE + stack_cursor * BLOCK, gap, 0)
            else:
                block = store_stream.next_block()
                yield (KIND_STORE, block * BLOCK, gap, 1)
        else:
            pool = store_stream.recent_blocks()
            if pool and rng.random() < spec.load_reuse_fraction:
                block = rng.choice(pool)
            else:
                block = load_frontier
                load_frontier += 1
            yield (KIND_LOAD, block * BLOCK, gap, 1)


def lca_pingpong_ops(
    num_stores: int,
    separation_blocks: int = 1 << 22,
    pairs: int = 4,
    sfence_every: int = 64,
    start: int = HEAP_BASE,
    gap: int = 8,
    seed: int = 19,
) -> Iterator[Op]:
    """LCA-pathological sibling ping-pong (adversarial for coalescing).

    Persistent stores strictly alternate between the two sides of
    ``pairs`` block pairs whose members sit ``separation_blocks`` apart,
    so every *consecutive* persist pair diverges near the BMT root: the
    lowest common ancestor is maximally shallow and update coalescing
    (§IV-B2) finds almost no shared path to absorb.  Rotating through
    several pairs additionally defeats counter/MAC cache reuse.  With
    ``sfence_every > 0`` an SFENCE closes an epoch every that many
    stores, exercising epoch-drain sharding splits on a worst-case
    persist stream.  Fully deterministic in ``seed`` (it only jitters
    each pair's position within its page).
    """
    if num_stores < 0:
        raise ValueError("num_stores must be non-negative")
    if separation_blocks <= PAGE_BLOCKS:
        raise ValueError("separation_blocks must exceed one page")
    rng = random.Random(seed)
    base_block = start // BLOCK
    lefts = [
        base_block + p * PAGE_BLOCKS + rng.randrange(PAGE_BLOCKS)
        for p in range(max(1, pairs))
    ]
    npairs = len(lefts)
    since_fence = 0
    for i in range(num_stores):
        block = lefts[(i // 2) % npairs]
        if i & 1:
            block += separation_blocks
        yield (KIND_STORE, block * BLOCK, gap, 1)
        since_fence += 1
        if sfence_every > 0 and since_fence >= sfence_every:
            yield (KIND_SFENCE, 0, 0, 0)
            since_fence = 0


def lca_pingpong(num_stores: int, **kwargs) -> MemoryTrace:
    """Materialized :func:`lca_pingpong_ops` trace."""
    trace = MemoryTrace(name="lca_pingpong")
    return emit_ops(trace, lca_pingpong_ops(num_stores, **kwargs))


def multi_tenant_ops(
    clients: int = 4,
    ops_per_client: int = 25_000,
    tenant_stride_blocks: int = 1 << 26,
    store_fraction: float = 0.4,
    sfence_every: int = 0,
    gap: int = 6,
    seed: int = 23,
    spec: Optional[SyntheticSpec] = None,
) -> Iterator[Op]:
    """Multi-tenant interleaved-client mixer.

    ``clients`` independent working-pool processes, each confined to its
    own region (``tenant_stride_blocks`` apart, so tenants share no
    counter blocks and only shallow BMT ancestors), interleaved into one
    op stream by remaining-count sequential sampling.  The interleave
    destroys per-tenant temporal locality at the metadata caches — the
    adversarial contrast to the single-client generators — while each
    tenant's own stream keeps its working-pool reuse.  O(1) memory per
    op and fully deterministic in ``seed`` (each tenant derives its own
    sub-seeded RNG, so adding a tenant never perturbs the others'
    address streams).
    """
    if clients < 1:
        raise ValueError("clients must be positive")
    if not 0.0 <= store_fraction <= 1.0:
        raise ValueError("store_fraction must be within [0, 1]")
    base_spec = spec if spec is not None else SyntheticSpec(
        pool_blocks=32, new_block_rate=0.02, page_run=4.0
    )
    mixer = random.Random(seed)
    tenants = []
    for c in range(clients):
        rng = random.Random(seed * 1_000_003 + c + 1)
        base = HEAP_BASE + c * tenant_stride_blocks * BLOCK
        tenants.append(
            {
                "rng": rng,
                "stream": _StoreStream(base_spec, rng, base=base),
                "load_frontier": base // BLOCK + (1 << 20),
                "left": ops_per_client,
            }
        )
    total_left = clients * ops_per_client
    since_fence = 0
    while total_left:
        pick = mixer.random() * total_left
        acc = 0.0
        tenant = tenants[-1]
        for t in tenants:
            acc += t["left"]
            if pick < acc:
                tenant = t
                break
        tenant["left"] -= 1
        total_left -= 1
        rng = tenant["rng"]
        if rng.random() < store_fraction:
            block = tenant["stream"].next_block()
            yield (KIND_STORE, block * BLOCK, gap, 1)
            since_fence += 1
            if sfence_every > 0 and since_fence >= sfence_every:
                yield (KIND_SFENCE, 0, 0, 0)
                since_fence = 0
        else:
            pool = tenant["stream"].recent_blocks()
            if rng.random() < 0.7:
                block = rng.choice(pool)
            else:
                block = tenant["load_frontier"]
                tenant["load_frontier"] += 1
            yield (KIND_LOAD, block * BLOCK, gap, 1)


def multi_tenant(**kwargs) -> MemoryTrace:
    """Materialized :func:`multi_tenant_ops` trace."""
    trace = MemoryTrace(name="multi_tenant")
    return emit_ops(trace, multi_tenant_ops(**kwargs))
