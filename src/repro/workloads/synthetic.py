"""Synthetic trace generators.

The main entry point is :func:`generate_trace`, a statistics-driven
generator used to synthesize SPEC-like workloads.  Its store stream is
produced by a *working-pool* process: stores sample from a bounded pool
of active blocks while new blocks enter the pool at a configurable rate.
This yields the two properties the evaluation depends on:

* the number of **unique blocks per epoch grows sub-linearly** with the
  epoch size (Fig. 11's PPKI-vs-epoch-size curve), and
* new blocks are allocated **sequentially within pages**, giving the
  spatial locality that BMT update coalescing exploits (§IV-B2).

Smaller single-purpose generators (sequential, strided, zipf, pointer
chase, a key-value store) are provided for the examples and tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.trace import (
    KIND_LOAD,
    KIND_SFENCE,
    KIND_STORE,
    MemoryTrace,
)

BLOCK = 64
PAGE_BLOCKS = 64

HEAP_BASE = 0x1000_0000
"""Base of the persistent heap region."""

STACK_BASE = 0x7FFF_0000
"""Base of the (non-persistent) stack region."""

STACK_BLOCKS = 128
"""Stack footprint in blocks (8 KB)."""


@dataclass
class SyntheticSpec:
    """Parameters for the statistics-driven generator.

    Attributes:
        name: Workload label.
        kilo_instructions: Trace length in kilo-instructions.
        stores_per_ki: All stores per kilo-instruction (Table V
            'sp_full').
        loads_per_ki: Loads per kilo-instruction.
        stack_store_fraction: Fraction of stores that hit the stack
            (non-persistent under the paper's default protection).
        pool_blocks: Size of the store working pool; smaller pools mean
            more same-block reuse within an epoch.
        new_block_rate: Probability a store allocates a fresh,
            never-seen block (streaming-ness; drives LLC write-backs).
        page_run: Mean number of fresh blocks allocated in a page before
            allocation moves to the next page.  Small runs spread the
            working pool across many (adjacent) pages, which bounds how
            much BMT-update coalescing can save; large runs concentrate
            a pool in few counter blocks.
        page_scatter: Probability that a page advance jumps to a distant
            page instead of the adjacent one (spatial locality knob;
            high values hurt coalescing's deep shared ancestors).
        load_reuse_fraction: Fraction of loads that target recently
            stored blocks (cache hits).  The remaining loads stream
            through fresh, one-touch addresses — every one an LLC miss —
            so the miss rate is ``loads_per_ki * (1 - reuse)`` MPKI.
        seed: RNG seed (the generator is fully deterministic).
    """

    name: str = "synthetic"
    kilo_instructions: int = 100
    stores_per_ki: float = 100.0
    loads_per_ki: float = 200.0
    stack_store_fraction: float = 0.5
    pool_blocks: int = 16
    new_block_rate: float = 0.05
    page_run: float = 2.0
    page_scatter: float = 0.05
    load_reuse_fraction: float = 0.9
    seed: int = 2020


def expected_uniques(pool_blocks: int, new_rate: float, window: int) -> float:
    """Expected unique blocks among ``window`` stores of the pool process.

    Used to calibrate ``pool_blocks`` against a target per-epoch unique
    ratio (Table V's o3 column).
    """
    pool = max(1, pool_blocks)
    reuse_draws = window * (1.0 - new_rate)
    distinct_from_pool = pool * (1.0 - (1.0 - 1.0 / pool) ** reuse_draws)
    return min(float(window), distinct_from_pool + window * new_rate)


def calibrate_pool(target_uniques: float, new_rate: float, window: int) -> int:
    """Pool size whose expected uniques over ``window`` match the target."""
    lo, hi = 1, 1 << 16
    if expected_uniques(lo, new_rate, window) >= target_uniques:
        return lo
    while lo < hi:
        mid = (lo + hi) // 2
        if expected_uniques(mid, new_rate, window) < target_uniques:
            lo = mid + 1
        else:
            hi = mid
    return lo


class _StoreStream:
    """The working-pool store address process."""

    def __init__(self, spec: SyntheticSpec, rng: random.Random) -> None:
        self._spec = spec
        self._rng = rng
        self._next_block = HEAP_BASE // BLOCK
        self._page_fill = 0
        # Pre-fill the working pool: the initial working set exists even
        # for workloads that never allocate fresh blocks (new_block_rate
        # of zero, e.g. gamess whose write-back rate is ~0).
        self._pool: List[int] = [
            self._fresh_block() for _ in range(max(1, spec.pool_blocks))
        ]

    def _fresh_block(self) -> int:
        """Allocate a new block, spreading runs across adjacent pages."""
        spec = self._spec
        advance = self._page_fill >= PAGE_BLOCKS or (
            self._page_fill > 0
            and self._rng.random() < 1.0 / max(1.0, spec.page_run)
        )
        if advance:
            step = 1
            if self._rng.random() < spec.page_scatter:
                # Distant jump: heap arenas spread allocations across a
                # wide region, so working-pool pages only share shallow
                # BMT ancestors (bounding what coalescing can save).
                step += self._rng.randrange(4096)
            self._next_block = (
                (self._next_block // PAGE_BLOCKS) + step
            ) * PAGE_BLOCKS
            self._page_fill = 0
        block = self._next_block
        self._next_block += 1
        self._page_fill += 1
        return block

    def next_block(self) -> int:
        spec = self._spec
        if self._rng.random() < spec.new_block_rate:
            block = self._fresh_block()
            self._pool.append(block)
            if len(self._pool) > spec.pool_blocks:
                self._pool.pop(0)
            return block
        return self._rng.choice(self._pool)

    def recent_blocks(self) -> List[int]:
        return self._pool


def generate_trace(spec: SyntheticSpec) -> MemoryTrace:
    """Generate a trace matching a :class:`SyntheticSpec`.

    The instruction budget is distributed as per-op gaps so that the
    trace's PPKI statistics match the spec's rates.
    """
    rng = random.Random(spec.seed)
    trace = MemoryTrace(name=spec.name)
    stores = max(1, round(spec.kilo_instructions * spec.stores_per_ki))
    loads = max(0, round(spec.kilo_instructions * spec.loads_per_ki))
    total_ops = stores + loads
    total_instructions = spec.kilo_instructions * 1000
    gap_budget = max(0, total_instructions - total_ops)
    base_gap, remainder = divmod(gap_budget, total_ops)

    store_stream = _StoreStream(spec, rng)
    load_frontier = HEAP_BASE // BLOCK + (1 << 20)
    stack_cursor = 0

    # Interleave loads and stores uniformly.
    ops: List[bool] = [True] * stores + [False] * loads  # True = store
    rng.shuffle(ops)

    append_op = trace.append_op
    for index, is_store in enumerate(ops):
        gap = base_gap + (1 if index < remainder else 0)
        if is_store:
            if rng.random() < spec.stack_store_fraction:
                stack_cursor = (stack_cursor + 1) % STACK_BLOCKS
                address = STACK_BASE + stack_cursor * BLOCK
                append_op(KIND_STORE, address, gap, 0)
            else:
                block = store_stream.next_block()
                append_op(KIND_STORE, block * BLOCK, gap, 1)
        else:
            pool = store_stream.recent_blocks()
            if pool and rng.random() < spec.load_reuse_fraction:
                block = rng.choice(pool)
            else:
                # One-touch streaming read: always a fresh block.
                block = load_frontier
                load_frontier += 1
            append_op(KIND_LOAD, block * BLOCK, gap, 1)
    return trace


# ----------------------------------------------------------------------
# Simple single-purpose generators (examples, tests)
# ----------------------------------------------------------------------


def sequential_stream(
    num_stores: int, start: int = HEAP_BASE, gap: int = 8, seed: int = 0
) -> MemoryTrace:
    """Stores marching sequentially through memory (streaming write)."""
    trace = MemoryTrace(name="sequential")
    append_op = trace.append_op
    for i in range(num_stores):
        append_op(KIND_STORE, start + i * BLOCK, gap)
    return trace


def strided_stream(
    num_stores: int, stride_blocks: int, start: int = HEAP_BASE, gap: int = 8
) -> MemoryTrace:
    """Stores with a fixed block stride (e.g. column-major sweeps)."""
    trace = MemoryTrace(name=f"stride{stride_blocks}")
    append_op = trace.append_op
    for i in range(num_stores):
        append_op(KIND_STORE, start + i * stride_blocks * BLOCK, gap)
    return trace


def uniform_random(
    num_stores: int, span_blocks: int, start: int = HEAP_BASE, gap: int = 8, seed: int = 7
) -> MemoryTrace:
    """Uniformly random stores over a span (worst case for coalescing)."""
    rng = random.Random(seed)
    trace = MemoryTrace(name="uniform")
    append_op = trace.append_op
    for _ in range(num_stores):
        block = rng.randrange(span_blocks)
        append_op(KIND_STORE, start + block * BLOCK, gap)
    return trace


def zipfian(
    num_stores: int,
    span_blocks: int,
    skew: float = 1.1,
    start: int = HEAP_BASE,
    gap: int = 8,
    seed: int = 11,
) -> MemoryTrace:
    """Zipf-distributed stores (hot-set reuse, e.g. index updates)."""
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = random.Random(seed)
    weights = [1.0 / (rank**skew) for rank in range(1, span_blocks + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    trace = MemoryTrace(name="zipf")
    for _ in range(num_stores):
        u = rng.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        trace.append_op(KIND_STORE, start + lo * BLOCK, gap)
    return trace


def pointer_chase(
    num_loads: int, span_blocks: int, start: int = HEAP_BASE, gap: int = 16, seed: int = 13
) -> MemoryTrace:
    """Dependent loads over a shuffled ring (latency-bound reads)."""
    rng = random.Random(seed)
    order = list(range(span_blocks))
    rng.shuffle(order)
    trace = MemoryTrace(name="pointer_chase")
    position = 0
    append_op = trace.append_op
    for _ in range(num_loads):
        position = order[position % span_blocks]
        append_op(KIND_LOAD, start + position * BLOCK, gap)
    return trace


def kvstore_trace(
    num_ops: int,
    num_keys: int = 4096,
    put_fraction: float = 0.5,
    log_base: int = HEAP_BASE,
    table_base: int = HEAP_BASE + (1 << 26),
    gap: int = 12,
    seed: int = 17,
) -> MemoryTrace:
    """A persistent key-value store: append-only log plus random table.

    Each PUT appends a log record (sequential persistent stores — ideal
    coalescing) then updates the key's table slot (random persistent
    store) and issues an SFENCE, modelling a durable transaction commit.
    GETs read the table slot.
    """
    rng = random.Random(seed)
    trace = MemoryTrace(name="kvstore")
    log_cursor = 0
    append_op = trace.append_op
    for _ in range(num_ops):
        key = rng.randrange(num_keys)
        slot_addr = table_base + key * BLOCK
        if rng.random() < put_fraction:
            append_op(KIND_STORE, log_base + log_cursor * BLOCK, gap)
            log_cursor += 1
            append_op(KIND_STORE, slot_addr, 2)
            append_op(KIND_SFENCE)
        else:
            append_op(KIND_LOAD, slot_addr, gap)
    return trace
