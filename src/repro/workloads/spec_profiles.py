"""SPEC CPU2006 workload profiles calibrated to the paper's Table V.

Each profile records the paper-reported persist statistics and a small
set of locality/intensity knobs, and compiles into a
:class:`~repro.workloads.synthetic.SyntheticSpec`:

* ``stores_per_ki`` ← Table V 'sp_full' (all stores / KI);
* stack fraction ← 1 − sp / sp_full;
* fresh-block rate ← secure_WB write-backs per non-stack store;
* working-pool size ← calibrated so the expected unique blocks per
  32-store epoch reproduce Table V's 'o3' column.

Knobs that Table V does not constrain (baseline core IPC, load
intensity, load working set, page scatter) are chosen per benchmark to
match each benchmark's qualitative character (streaming vs pointer
chasing vs compute bound); ``EXPERIMENTS.md`` reports measured-vs-paper
statistics for every profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.synthetic import (
    SyntheticSpec,
    calibrate_pool,
    generate_trace,
)
from repro.workloads.trace import MemoryTrace

REFERENCE_EPOCH = 32
"""Epoch size (stores) at which Table V's o3 column was measured."""


@dataclass(frozen=True)
class SpecProfile:
    """One benchmark's Table V statistics plus modelling knobs.

    Attributes:
        name: Benchmark name.
        sp_full_ppki: All stores per kilo-instruction (Table V col 1).
        wb_full_ppki: secure_WB write-backs per KI (Table V col 2).
        sp_ppki: Non-stack stores per KI (Table V col 3).
        o3_ppki: Epoch-boundary persists per KI at epoch 32 (col 4).
        core_ipc: Baseline core issue rate for non-memory instructions.
        loads_per_ki: Load intensity.
        l3_mpki: Target LLC load misses per kilo-instruction (streaming
            one-touch loads; sets the memory-boundness of the baseline).
        page_scatter: Fresh-allocation page-jump probability.
    """

    name: str
    sp_full_ppki: float
    wb_full_ppki: float
    sp_ppki: float
    o3_ppki: float
    core_ipc: float
    loads_per_ki: float
    l3_mpki: float
    page_scatter: float

    @property
    def stack_store_fraction(self) -> float:
        return max(0.0, 1.0 - self.sp_ppki / self.sp_full_ppki)

    @property
    def new_block_rate(self) -> float:
        """First-touch probability per persistent store."""
        if self.sp_ppki <= 0:
            return 0.0
        return min(0.9, self.wb_full_ppki / self.sp_ppki)

    @property
    def epoch_unique_target(self) -> float:
        """Target unique blocks per 32-store epoch (from the o3 column)."""
        if self.sp_ppki <= 0:
            return float(REFERENCE_EPOCH)
        return REFERENCE_EPOCH * self.o3_ppki / self.sp_ppki

    @property
    def load_reuse_fraction(self) -> float:
        """Load reuse so streaming loads produce ``l3_mpki`` misses/KI."""
        if self.loads_per_ki <= 0:
            return 1.0
        return max(0.0, 1.0 - self.l3_mpki / self.loads_per_ki)

    def to_spec(self, kilo_instructions: int = 50, seed: int = 2020) -> SyntheticSpec:
        """Compile the profile into generator parameters."""
        pool = calibrate_pool(
            self.epoch_unique_target, self.new_block_rate, REFERENCE_EPOCH
        )
        return SyntheticSpec(
            name=self.name,
            kilo_instructions=kilo_instructions,
            stores_per_ki=self.sp_full_ppki,
            loads_per_ki=self.loads_per_ki,
            stack_store_fraction=self.stack_store_fraction,
            pool_blocks=pool,
            new_block_rate=self.new_block_rate,
            page_scatter=self.page_scatter,
            load_reuse_fraction=self.load_reuse_fraction,
            seed=seed,
        )


def _profiles() -> Dict[str, SpecProfile]:
    rows = [
        # name         sp_full  wb_full    sp      o3     ipc  loads  mpki  scatter
        ("astar",       83.48,   0.35,  13.21,   1.97,  1.50,  150,  1.5,  0.35),
        ("bwaves",     100.27,   8.70,  61.60,  26.47,  1.20,  220, 18.0,  0.02),
        ("cactusADM",  114.59,   1.55,  12.35,   5.68,  1.20,  180,  5.0,  0.20),
        ("gamess",     100.72,   0.00,  51.38,  30.433, 2.45,  200,  0.1,  0.25),
        ("gcc",        126.73,   1.46,  67.38,  36.64,  0.80,  230,  1.5,  0.30),
        ("gobmk",      125.16,   0.17,  34.41,  14.63,  1.00,  210,  0.6,  0.30),
        ("gromacs",    105.73,   0.04,   9.66,   2.69,  1.60,  170,  0.3,  0.20),
        ("h264ref",    101.17,   0.00,  48.80,  10.45,  1.00,  190,  0.5,  0.25),
        ("leslie3d",   108.79,   7.78,  58.47,  17.58,  1.10,  240, 15.0,  0.02),
        ("milc",        40.18,   2.00,  13.65,   4.10,  1.20,  140, 25.0,  0.15),
        ("namd",       133.10,   0.18,  19.66,   2.07,  1.30,  180,  0.3,  0.20),
        ("povray",     150.72,   0.00,  39.23,  11.22,  1.00,  220,  0.05, 0.25),
        ("sphinx3",    184.29,   0.10,   4.87,   1.04,  2.00,  260, 12.0,  0.20),
        ("tonto",      141.84,   0.00,  34.45,  16.60,  0.90,  210,  0.3,  0.25),
        ("zeusmp",     175.87,   1.92,  19.87,   4.66,  1.40,  230,  5.0,  0.04),
    ]
    return {
        name: SpecProfile(name, *values)
        for name, *values in rows
    }


SPEC_PROFILES: Dict[str, SpecProfile] = _profiles()
"""All fifteen Table V benchmarks, keyed by name."""

BENCHMARK_NAMES: List[str] = list(SPEC_PROFILES)


def profile_trace(
    name: str, kilo_instructions: int = 50, seed: int = 2020
) -> MemoryTrace:
    """Generate the synthetic trace for one Table V benchmark."""
    try:
        profile = SPEC_PROFILES[name]
    except KeyError:
        valid = ", ".join(SPEC_PROFILES)
        raise KeyError(f"unknown benchmark {name!r}; expected one of: {valid}") from None
    return generate_trace(profile.to_spec(kilo_instructions, seed))
