"""Workload traces: record format, synthetic generators, SPEC profiles.

The paper evaluates on 15 SPEC CPU2006 benchmarks under gem5.  Without
the authors' testbed we synthesize traces whose *persist-relevant
statistics* are calibrated to the paper's Table V: stores per kilo
instruction, the non-stack store fraction, the per-epoch unique-block
ratio (which determines the o3 persist collapse), the LLC write-back
rate, and spatial locality (which determines coalescing's win).
"""

from repro.workloads.trace import (
    KIND_LOAD,
    KIND_SFENCE,
    KIND_STORE,
    MemoryTrace,
    OpKind,
    TraceFormatError,
    TraceRecord,
)
from repro.workloads.synthetic import (
    SyntheticSpec,
    emit_ops,
    generate_trace,
    kvstore_trace,
    lca_pingpong,
    lca_pingpong_ops,
    multi_tenant,
    multi_tenant_ops,
    pointer_chase,
    sequential_stream,
    stream_trace,
    strided_stream,
    synthetic_ops,
    uniform_random,
    zipfian,
)
from repro.workloads.spec_profiles import SpecProfile, SPEC_PROFILES, profile_trace

__all__ = [
    "KIND_LOAD",
    "KIND_SFENCE",
    "KIND_STORE",
    "MemoryTrace",
    "TraceFormatError",
    "TraceRecord",
    "OpKind",
    "SyntheticSpec",
    "emit_ops",
    "generate_trace",
    "kvstore_trace",
    "lca_pingpong",
    "lca_pingpong_ops",
    "multi_tenant",
    "multi_tenant_ops",
    "pointer_chase",
    "sequential_stream",
    "stream_trace",
    "strided_stream",
    "synthetic_ops",
    "uniform_random",
    "zipfian",
    "SpecProfile",
    "SPEC_PROFILES",
    "profile_trace",
]
