"""Structured event tracing and time-series metrics for the simulators.

The paper's argument is temporal — pipelined BMT updates keep successive
tree levels occupied in lock-step, OOO/EP updates overlap within epochs,
coalescing collapses work at the LCA — and this package makes that
behaviour observable: typed events per hardware structure, windowed
occupancy gauges, and exporters (Perfetto-loadable Chrome trace JSON,
JSONL, a terminal timeline).

Entry points:

* enable per simulation via
  ``SystemConfig(telemetry=TelemetryConfig(enabled=True))``; the
  :class:`~repro.system.timing.TraceSimulator` then exposes a
  :class:`Telemetry` bus on ``simulator.telemetry``;
* ``plp-repro timeline`` renders and exports occupancy timelines;
* :mod:`repro.analysis.timeline` computes figure-style rollups.

Telemetry never alters simulation results (``bench_perf.py`` checks
bit-identity with telemetry on and off) and is strictly zero-overhead
when disabled: no bus is constructed and no instrumentation installed.
"""

from repro.telemetry.bus import NullSink, RingBufferSink, Telemetry, TelemetrySink
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.events import (
    OPEN_KINDS,
    SPAN_KINDS,
    EventKind,
    TraceEvent,
    level_track,
)
from repro.telemetry.export import (
    chrome_trace,
    paired_spans,
    render_timeline,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.series import GaugeSeries, WindowStats, interpolated_percentile

__all__ = [
    "EventKind",
    "GaugeSeries",
    "NullSink",
    "OPEN_KINDS",
    "RingBufferSink",
    "SPAN_KINDS",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySink",
    "TraceEvent",
    "WindowStats",
    "chrome_trace",
    "interpolated_percentile",
    "level_track",
    "paired_spans",
    "render_timeline",
    "write_chrome_trace",
    "write_jsonl",
]
