"""Typed telemetry events.

The taxonomy mirrors the paper's hardware structures: every event names
the structure (its *track*) it happened on, so exporters can render one
timeline row per structure.  Events are deliberately tiny — a slotted
record, no dataclass machinery — because a single trace run can emit
hundreds of thousands of them.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional


class EventKind(enum.IntEnum):
    """Event taxonomy, grouped by hardware structure."""

    # Write pending queue (2SP gathering).
    WPQ_ENQUEUE = 1
    WPQ_RELEASE = 2
    WPQ_INVALIDATE = 3
    WPQ_UNLOCK = 4

    # Persist tracking table.
    PTT_ALLOCATE = 10
    PTT_RETIRE = 11

    # BMT update engine: per-level node updates.
    BMT_LEVEL_ENTER = 20
    BMT_LEVEL_LEAVE = 21
    BMT_LEVEL_SPAN = 22  # closed-form span (start + duration known at emit)

    # Coalescing unit.
    COALESCE_DELEGATE = 30

    # Metadata caches.
    MDC_HIT = 40
    MDC_MISS = 41
    MDC_EVICT = 42

    # Epoch persistency.
    EPOCH_OPEN = 50
    EPOCH_DRAIN = 51

    # Discrete-event kernel.
    ENGINE_FIRE = 60


SPAN_KINDS = frozenset({EventKind.BMT_LEVEL_SPAN})
"""Kinds whose ``duration`` field describes a closed interval."""

OPEN_KINDS: Dict[EventKind, EventKind] = {
    EventKind.BMT_LEVEL_ENTER: EventKind.BMT_LEVEL_LEAVE,
    EventKind.EPOCH_OPEN: EventKind.EPOCH_DRAIN,
}
"""Begin kinds paired (per track + ident, FIFO) with their end kind."""


class TraceEvent:
    """One telemetry event.

    Attributes:
        kind: The :class:`EventKind`.
        time: Cycle (or logical tick) the event happened at.
        duration: Span length in cycles; 0 for instant events.
        track: Hardware-structure track label (e.g. ``"wpq"``,
            ``"bmt.L3"``, ``"mdc.ctr"``, ``"epochs"``).
        ident: Persist/epoch/block identifier; -1 when not applicable.
        args: Optional extra payload (small dict), ``None`` when empty.
    """

    __slots__ = ("kind", "time", "duration", "track", "ident", "args")

    def __init__(
        self,
        kind: EventKind,
        time: int,
        track: str,
        ident: int = -1,
        duration: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        self.kind = kind
        self.time = time
        self.duration = duration
        self.track = track
        self.ident = ident
        self.args = args

    def end(self) -> int:
        """The event's end time (== ``time`` for instants)."""
        return self.time + self.duration

    def as_dict(self) -> dict:
        """JSON-ready representation (JSONL exporter / tests)."""
        out = {
            "kind": self.kind.name,
            "time": self.time,
            "track": self.track,
            "ident": self.ident,
        }
        if self.duration:
            out["duration"] = self.duration
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:
        return (
            f"TraceEvent({self.kind.name}, t={self.time}, track={self.track!r}, "
            f"ident={self.ident}, dur={self.duration})"
        )


_LEVEL_TRACKS: Dict[int, str] = {}


def level_track(level: int) -> str:
    """Track label for a BMT level (0 is the root, as in the geometry).

    Interned: this sits on the span emission hot path (one call per
    BMT node update), and the label space is the tree depth.
    """
    track = _LEVEL_TRACKS.get(level)
    if track is None:
        track = _LEVEL_TRACKS[level] = f"bmt.L{level}"
    return track
