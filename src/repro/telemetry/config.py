"""Telemetry configuration.

Lives in its own module (not :mod:`repro.system.config`) so the
telemetry package stays import-cycle-free: ``system.config`` embeds a
:class:`TelemetryConfig`, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for the structured event/metrics subsystem.

    Telemetry is **off by default** and must never change simulation
    results: with ``enabled=False`` no instrumentation is installed at
    all (the hot paths keep their uninstrumented bound methods), and
    with ``enabled=True`` the emitted events are derived from — never
    fed back into — the timing state.  ``bench_perf.py`` enforces both
    properties (bit-identical ``SimResult`` and a bounded overhead).
    """

    enabled: bool = False

    ring_capacity: int = 1 << 16
    """Bounded event ring: oldest events are dropped (and counted) once
    the ring is full, so a long trace cannot exhaust memory."""

    sample_stride: int = 64
    """Gauge rollup window, in cycles: samples landing in the same
    ``time // stride`` window aggregate into one min/mean/max cell."""

    cache_events: bool = False
    """Emit per-access metadata-cache hit/miss/evict events (opt-in
    deep-inspection mode).  These are by far the highest-volume events
    — one per counter/MAC/BMT-node access — and installing their
    instrumented closures forces the batched engine onto its live
    metadata machinery, so the default keeps them off: the structural
    (WPQ/PTT/BMT/epoch) timeline stays cheap and the ring is not
    flooded.  Results are bit-identical either way."""

    window_value_cap: int = 64
    """Raw samples retained per gauge window for percentile rollups;
    beyond the cap the window keeps exact count/sum/min/max only."""

    max_windows: int = 4096
    """Rollup windows retained per gauge (oldest evicted first).
    Overall summaries (count/mean/min/max) are unaffected by eviction."""

    def __post_init__(self) -> None:
        if self.ring_capacity <= 0:
            raise ValueError("ring_capacity must be positive")
        if self.sample_stride <= 0:
            raise ValueError("sample_stride must be positive")
        if self.window_value_cap <= 0:
            raise ValueError("window_value_cap must be positive")
        if self.max_windows <= 0:
            raise ValueError("max_windows must be positive")


ENABLED = TelemetryConfig(enabled=True)
"""Convenience default-on configuration (``SystemConfig(telemetry=ENABLED)``)."""
