"""The telemetry bus: typed event emission into bounded sinks.

Design contract (enforced by ``bench_perf.py`` and the timing tests):

* **Zero overhead when disabled.**  Instrumented modules accept
  ``telemetry=None`` and either guard emissions with a single ``is not
  None`` check off the per-instruction hot path, or — for the hottest
  call sites (metadata-cache accesses) — install instrumented bound
  methods *only* when a bus is present, leaving the disabled path's
  bytecode untouched.
* **Observation only.**  Nothing in this package feeds back into timing
  state; simulation results are bit-identical with telemetry on or off.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.events import EventKind, TraceEvent, level_track
from repro.telemetry.series import GaugeSeries


class TelemetrySink:
    """Receives every emitted event.  Subclasses override :meth:`record`."""

    def record(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def events(self) -> List[TraceEvent]:
        raise NotImplementedError


class RingBufferSink(TelemetrySink):
    """A bounded FIFO of events; the oldest are dropped (and counted).

    Events are retained *packed* — the ``(kind, time, track, ident,
    duration, args)`` tuple the bus hands over — and only materialized
    into :class:`TraceEvent` instances when :meth:`events` is called.
    Emission is the hot path (hundreds of thousands of events per trace
    run); export happens once, so the typed objects are built there.
    """

    __slots__ = ("capacity", "_events", "_recorded")

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[tuple] = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, event: TraceEvent) -> None:
        """Slow-path entry for externally built events."""
        self._recorded += 1
        self._events.append(
            (event.kind, event.time, event.track, event.ident, event.duration, event.args)
        )

    def record_packed(self, packed: tuple) -> None:
        """Append one packed event tuple (the bus's fast path).

        The deque's ``maxlen`` performs the drop; :attr:`dropped` is
        derived from the running count, so the append stays branch-free.
        """
        self._recorded += 1
        self._events.append(packed)

    def record_many(self, packed_batch: List[tuple]) -> None:
        """Bulk-append a batch of packed tuples (bus buffer flush)."""
        self._recorded += len(packed_batch)
        self._events.extend(packed_batch)

    @property
    def dropped(self) -> int:
        return self._recorded - len(self._events)

    def events(self) -> List[TraceEvent]:
        return [
            TraceEvent(kind, time, track, ident=ident, duration=duration, args=args)
            for kind, time, track, ident, duration, args in self._events
        ]

    def __len__(self) -> int:
        return len(self._events)


class NullSink(TelemetrySink):
    """Discards everything (explicit sink for smoke tests and sizing)."""

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass

    def events(self) -> List[TraceEvent]:
        return []


def _zero_clock() -> int:
    return 0


class Telemetry:
    """The bus: owns the sink, the gauge registry, and the clock.

    Instrumented structures without their own notion of time (the
    functional WPQ, the coalescing unit) read :attr:`clock`, a zero-arg
    callable the owning simulator points at its cycle counter; the
    default clock pins events at t=0, and the sink preserves emission
    order regardless.
    """

    __slots__ = (
        "config",
        "sink",
        "clock",
        "_gauges",
        "_buf",
        "_flushed",
        "_flush_at",
        "_record_many",
    )

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        sink: Optional[TelemetrySink] = None,
    ) -> None:
        self.config = config if config is not None else TelemetryConfig(enabled=True)
        self.sink = sink if sink is not None else RingBufferSink(self.config.ring_capacity)
        self.clock: Callable[[], int] = _zero_clock
        self._gauges: Dict[str, GaugeSeries] = {}
        # Emission hot path: events are appended packed to a plain list
        # and handed to the sink in batches — one ``list.append`` per
        # event instead of a call chain through the sink.  The buffer
        # drains whenever any observer (events/emitted/dropped) looks,
        # and at ``_flush_at`` to bound memory; sinks that implement
        # ``record_many`` take the batch packed, others get typed
        # TraceEvents one at a time, in emission order either way.
        self._buf: List[tuple] = []
        self._flushed = 0
        self._flush_at = self.config.ring_capacity
        self._record_many: Optional[Callable[[List[tuple]], None]] = getattr(
            self.sink, "record_many", None
        )

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def _flush(self) -> None:
        buf = self._buf
        if not buf:
            return
        self._flushed += len(buf)
        record_many = self._record_many
        if record_many is not None:
            record_many(buf)
        else:
            record = self.sink.record
            for kind, time, track, ident, duration, args in buf:
                record(
                    TraceEvent(
                        kind, time, track, ident=ident, duration=duration, args=args
                    )
                )
        buf.clear()

    def emit(
        self,
        kind: EventKind,
        time: int,
        track: str,
        ident: int = -1,
        duration: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """Record one event (packed; materialized at export time)."""
        buf = self._buf
        buf.append((kind, time, track, ident, duration, args))
        if len(buf) >= self._flush_at:
            self._flush()

    # ``instant`` shares ``emit``'s positional prefix (kind, time,
    # track, ident); every call site passes ``args`` by keyword, so the
    # alias removes one call frame from the hottest instrumentation path.
    instant = emit

    def span(
        self,
        kind: EventKind,
        time: int,
        duration: int,
        track: str,
        ident: int = -1,
        args: Optional[dict] = None,
    ) -> None:
        buf = self._buf
        buf.append((kind, time, track, ident, duration, args))
        if len(buf) >= self._flush_at:
            self._flush()

    def span_walk(
        self, kind: EventKind, start: int, costs, ident: int, level: int
    ) -> None:
        """Emit one span per node of a serial walk in a single call.

        The walk starts at BMT level ``level`` and steps toward the
        root; node *i* spans ``costs[i]`` cycles starting where node
        *i-1* finished.  This batches the highest-volume structural
        events (per-node BMT_LEVEL_SPANs) into one bus call per persist.
        """
        buf = self._buf
        append = buf.append
        t = start
        for cost in costs:
            append((kind, t, level_track(level), ident, cost, None))
            t += cost
            level -= 1
        if len(buf) >= self._flush_at:
            self._flush()

    def events(self) -> List[TraceEvent]:
        """Events currently retained by the sink, in emission order."""
        self._flush()
        return self.sink.events()

    @property
    def emitted(self) -> int:
        """Total events emitted (including any the ring dropped)."""
        return self._flushed + len(self._buf)

    @property
    def dropped(self) -> int:
        self._flush()
        return getattr(self.sink, "dropped", 0)

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------

    def gauge(self, name: str) -> GaugeSeries:
        """Get or create the gauge ``name`` (stride from the config)."""
        series = self._gauges.get(name)
        if series is None:
            series = GaugeSeries(
                name,
                stride=self.config.sample_stride,
                value_cap=self.config.window_value_cap,
                max_windows=self.config.max_windows,
            )
            self._gauges[name] = series
        return series

    def sample(self, name: str, time: int, value: float) -> None:
        self.gauge(name).sample(time, value)

    def gauges(self) -> Dict[str, GaugeSeries]:
        return dict(self._gauges)

    def __repr__(self) -> str:
        return (
            f"Telemetry(events={self.emitted}, dropped={self.dropped}, "
            f"gauges={sorted(self._gauges)})"
        )
