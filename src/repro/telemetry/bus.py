"""The telemetry bus: typed event emission into bounded sinks.

Design contract (enforced by ``bench_perf.py`` and the timing tests):

* **Zero overhead when disabled.**  Instrumented modules accept
  ``telemetry=None`` and either guard emissions with a single ``is not
  None`` check off the per-instruction hot path, or — for the hottest
  call sites (metadata-cache accesses) — install instrumented bound
  methods *only* when a bus is present, leaving the disabled path's
  bytecode untouched.
* **Observation only.**  Nothing in this package feeds back into timing
  state; simulation results are bit-identical with telemetry on or off.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.events import EventKind, TraceEvent
from repro.telemetry.series import GaugeSeries


class TelemetrySink:
    """Receives every emitted event.  Subclasses override :meth:`record`."""

    def record(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def events(self) -> List[TraceEvent]:
        raise NotImplementedError


class RingBufferSink(TelemetrySink):
    """A bounded FIFO of events; the oldest are dropped (and counted)."""

    __slots__ = ("capacity", "_events", "dropped")

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class NullSink(TelemetrySink):
    """Discards everything (explicit sink for smoke tests and sizing)."""

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass

    def events(self) -> List[TraceEvent]:
        return []


def _zero_clock() -> int:
    return 0


class Telemetry:
    """The bus: owns the sink, the gauge registry, and the clock.

    Instrumented structures without their own notion of time (the
    functional WPQ, the coalescing unit) read :attr:`clock`, a zero-arg
    callable the owning simulator points at its cycle counter; the
    default clock pins events at t=0, and the sink preserves emission
    order regardless.
    """

    __slots__ = ("config", "sink", "clock", "_gauges", "_seq")

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        sink: Optional[TelemetrySink] = None,
    ) -> None:
        self.config = config if config is not None else TelemetryConfig(enabled=True)
        self.sink = sink if sink is not None else RingBufferSink(self.config.ring_capacity)
        self.clock: Callable[[], int] = _zero_clock
        self._gauges: Dict[str, GaugeSeries] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def emit(
        self,
        kind: EventKind,
        time: int,
        track: str,
        ident: int = -1,
        duration: int = 0,
        args: Optional[dict] = None,
    ) -> TraceEvent:
        """Record one event; returns it (tests inspect the instance)."""
        event = TraceEvent(kind, time, track, ident=ident, duration=duration, args=args)
        self._seq += 1
        self.sink.record(event)
        return event

    def instant(
        self,
        kind: EventKind,
        time: int,
        track: str,
        ident: int = -1,
        args: Optional[dict] = None,
    ) -> TraceEvent:
        return self.emit(kind, time, track, ident=ident, args=args)

    def span(
        self,
        kind: EventKind,
        time: int,
        duration: int,
        track: str,
        ident: int = -1,
        args: Optional[dict] = None,
    ) -> TraceEvent:
        return self.emit(kind, time, track, ident=ident, duration=duration, args=args)

    def events(self) -> List[TraceEvent]:
        """Events currently retained by the sink, in emission order."""
        return self.sink.events()

    @property
    def emitted(self) -> int:
        """Total events emitted (including any the ring dropped)."""
        return self._seq

    @property
    def dropped(self) -> int:
        return getattr(self.sink, "dropped", 0)

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------

    def gauge(self, name: str) -> GaugeSeries:
        """Get or create the gauge ``name`` (stride from the config)."""
        series = self._gauges.get(name)
        if series is None:
            series = GaugeSeries(
                name,
                stride=self.config.sample_stride,
                value_cap=self.config.window_value_cap,
                max_windows=self.config.max_windows,
            )
            self._gauges[name] = series
        return series

    def sample(self, name: str, time: int, value: float) -> None:
        self.gauge(name).sample(time, value)

    def gauges(self) -> Dict[str, GaugeSeries]:
        return dict(self._gauges)

    def __repr__(self) -> str:
        return (
            f"Telemetry(events={self._seq}, dropped={self.dropped}, "
            f"gauges={sorted(self._gauges)})"
        )
