"""Time-series gauges with windowed rollups.

A :class:`GaugeSeries` accepts ``(time, value)`` samples and aggregates
them into fixed-stride windows (``time // stride``).  Each window keeps
exact count/sum/min/max plus a bounded prefix of raw values for
percentile rollups; the series as a whole keeps exact overall
aggregates, so window eviction (bounded memory) never corrupts the
summary statistics.

Everything is event-driven: the closed-form simulators have no per-cycle
tick, so gauges are sampled whenever the instrumented structure changes
state and the windowing turns those irregular samples into the paper's
figure-style per-interval rollups.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class _Window:
    __slots__ = ("count", "total", "minimum", "maximum", "values")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.values: List[float] = []


class WindowStats:
    """Immutable rollup of one gauge window."""

    __slots__ = ("start", "count", "mean", "minimum", "maximum")

    def __init__(self, start: int, count: int, mean: float, minimum: float, maximum: float) -> None:
        self.start = start
        self.count = count
        self.mean = mean
        self.minimum = minimum
        self.maximum = maximum

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


def interpolated_percentile(sorted_values: List[float], p: float) -> float:
    """Exact linear-interpolation percentile of a sorted sample list."""
    if not sorted_values:
        return 0.0
    if p <= 0:
        return sorted_values[0]
    if p >= 100:
        return sorted_values[-1]
    rank = (len(sorted_values) - 1) * p / 100.0
    low = int(rank)
    frac = rank - low
    if low + 1 >= len(sorted_values):
        return sorted_values[-1]
    return sorted_values[low] + (sorted_values[low + 1] - sorted_values[low]) * frac


class GaugeSeries:
    """One named time-series gauge."""

    __slots__ = (
        "name",
        "stride",
        "value_cap",
        "max_windows",
        "_windows",
        "count",
        "total",
        "minimum",
        "maximum",
        "evicted_windows",
        "last_value",
    )

    def __init__(
        self,
        name: str,
        stride: int = 64,
        value_cap: int = 64,
        max_windows: int = 4096,
    ) -> None:
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.name = name
        self.stride = stride
        self.value_cap = value_cap
        self.max_windows = max_windows
        self._windows: Dict[int, _Window] = {}
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.evicted_windows = 0
        self.last_value = 0.0

    def sample(self, time: int, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.last_value = value
        index = time // self.stride
        window = self._windows.get(index)
        if window is None:
            window = _Window()
            self._windows[index] = window
            if len(self._windows) > self.max_windows:
                self._windows.pop(min(self._windows))
                self.evicted_windows += 1
        window.count += 1
        window.total += value
        if value < window.minimum:
            window.minimum = value
        if value > window.maximum:
            window.maximum = value
        if len(window.values) < self.value_cap:
            window.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def windows(self) -> Iterator[Tuple[int, WindowStats]]:
        """Yield ``(window_start_cycle, rollup)`` in time order."""
        for index in sorted(self._windows):
            window = self._windows[index]
            yield index * self.stride, WindowStats(
                start=index * self.stride,
                count=window.count,
                mean=window.total / window.count,
                minimum=window.minimum,
                maximum=window.maximum,
            )

    def percentile(self, p: float) -> float:
        """Interpolated percentile over the retained raw samples.

        Exact when no window hit its ``value_cap``; otherwise an
        approximation over each window's retained prefix.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        values: List[float] = []
        for window in self._windows.values():
            values.extend(window.values)
        values.sort()
        return interpolated_percentile(values, p)

    def summary(self) -> dict:
        """Rollup of the whole series (JSON-ready)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "windows": len(self._windows),
            "evicted_windows": self.evicted_windows,
        }

    def __repr__(self) -> str:
        return (
            f"GaugeSeries({self.name!r}, stride={self.stride}, "
            f"count={self.count}, windows={len(self._windows)})"
        )
