"""Telemetry exporters.

Three renderings of one event stream:

* :func:`chrome_trace` — Chrome trace-event JSON (the ``traceEvents``
  array format) loadable in Perfetto or ``about://tracing``.  One
  *process* per simulation (scheme), one *thread* per hardware-structure
  track, epochs as async ``b``/``e`` spans, gauges as counter (``C``)
  tracks.  Cycle timestamps are exported as microseconds (1 cycle =
  1 µs), which only affects the axis label.
* :func:`write_jsonl` — one JSON object per line, for ad-hoc grep/pandas.
* :func:`render_timeline` — a terminal occupancy heat-strip per track.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.telemetry.bus import Telemetry
from repro.telemetry.events import OPEN_KINDS, SPAN_KINDS, EventKind, TraceEvent

_INSTANT_SCOPE = "t"  # thread-scoped instants render as small arrows


def paired_spans(events: List[TraceEvent]) -> List[TraceEvent]:
    """Close begin/end event pairs into synthetic span events.

    Open-kind events (``BMT_LEVEL_ENTER``, ``EPOCH_OPEN``) are matched
    FIFO per ``(track, ident)`` with the first later event of their end
    kind; unmatched begins are kept as zero-duration spans.  Events that
    already carry a duration pass through unchanged.
    """
    spans: List[TraceEvent] = []
    open_events: Dict[Tuple[str, int, EventKind], List[TraceEvent]] = {}
    for event in events:
        if event.kind in SPAN_KINDS:
            spans.append(event)
        elif event.kind in OPEN_KINDS:
            key = (event.track, event.ident, OPEN_KINDS[event.kind])
            open_events.setdefault(key, []).append(event)
        else:
            key = (event.track, event.ident, event.kind)
            pending = open_events.get(key)
            if pending:
                begin = pending.pop(0)
                spans.append(
                    TraceEvent(
                        begin.kind,
                        begin.time,
                        begin.track,
                        ident=begin.ident,
                        duration=max(0, event.time - begin.time),
                        args=begin.args,
                    )
                )
    for pending in open_events.values():
        for begin in pending:
            spans.append(
                TraceEvent(
                    begin.kind,
                    begin.time,
                    begin.track,
                    ident=begin.ident,
                    duration=0,
                    args=begin.args,
                )
            )
    spans.sort(key=lambda e: (e.time, e.track, e.ident))
    return spans


def _track_order(telemetry: Telemetry) -> "OrderedDict[str, int]":
    """Stable track -> tid mapping: first-seen order, tid from 1."""
    tracks: "OrderedDict[str, int]" = OrderedDict()
    for event in telemetry.events():
        if event.track not in tracks:
            tracks[event.track] = len(tracks) + 1
    return tracks


def chrome_trace(
    telemetries: Mapping[str, Telemetry],
    counter_gauges: bool = True,
) -> dict:
    """Export one or more telemetry buses as a Chrome trace-event JSON.

    Args:
        telemetries: ``{process_name: telemetry}`` — typically one entry
            per simulated scheme so Perfetto shows them side by side.
        counter_gauges: Also emit each gauge's windowed means as a
            counter track.

    Returns:
        A JSON-ready dict with a ``traceEvents`` list.
    """
    trace_events: List[dict] = []
    for pid, (name, telemetry) in enumerate(telemetries.items(), start=1):
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        tracks = _track_order(telemetry)
        for track, tid in tracks.items():
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        events = telemetry.events()
        # Epochs render as async spans on their own track; everything
        # else becomes complete ("X") spans or thread instants.
        for event in events:
            tid = tracks[event.track]
            if event.kind is EventKind.EPOCH_OPEN:
                trace_events.append(
                    {
                        "ph": "b",
                        "cat": "epoch",
                        "name": f"epoch {event.ident}",
                        "id": event.ident,
                        "ts": event.time,
                        "pid": pid,
                        "tid": tid,
                    }
                )
            elif event.kind is EventKind.EPOCH_DRAIN:
                trace_events.append(
                    {
                        "ph": "e",
                        "cat": "epoch",
                        "name": f"epoch {event.ident}",
                        "id": event.ident,
                        "ts": event.time,
                        "pid": pid,
                        "tid": tid,
                    }
                )
            elif event.kind in SPAN_KINDS or event.kind in OPEN_KINDS:
                continue  # handled below via paired_spans
            elif event.kind is EventKind.BMT_LEVEL_LEAVE:
                continue  # closes an enter; handled via paired_spans
            else:
                entry = {
                    "ph": "i",
                    "s": _INSTANT_SCOPE,
                    "cat": "event",
                    "name": event.kind.name.lower(),
                    "ts": event.time,
                    "pid": pid,
                    "tid": tid,
                }
                if event.args:
                    entry["args"] = dict(event.args)
                trace_events.append(entry)
        for span in paired_spans(events):
            if span.kind is EventKind.EPOCH_OPEN:
                continue  # already emitted as async b/e
            entry = {
                "ph": "X",
                "cat": "span",
                "name": f"p{span.ident}" if span.ident >= 0 else span.kind.name.lower(),
                "ts": span.time,
                "dur": max(span.duration, 1),
                "pid": pid,
                "tid": tracks[span.track],
            }
            if span.args:
                entry["args"] = dict(span.args)
            trace_events.append(entry)
        if counter_gauges:
            for gauge_name, series in sorted(telemetry.gauges().items()):
                for start, stats in series.windows():
                    trace_events.append(
                        {
                            "ph": "C",
                            "name": gauge_name,
                            "ts": start,
                            "pid": pid,
                            "tid": 0,
                            "args": {"value": round(stats.mean, 4)},
                        }
                    )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    telemetries: Mapping[str, Telemetry],
    counter_gauges: bool = True,
) -> int:
    """Write :func:`chrome_trace` output to ``path``; returns event count."""
    payload = chrome_trace(telemetries, counter_gauges=counter_gauges)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(payload["traceEvents"])


def write_jsonl(path: str, telemetry: Telemetry) -> int:
    """Dump the retained events (and gauge summaries) as JSON lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event in telemetry.events():
            fh.write(json.dumps(event.as_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
        for name, series in sorted(telemetry.gauges().items()):
            fh.write(
                json.dumps({"gauge": name, **series.summary()}, sort_keys=True)
            )
            fh.write("\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# terminal renderer
# ----------------------------------------------------------------------

_DENSITY = " .:=#@"


def _coverage_row(
    intervals: List[Tuple[int, int]], t0: int, t1: int, width: int
) -> str:
    """Render interval coverage over [t0, t1) as a density strip."""
    span = max(1, t1 - t0)
    bucket = span / width
    busy = [0.0] * width
    for start, end in intervals:
        if end <= start:
            end = start + 1
        lo = max(0.0, (start - t0) / bucket)
        hi = min(float(width), (end - t0) / bucket)
        column = int(lo)
        while column < hi and column < width:
            cover = min(column + 1.0, hi) - max(float(column), lo)
            busy[column] += cover
            column += 1
    out = []
    for fraction in busy:
        index = min(len(_DENSITY) - 1, int(round(min(1.0, fraction) * (len(_DENSITY) - 1))))
        out.append(_DENSITY[index])
    return "".join(out)


def render_timeline(
    telemetry: Telemetry,
    width: int = 72,
    tracks: Optional[List[str]] = None,
) -> str:
    """ASCII occupancy timeline: one density strip per track.

    Span events (closed-form or paired enter/leave) contribute their
    interval; instants contribute one cycle.  Darker cells mean the
    structure was busier during that slice of the run.
    """
    spans = paired_spans(telemetry.events())
    instants = [
        e
        for e in telemetry.events()
        if e.kind not in SPAN_KINDS
        and e.kind not in OPEN_KINDS
        and e.kind is not EventKind.BMT_LEVEL_LEAVE
        and e.kind is not EventKind.EPOCH_DRAIN
    ]
    by_track: Dict[str, List[Tuple[int, int]]] = {}
    for span in spans:
        by_track.setdefault(span.track, []).append((span.time, span.end()))
    for event in instants:
        by_track.setdefault(event.track, []).append((event.time, event.time + 1))
    if not by_track:
        return "(no telemetry events)"
    t0 = min(start for ivs in by_track.values() for start, _ in ivs)
    t1 = max(end for ivs in by_track.values() for _, end in ivs)
    if tracks is None:
        tracks = sorted(by_track)
    label_width = max(len(t) for t in tracks) if tracks else 0
    lines = [f"timeline: cycles {t0:,} .. {t1:,}  (each cell ~{max(1, (t1 - t0) // width):,} cycles)"]
    for track in tracks:
        intervals = by_track.get(track, [])
        strip = _coverage_row(intervals, t0, t1, width)
        lines.append(f"{track.ljust(label_width)} |{strip}|")
    lines.append(f"{'legend'.ljust(label_width)}  idle '{_DENSITY[0]}' .. busy '{_DENSITY[-1]}'")
    return "\n".join(lines)
