"""Per-cycle stepped reference engines (``SystemConfig.engine="stepped"``).

The skip-ahead scoreboards in :mod:`repro.core.schedulers` advance the
clock directly to the next completion event.  This module provides the
reference family that consumes every cycle one at a time, the way the
original stepper did: each class here overrides **only** the two clock
primitives — :meth:`~repro.core.schedulers.ScoreboardBase._wait_until`
and :meth:`~repro.core.schedulers.ScoreboardBase._elapse` — with loops
that tick the clock cycle by cycle.  All scheduling decisions (lane
selection, epoch gating, WPQ admission, coalescing) run the exact same
code in both families, so the stepped engine serves as the oracle: the
differential harness (``tests/test_engine_differential.py``) asserts
bit-identical ``SimResult``s and telemetry streams, and any drift in
the skip-ahead arithmetic shows up as a mismatch against this model.

Stepped engines are deliberately O(total cycles waited) — orders of
magnitude slower on real traces (``BENCH_perf.json`` records the gap in
the ``engine_batched`` stage).  Use them for validation, not sweeps.
"""

from __future__ import annotations

from typing import Dict

from repro.core.schedulers import (
    AnubisScoreboard,
    CoalescingScoreboard,
    OutOfOrderScoreboard,
    PhoenixScoreboard,
    PipelineScoreboard,
    SecPMScoreboard,
    SequentialScoreboard,
    SGXPathScoreboard,
    TriadNVMScoreboard,
    UnorderedScoreboard,
)
from repro.core.schemes import UpdateScheme


class SteppedClockMixin:
    """Clock primitives that burn cycles one at a time.

    The loops are the point: they re-create the original per-cycle
    stepper's cost model (one comparison per idle cycle, one increment
    per latency cycle) while provably computing the same timestamps as
    the skip-ahead arithmetic — ``_wait_until`` counts up to the ready
    time, ``_elapse`` ticks through the latency.
    """

    @staticmethod
    def _wait_until(now: int, ready: int) -> int:
        """Poll the lane every cycle until it frees."""
        while now < ready:
            now += 1
        return now

    @staticmethod
    def _elapse(start: int, cycles: int) -> int:
        """Tick through a latency cycle by cycle."""
        now = start
        for _ in range(cycles):
            now += 1
        return now


class SteppedSequentialScoreboard(SteppedClockMixin, SequentialScoreboard):
    """Per-cycle reference for sp / secure_wb."""


class SteppedSGXPathScoreboard(SteppedClockMixin, SGXPathScoreboard):
    """Per-cycle reference for the SGX counter-tree extension."""


class SteppedPipelineScoreboard(SteppedClockMixin, PipelineScoreboard):
    """Per-cycle reference for pipelined SP."""


class SteppedUnorderedScoreboard(SteppedClockMixin, UnorderedScoreboard):
    """Per-cycle reference for the unordered strawman."""


class SteppedOutOfOrderScoreboard(SteppedClockMixin, OutOfOrderScoreboard):
    """Per-cycle reference for OOO epoch persistency."""


class SteppedCoalescingScoreboard(SteppedClockMixin, CoalescingScoreboard):
    """Per-cycle reference for OOO + LCA coalescing."""


class SteppedTriadNVMScoreboard(SteppedClockMixin, TriadNVMScoreboard):
    """Per-cycle reference for Triad-NVM selective persistence."""


class SteppedPhoenixScoreboard(SteppedClockMixin, PhoenixScoreboard):
    """Per-cycle reference for Phoenix persistent counter tree."""


class SteppedSecPMScoreboard(SteppedClockMixin, SecPMScoreboard):
    """Per-cycle reference for SecPM write-through counters."""


class SteppedAnubisScoreboard(SteppedClockMixin, AnubisScoreboard):
    """Per-cycle reference for Anubis shadow-metadata tracking."""


STEPPED_SCOREBOARDS: Dict[UpdateScheme, type] = {
    UpdateScheme.SP: SteppedSequentialScoreboard,
    UpdateScheme.SGX_SP: SteppedSGXPathScoreboard,
    UpdateScheme.PIPELINE: SteppedPipelineScoreboard,
    UpdateScheme.UNORDERED: SteppedUnorderedScoreboard,
    UpdateScheme.O3: SteppedOutOfOrderScoreboard,
    UpdateScheme.COALESCING: SteppedCoalescingScoreboard,
    UpdateScheme.TRIAD_NVM: SteppedTriadNVMScoreboard,
    UpdateScheme.PHOENIX: SteppedPhoenixScoreboard,
    UpdateScheme.SECPM_WT: SteppedSecPMScoreboard,
    UpdateScheme.ANUBIS: SteppedAnubisScoreboard,
}
"""Stepped reference class per scheme (``secure_wb`` maps to SP)."""
