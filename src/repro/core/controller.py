"""The memory-controller persist pipeline (paper Fig. 6, steps ①–⑤).

Ties the persist-gathering WPQ and the cycle-accurate BMT update engine
together exactly as §V describes:

① a persist allocates a WPQ entry and a PTT entry;
② the engine looks up / fetches the pending BMT node and updates it;
③ the scheduler advances persists across levels per the active scheme;
④ next-node logic walks each persist up its update path;
⑤ on the root update the WPQ is notified (``root ack``), the persist is
  marked complete, and its blocks become releasable to NVM.

This is the faithful integration model: tuple components arrive at the
WPQ with configurable delays, the 2SP completion condition is evaluated
by the WPQ itself, and epoch unlocking follows the ETT.  It is used by
the tests and the ``scheme_explorer`` example; the trace-scale
simulations use the scoreboard fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.schemes import UpdateScheme
from repro.core.update_engine import CycleAccurateEngine, EngineConfig
from repro.crypto.bmt import BMTGeometry
from repro.mem.metadata_cache import MetadataCaches
from repro.mem.wpq import TupleItem, WritePendingQueue


@dataclass
class PersistOutcome:
    """Lifetime of one persist through the controller."""

    persist_id: int
    epoch_id: int
    issued_cycle: int
    tuple_gathered_cycle: int
    root_ack_cycle: int
    completed_cycle: int

    @property
    def latency(self) -> int:
        return self.completed_cycle - self.issued_cycle


class MemoryControllerPipeline:
    """WPQ + BMT update engine, evaluated cycle by cycle."""

    def __init__(
        self,
        geometry: BMTGeometry,
        scheme: UpdateScheme = UpdateScheme.SP,
        wpq_capacity: int = 32,
        mac_latency: int = 40,
        tuple_gather_delay: int = 4,
        metadata: Optional[MetadataCaches] = None,
    ) -> None:
        """Create the pipeline.

        Args:
            geometry: BMT shape.
            scheme: BMT update scheme.
            wpq_capacity: Persist-gathering queue entries.
            mac_latency: Engine node-update latency.
            tuple_gather_delay: Cycles for a persist's C/γ/M to reach
                the WPQ after issue (they travel from the LLC).
            metadata: Optional metadata caches for BMT miss modelling.
        """
        self.geometry = geometry
        self.scheme = scheme
        self.wpq = WritePendingQueue(wpq_capacity)
        self.engine = CycleAccurateEngine(
            geometry,
            EngineConfig(scheme=scheme, mac_latency=mac_latency),
            metadata=metadata,
            on_root_ack=self._on_root_ack,
        )
        self.tuple_gather_delay = tuple_gather_delay
        self.outcomes: Dict[int, PersistOutcome] = {}
        self._pending_tuples: List = []  # (arrival_cycle, persist_id)
        self._issued: Dict[int, int] = {}
        self._gathered: Dict[int, int] = {}
        self._acks: Dict[int, int] = {}
        self.released: List[int] = []

    @property
    def now(self) -> int:
        return self.engine.now

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def issue_persist(self, persist_id: int, leaf_index: int, epoch_id: int = 0) -> bool:
        """Step ①: allocate WPQ + PTT entries for a new persist.

        Returns:
            ``False`` on structural back-pressure (full WPQ or PTT/ETT).
        """
        if self.wpq.full or not self.engine.can_accept(epoch_id):
            return False
        locked = not (
            self.scheme.uses_epochs
            and self._epoch_is_current(epoch_id)
        )
        self.wpq.allocate(persist_id, epoch_id=epoch_id, locked=locked)
        accepted = self.engine.submit(persist_id, leaf_index, epoch_id)
        assert accepted, "engine rejected a persist after can_accept()"
        self._issued[persist_id] = self.now
        # C/γ/M arrive after a short transfer delay (step ② runs
        # concurrently in the engine).
        self._pending_tuples.append(
            (self.now + self.tuple_gather_delay, persist_id)
        )
        return True

    def _epoch_is_current(self, epoch_id: int) -> bool:
        """Same-epoch persists are unlocked (they may drain early)."""
        oldest = self.engine.ett.oldest()
        return oldest is None or epoch_id == self.engine.ett.gec - 1 or (
            oldest.epoch_id == epoch_id
        )

    # ------------------------------------------------------------------
    # per-cycle evaluation
    # ------------------------------------------------------------------

    def tick(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self._deliver_tuples()
            self.engine.tick()
            self._release_completed()

    def run_until_drained(self, max_cycles: int = 10_000_000) -> int:
        start = self.now
        while len(self.wpq) or not self.engine.ptt.empty:
            if self.now - start > max_cycles:
                raise RuntimeError("controller failed to drain")
            self.tick()
        return self.now

    def _deliver_tuples(self) -> None:
        remaining = []
        for arrival, persist_id in self._pending_tuples:
            if arrival > self.now:
                remaining.append((arrival, persist_id))
                continue
            for item in (TupleItem.DATA, TupleItem.COUNTER, TupleItem.MAC):
                self.wpq.deliver(persist_id, item)
            self._gathered[persist_id] = self.now
        self._pending_tuples = remaining

    def _on_root_ack(self, persist_id: int, cycle: int) -> None:
        """Step ⑤: the engine notifies the WPQ of the root update."""
        self._acks[persist_id] = cycle
        self.wpq.ack_root(persist_id)

    def _release_completed(self) -> None:
        for entry in self.wpq.drain_completed():
            self.released.append(entry.persist_id)
            self.outcomes[entry.persist_id] = PersistOutcome(
                persist_id=entry.persist_id,
                epoch_id=entry.epoch_id or 0,
                issued_cycle=self._issued[entry.persist_id],
                tuple_gathered_cycle=self._gathered.get(entry.persist_id, -1),
                root_ack_cycle=self._acks.get(entry.persist_id, -1),
                completed_cycle=self.now,
            )
