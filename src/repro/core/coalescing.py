"""BMT update coalescing (PLP mechanism 3, paper §IV-B2 / §V-C).

Within an epoch, update paths of nearby persists share ancestors; the
shared suffix (LCA up to the root) would be updated once per persist.
Coalescing removes the superfluous updates: the *leading* persist stops
strictly below the least common ancestor and delegates the remaining
path — LCA to root, including the root ack — to the *trailing* persist.

Two policies are provided:

* ``paired`` (default, the paper's §V-C hardware policy): "we always
  coalesce the new persist with the previous one *if it has not been
  coalesced with other persists*" — persists form disjoint pairs.
* ``chained``: a persist that received a delegation may itself delegate
  to its successor, which reproduces the illustrative optimum of
  Fig. 5 (δ1 → δ2 at X31, δ2 → δ3 at X21: 7 updates instead of 12)
  but removes far more updates than the implementable pairing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.crypto.bmt import BMTGeometry
from repro.telemetry.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Telemetry

POLICIES = ("paired", "chained")


@dataclass
class CoalescedPersist:
    """A persist's update work after coalescing.

    Attributes:
        persist_id: The persist's ID.
        leaf_index: Counter block (BMT leaf) the persist updates.
        path: Node labels this persist itself updates, leaf side first.
            May be empty if the entire path was delegated.
        delegated_to: Persist that took over this persist's suffix (and
            will eventually trigger its root ack), or ``None``.
    """

    persist_id: int
    leaf_index: int
    path: List[int]
    delegated_to: Optional[int] = None

    @property
    def update_count(self) -> int:
        return len(self.path)


class CoalescingUnit:
    """Applies LCA coalescing to an epoch's persist sequence."""

    def __init__(
        self,
        geometry: BMTGeometry,
        policy: str = "paired",
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.geometry = geometry
        self.policy = policy
        self.telemetry = telemetry
        self.now = 0
        """Cycle stamped onto delegation events; the owning scoreboard
        updates it before each :meth:`coalesce_epoch` call."""

    def coalesce_epoch(
        self, persists: Sequence[Tuple[int, int]]
    ) -> List[CoalescedPersist]:
        """Coalesce an epoch's persists in arrival order.

        Args:
            persists: ``(persist_id, leaf_index)`` pairs in arrival order.

        Returns:
            One :class:`CoalescedPersist` per input, same order.
        """
        out: List[CoalescedPersist] = []
        previous: Optional[CoalescedPersist] = None
        previous_was_coalesced = False
        for persist_id, leaf_index in persists:
            current = CoalescedPersist(
                persist_id=persist_id,
                leaf_index=leaf_index,
                path=self.geometry.update_path(leaf_index),
            )
            can_pair = previous is not None and previous.delegated_to is None
            if can_pair and self.policy == "paired" and previous_was_coalesced:
                can_pair = False  # the previous persist is already in a pair
            if can_pair:
                self._pair(previous, current)
                previous_was_coalesced = previous.delegated_to is not None
            else:
                previous_was_coalesced = False
            out.append(current)
            previous = current
        return out

    def _pair(self, leading: CoalescedPersist, trailing: CoalescedPersist) -> None:
        """Truncate ``leading`` at its LCA with ``trailing``.

        The leading persist keeps only the path strictly below the LCA;
        the trailing persist updates the LCA and everything above it
        exactly once, on behalf of both.
        """
        lca = self.geometry.lca_of_leaves(leading.leaf_index, trailing.leaf_index)
        if lca not in leading.path:
            # Leading already truncated below the LCA by an earlier
            # pairing; nothing further to cut.
            return
        removed = len(leading.path) - leading.path.index(lca)
        leading.path = leading.path[: leading.path.index(lca)]
        leading.delegated_to = trailing.persist_id
        if self.telemetry is not None:
            self.telemetry.instant(
                EventKind.COALESCE_DELEGATE,
                self.now,
                "coalesce",
                ident=leading.persist_id,
                args={
                    "to": trailing.persist_id,
                    "lca": lca,
                    "updates_removed": removed,
                },
            )

    @staticmethod
    def total_updates(persists: Sequence[CoalescedPersist]) -> int:
        """Total BMT node updates the coalesced epoch performs."""
        return sum(p.update_count for p in persists)

    def uncoalesced_updates(self, persist_count: int) -> int:
        """Node updates the same persists would perform without coalescing."""
        return persist_count * self.geometry.levels

    @staticmethod
    def resolve_delegate(
        persists: Sequence[CoalescedPersist], persist_id: int
    ) -> int:
        """Follow a delegation chain to the persist that updates the root.

        Raises:
            KeyError: ``persist_id`` is not in the coalesced epoch.
        """
        by_id = {p.persist_id: p for p in persists}
        if persist_id not in by_id:
            raise KeyError(
                f"persist {persist_id} is not part of this coalesced epoch"
            )
        seen = set()
        current = by_id[persist_id]
        while current.delegated_to is not None:
            if current.persist_id in seen:
                raise RuntimeError("delegation cycle detected")
            seen.add(current.persist_id)
            current = by_id[current.delegated_to]
        return current.persist_id

    @staticmethod
    def resolve_delegates(
        persists: Sequence[CoalescedPersist],
    ) -> Dict[int, int]:
        """Resolve every persist's final delegate in a single pass.

        Equivalent to calling :meth:`resolve_delegate` for each persist,
        but memoized: a chain is walked once and every persist on it is
        mapped to the chain's terminal persist, so resolving a whole
        epoch is linear in its persist count instead of quadratic.

        Returns:
            ``{persist_id: final_persist_id}`` for every input persist.

        Raises:
            KeyError: A delegation points outside the coalesced epoch.
            RuntimeError: A delegation cycle is detected.
        """
        by_id = {p.persist_id: p for p in persists}
        finals: Dict[int, int] = {}
        for persist in persists:
            chain: List[int] = []
            on_chain = set()
            current = persist
            while True:
                pid = current.persist_id
                if pid in finals:
                    final = finals[pid]
                    break
                if pid in on_chain:
                    raise RuntimeError("delegation cycle detected")
                on_chain.add(pid)
                chain.append(pid)
                target = current.delegated_to
                if target is None:
                    final = pid
                    break
                if target not in by_id:
                    raise KeyError(
                        f"persist {target} is not part of this coalesced epoch"
                    )
                current = by_id[target]
            for pid in chain:
                finals[pid] = final
        return finals
