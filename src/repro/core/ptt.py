"""Persist Tracking Table (PTT) — paper §V-A, Fig. 6.

The PTT is a circular buffer, one entry per in-flight persist, that the
BMT update scheduler uses to enforce persist ordering.  Entry fields
follow the figure:

* ``V`` — valid; set at allocation, cleared once the persist has updated
  the BMT root.
* ``R`` — ready; set when the update of the *current* node completed,
  cleared when the persist moves to the next node on its path.
* ``P`` — persisted; set when the BMT root has been updated, at which
  point the entry (and its WPQ entry) may be released when it reaches
  the head.
* ``Lvl`` — BMT level currently being updated (paper numbering: 1 is the
  root level).
* ``WPQptr`` — the persist's WPQ entry.
* ``PendingNode`` — label of the node currently being updated.
* ``EID`` — owning epoch (epoch persistency only).

Storage cost (paper §VI): 77 bits/entry, 616 B for 64 entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

from repro.telemetry.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Telemetry

ENTRY_BITS = 77
"""Paper-reported PTT entry width: EID(6) + V/R/P(3) + Lvl(4) + WPQptr(32) +
PendingNode(32)."""


@dataclass
class PTTEntry:
    """One in-flight persist's tracking state."""

    persist_id: int
    wpq_ptr: int
    pending_node: int
    level: int
    epoch_id: int = 0
    valid: bool = True
    ready: bool = False
    persisted: bool = False
    # Remaining path labels above pending_node (next to update), leaf->root.
    remaining_path: List[int] = field(default_factory=list)
    # Coalescing: persist whose root ack this entry delegates to.
    delegated_to: Optional[int] = None

    @property
    def lvl(self) -> int:
        """Paper-style level number (root = 1)."""
        return self.level + 1

    def advance(self) -> bool:
        """Move to the next node on the update path.

        Returns:
            ``False`` if the path is exhausted (the previous node was the
            last one this persist updates).
        """
        if not self.remaining_path:
            return False
        self.pending_node = self.remaining_path.pop(0)
        self.level -= 1
        self.ready = False
        return True


class PTTFullError(RuntimeError):
    """Raised when allocating into a full PTT."""


class PersistTrackingTable:
    """A bounded, FIFO circular buffer of :class:`PTTEntry`."""

    def __init__(
        self,
        capacity: int = 64,
        telemetry: "Optional[Telemetry]" = None,
        clock: Optional[Callable[[], int]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("PTT capacity must be positive")
        self.capacity = capacity
        self._entries: List[PTTEntry] = []
        # persist_id -> entry index for O(1) find(); duplicate IDs (never
        # produced by the engines, but legal) fall back to a linear scan.
        self._by_id: dict = {}
        self._dup_ids = 0
        self.allocated_total = 0
        self.retired_total = 0
        self._telemetry = telemetry
        self._clock = clock

    def _emit(self, kind: EventKind, persist_id: int) -> None:
        tel = self._telemetry
        if tel is not None:
            now = self._clock() if self._clock is not None else tel.clock()
            tel.instant(kind, now, "ptt", ident=persist_id)
            tel.sample("ptt.utilization", now, len(self._entries) / self.capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PTTEntry]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def allocate(
        self,
        persist_id: int,
        path: List[int],
        wpq_ptr: int,
        epoch_id: int = 0,
    ) -> PTTEntry:
        """Allocate an entry for a persist.

        Args:
            persist_id: Unique persist identifier.
            path: BMT update path labels, leaf first, root last.
            wpq_ptr: Index of the persist's WPQ entry.
            epoch_id: Owning epoch (EP only).

        Raises:
            PTTFullError: The table is full (back-pressure to the core).
        """
        if self.full:
            raise PTTFullError(f"PTT full ({self.capacity} entries)")
        if not path:
            raise ValueError("update path must not be empty")
        entry = PTTEntry(
            persist_id=persist_id,
            wpq_ptr=wpq_ptr,
            pending_node=path[0],
            level=len(path) - 1,
            epoch_id=epoch_id,
            remaining_path=list(path[1:]),
        )
        self._entries.append(entry)
        if self._by_id.setdefault(persist_id, entry) is not entry:
            self._dup_ids += 1
        self.allocated_total += 1
        if self._telemetry is not None:
            self._emit(EventKind.PTT_ALLOCATE, persist_id)
        return entry

    def head(self) -> Optional[PTTEntry]:
        """The oldest entry, or ``None`` when empty."""
        return self._entries[0] if self._entries else None

    def find(self, persist_id: int) -> Optional[PTTEntry]:
        return self._by_id.get(persist_id)

    def retire_head(self) -> PTTEntry:
        """Deallocate the head entry; it must be persisted.

        The paper releases an entry when the head pointer reaches it and
        its ``P`` bit is set.
        """
        head = self.head()
        if head is None:
            raise RuntimeError("PTT empty; nothing to retire")
        if not head.persisted:
            raise RuntimeError(
                f"head persist {head.persist_id} has not updated the BMT root"
            )
        self.retired_total += 1
        retired = self._entries.pop(0)
        if self._by_id.get(retired.persist_id) is retired:
            del self._by_id[retired.persist_id]
            if self._dup_ids:
                # A shadowed duplicate becomes findable again.
                for entry in self._entries:
                    if entry.persist_id == retired.persist_id:
                        self._by_id[retired.persist_id] = entry
                        self._dup_ids -= 1
                        break
        if self._telemetry is not None:
            self._emit(EventKind.PTT_RETIRE, retired.persist_id)
        return retired

    def retire_ready_heads(self) -> List[PTTEntry]:
        """Retire every persisted entry at the head of the buffer."""
        retired = []
        while self._entries and self._entries[0].persisted:
            retired.append(self.retire_head())
        return retired

    def entries_of_epoch(self, epoch_id: int) -> List[PTTEntry]:
        return [e for e in self._entries if e.epoch_id == epoch_id]

    def storage_bits(self) -> int:
        """Hardware storage cost in bits (paper: 616 B for 64 entries)."""
        return self.capacity * ENTRY_BITS
