"""Skip-ahead scoreboard engines for the BMT update hardware.

For trace-scale simulation, stepping the cycle-accurate engine is too
slow in pure Python, so each scheme has an equivalent *scoreboard*: a
per-persist recurrence that advances the clock **directly to the next
completion event** — an engine lane freeing, a pipeline stage draining,
a WPQ slot releasing, an epoch completing — instead of polling lanes
cycle by cycle.  Lane state is held as plain integers and integer
arrays (one busy-until timestamp per BMT level, a ring of WPQ release
times), so a wait is a single comparison and a node update a single
addition:

* sequential (sp):   ``done = max(arrival, engine_free) + Σ level costs``
* pipeline:          ``t(i, L) = max(t(i, L+1), t(i-1, L)) + cost(L)``
  — persist *i* may start level *L* only after persist *i−1* completed
  its level-*L* update (exactly the cycle engine's rule, so the two
  models agree cycle-for-cycle; the tests assert this).
* o3 / coalescing:   per-persist serial path latency, a 1-update/cycle
  MAC issue port, root completion gated on the previous epoch, and
  admission gated on the epoch two back (2-entry ETT).
* unordered:         the strawman — stores do not wait for the root at
  all (completion == arrival); node updates still occupy the engine.

Every wait and every latency flows through two clock primitives —
:meth:`ScoreboardBase._wait_until` and :meth:`ScoreboardBase._elapse` —
which the skip-ahead family resolves with plain arithmetic.  The
per-cycle reference family in :mod:`repro.core.stepped` overrides only
those primitives to consume cycles one at a time, so both families make
identical scheduling decisions and the differential harness
(``tests/test_engine_differential.py``) can assert bit-identical
results and telemetry streams.  :func:`make_scoreboard` selects the
family via ``engine=`` (``SystemConfig.engine``).

All scoreboards share the BMT cache for miss modelling, and report node
update counts, so coalescing's update reduction (~26 % in the paper) is
measured, not assumed.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.coalescing import CoalescedPersist, CoalescingUnit
from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry
from repro.mem.metadata_cache import MetadataCaches
from repro.telemetry.events import EventKind, level_track

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Telemetry

ENGINE_KINDS = ("batched", "skip_ahead", "stepped")
"""Timing-engine families: the array-native batched engine (default,
see :mod:`repro.sim.batched`), the scalar skip-ahead event-queue
engine, and the per-cycle reference oracle (see
:mod:`repro.core.stepped`).  The batched engine dispatches its eventful
ops through the skip-ahead scoreboards, so both map to the same
scoreboard classes here."""

_RING_COMPACT_THRESHOLD = 1024
"""Released-slot prefix length that triggers ring-buffer compaction."""


@dataclass
class PersistTiming:
    """Timing outcome for one persist."""

    persist_id: int
    arrival: int
    completion: int
    node_updates: int


class OccupancyRing:
    """FIFO structural-hazard model (WPQ/PTT slot availability).

    Entries are admitted with a known release time; when the ring is
    full, a new admission waits for the oldest entry to release.  The
    release times live in a packed integer array with a head index —
    per-lane integer state the skip-ahead engine reads with one index
    operation, no per-cycle polling and no boxed deque nodes.
    """

    __slots__ = ("capacity", "_releases", "_head")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._releases = array("q")
        self._head = 0

    def admit(self, now: int) -> int:
        """Earliest cycle at which a slot is free (>= now)."""
        releases = self._releases
        head = self._head
        length = len(releases)
        while head < length and releases[head] <= now:
            head += 1
        self._head = head
        if length - head < self.capacity:
            return now
        return releases[length - self.capacity]

    def occupy(self, release_time: int) -> None:
        """Record an admitted entry that frees its slot at ``release_time``."""
        releases = self._releases
        if len(releases) > self._head and release_time < releases[-1]:
            # FIFO slots release in order even if work completes early.
            release_time = releases[-1]
        releases.append(release_time)
        if self._head >= _RING_COMPACT_THRESHOLD:
            del releases[: self._head]
            self._head = 0

    def occupancy(self, now: int) -> int:
        """Entries still resident at cycle ``now``.

        Read-only on purpose: telemetry probes sample at times that may
        run ahead of the admit clock, and dropping released slots here
        would perturb a later :meth:`admit` — observation must not feed
        back into timing.

        The suffix past ``_head`` is non-decreasing (``occupy`` clamps
        each release to the FIFO frontier, and ``admit`` only ever moves
        the head forward), so residency is a bisection, not a scan —
        this sits on the telemetry hot path (sampled per persist).
        """
        releases = self._releases
        return len(releases) - bisect_right(releases, now, self._head)


class ScoreboardBase:
    """Shared path-cost logic for all scoreboard engines."""

    def __init__(
        self,
        geometry: BMTGeometry,
        mac_latency: int = 40,
        bmt_miss_latency: int = 240,
        metadata: Optional[MetadataCaches] = None,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        self.geometry = geometry
        self.mac_latency = mac_latency
        self.bmt_miss_latency = bmt_miss_latency
        self.metadata = metadata
        self.telemetry = telemetry
        self.node_update_count = 0
        self.bmt_cache_misses = 0

    # ------------------------------------------------------------------
    # clock primitives (the only place the two engine families differ)
    # ------------------------------------------------------------------

    @staticmethod
    def _wait_until(now: int, ready: int) -> int:
        """Advance the clock directly to a pending event (skip-ahead)."""
        return ready if ready > now else now

    @staticmethod
    def _elapse(start: int, cycles: int) -> int:
        """Complete ``cycles`` of latency in one jump (skip-ahead)."""
        return start + cycles

    def _emit_serial_spans(
        self, persist_id: int, start: int, costs: Sequence[int]
    ) -> None:
        """Emit one BMT level span per node of a serially-walked path.

        The path runs leaf (level = depth) toward the root (level 0);
        each node's update occupies its level for ``costs[i]`` cycles
        starting when the previous node finished.
        """
        tel = self.telemetry
        if tel is None:
            return
        tel.span_walk(
            EventKind.BMT_LEVEL_SPAN, start, costs, persist_id, self.geometry.depth
        )

    def _level_costs(self, path: Sequence[int]) -> List[int]:
        """Per-node update cost (MAC latency + any BMT cache miss)."""
        mac = self.mac_latency
        metadata = self.metadata
        if metadata is None:
            self.node_update_count += len(path)
            return [mac] * len(path)
        miss = self.bmt_miss_latency
        access = metadata.access_bmt_node
        costs = []
        misses = 0
        for label in path:
            if access(label, is_write=True):
                costs.append(mac)
            else:
                costs.append(mac + miss)
                misses += 1
        self.bmt_cache_misses += misses
        self.node_update_count += len(path)
        return costs

    def _record(self, persist_id: int, arrival: int, completion: int, updates: int) -> PersistTiming:
        return PersistTiming(persist_id, arrival, completion, updates)

    def engine_busy_until(self) -> int:
        """Cycle until which the verification engine is occupied.

        Demand verifications of load fills queue behind in-flight
        updates; schemes with serialized engines (sequential, pipelined)
        report a real backlog, OOO engines effectively none.
        """
        return 0


class SequentialScoreboard(ScoreboardBase):
    """Baseline sp: one persist at a time walks leaf to root."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._engine_free = 0

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        # One lane: wait for the engine to free, then walk the path.
        start = self._wait_until(arrival, self._engine_free)
        completion = self._elapse(start, sum(costs))
        self._engine_free = completion
        self._emit_serial_spans(persist_id, start, costs)
        return self._record(persist_id, arrival, completion, len(path))

    def engine_busy_until(self) -> int:
        return self._engine_free


class PipelineScoreboard(ScoreboardBase):
    """PLP 1: in-order pipelined BMT updates (strict persistency)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # One busy-until timestamp per BMT level, indexed by level: the
        # per-lane integer-array state the skip-ahead engine jumps on.
        self._level_done = array("q", bytes(8 * (self.geometry.depth + 1)))

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        t = arrival
        level_done = self._level_done
        tel = self.telemetry
        wait_until = self._wait_until
        elapse = self._elapse
        # The path runs leaf (depth) to root (0), so the level of
        # path[i] is simply depth - i — no label arithmetic needed.
        level = self.geometry.depth
        for cost in costs:
            start = wait_until(t, level_done[level])
            t = elapse(start, cost)
            level_done[level] = t
            if tel is not None:
                tel.emit(
                    EventKind.BMT_LEVEL_SPAN,
                    start,
                    level_track(level),
                    ident=persist_id,
                    duration=cost,
                )
            level -= 1
        return self._record(persist_id, arrival, t, len(path))

    def engine_busy_until(self) -> int:
        # A demand verification enters at the leaf stage.
        return self._level_done[self.geometry.depth]


class SGXPathScoreboard(SequentialScoreboard):
    """Extension (§IV-D): strict persistency over an SGX counter tree.

    Unlike the BMT, the counter tree's crash recovery requires **every
    node on the update path** to persist (parent counters key the child
    MACs), so each persist pays the sequential walk *plus* serialized
    node persists — and shadow-copy atomicity keeps the walk exclusive.
    """

    def __init__(self, *args, node_persist_cycles: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.node_persist_cycles = node_persist_cycles
        self.path_persists = 0

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        start = self._wait_until(arrival, self._engine_free)
        persist_cost = len(path) * self.node_persist_cycles
        completion = self._elapse(start, sum(costs) + persist_cost)
        self._engine_free = completion
        self.path_persists += len(path)
        self._emit_serial_spans(persist_id, start, costs)
        return self._record(persist_id, arrival, completion, len(path))


class TriadNVMScoreboard(SequentialScoreboard):
    """Scheme zoo: Triad-NVM (arXiv:1810.09438) selective persistence.

    The lowest ``persist_levels`` nodes of the update path persist with
    the store (serialized node persists, like the SGX tree but bounded);
    the store is acknowledged as soon as that frontier is durable, while
    the relaxed upper-tree walk continues in the background on the
    single engine lane.  Recovery rebuilds only the relaxed levels.
    """

    def __init__(
        self,
        *args,
        persist_levels: int = 2,
        node_persist_cycles: int = 8,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if persist_levels <= 0:
            raise ValueError("persist_levels must be positive")
        self.persist_levels = persist_levels
        self.node_persist_cycles = node_persist_cycles
        self.path_persists = 0

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        start = self._wait_until(arrival, self._engine_free)
        persisted = min(self.persist_levels, len(path))
        # Ack once the persisted frontier (leaf upward) is durable ...
        completion = self._elapse(
            start, sum(costs[:persisted]) + persisted * self.node_persist_cycles
        )
        # ... while the relaxed upper levels keep the engine busy.
        self._engine_free = self._elapse(completion, sum(costs[persisted:]))
        self.path_persists += persisted
        self._emit_serial_spans(persist_id, start, costs)
        return self._record(persist_id, arrival, completion, len(path))


class PhoenixScoreboard(TriadNVMScoreboard):
    """Scheme zoo: Phoenix (arXiv:1911.01922) persistently-secure tree.

    Every counter (leaf) write persists through; the cached upper tree
    is restored lazily after a crash, so the store acks after the leaf
    update + its persist — Triad-NVM's recurrence with a one-level
    persisted frontier.
    """

    def __init__(self, *args, node_persist_cycles: int = 8, **kwargs) -> None:
        super().__init__(
            *args,
            persist_levels=1,
            node_persist_cycles=node_persist_cycles,
            **kwargs,
        )


class SecPMScoreboard(SequentialScoreboard):
    """Scheme zoo: SecPM (arXiv:1901.00620) write-through counters.

    The sequential walk of sp plus one serialized counter persist per
    store (the write-through of the updated counter block into the
    persistence domain); both invariants hold, so the store waits for
    the root like sp does.
    """

    def __init__(self, *args, node_persist_cycles: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.node_persist_cycles = node_persist_cycles
        self.counter_persists = 0

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        start = self._wait_until(arrival, self._engine_free)
        completion = self._elapse(start, sum(costs) + self.node_persist_cycles)
        self._engine_free = completion
        self.counter_persists += 1
        self._emit_serial_spans(persist_id, start, costs)
        return self._record(persist_id, arrival, completion, len(path))


class AnubisScoreboard(PipelineScoreboard):
    """Scheme zoo: Anubis (arXiv:1912.04726) shadow-metadata tracking.

    The pipelined recurrence of PLP 1, with every level update also
    writing its shadow-table entry (``shadow_write_cycles`` folded into
    the stage occupancy).  Shadow writes are what recovery replays, so
    they are counted for the recovery model.
    """

    def __init__(self, *args, shadow_write_cycles: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.shadow_write_cycles = shadow_write_cycles
        self.shadow_writes = 0

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        # Copy, never mutate: _level_costs may hand out memoized lists
        # (the batched engine's scripted walks are reused across runs).
        shadow = self.shadow_write_cycles
        costs = [cost + shadow for cost in self._level_costs(path)]
        self.shadow_writes += len(path)
        t = arrival
        level_done = self._level_done
        tel = self.telemetry
        wait_until = self._wait_until
        elapse = self._elapse
        level = self.geometry.depth
        for cost in costs:
            start = wait_until(t, level_done[level])
            t = elapse(start, cost)
            level_done[level] = t
            if tel is not None:
                tel.emit(
                    EventKind.BMT_LEVEL_SPAN,
                    start,
                    level_track(level),
                    ident=persist_id,
                    duration=cost,
                )
            level -= 1
        return self._record(persist_id, arrival, t, len(path))


class UnorderedScoreboard(ScoreboardBase):
    """Strawman: root ordering unenforced; stores never wait for the root."""

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        self._emit_serial_spans(persist_id, arrival, costs)
        return self._record(persist_id, arrival, arrival, len(path))


class OutOfOrderScoreboard(ScoreboardBase):
    """PLP 2: OOO updates within an epoch, pipelined across epochs.

    Epoch-granularity submission: the memory system hands over the whole
    set of boundary persists at once, which is how EP works (persists
    materialize when the epoch's dirty blocks are flushed).
    """

    def __init__(
        self,
        *args,
        ett_capacity: int = 2,
        wpq_ring: Optional[OccupancyRing] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.ett_capacity = ett_capacity
        self.wpq_ring = wpq_ring
        self.last_issue_time = 0
        self._port_free = 0
        # Root-update completion frontier per closed epoch, in order —
        # the epoch-drain event timestamps the ETT gates wait on.
        self._epoch_done = array("q")

    def _epoch_gates(self) -> Tuple[int, int]:
        """(admission gate, root-order gate) for the next epoch.

        Admission waits for the epoch ``ett_capacity`` back to complete;
        root updates wait for the immediately preceding epoch.
        """
        admission = 0
        if len(self._epoch_done) >= self.ett_capacity:
            admission = self._epoch_done[len(self._epoch_done) - self.ett_capacity]
        root_gate = self._epoch_done[-1] if self._epoch_done else 0
        return admission, root_gate

    def _open_epoch_span(self, start_floor: int) -> Optional[int]:
        """Emit EPOCH_OPEN (+ ETT utilization sample) for the next epoch."""
        tel = self.telemetry
        if tel is None:
            return None
        epoch_id = len(self._epoch_done)
        tel.emit(EventKind.EPOCH_OPEN, start_floor, "epochs", ident=epoch_id)
        recent = self._epoch_done[-self.ett_capacity :]
        inflight = 1 + sum(1 for t in recent if t > start_floor)
        tel.sample(
            "ett.utilization",
            start_floor,
            min(1.0, inflight / self.ett_capacity),
        )
        return epoch_id

    def _drain_epoch_span(self, epoch_id: Optional[int], frontier: int) -> None:
        if epoch_id is not None and self.telemetry is not None:
            self.telemetry.emit(
                EventKind.EPOCH_DRAIN, frontier, "epochs", ident=epoch_id
            )

    def _issue(self, start: int, issue_slots: int) -> int:
        """Reserve the MAC issue port (one node update starts per cycle).

        A persist's ``issue_slots`` node updates are data-dependent and
        spread one MAC latency apart, so consecutive persists only
        contend for the port at their first issue; the interleaved later
        issues almost never collide (the pipelined MAC units give o3 its
        one-update-per-cycle throughput, §IV-B1).
        """
        first = self._wait_until(start, self._port_free)
        self._port_free = first + 1
        return first

    def submit_epoch(
        self, persists: Sequence[Tuple[int, int]], arrival: int
    ) -> List[PersistTiming]:
        """Submit an epoch's persists.

        Args:
            persists: ``(persist_id, leaf_index)`` in arrival order.
            arrival: Cycle at which the epoch boundary flush begins.

        Returns:
            Per-persist timings (root-ack completion times).
        """
        admission, root_gate = self._epoch_gates()
        start_floor = self._wait_until(arrival, admission)
        epoch_span = self._open_epoch_span(start_floor)
        results = []
        epoch_frontier = start_floor
        wait_until = self._wait_until
        elapse = self._elapse
        for persist_id, leaf_index in persists:
            start = self._admit_wpq(start_floor)
            path = self.geometry.path_tuple(leaf_index)
            costs = self._level_costs(path)
            first_issue = self._issue(start, len(path))
            path_done = elapse(first_issue, sum(costs))
            completion = wait_until(path_done, root_gate)
            if completion > epoch_frontier:
                epoch_frontier = completion
            self._release_wpq(completion)
            self._emit_serial_spans(persist_id, first_issue, costs)
            results.append(
                self._record(persist_id, arrival, completion, len(path))
            )
        self._drain_epoch_span(epoch_span, epoch_frontier)
        self._epoch_done.append(epoch_frontier)
        return results

    def _admit_wpq(self, floor: int) -> int:
        """Gate a persist on a WPQ slot; tracks the core-visible stall."""
        if self.wpq_ring is None:
            if floor > self.last_issue_time:
                self.last_issue_time = floor
            return floor
        admit = self._wait_until(floor, self.wpq_ring.admit(floor))
        if admit > self.last_issue_time:
            self.last_issue_time = admit
        return admit

    def _release_wpq(self, completion: int) -> None:
        if self.wpq_ring is not None:
            self.wpq_ring.occupy(completion)


class CoalescingScoreboard(OutOfOrderScoreboard):
    """PLP 3: OOO + paired LCA coalescing of same-epoch updates."""

    def __init__(self, *args, coalescing_policy: str = "paired", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._coalescer = CoalescingUnit(
            self.geometry, policy=coalescing_policy, telemetry=self.telemetry
        )
        self.coalesced_away = 0

    def submit_epoch(
        self, persists: Sequence[Tuple[int, int]], arrival: int
    ) -> List[PersistTiming]:
        admission, root_gate = self._epoch_gates()
        start_floor = self._wait_until(arrival, admission)
        epoch_span = self._open_epoch_span(start_floor)
        self._coalescer.now = start_floor
        coalesced = self._coalescer.coalesce_epoch(persists)
        self.coalesced_away += self._coalescer.uncoalesced_updates(
            len(coalesced)
        ) - CoalescingUnit.total_updates(coalesced)

        # First pass: own-path completion for every persist.
        own_done: Dict[int, int] = {}
        elapse = self._elapse
        for persist in coalesced:
            start = self._admit_wpq(start_floor)
            if persist.path:
                costs = self._level_costs(persist.path)
                first_issue = self._issue(start, len(persist.path))
                own_done[persist.persist_id] = elapse(first_issue, sum(costs))
                self._emit_serial_spans(persist.persist_id, first_issue, costs)
            else:
                own_done[persist.persist_id] = start

        # Second pass: delegated persists complete with their final
        # delegate's root update; root ordering gated on the prior epoch.
        results = []
        epoch_frontier = start_floor
        wait_until = self._wait_until
        finals = CoalescingUnit.resolve_delegates(coalesced)
        for persist in coalesced:
            final = finals[persist.persist_id]
            path_done = wait_until(own_done[persist.persist_id], own_done[final])
            completion = wait_until(path_done, root_gate)
            if completion > epoch_frontier:
                epoch_frontier = completion
            self._release_wpq(completion)
            results.append(
                self._record(
                    persist.persist_id, arrival, completion, persist.update_count
                )
            )
        self._drain_epoch_span(epoch_span, epoch_frontier)
        self._epoch_done.append(epoch_frontier)
        return results


def make_scoreboard(
    scheme: UpdateScheme,
    geometry: BMTGeometry,
    mac_latency: int = 40,
    bmt_miss_latency: int = 240,
    metadata: Optional[MetadataCaches] = None,
    ett_capacity: int = 2,
    wpq_ring: Optional[OccupancyRing] = None,
    telemetry: "Optional[Telemetry]" = None,
    engine: str = "skip_ahead",
    triad_levels: int = 2,
) -> ScoreboardBase:
    """Build the scoreboard matching a scheme.

    ``secure_wb`` uses the sequential scoreboard (the paper notes that
    evicted dirty blocks update the BMT sequentially in the baseline).
    ``engine`` selects the timing family: ``"batched"`` and
    ``"skip_ahead"`` share the event-queue scoreboards (the batched
    engine only changes how the trace walk reaches them), while
    ``"stepped"`` selects the per-cycle reference oracle from
    :mod:`repro.core.stepped`; all produce bit-identical timings.
    """
    if engine not in ENGINE_KINDS:
        raise ValueError(
            f"engine must be one of {ENGINE_KINDS}, got {engine!r}"
        )
    if engine == "stepped":
        from repro.core.stepped import STEPPED_SCOREBOARDS

        classes = STEPPED_SCOREBOARDS
    else:
        classes = SCOREBOARDS
    args = (geometry, mac_latency, bmt_miss_latency, metadata, telemetry)
    if scheme in (UpdateScheme.SP, UpdateScheme.SECURE_WB):
        return classes[UpdateScheme.SP](*args)
    if scheme in (UpdateScheme.O3, UpdateScheme.COALESCING):
        return classes[scheme](
            *args, ett_capacity=ett_capacity, wpq_ring=wpq_ring
        )
    if scheme is UpdateScheme.TRIAD_NVM:
        return classes[scheme](*args, persist_levels=triad_levels)
    try:
        return classes[scheme](*args)
    except KeyError:
        raise ValueError(f"no scoreboard for scheme {scheme}") from None


SCOREBOARDS: Dict[UpdateScheme, type] = {
    UpdateScheme.SP: SequentialScoreboard,
    UpdateScheme.SGX_SP: SGXPathScoreboard,
    UpdateScheme.PIPELINE: PipelineScoreboard,
    UpdateScheme.UNORDERED: UnorderedScoreboard,
    UpdateScheme.O3: OutOfOrderScoreboard,
    UpdateScheme.COALESCING: CoalescingScoreboard,
    UpdateScheme.TRIAD_NVM: TriadNVMScoreboard,
    UpdateScheme.PHOENIX: PhoenixScoreboard,
    UpdateScheme.SECPM_WT: SecPMScoreboard,
    UpdateScheme.ANUBIS: AnubisScoreboard,
}
"""Skip-ahead scoreboard class per scheme (``secure_wb`` maps to SP)."""
