"""Closed-form scoreboard models of the BMT update engines.

For trace-scale simulation, stepping the cycle-accurate engine is too
slow in pure Python, so each scheme has an equivalent *scoreboard*: a
per-persist recurrence that computes node-update and root-completion
times directly.

* sequential (sp):   ``done = max(arrival, engine_free) + Σ level costs``
* pipeline:          ``t(i, L) = max(t(i, L+1), t(i-1, L)) + cost(L)``
  — persist *i* may start level *L* only after persist *i−1* completed
  its level-*L* update (exactly the cycle engine's rule, so the two
  models agree cycle-for-cycle; the tests assert this).
* o3 / coalescing:   per-persist serial path latency, a 1-update/cycle
  MAC issue port, root completion gated on the previous epoch, and
  admission gated on the epoch two back (2-entry ETT).
* unordered:         the strawman — stores do not wait for the root at
  all (completion == arrival); node updates still occupy the engine.

All scoreboards share the BMT cache for miss modelling, and report node
update counts, so coalescing's update reduction (~26 % in the paper) is
measured, not assumed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.coalescing import CoalescedPersist, CoalescingUnit
from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry
from repro.mem.metadata_cache import MetadataCaches
from repro.telemetry.events import EventKind, level_track

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Telemetry


@dataclass
class PersistTiming:
    """Timing outcome for one persist."""

    persist_id: int
    arrival: int
    completion: int
    node_updates: int


class OccupancyRing:
    """FIFO structural-hazard model (WPQ/PTT slot availability).

    Entries are admitted with a known release time; when the ring is
    full, a new admission waits for the oldest entry to release.
    """

    __slots__ = ("capacity", "_releases")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._releases: Deque[int] = deque()

    def admit(self, now: int) -> int:
        """Earliest cycle at which a slot is free (>= now)."""
        while self._releases and self._releases[0] <= now:
            self._releases.popleft()
        if len(self._releases) < self.capacity:
            return now
        return self._releases[len(self._releases) - self.capacity]

    def occupy(self, release_time: int) -> None:
        """Record an admitted entry that frees its slot at ``release_time``."""
        if self._releases and release_time < self._releases[-1]:
            # FIFO slots release in order even if work completes early.
            release_time = self._releases[-1]
        self._releases.append(release_time)

    def occupancy(self, now: int) -> int:
        """Entries still resident at cycle ``now``.

        Read-only on purpose: telemetry probes sample at times that may
        run ahead of the admit clock, and popping released slots here
        would perturb a later :meth:`admit` — observation must not feed
        back into timing.
        """
        return sum(1 for release in self._releases if release > now)


class ScoreboardBase:
    """Shared path-cost logic for all scoreboard engines."""

    def __init__(
        self,
        geometry: BMTGeometry,
        mac_latency: int = 40,
        bmt_miss_latency: int = 240,
        metadata: Optional[MetadataCaches] = None,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        self.geometry = geometry
        self.mac_latency = mac_latency
        self.bmt_miss_latency = bmt_miss_latency
        self.metadata = metadata
        self.telemetry = telemetry
        self.node_update_count = 0
        self.bmt_cache_misses = 0
        self.timings: List[PersistTiming] = []

    def _emit_serial_spans(
        self, persist_id: int, start: int, costs: Sequence[int]
    ) -> None:
        """Emit one BMT level span per node of a serially-walked path.

        The path runs leaf (level = depth) toward the root (level 0);
        each node's update occupies its level for ``costs[i]`` cycles
        starting when the previous node finished.
        """
        tel = self.telemetry
        if tel is None:
            return
        emit = tel.emit
        level = self.geometry.depth
        t = start
        for cost in costs:
            emit(
                EventKind.BMT_LEVEL_SPAN,
                t,
                level_track(level),
                ident=persist_id,
                duration=cost,
            )
            t += cost
            level -= 1

    def _level_costs(self, path: Sequence[int]) -> List[int]:
        """Per-node update cost (MAC latency + any BMT cache miss)."""
        mac = self.mac_latency
        metadata = self.metadata
        if metadata is None:
            self.node_update_count += len(path)
            return [mac] * len(path)
        miss = self.bmt_miss_latency
        access = metadata.access_bmt_node
        costs = []
        misses = 0
        for label in path:
            if access(label, is_write=True):
                costs.append(mac)
            else:
                costs.append(mac + miss)
                misses += 1
        self.bmt_cache_misses += misses
        self.node_update_count += len(path)
        return costs

    def _record(self, persist_id: int, arrival: int, completion: int, updates: int) -> PersistTiming:
        timing = PersistTiming(persist_id, arrival, completion, updates)
        self.timings.append(timing)
        return timing

    def engine_busy_until(self) -> int:
        """Cycle until which the verification engine is occupied.

        Demand verifications of load fills queue behind in-flight
        updates; schemes with serialized engines (sequential, pipelined)
        report a real backlog, OOO engines effectively none.
        """
        return 0


class SequentialScoreboard(ScoreboardBase):
    """Baseline sp: one persist at a time walks leaf to root."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._engine_free = 0

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        start = max(arrival, self._engine_free)
        completion = start + sum(costs)
        self._engine_free = completion
        self._emit_serial_spans(persist_id, start, costs)
        return self._record(persist_id, arrival, completion, len(path))

    def engine_busy_until(self) -> int:
        return self._engine_free


class PipelineScoreboard(ScoreboardBase):
    """PLP 1: in-order pipelined BMT updates (strict persistency)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # level -> completion time of the most recent update at that level
        self._level_done: Dict[int, int] = {}

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        t = arrival
        level_done = self._level_done
        tel = self.telemetry
        # The path runs leaf (depth) to root (0), so the level of
        # path[i] is simply depth - i — no label arithmetic needed.
        level = self.geometry.depth
        for cost in costs:
            start = max(t, level_done.get(level, 0))
            t = start + cost
            level_done[level] = t
            if tel is not None:
                tel.emit(
                    EventKind.BMT_LEVEL_SPAN,
                    start,
                    level_track(level),
                    ident=persist_id,
                    duration=cost,
                )
            level -= 1
        return self._record(persist_id, arrival, t, len(path))

    def engine_busy_until(self) -> int:
        # A demand verification enters at the leaf stage.
        return self._level_done.get(self.geometry.depth, 0)


class SGXPathScoreboard(SequentialScoreboard):
    """Extension (§IV-D): strict persistency over an SGX counter tree.

    Unlike the BMT, the counter tree's crash recovery requires **every
    node on the update path** to persist (parent counters key the child
    MACs), so each persist pays the sequential walk *plus* serialized
    node persists — and shadow-copy atomicity keeps the walk exclusive.
    """

    def __init__(self, *args, node_persist_cycles: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.node_persist_cycles = node_persist_cycles
        self.path_persists = 0

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        start = max(arrival, self._engine_free)
        persist_cost = len(path) * self.node_persist_cycles
        completion = start + sum(costs) + persist_cost
        self._engine_free = completion
        self.path_persists += len(path)
        self._emit_serial_spans(persist_id, start, costs)
        return self._record(persist_id, arrival, completion, len(path))


class UnorderedScoreboard(ScoreboardBase):
    """Strawman: root ordering unenforced; stores never wait for the root."""

    def submit(self, persist_id: int, leaf_index: int, arrival: int) -> PersistTiming:
        path = self.geometry.path_tuple(leaf_index)
        costs = self._level_costs(path)
        self._emit_serial_spans(persist_id, arrival, costs)
        return self._record(persist_id, arrival, arrival, len(path))


class OutOfOrderScoreboard(ScoreboardBase):
    """PLP 2: OOO updates within an epoch, pipelined across epochs.

    Epoch-granularity submission: the memory system hands over the whole
    set of boundary persists at once, which is how EP works (persists
    materialize when the epoch's dirty blocks are flushed).
    """

    def __init__(
        self,
        *args,
        ett_capacity: int = 2,
        wpq_ring: Optional[OccupancyRing] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.ett_capacity = ett_capacity
        self.wpq_ring = wpq_ring
        self.last_issue_time = 0
        self._port_free = 0
        # Root-update completion frontier per closed epoch, in order.
        self._epoch_done: List[int] = []

    def _epoch_gates(self) -> Tuple[int, int]:
        """(admission gate, root-order gate) for the next epoch.

        Admission waits for the epoch ``ett_capacity`` back to complete;
        root updates wait for the immediately preceding epoch.
        """
        admission = 0
        if len(self._epoch_done) >= self.ett_capacity:
            admission = self._epoch_done[len(self._epoch_done) - self.ett_capacity]
        root_gate = self._epoch_done[-1] if self._epoch_done else 0
        return admission, root_gate

    def _open_epoch_span(self, start_floor: int) -> Optional[int]:
        """Emit EPOCH_OPEN (+ ETT utilization sample) for the next epoch."""
        tel = self.telemetry
        if tel is None:
            return None
        epoch_id = len(self._epoch_done)
        tel.emit(EventKind.EPOCH_OPEN, start_floor, "epochs", ident=epoch_id)
        inflight = 1 + sum(
            1 for t in self._epoch_done[-self.ett_capacity :] if t > start_floor
        )
        tel.sample(
            "ett.utilization",
            start_floor,
            min(1.0, inflight / self.ett_capacity),
        )
        return epoch_id

    def _drain_epoch_span(self, epoch_id: Optional[int], frontier: int) -> None:
        if epoch_id is not None and self.telemetry is not None:
            self.telemetry.emit(
                EventKind.EPOCH_DRAIN, frontier, "epochs", ident=epoch_id
            )

    def _issue(self, start: int, issue_slots: int) -> int:
        """Reserve the MAC issue port (one node update starts per cycle).

        A persist's ``issue_slots`` node updates are data-dependent and
        spread one MAC latency apart, so consecutive persists only
        contend for the port at their first issue; the interleaved later
        issues almost never collide (the pipelined MAC units give o3 its
        one-update-per-cycle throughput, §IV-B1).
        """
        first = max(start, self._port_free)
        self._port_free = first + 1
        return first

    def submit_epoch(
        self, persists: Sequence[Tuple[int, int]], arrival: int
    ) -> List[PersistTiming]:
        """Submit an epoch's persists.

        Args:
            persists: ``(persist_id, leaf_index)`` in arrival order.
            arrival: Cycle at which the epoch boundary flush begins.

        Returns:
            Per-persist timings (root-ack completion times).
        """
        admission, root_gate = self._epoch_gates()
        start_floor = max(arrival, admission)
        epoch_span = self._open_epoch_span(start_floor)
        results = []
        epoch_frontier = start_floor
        for persist_id, leaf_index in persists:
            start = self._admit_wpq(start_floor)
            path = self.geometry.path_tuple(leaf_index)
            costs = self._level_costs(path)
            first_issue = self._issue(start, len(path))
            path_done = first_issue + sum(costs)
            completion = max(path_done, root_gate)
            epoch_frontier = max(epoch_frontier, completion)
            self._release_wpq(completion)
            self._emit_serial_spans(persist_id, first_issue, costs)
            results.append(
                self._record(persist_id, arrival, completion, len(path))
            )
        self._drain_epoch_span(epoch_span, epoch_frontier)
        self._epoch_done.append(epoch_frontier)
        return results

    def _admit_wpq(self, floor: int) -> int:
        """Gate a persist on a WPQ slot; tracks the core-visible stall."""
        if self.wpq_ring is None:
            self.last_issue_time = max(self.last_issue_time, floor)
            return floor
        admit = max(floor, self.wpq_ring.admit(floor))
        self.last_issue_time = max(self.last_issue_time, admit)
        return admit

    def _release_wpq(self, completion: int) -> None:
        if self.wpq_ring is not None:
            self.wpq_ring.occupy(completion)


class CoalescingScoreboard(OutOfOrderScoreboard):
    """PLP 3: OOO + paired LCA coalescing of same-epoch updates."""

    def __init__(self, *args, coalescing_policy: str = "paired", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._coalescer = CoalescingUnit(
            self.geometry, policy=coalescing_policy, telemetry=self.telemetry
        )
        self.coalesced_away = 0

    def submit_epoch(
        self, persists: Sequence[Tuple[int, int]], arrival: int
    ) -> List[PersistTiming]:
        admission, root_gate = self._epoch_gates()
        start_floor = max(arrival, admission)
        epoch_span = self._open_epoch_span(start_floor)
        self._coalescer.now = start_floor
        coalesced = self._coalescer.coalesce_epoch(persists)
        self.coalesced_away += self._coalescer.uncoalesced_updates(
            len(coalesced)
        ) - CoalescingUnit.total_updates(coalesced)

        # First pass: own-path completion for every persist.
        own_done: Dict[int, int] = {}
        starts: Dict[int, int] = {}
        for persist in coalesced:
            start = self._admit_wpq(start_floor)
            starts[persist.persist_id] = start
            if persist.path:
                costs = self._level_costs(persist.path)
                first_issue = self._issue(start, len(persist.path))
                own_done[persist.persist_id] = first_issue + sum(costs)
                self._emit_serial_spans(persist.persist_id, first_issue, costs)
            else:
                own_done[persist.persist_id] = start

        # Second pass: delegated persists complete with their final
        # delegate's root update; root ordering gated on the prior epoch.
        results = []
        epoch_frontier = start_floor
        for persist in coalesced:
            final = CoalescingUnit.resolve_delegate(coalesced, persist.persist_id)
            path_done = max(own_done[persist.persist_id], own_done[final])
            completion = max(path_done, root_gate)
            epoch_frontier = max(epoch_frontier, completion)
            self._release_wpq(completion)
            results.append(
                self._record(
                    persist.persist_id, arrival, completion, persist.update_count
                )
            )
        self._drain_epoch_span(epoch_span, epoch_frontier)
        self._epoch_done.append(epoch_frontier)
        return results


def make_scoreboard(
    scheme: UpdateScheme,
    geometry: BMTGeometry,
    mac_latency: int = 40,
    bmt_miss_latency: int = 240,
    metadata: Optional[MetadataCaches] = None,
    ett_capacity: int = 2,
    wpq_ring: Optional[OccupancyRing] = None,
    telemetry: "Optional[Telemetry]" = None,
) -> ScoreboardBase:
    """Build the scoreboard matching a scheme.

    ``secure_wb`` uses the sequential scoreboard (the paper notes that
    evicted dirty blocks update the BMT sequentially in the baseline).
    """
    args = (geometry, mac_latency, bmt_miss_latency, metadata, telemetry)
    if scheme in (UpdateScheme.SP, UpdateScheme.SECURE_WB):
        return SequentialScoreboard(*args)
    if scheme is UpdateScheme.SGX_SP:
        return SGXPathScoreboard(*args)
    if scheme is UpdateScheme.PIPELINE:
        return PipelineScoreboard(*args)
    if scheme is UpdateScheme.UNORDERED:
        return UnorderedScoreboard(*args)
    if scheme is UpdateScheme.O3:
        return OutOfOrderScoreboard(
            *args, ett_capacity=ett_capacity, wpq_ring=wpq_ring
        )
    if scheme is UpdateScheme.COALESCING:
        return CoalescingScoreboard(
            *args, ett_capacity=ett_capacity, wpq_ring=wpq_ring
        )
    raise ValueError(f"no scoreboard for scheme {scheme}")
