"""The evaluated scheme registry (paper Table IV)."""

from __future__ import annotations

import enum

from repro.persistency.models import PersistencyModel


class UpdateScheme(enum.Enum):
    """One of the evaluated secure-NVMM configurations.

    The first six are the paper's Table IV; the rest are the cross-paper
    *scheme zoo*: competing designs from the related work (see
    PAPERS.md) implemented behind the same config/trace interface, so
    they can be compared on the axis the PLP paper assumes away —
    post-crash recovery time (``repro.recovery.rebuild``).
    """

    SECURE_WB = "secure_wb"
    UNORDERED = "unordered"
    SP = "sp"
    PIPELINE = "pipeline"
    O3 = "o3"
    COALESCING = "coalescing"
    SGX_SP = "sgx_sp"
    """Extension (§IV-D): strict persistency over an SGX-style counter
    tree, where every node on the leaf-to-root update path must persist
    — not just the root.  Not part of the paper's Table IV; used by the
    ablation benchmarks to quantify why the paper focuses on the BMT."""
    TRIAD_NVM = "triad_nvm"
    """Triad-NVM (arXiv:1810.09438): selective persistence — the lowest
    N tree levels persist with each store, the upper levels (and the
    root register) are relaxed and rebuilt from the persisted frontier
    at recovery.  Trades Invariant-2 root ordering for bounded recovery
    time."""
    PHOENIX = "phoenix"
    """Phoenix (arXiv:1911.01922): persistently-secure counter tree —
    every counter (BMT leaf) write is persisted through, upper tree
    nodes are cached and lazily restored subtree-by-subtree after a
    crash.  Near-zero upfront recovery, relaxed root ordering."""
    SECPM_WT = "secpm_wt"
    """SecPM (arXiv:1901.00620): write-through counter persistence with
    the WPQ in the persistence domain; keeps both paper invariants, at
    the cost of one serialized counter persist per store."""
    ANUBIS = "anubis"
    """Anubis (arXiv:1912.04726): shadow-metadata fast recovery — every
    metadata-cache update is mirrored into a persisted shadow table, so
    recovery replays only the (cache-sized) shadow region.  Keeps both
    invariants; each tree-level update pays the shadow write."""

    @property
    def persistency(self) -> PersistencyModel:
        """Persistency model the scheme provides."""
        if self in (UpdateScheme.SECURE_WB, UpdateScheme.UNORDERED):
            # secure_WB supports no persistency model at all; unordered
            # *claims* strict persistency but breaks Invariant 2, so it
            # provides none that is crash-recoverable.
            return PersistencyModel.NONE
        if self in (UpdateScheme.O3, UpdateScheme.COALESCING):
            return PersistencyModel.EPOCH
        return PersistencyModel.STRICT

    @property
    def write_through(self) -> bool:
        """Whether data/metadata caches behave write-through.

        Strict persistency forces write-through behaviour (every store
        is a persist); the unordered strawman mirrors prior work and is
        also write-through.
        """
        return self in (
            UpdateScheme.UNORDERED,
            UpdateScheme.SP,
            UpdateScheme.PIPELINE,
            UpdateScheme.SGX_SP,
            UpdateScheme.TRIAD_NVM,
            UpdateScheme.PHOENIX,
            UpdateScheme.SECPM_WT,
            UpdateScheme.ANUBIS,
        )

    @property
    def crash_recoverable(self) -> bool:
        """Whether the scheme guarantees both paper invariants.

        ``triad_nvm`` and ``phoenix`` are *not* listed although they do
        recover: they relax Invariant 2's root ordering and instead
        rebuild/adopt the root from persisted metadata — the documented
        relaxation tracked by :attr:`relaxes_root_order`.
        """
        return self in (
            UpdateScheme.SP,
            UpdateScheme.PIPELINE,
            UpdateScheme.O3,
            UpdateScheme.COALESCING,
            UpdateScheme.SGX_SP,
            UpdateScheme.SECPM_WT,
            UpdateScheme.ANUBIS,
        )

    @property
    def relaxes_root_order(self) -> bool:
        """True for the zoo schemes whose documented relaxation is
        per-persist durability without ordered root updates: recovery
        rebuilds the root from the persisted (MAC-protected) metadata
        instead of trusting the on-chip register."""
        return self in (UpdateScheme.TRIAD_NVM, UpdateScheme.PHOENIX)

    @property
    def persists_whole_path(self) -> bool:
        """True if crash recovery needs the whole update path persisted
        (the SGX counter tree), not just the root."""
        return self is UpdateScheme.SGX_SP

    @property
    def uses_epochs(self) -> bool:
        return self.persistency is PersistencyModel.EPOCH

    @classmethod
    def from_name(cls, name: str) -> "UpdateScheme":
        """Look up a scheme by its Table IV name (case-insensitive)."""
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(s.value for s in cls)
            raise ValueError(f"unknown scheme {name!r}; expected one of: {valid}") from None
