"""The evaluated scheme registry (paper Table IV)."""

from __future__ import annotations

import enum

from repro.persistency.models import PersistencyModel


class UpdateScheme(enum.Enum):
    """One of the six evaluated secure-NVMM configurations."""

    SECURE_WB = "secure_wb"
    UNORDERED = "unordered"
    SP = "sp"
    PIPELINE = "pipeline"
    O3 = "o3"
    COALESCING = "coalescing"
    SGX_SP = "sgx_sp"
    """Extension (§IV-D): strict persistency over an SGX-style counter
    tree, where every node on the leaf-to-root update path must persist
    — not just the root.  Not part of the paper's Table IV; used by the
    ablation benchmarks to quantify why the paper focuses on the BMT."""

    @property
    def persistency(self) -> PersistencyModel:
        """Persistency model the scheme provides."""
        if self in (UpdateScheme.SECURE_WB, UpdateScheme.UNORDERED):
            # secure_WB supports no persistency model at all; unordered
            # *claims* strict persistency but breaks Invariant 2, so it
            # provides none that is crash-recoverable.
            return PersistencyModel.NONE
        if self in (UpdateScheme.SP, UpdateScheme.PIPELINE, UpdateScheme.SGX_SP):
            return PersistencyModel.STRICT
        return PersistencyModel.EPOCH

    @property
    def write_through(self) -> bool:
        """Whether data/metadata caches behave write-through.

        Strict persistency forces write-through behaviour (every store
        is a persist); the unordered strawman mirrors prior work and is
        also write-through.
        """
        return self in (
            UpdateScheme.UNORDERED,
            UpdateScheme.SP,
            UpdateScheme.PIPELINE,
            UpdateScheme.SGX_SP,
        )

    @property
    def crash_recoverable(self) -> bool:
        """Whether the scheme guarantees both paper invariants."""
        return self in (
            UpdateScheme.SP,
            UpdateScheme.PIPELINE,
            UpdateScheme.O3,
            UpdateScheme.COALESCING,
            UpdateScheme.SGX_SP,
        )

    @property
    def persists_whole_path(self) -> bool:
        """True if crash recovery needs the whole update path persisted
        (the SGX counter tree), not just the root."""
        return self is UpdateScheme.SGX_SP

    @property
    def uses_epochs(self) -> bool:
        return self.persistency is PersistencyModel.EPOCH

    @classmethod
    def from_name(cls, name: str) -> "UpdateScheme":
        """Look up a scheme by its Table IV name (case-insensitive)."""
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(s.value for s in cls)
            raise ValueError(f"unknown scheme {name!r}; expected one of: {valid}") from None
