"""Crash-recovery invariant checking over engine event streams.

The paper's two invariants:

* **Invariant 1 (Crash Recovery Tuple)** — to recover a persisted datum,
  its whole memory tuple ``(C, γ, M, R)`` must have persisted.
* **Invariant 2 (Persist Order)** — if α1 → α2 in persist order, each
  tuple component of α1 must persist before α2's.

These helpers validate an update engine's observable behaviour (root-ack
times) and a WPQ's gathered state against the invariants.  They are used
by the property tests — every PLP optimization must keep them true —
and by the Table II ordering-violation experiment, where a deliberately
broken engine must make them fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.core.update_engine import PersistEvent
from repro.mem.wpq import REQUIRED_ITEMS, WPQEntry
from repro.persistency.models import PersistencyModel


@dataclass(frozen=True)
class RootOrderViolation:
    """A BMT-root update that completed out of persist order."""

    older_persist: int
    younger_persist: int
    older_ack: int
    younger_ack: int

    def describe(self) -> str:
        return (
            f"BMT root for persist {self.younger_persist} updated at "
            f"t={self.younger_ack} before older persist {self.older_persist} "
            f"(t={self.older_ack})"
        )


def check_root_order(
    events: Sequence[PersistEvent], model: PersistencyModel
) -> List[RootOrderViolation]:
    """Validate Invariant 2's root-update component.

    Args:
        events: Engine persist events (any order).
        model: Persistency model defining which pairs are ordered;
            persist IDs are assumed to follow program order and events
            carry their epoch.

    Returns:
        All ordered pairs whose root acks are inverted.
    """
    ordered = sorted(events, key=lambda e: e.persist_id)
    violations: List[RootOrderViolation] = []
    for younger_pos, younger in enumerate(ordered):
        for older in ordered[:younger_pos]:
            if not model.requires_ordering(older.epoch_id, younger.epoch_id):
                continue
            if younger.root_ack_cycle < older.root_ack_cycle:
                violations.append(
                    RootOrderViolation(
                        older_persist=older.persist_id,
                        younger_persist=younger.persist_id,
                        older_ack=older.root_ack_cycle,
                        younger_ack=younger.root_ack_cycle,
                    )
                )
    return violations


def check_tuple_complete(entries: Iterable[WPQEntry]) -> List[str]:
    """Validate Invariant 1 over WPQ entries declared complete.

    Returns:
        Human-readable problems (empty when the invariant holds).
    """
    problems = []
    for entry in entries:
        if entry.complete and entry.missing():
            missing = ", ".join(sorted(item.value for item in entry.missing()))
            problems.append(
                f"persist {entry.persist_id} marked complete but missing: {missing}"
            )
    return problems


def completions_in_order(completions: Dict[int, int]) -> bool:
    """True if root-ack times are non-decreasing in persist-ID order.

    Convenience predicate for strict-persistency engines, where every
    persist pair is ordered.
    """
    times = [completions[pid] for pid in sorted(completions)]
    return all(a <= b for a, b in zip(times, times[1:]))
