"""Persist-Level Parallelism (PLP): the paper's primary contribution.

This package contains the four BMT update mechanisms evaluated in the
paper plus the unordered strawman:

=============  =============  ==============================================
Scheme         Persistency    BMT update mechanism
=============  =============  ==============================================
``secure_wb``  none           Sequential updates on dirty LLC evictions
``unordered``  (broken)       Write-through, root ordering NOT enforced
``sp``         strict         Sequential leaf-to-root per persist (2SP)
``pipeline``   strict         PLP 1 — in-order pipelined level updates (PTT)
``o3``         epoch          PLP 2 — OOO within epoch, pipelined across (ETT)
``coalescing`` epoch          PLP 3 — o3 + LCA update coalescing
=============  =============  ==============================================

Two model fidelities are provided and cross-validated in the tests:

* :mod:`repro.core.update_engine` — cycle-stepped engines that drive the
  PTT/ETT hardware tables exactly as §V describes;
* :mod:`repro.core.schedulers` — closed-form scoreboard models with the
  same scheduling rules, used for large trace-driven runs.
"""

from repro.core.schemes import UpdateScheme
from repro.core.ptt import PersistTrackingTable, PTTEntry
from repro.core.ett import EpochTrackingTable, ETTEntry
from repro.core.coalescing import CoalescingUnit, CoalescedPersist
from repro.core.controller import MemoryControllerPipeline, PersistOutcome
from repro.core.update_engine import (
    CycleAccurateEngine,
    EngineConfig,
    PersistEvent,
)
from repro.core.schedulers import (
    SequentialScoreboard,
    SGXPathScoreboard,
    PipelineScoreboard,
    OutOfOrderScoreboard,
    CoalescingScoreboard,
    UnorderedScoreboard,
    make_scoreboard,
)

__all__ = [
    "UpdateScheme",
    "PersistTrackingTable",
    "PTTEntry",
    "EpochTrackingTable",
    "ETTEntry",
    "CoalescingUnit",
    "CoalescedPersist",
    "MemoryControllerPipeline",
    "PersistOutcome",
    "CycleAccurateEngine",
    "EngineConfig",
    "PersistEvent",
    "SequentialScoreboard",
    "SGXPathScoreboard",
    "PipelineScoreboard",
    "OutOfOrderScoreboard",
    "CoalescingScoreboard",
    "UnorderedScoreboard",
    "make_scoreboard",
]
