"""Cycle-stepped BMT update engine driving the PTT/ETT tables.

This is the faithful model of the paper's §V hardware: persists live in
a :class:`~repro.core.ptt.PersistTrackingTable`, epochs in an
:class:`~repro.core.ett.EpochTrackingTable`, and a per-cycle scheduler
decides which persist may update which BMT level.  The scheduling rules
per scheme:

* ``sp`` — only the oldest persist makes progress; a persist walks its
  path leaf-to-root sequentially.
* ``pipeline`` — a persist may start updating level L only after the
  next-older persist has *completed* its level-L update.  Stalls (BMT
  cache misses) create bubbles that propagate to younger persists.
* ``o3`` — persists of the same epoch progress independently (pipelined
  MAC units issue one update per cycle); a BMT level may only be updated
  by one epoch at a time, enforced through the ETT frontier.
* ``coalescing`` — as ``o3``, plus paired coalescing: a persist may stop
  below the LCA it shares with its successor and delegate the rest.
* ``unordered`` — the strawman: no ordering or epoch constraints at all.

The engine is intended for unit-scale validation (hundreds to a few
thousand persists); the trace-scale simulations use the closed-form
scoreboards in :mod:`repro.core.schedulers`, which the test suite
cross-validates against this engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.core.coalescing import CoalescingUnit
from repro.core.ett import EpochTrackingTable, ETTFullError
from repro.core.ptt import PersistTrackingTable, PTTEntry, PTTFullError
from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry
from repro.mem.metadata_cache import MetadataCaches
from repro.sim.engine import CompletionHeap
from repro.telemetry.events import EventKind, level_track

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Telemetry


@dataclass
class EngineConfig:
    """Timing and capacity parameters for the update engine."""

    scheme: UpdateScheme = UpdateScheme.SP
    mac_latency: int = 40
    bmt_miss_latency: int = 240
    ptt_capacity: int = 64
    ett_capacity: int = 2


@dataclass
class PersistEvent:
    """Recorded outcome of one persist."""

    persist_id: int
    epoch_id: int
    submit_cycle: int
    root_ack_cycle: int
    node_updates: int


class CycleAccurateEngine:
    """Per-cycle model of the BMT update hardware."""

    def __init__(
        self,
        geometry: BMTGeometry,
        config: Optional[EngineConfig] = None,
        metadata: Optional[MetadataCaches] = None,
        on_root_ack: Optional[Callable[[int, int], None]] = None,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        """Create an engine.

        Args:
            geometry: BMT shape.
            config: Engine parameters; defaults to Table III values.
            metadata: Metadata caches; ``None`` uses an ideal BMT cache.
            on_root_ack: Callback ``(persist_id, cycle)`` fired when a
                persist's BMT root update (or its delegate's) completes —
                the notification the WPQ waits for in 2SP.
            telemetry: Optional event bus; the engine stamps events with
                its own cycle counter and never alters timing.
        """
        self.geometry = geometry
        self.config = config or EngineConfig()
        self.metadata = metadata
        self.telemetry = telemetry
        self.ptt = PersistTrackingTable(
            self.config.ptt_capacity, telemetry=telemetry, clock=lambda: self.now
        )
        self.ett = EpochTrackingTable(self.config.ett_capacity)
        self._coalescer = CoalescingUnit(geometry, telemetry=telemetry)
        self._on_root_ack = on_root_ack
        self.now = 0
        self.completions: Dict[int, int] = {}
        self.events: List[PersistEvent] = []
        self.node_update_count = 0
        self.bmt_cache_misses = 0
        self._busy_until: Dict[int, int] = {}
        self._pending_completions = CompletionHeap()
        self._started: Set[int] = set()
        self._submit_cycle: Dict[int, int] = {}
        self._updates_done: Dict[int, int] = {}
        self._waiting_delegation: Dict[int, int] = {}
        self._known_epochs: Set[int] = set()
        self._paired: Set[int] = set()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def can_accept(self, epoch_id: int = 0) -> bool:
        """Whether a persist of ``epoch_id`` can be submitted right now."""
        if self.ptt.full:
            return False
        if self.config.scheme.uses_epochs and epoch_id not in self._known_epochs:
            if self.ett.full:
                return False
        return True

    def submit(self, persist_id: int, leaf_index: int, epoch_id: int = 0) -> bool:
        """Submit a persist's BMT update.

        Args:
            persist_id: Unique, increasing persist ID.
            leaf_index: Counter block (page) whose path must update.
            epoch_id: Owning epoch (ignored by SP schemes).

        Returns:
            ``False`` if structural hazards (full PTT, full ETT) reject
            the persist — the core must stall and retry.
        """
        if not self.can_accept(epoch_id):
            return False
        if self.config.scheme.uses_epochs and epoch_id not in self._known_epochs:
            self.ett.open_epoch(deepest_level=self.geometry.depth)
            self._known_epochs.add(epoch_id)
            tel = self.telemetry
            if tel is not None:
                tel.emit(EventKind.EPOCH_OPEN, self.now, "epochs", ident=epoch_id)
                tel.sample(
                    "ett.utilization", self.now, len(self.ett) / self.ett.capacity
                )
        path = self.geometry.update_path(leaf_index)
        entry = self.ptt.allocate(
            persist_id=persist_id,
            path=path,
            wpq_ptr=persist_id,
            epoch_id=epoch_id,
        )
        self._submit_cycle[persist_id] = self.now
        self._updates_done[persist_id] = 0
        if self.config.scheme is UpdateScheme.COALESCING:
            self._try_coalesce(entry, leaf_index)
        return True

    def _try_coalesce(self, trailing: PTTEntry, trailing_leaf: int) -> None:
        """Pair the new persist with the previous same-epoch persist.

        Paired policy (§V-C): a persist already in a pair — as leading
        or trailing — is not coalesced again.
        """
        candidates = [
            e
            for e in self.ptt
            if e.epoch_id == trailing.epoch_id
            and e.persist_id != trailing.persist_id
            and e.valid
            and e.delegated_to is None
            and e.persist_id not in self._paired
        ]
        if not candidates:
            return
        leading = candidates[-1]
        lca = self.geometry.lca(leading.pending_node, trailing.pending_node)
        # The leading persist can only delegate work it has not done yet:
        # its remaining path (pending node + remaining_path) must still
        # contain the LCA.
        future = [leading.pending_node] + leading.remaining_path
        if lca not in future:
            return
        cut = future.index(lca)
        if cut == 0:
            # Same leaf (or leading already at the LCA).  If it has not
            # begun updating, the whole path delegates to the trailing
            # persist; otherwise leave it alone.
            if leading.persist_id in self._started:
                return
            leading.remaining_path = []
            leading.ready = True
            leading.delegated_to = trailing.persist_id
            self._waiting_delegation[leading.persist_id] = trailing.persist_id
        else:
            # Keep [pending .. cut), delegate [cut ..] (LCA to root).
            leading.remaining_path = future[1:cut]
            leading.delegated_to = trailing.persist_id
        self._paired.add(leading.persist_id)
        self._paired.add(trailing.persist_id)
        tel = self.telemetry
        if tel is not None:
            tel.instant(
                EventKind.COALESCE_DELEGATE,
                self.now,
                "coalesce",
                ident=leading.persist_id,
                args={
                    "to": trailing.persist_id,
                    "lca": lca,
                    "updates_removed": len(future) - cut,
                },
            )

    # ------------------------------------------------------------------
    # per-cycle evaluation
    # ------------------------------------------------------------------

    def tick(self, cycles: int = 1) -> bool:
        """Advance the engine by ``cycles`` cycles.

        Returns:
            ``True`` if any observable state changed (an update
            completed, started, or retired) during the ticks.
        """
        progressed = False
        for _ in range(cycles):
            before = self._progress_marker()
            self._complete_updates()
            self._retire()
            self._schedule_starts()
            self.now += 1
            if self._progress_marker() != before:
                progressed = True
        return progressed

    def _progress_marker(self) -> Tuple[int, int, int, int, int, int]:
        """Cheap fingerprint of every state a tick can change.

        Scheduling eligibility (:meth:`_may_start`) is a pure function
        of this state, so two consecutive ticks with equal markers make
        identical decisions — the basis of the skip-idle fast-forward.
        """
        return (
            self.node_update_count,
            len(self.completions),
            len(self.ptt),
            len(self._busy_until),
            len(self._waiting_delegation),
            len(self._started),
        )

    def run_until_drained(
        self, max_cycles: int = 10_000_000, skip_idle: bool = False
    ) -> int:
        """Tick until every submitted persist has its root ack.

        Args:
            max_cycles: Deadlock guard on total cycles ticked.
            skip_idle: Fast-forward over idle stretches: after a tick in
                which nothing progressed, jump the clock straight to the
                earliest pending node-update completion (tracked in a
                :class:`~repro.sim.engine.CompletionHeap`) instead of
                ticking through cycles where every lane is mid-latency.
                Event timestamps and all scheduling decisions are
                unchanged — idle ticks emit nothing and decide nothing.
        """
        start = self.now
        pending = self._pending_completions
        while not self.ptt.empty:
            if self.now - start > max_cycles:
                raise RuntimeError("update engine failed to drain (deadlock?)")
            progressed = self.tick()
            if skip_idle and not progressed and not self.ptt.empty:
                # Drop completion events the tick already consumed, then
                # jump to the next one (now points at the cycle *after*
                # the idle tick, so strictly-later events are the target).
                pending.release_until(self.now - 1)
                target = pending.next_time()
                if target is None:
                    raise RuntimeError(
                        "update engine idle with no pending completions (deadlock)"
                    )
                if target > self.now:
                    self.now = target
        return self.now

    # -- phase 1: finish in-flight node updates -------------------------

    def _complete_updates(self) -> None:
        for entry in list(self.ptt):
            if not entry.valid or entry.ready:
                continue
            busy_until = self._busy_until.get(entry.persist_id)
            if busy_until is None or self.now < busy_until:
                continue
            # Node update finished this cycle.
            del self._busy_until[entry.persist_id]
            self.node_update_count += 1
            self._updates_done[entry.persist_id] += 1
            entry.ready = True
            if self.telemetry is not None:
                self.telemetry.emit(
                    EventKind.BMT_LEVEL_LEAVE,
                    self.now,
                    level_track(entry.level),
                    ident=entry.persist_id,
                )
            if entry.pending_node == self.geometry.ROOT_LABEL:
                self._ack(entry)
            elif not entry.remaining_path and entry.delegated_to is not None:
                # Truncated (coalesced) path exhausted: wait for delegate.
                self._waiting_delegation[entry.persist_id] = entry.delegated_to
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        """Ack persists whose (possibly chained) delegate has completed."""
        changed = True
        while changed:
            changed = False
            for waiter_id, delegate_id in list(self._waiting_delegation.items()):
                if delegate_id in self.completions:
                    del self._waiting_delegation[waiter_id]
                    waiter = self.ptt.find(waiter_id)
                    if waiter is not None and not waiter.persisted:
                        self._ack(waiter)
                    changed = True

    def _ack(self, entry: PTTEntry) -> None:
        entry.persisted = True
        entry.valid = False
        entry.ready = True
        self.completions[entry.persist_id] = self.now
        self.events.append(
            PersistEvent(
                persist_id=entry.persist_id,
                epoch_id=entry.epoch_id,
                submit_cycle=self._submit_cycle[entry.persist_id],
                root_ack_cycle=self.now,
                node_updates=self._updates_done[entry.persist_id],
            )
        )
        if self._on_root_ack is not None:
            self._on_root_ack(entry.persist_id, self.now)

    # -- phase 2: start new node updates --------------------------------

    def _schedule_starts(self) -> None:
        scheme = self.config.scheme
        issue_budget = 1 if scheme in (UpdateScheme.O3, UpdateScheme.COALESCING) else None
        entries = list(self.ptt)
        for position, entry in enumerate(entries):
            if issue_budget is not None and issue_budget <= 0:
                break
            if not entry.valid:
                continue
            if entry.persist_id in self._busy_until:
                continue  # already updating a node
            if entry.persist_id in self._waiting_delegation:
                continue
            if entry.ready:
                # Completed current node; try to advance to the next.
                if not entry.remaining_path:
                    continue
                if not self._may_start(entry, position, entries, entry.level - 1):
                    continue
                entry.advance()
            else:
                # Not started yet (fresh entry at its leaf node).
                if entry.persist_id in self._started:
                    continue
                if not self._may_start(entry, position, entries, entry.level):
                    continue
                self._started.add(entry.persist_id)
            self._begin_node_update(entry)
            if issue_budget is not None:
                issue_budget -= 1

    def _may_start(
        self,
        entry: PTTEntry,
        position: int,
        entries: List[PTTEntry],
        level: int,
    ) -> bool:
        """Scheme-specific: may ``entry`` start an update at ``level``?"""
        scheme = self.config.scheme
        if scheme is UpdateScheme.UNORDERED:
            return True
        if scheme in (
            UpdateScheme.SP,
            # The zoo's serial-walk schemes share sp's one-at-a-time
            # engine discipline; their extra persists are timing-only.
            UpdateScheme.TRIAD_NVM,
            UpdateScheme.PHOENIX,
            UpdateScheme.SECPM_WT,
        ):
            head = self.ptt.head()
            return head is not None and head.persist_id == entry.persist_id
        if scheme in (UpdateScheme.PIPELINE, UpdateScheme.ANUBIS):
            if position == 0:
                return True
            older = entries[position - 1]
            if older.persisted:
                return True
            if older.level < level:
                return True  # older is already working above this level
            if older.level == level and older.ready:
                return True  # older completed this level's update
            return False
        # Epoch schemes: the ETT must authorize the epoch at this level.
        return self._epoch_authorized(entry.epoch_id, level)

    def _epoch_authorized(self, epoch_id: int, level: int) -> bool:
        ett_entry = self.ett.find(epoch_id)
        if ett_entry is None:
            return False
        predecessor = self.ett.predecessor(epoch_id)
        if predecessor is None:
            return True
        return level > self._epoch_frontier(predecessor.epoch_id)

    def _epoch_frontier(self, epoch_id: int) -> int:
        """Deepest BMT level any live persist of the epoch still occupies."""
        deepest = -1
        for entry in self.ptt.entries_of_epoch(epoch_id):
            if not entry.valid:
                continue
            if entry.persist_id in self._waiting_delegation:
                # A coalesced persist waiting for its delegate performs
                # no further updates; it does not occupy a level.
                continue
            deepest = max(deepest, entry.level)
        return deepest

    def _begin_node_update(self, entry: PTTEntry) -> None:
        latency = self.config.mac_latency
        if self.metadata is not None:
            hit = self.metadata.access_bmt_node(entry.pending_node, is_write=True)
            if not hit:
                latency += self.config.bmt_miss_latency
                self.bmt_cache_misses += 1
        self._busy_until[entry.persist_id] = self.now + latency
        self._pending_completions.push(self.now + latency)
        if self.telemetry is not None:
            self.telemetry.emit(
                EventKind.BMT_LEVEL_ENTER,
                self.now,
                level_track(entry.level),
                ident=entry.persist_id,
                args={"node": entry.pending_node},
            )

    # -- phase 3: retirement --------------------------------------------

    def _retire(self) -> None:
        # Entries stuck waiting on a delegate cannot retire out of order;
        # they complete via _finish_persist, so plain FIFO retire works.
        for retired in self.ptt.retire_ready_heads():
            self._started.discard(retired.persist_id)
        if self.config.scheme.uses_epochs:
            self._close_finished_epochs()

    def _close_finished_epochs(self) -> None:
        while True:
            oldest = self.ett.oldest()
            if oldest is None:
                return
            live = [
                e
                for e in self.ptt.entries_of_epoch(oldest.epoch_id)
                if not e.persisted
            ]
            still_resident = self.ptt.entries_of_epoch(oldest.epoch_id)
            if live or still_resident:
                # Epoch persists must also drain from the PTT before the
                # ETT slot frees (Start/End point into the PTT).
                return
            self.ett.close_epoch(oldest.epoch_id)
            tel = self.telemetry
            if tel is not None:
                tel.emit(
                    EventKind.EPOCH_DRAIN, self.now, "epochs", ident=oldest.epoch_id
                )
                tel.sample(
                    "ett.utilization", self.now, len(self.ett) / self.ett.capacity
                )
            # update the ETT's record of the epoch frontier for heirs
            for entry in self.ett:
                entry.level = self._epoch_frontier(entry.epoch_id)
