"""Epoch Tracking Table (ETT) — paper §V-B, Fig. 7.

Under epoch persistency the PTT alone cannot express the two-tier
ordering policy (unordered within an epoch, ordered across epochs), so
the design splits into an ETT that tracks *epochs* and a PTT that tracks
*persists*.  The ETT is a circular buffer whose entry fields follow the
figure:

* ``EID`` — epoch ID;
* ``V`` — valid;
* ``R`` — ready: every persist of the epoch has completed its current
  node updates;
* ``Lvl`` — the deepest BMT level any of the epoch's persists is still
  updating (the scheduler authorizes an epoch to update only levels at
  or below its predecessor's frontier, so no BMT level is ever updated
  by two epochs at once — avoiding cross-epoch WAW hazards);
* ``Start``/``End`` — the epoch's slice of PTT indices.

Two registers accompany the table: ``GEC`` (global epoch counter, next
epoch ID to allocate) and ``PEC`` (pending epoch counter, oldest active
epoch).  The default configuration is 2 entries (48 bits): two epochs in
flight, ordered against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

ENTRY_BITS = 24
"""Paper-reported ETT entry width: EID(6) + V/R(2) + Lvl(4) + Start/End(12)."""


@dataclass
class ETTEntry:
    """One active epoch's tracking state."""

    epoch_id: int
    valid: bool = True
    ready: bool = False
    level: int = 0
    start: int = 0
    end: int = 0

    @property
    def lvl(self) -> int:
        """Paper-style level number (root = 1)."""
        return self.level + 1


class ETTFullError(RuntimeError):
    """Raised when opening more concurrent epochs than the ETT can track."""


class EpochTrackingTable:
    """A bounded circular buffer of active epochs."""

    def __init__(self, capacity: int = 2) -> None:
        if capacity <= 0:
            raise ValueError("ETT capacity must be positive")
        self.capacity = capacity
        self._entries: List[ETTEntry] = []
        self.gec = 0  # next epoch ID to allocate
        self.pec = 0  # oldest active epoch

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ETTEntry]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def open_epoch(self, deepest_level: int) -> ETTEntry:
        """Begin tracking a new epoch.

        Args:
            deepest_level: Leaf level of the BMT (the epoch starts with
                its persists at the leaves).

        Raises:
            ETTFullError: Too many concurrent epochs (core must stall at
                the persist barrier until the oldest epoch completes).
        """
        if self.full:
            raise ETTFullError(f"ETT full ({self.capacity} epochs in flight)")
        entry = ETTEntry(epoch_id=self.gec, level=deepest_level)
        self.gec += 1
        self._entries.append(entry)
        return entry

    def oldest(self) -> Optional[ETTEntry]:
        return self._entries[0] if self._entries else None

    def find(self, epoch_id: int) -> Optional[ETTEntry]:
        for entry in self._entries:
            if entry.epoch_id == epoch_id:
                return entry
        return None

    def predecessor(self, epoch_id: int) -> Optional[ETTEntry]:
        """The next-older active epoch, or ``None`` if this is the oldest."""
        previous: Optional[ETTEntry] = None
        for entry in self._entries:
            if entry.epoch_id == epoch_id:
                return previous
            previous = entry
        raise KeyError(f"epoch {epoch_id} not active")

    def level_authorized(self, epoch_id: int, level: int) -> bool:
        """Whether ``epoch_id`` may update BMT level ``level``.

        Each BMT level may be updated by persists of a single epoch: an
        epoch may only work strictly below (deeper than) the frontier of
        its predecessor.
        """
        predecessor = self.predecessor(epoch_id)
        if predecessor is None:
            return True
        return level > predecessor.level

    def close_epoch(self, epoch_id: int) -> ETTEntry:
        """Retire a completed epoch.  Must be the oldest active one."""
        oldest = self.oldest()
        if oldest is None or oldest.epoch_id != epoch_id:
            raise RuntimeError("epochs must retire in order")
        self.pec = epoch_id + 1
        return self._entries.pop(0)

    def storage_bits(self) -> int:
        """Hardware storage cost in bits (paper: 48 bits for 2 entries)."""
        return self.capacity * ENTRY_BITS
