"""A small crash-safe KV store layered on the functional secure memory.

This is the application half of the Silhouette-style campaign: instead
of crashing synthetic persist streams, we crash a *program* whose
recovery procedure has meaning, and ask whether the recovered store is
a state the program could legally be in.

Two durability idioms are implemented, both as pure lowering functions
from an operation list to an :class:`AppTrace` of block-level records:

* **snapshot** — snapshot + atomic-rename: each operation writes the
  full post-op table into the inactive of two alternating regions, then
  flips a pointer block (the "rename").  The pointer flip is the single
  commit point; a crash anywhere before it recovers the previous
  snapshot.
* **undolog** — in-place slots guarded by an undo log: each operation
  appends undo records (the old slot contents) and a log head, fsyncs,
  writes the slots in place, and finally truncates the log (the commit
  marker).  Recovery rolls incomplete operations back from the log.

The lowering is *deterministic and memory-free*: the same idiom +
workload always produce the same records, so the crash-plan generator
(:mod:`repro.campaign.plans`) can reason about persist roles without
running the crypto pipeline.

Block layout (inside the campaign memory's 4096-block space):

====================  =====  =========================================
constant              block  role
====================  =====  =========================================
``TABLE_A_BASE``          0  region A slots (snapshot) / table (undolog)
``TABLE_B_BASE``        256  region B slots (snapshot only)
``POINTER_BLOCK``       512  snapshot pointer block
``LOG_HEAD_BLOCK``      512  undo-log head (idioms never coexist)
``LOG_BASE``            576  undo-log records
====================  =====  =========================================

Each key owns ``value_blocks`` consecutive slot blocks at
``base + key * value_blocks``; values are chunked 48 bytes per slot
(64-byte block minus the slot header), so multi-block values exercise
torn-write crash points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.primitives import BLOCK_SIZE

IDIOM_SNAPSHOT = "snapshot"
IDIOM_UNDOLOG = "undolog"
IDIOMS = (IDIOM_SNAPSHOT, IDIOM_UNDOLOG)

TABLE_A_BASE = 0
TABLE_B_BASE = 256
POINTER_BLOCK = 512
LOG_HEAD_BLOCK = 512
LOG_BASE = 576

CHUNK_BYTES = 48
"""Value payload bytes per slot block (64 B minus the 16 B header pad)."""

_MAGIC_SLOT = 0xA5
_MAGIC_PTR = 0xB7
_MAGIC_HEAD = 0xC3
_MAGIC_REC = 0xD9

# Persist roles, the vocabulary of the plan pruner's equivalence
# classes.  Commit roles move the recovered state; the rest are
# preparation whose partial durability recovery must tolerate.
ROLE_SNAP_SLOT = "snap_slot"
ROLE_SNAP_PTR = "snap_ptr"
ROLE_LOG_REC = "log_rec"
ROLE_LOG_HEAD = "log_head"
ROLE_SLOT_WRITE = "slot_write"
ROLE_LOG_COMMIT = "log_commit"
ROLE_GET = "get"

COMMIT_ROLES = frozenset({ROLE_SNAP_PTR, ROLE_LOG_HEAD, ROLE_LOG_COMMIT})
"""Roles whose durability changes what recovery returns."""


# ----------------------------------------------------------------------
# block encodings
# ----------------------------------------------------------------------


def _pad(raw: bytes) -> bytes:
    if len(raw) > BLOCK_SIZE:
        raise ValueError("encoded block exceeds 64 bytes")
    return raw + bytes(BLOCK_SIZE - len(raw))


def encode_slot(key: int, vidx: int, chunk: bytes) -> bytes:
    """One slot block: header (magic, key, chunk index, length) + chunk."""
    if len(chunk) > CHUNK_BYTES:
        raise ValueError("slot chunk exceeds 48 bytes")
    return _pad(bytes([_MAGIC_SLOT, key & 0xFF, vidx & 0xFF, len(chunk)]) + chunk)


def decode_slot(raw: bytes) -> Optional[Tuple[int, int, bytes]]:
    """``(key, vidx, chunk)`` or ``None`` for empty/foreign blocks."""
    if len(raw) != BLOCK_SIZE or raw[0] != _MAGIC_SLOT:
        return None
    length = raw[3]
    if length > CHUNK_BYTES:
        return None
    return raw[1], raw[2], raw[4 : 4 + length]


def encode_pointer(region: int, generation: int) -> bytes:
    """The snapshot pointer block: which region is live."""
    return _pad(
        bytes([_MAGIC_PTR, region & 0x1, generation & 0xFF, (generation >> 8) & 0xFF])
    )


def decode_pointer(raw: bytes) -> Optional[Tuple[int, int]]:
    if len(raw) != BLOCK_SIZE or raw[0] != _MAGIC_PTR:
        return None
    return raw[1], raw[2] | (raw[3] << 8)


def encode_log_head(generation: int, count: int) -> bytes:
    """Undo-log head: generation + live record count (0 == committed)."""
    return _pad(
        bytes([_MAGIC_HEAD, generation & 0xFF, (generation >> 8) & 0xFF, count & 0xFF])
    )


def decode_log_head(raw: bytes) -> Optional[Tuple[int, int]]:
    if len(raw) != BLOCK_SIZE or raw[0] != _MAGIC_HEAD:
        return None
    return raw[1] | (raw[2] << 8), raw[3]


def encode_undo_record(generation: int, slot_block: int, old_raw: bytes) -> bytes:
    """One undo record: enough to restore a slot block exactly.

    The old slot content is stored decomposed (was-empty flag + chunk)
    rather than verbatim — a 64 B block cannot hold another full block —
    and re-encoded at rollback from the layout-derived (key, vidx).
    """
    decoded = decode_slot(old_raw)
    if decoded is None:
        flag, chunk = 1, b""
    else:
        flag, chunk = 0, decoded[2]
    header = bytes(
        [
            _MAGIC_REC,
            generation & 0xFF,
            (generation >> 8) & 0xFF,
            slot_block & 0xFF,
            (slot_block >> 8) & 0xFF,
            flag,
            len(chunk),
        ]
    )
    return _pad(header + chunk)


def decode_undo_record(raw: bytes) -> Optional[Tuple[int, int, bool, bytes]]:
    """``(generation, slot_block, was_empty, chunk)`` or ``None``."""
    if len(raw) != BLOCK_SIZE or raw[0] != _MAGIC_REC:
        return None
    length = raw[6]
    if length > CHUNK_BYTES:
        return None
    generation = raw[1] | (raw[2] << 8)
    slot_block = raw[3] | (raw[4] << 8)
    return generation, slot_block, bool(raw[5]), raw[7 : 7 + length]


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AppWorkload:
    """A deterministic KV operation list plus its table shape.

    Ops:

    * ``("put", key, value)`` — value is 1..``48 * value_blocks`` bytes.
    * ``("delete", key)``
    * ``("get", key)`` — emits verified loads, no persists.
    * ``("txn", ((key, value_or_None), ...))`` — one atomic multi-key
      commit (``None`` deletes).

    ``log_fsync=False`` is the fsync-placement variant of the undo-log
    idiom: the barrier between the in-place slot writes and the commit
    marker is elided, so both land in one epoch under EP schemes.
    """

    name: str
    ops: Tuple[Tuple, ...]
    num_keys: int = 4
    value_blocks: int = 1
    log_fsync: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.num_keys <= 64:
            raise ValueError("num_keys must be in 1..64")
        if not 1 <= self.value_blocks <= 4:
            raise ValueError("value_blocks must be in 1..4")
        if self.num_keys * self.value_blocks > TABLE_B_BASE:
            raise ValueError("table does not fit a snapshot region")
        limit = CHUNK_BYTES * self.value_blocks
        for op in self.ops:
            for key, value in self.op_writes(op):
                if not 0 <= key < self.num_keys:
                    raise ValueError(f"key {key} out of range in {op!r}")
                if value is not None and not 1 <= len(value) <= limit:
                    raise ValueError(
                        f"value for key {key} must be 1..{limit} bytes"
                    )
            if op[0] == "get" and not 0 <= op[1] < self.num_keys:
                raise ValueError(f"key {op[1]} out of range in {op!r}")

    @staticmethod
    def op_writes(op: Tuple) -> Tuple[Tuple[int, Optional[bytes]], ...]:
        """The (key, value-or-None) write set of one op (empty for get)."""
        kind = op[0]
        if kind == "put":
            return ((op[1], op[2]),)
        if kind == "delete":
            return ((op[1], None),)
        if kind == "txn":
            return tuple(op[1])
        if kind == "get":
            return ()
        raise ValueError(f"unknown app op {kind!r}")

    def slot_block(self, base: int, key: int, vidx: int) -> int:
        return base + key * self.value_blocks + vidx

    def chunks(self, value: bytes) -> List[bytes]:
        """Split a value into one chunk per slot block (padded with b'')."""
        return [
            value[i * CHUNK_BYTES : (i + 1) * CHUNK_BYTES]
            for i in range(self.value_blocks)
        ]


def apply_op(state: Dict[int, bytes], op: Tuple) -> Dict[int, bytes]:
    """The abstract KV semantics of one op (pure)."""
    new = dict(state)
    for key, value in AppWorkload.op_writes(op):
        if value is None:
            new.pop(key, None)
        else:
            new[key] = bytes(value)
    return new


# ----------------------------------------------------------------------
# lowering: ops -> block-level records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AppRecord:
    """One lowered memory action of the KV store.

    ``kind`` is ``"store"``, ``"load"``, or ``"barrier"``; ``app_index``
    is the operation the action belongs to; ``role`` names the action's
    job in the idiom's protocol (the pruner's vocabulary).
    """

    kind: str
    block: int
    data: bytes
    app_index: int
    role: str


@dataclass(frozen=True)
class AppTrace:
    """A lowered workload: records plus the abstract state timeline.

    ``states[0]`` is the empty store; ``states[i + 1]`` is the state
    after op ``i`` — the pre-op/post-op frames of the differential
    validator.
    """

    idiom: str
    workload: AppWorkload
    records: Tuple[AppRecord, ...]
    states: Tuple[Dict[int, bytes], ...]

    @property
    def op_count(self) -> int:
        return len(self.states) - 1

    @property
    def store_count(self) -> int:
        return sum(1 for r in self.records if r.kind == "store")


def _encode_table(
    workload: AppWorkload, base: int, state: Dict[int, bytes]
) -> Dict[int, bytes]:
    """Slot-block contents encoding ``state`` at ``base`` (absent keys
    have no entry: their blocks must read as zero)."""
    image: Dict[int, bytes] = {}
    for key in sorted(state):
        for vidx, chunk in enumerate(workload.chunks(state[key])):
            image[workload.slot_block(base, key, vidx)] = encode_slot(
                key, vidx, chunk
            )
    return image


def _lower_snapshot(workload: AppWorkload) -> AppTrace:
    records: List[AppRecord] = []
    states: List[Dict[int, bytes]] = [{}]
    regions = {0: TABLE_A_BASE, 1: TABLE_B_BASE}
    region_content: Dict[int, Dict[int, bytes]] = {0: {}, 1: {}}
    active: Optional[int] = None
    generation = 0
    for index, op in enumerate(workload.ops):
        state = states[-1]
        if op[0] == "get":
            for vidx in range(workload.value_blocks):
                block = workload.slot_block(
                    regions[active] if active is not None else TABLE_A_BASE,
                    op[1],
                    vidx,
                )
                records.append(AppRecord("load", block, b"", index, ROLE_GET))
            states.append(dict(state))
            continue
        new_state = apply_op(state, op)
        target = 0 if active is None else 1 - active
        desired = _encode_table(workload, regions[target], new_state)
        current = region_content[target]
        # Write the new snapshot: changed slots plus zeroing of stale
        # slots left over from two operations ago.
        for block in sorted(set(desired) | set(current)):
            want = desired.get(block, bytes(BLOCK_SIZE))
            if current.get(block, bytes(BLOCK_SIZE)) != want:
                records.append(
                    AppRecord("store", block, want, index, ROLE_SNAP_SLOT)
                )
        records.append(AppRecord("barrier", 0, b"", index, ROLE_SNAP_SLOT))
        # The atomic rename: flip the pointer, then fsync it.
        generation += 1
        records.append(
            AppRecord(
                "store",
                POINTER_BLOCK,
                encode_pointer(target, generation),
                index,
                ROLE_SNAP_PTR,
            )
        )
        records.append(AppRecord("barrier", 0, b"", index, ROLE_SNAP_PTR))
        region_content[target] = desired
        active = target
        states.append(new_state)
    return AppTrace(IDIOM_SNAPSHOT, workload, tuple(records), tuple(states))


def _lower_undolog(workload: AppWorkload) -> AppTrace:
    records: List[AppRecord] = []
    states: List[Dict[int, bytes]] = [{}]
    table: Dict[int, bytes] = {}
    generation = 0
    for index, op in enumerate(workload.ops):
        state = states[-1]
        if op[0] == "get":
            for vidx in range(workload.value_blocks):
                block = workload.slot_block(TABLE_A_BASE, op[1], vidx)
                records.append(AppRecord("load", block, b"", index, ROLE_GET))
            states.append(dict(state))
            continue
        new_state = apply_op(state, op)
        desired = _encode_table(workload, TABLE_A_BASE, new_state)
        updates: List[Tuple[int, bytes]] = []
        for key, value in AppWorkload.op_writes(op):
            for vidx in range(workload.value_blocks):
                block = workload.slot_block(TABLE_A_BASE, key, vidx)
                want = desired.get(block, bytes(BLOCK_SIZE))
                if table.get(block, bytes(BLOCK_SIZE)) != want:
                    updates.append((block, want))
        if not updates:
            states.append(new_state)
            continue
        generation += 1
        # Publish the undo log: old contents + head, then fsync.
        for j, (block, _) in enumerate(updates):
            old = table.get(block, bytes(BLOCK_SIZE))
            records.append(
                AppRecord(
                    "store",
                    LOG_BASE + j,
                    encode_undo_record(generation, block, old),
                    index,
                    ROLE_LOG_REC,
                )
            )
        records.append(
            AppRecord(
                "store",
                LOG_HEAD_BLOCK,
                encode_log_head(generation, len(updates)),
                index,
                ROLE_LOG_HEAD,
            )
        )
        records.append(AppRecord("barrier", 0, b"", index, ROLE_LOG_HEAD))
        # In-place slot writes, guarded by the published log.
        for block, want in updates:
            records.append(
                AppRecord("store", block, want, index, ROLE_SLOT_WRITE)
            )
            table[block] = want
        if workload.log_fsync:
            records.append(
                AppRecord("barrier", 0, b"", index, ROLE_SLOT_WRITE)
            )
        # Commit: truncate the log (count=0) and fsync.
        records.append(
            AppRecord(
                "store",
                LOG_HEAD_BLOCK,
                encode_log_head(generation, 0),
                index,
                ROLE_LOG_COMMIT,
            )
        )
        records.append(AppRecord("barrier", 0, b"", index, ROLE_LOG_COMMIT))
        states.append(new_state)
    return AppTrace(IDIOM_UNDOLOG, workload, tuple(records), tuple(states))


def lower(idiom: str, workload: AppWorkload) -> AppTrace:
    """Lower a workload under one durability idiom."""
    if idiom == IDIOM_SNAPSHOT:
        return _lower_snapshot(workload)
    if idiom == IDIOM_UNDOLOG:
        return _lower_undolog(workload)
    raise ValueError(f"unknown idiom {idiom!r} (supported: {', '.join(IDIOMS)})")


def replay_app(mem, trace: AppTrace) -> None:
    """Apply a lowered app trace to a functional secure memory."""
    for record in trace.records:
        if record.kind == "store":
            mem.store(record.block * BLOCK_SIZE, record.data)
        elif record.kind == "load":
            mem.load(record.block * BLOCK_SIZE)
        elif record.kind == "barrier":
            mem.barrier()
        else:  # pragma: no cover - lowering emits only the three kinds
            raise ValueError(f"unknown record kind {record.kind!r}")


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------


def _decode_table(
    workload: AppWorkload, base: int, read: Callable[[int], bytes]
) -> Dict[int, bytes]:
    state: Dict[int, bytes] = {}
    for key in range(workload.num_keys):
        first = decode_slot(read(workload.slot_block(base, key, 0)))
        if first is None or first[0] != key:
            continue
        value = b""
        for vidx in range(workload.value_blocks):
            decoded = decode_slot(read(workload.slot_block(base, key, vidx)))
            if decoded is not None:
                value += decoded[2]
        state[key] = value
    return state


def recover_app(
    idiom: str, workload: AppWorkload, read: Callable[[int], bytes]
) -> Dict[int, bytes]:
    """Run the idiom's recovery procedure over verified block reads.

    ``read`` is expected to verify integrity (MAC + BMT) and raise on a
    rejected block — the campaign passes the recovered memory's
    :meth:`~repro.system.secure_memory.FunctionalSecureMemory.load`.
    """
    if idiom == IDIOM_SNAPSHOT:
        pointer = decode_pointer(read(POINTER_BLOCK))
        if pointer is None:
            return {}
        base = TABLE_A_BASE if pointer[0] == 0 else TABLE_B_BASE
        return _decode_table(workload, base, read)
    if idiom == IDIOM_UNDOLOG:
        head = decode_log_head(read(LOG_HEAD_BLOCK))
        patch: Dict[int, bytes] = {}
        if head is not None and head[1] > 0:
            # An uncommitted operation: roll its slots back from the log.
            for j in range(head[1]):
                rec = decode_undo_record(read(LOG_BASE + j))
                if rec is None or rec[0] != head[0]:
                    continue
                _, slot, was_empty, chunk = rec
                if was_empty:
                    patch[slot] = bytes(BLOCK_SIZE)
                else:
                    key = (slot - TABLE_A_BASE) // workload.value_blocks
                    vidx = (slot - TABLE_A_BASE) % workload.value_blocks
                    patch[slot] = encode_slot(key, vidx, chunk)

        def patched(block: int) -> bytes:
            if block in patch:
                return patch[block]
            return read(block)

        return _decode_table(workload, TABLE_A_BASE, patched)
    raise ValueError(f"unknown idiom {idiom!r} (supported: {', '.join(IDIOMS)})")
