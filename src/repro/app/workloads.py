"""Canonical KV workloads and the app-trace -> MemoryTrace bridge.

The workload roster spans the scenario family the app campaign opens:
transaction sizes (``txn``), fsync placement (``deferred_fsync``), and
torn multi-block values (``torn``).  ``smoke`` is deliberately tiny —
it is the exhaustive cross-check trace, where every one of the
``1 + 16 * n`` crash cells is actually run.

:func:`app_memory_trace` lowers an idiom x workload pair into the
columnar :class:`~repro.workloads.trace.MemoryTrace` the timing
simulator consumes, so the three timing engines can be differentially
tested on trace shapes (log runs, pointer flips, barrier-dense commits)
the synthetic generators never emit.
"""

from __future__ import annotations

from typing import Dict

from repro.app.kvstore import AppWorkload, lower
from repro.crypto.primitives import BLOCK_SIZE
from repro.workloads.trace import KIND_LOAD, KIND_SFENCE, KIND_STORE, MemoryTrace

APP_WORKLOADS: Dict[str, AppWorkload] = {
    # Tiny: 3 ops, single-block values — the exhaustive cross-check trace.
    "smoke": AppWorkload(
        "smoke",
        ops=(
            ("put", 0, b"alpha"),
            ("put", 1, b"bee"),
            ("delete", 0),
        ),
        num_keys=2,
    ),
    # Mixed single-key traffic with reads and an overwrite.
    "basic": AppWorkload(
        "basic",
        ops=(
            ("put", 0, b"one"),
            ("put", 1, b"two"),
            ("get", 0),
            ("put", 0, b"uno"),
            ("delete", 1),
            ("put", 2, b"three"),
        ),
        num_keys=3,
    ),
    # Multi-key atomic commits of growing size.
    "txn": AppWorkload(
        "txn",
        ops=(
            ("put", 0, b"init"),
            ("txn", ((1, b"left"), (2, b"right"), (3, b"up"))),
            ("txn", ((0, None), (1, b"left2"))),
        ),
        num_keys=4,
    ),
    # Two-block values: crash points inside a torn multi-block write.
    "torn": AppWorkload(
        "torn",
        ops=(
            ("put", 0, b"x" * 60),
            ("put", 1, b"y" * 90),
            ("put", 0, b"z" * 50),
        ),
        num_keys=2,
        value_blocks=2,
    ),
    # Fsync placement: slot writes and the commit marker share an epoch.
    "deferred_fsync": AppWorkload(
        "deferred_fsync",
        ops=(
            ("put", 0, b"pre"),
            ("txn", ((0, b"post"), (1, b"new"))),
            ("delete", 0),
        ),
        num_keys=2,
        log_fsync=False,
    ),
}

CROSSCHECK_WORKLOAD = "smoke"
"""The workload small enough to run its full exhaustive crash space."""


def resolve_workload(workload) -> AppWorkload:
    """Accept either a roster name or an :class:`AppWorkload` object."""
    if isinstance(workload, AppWorkload):
        return workload
    try:
        return APP_WORKLOADS[workload]
    except KeyError:
        raise ValueError(
            f"unknown app workload {workload!r} "
            f"(known: {', '.join(sorted(APP_WORKLOADS))})"
        ) from None


def app_memory_trace(idiom: str, workload, reps: int = 1) -> MemoryTrace:
    """Lower an idiom x workload pair into a timing-simulator trace.

    Args:
        idiom: ``"snapshot"`` or ``"undolog"``.
        workload: Roster name or :class:`AppWorkload`.
        reps: Repeat the lowered record sequence to lengthen the trace
            (the abstract store restarts each rep; the *trace shape* is
            what the differential harness cares about).
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    wl = resolve_workload(workload)
    trace = MemoryTrace(name=f"app-{idiom}-{wl.name}")
    index = 0
    for _ in range(reps):
        for record in lower(idiom, wl).records:
            # A deterministic, varied compute gap between memory ops.
            gap = 1 + (index % 7)
            index += 1
            if record.kind == "store":
                trace.append_op(KIND_STORE, record.block * BLOCK_SIZE, gap, 1)
            elif record.kind == "load":
                trace.append_op(KIND_LOAD, record.block * BLOCK_SIZE, gap, 1)
            else:
                trace.append_op(KIND_SFENCE, 0, gap, 1)
    return trace
