"""Crash-safe KV store on the functional secure persistent memory.

The application layer of the Silhouette-style crash campaign: two
durability idioms (snapshot + atomic-rename, undo log) lowered to the
block-level memory ops the simulator understands, plus the recovery
procedures the campaign validates differentially.

See :mod:`repro.app.kvstore` for the idioms and
:mod:`repro.app.workloads` for the canonical workload roster.
"""

from repro.app.kvstore import (
    COMMIT_ROLES,
    IDIOM_SNAPSHOT,
    IDIOM_UNDOLOG,
    IDIOMS,
    AppRecord,
    AppTrace,
    AppWorkload,
    apply_op,
    lower,
    recover_app,
    replay_app,
)
from repro.app.workloads import (
    APP_WORKLOADS,
    CROSSCHECK_WORKLOAD,
    app_memory_trace,
    resolve_workload,
)

__all__ = [
    "APP_WORKLOADS",
    "AppRecord",
    "AppTrace",
    "AppWorkload",
    "COMMIT_ROLES",
    "CROSSCHECK_WORKLOAD",
    "IDIOMS",
    "IDIOM_SNAPSHOT",
    "IDIOM_UNDOLOG",
    "app_memory_trace",
    "apply_op",
    "lower",
    "recover_app",
    "replay_app",
    "resolve_workload",
]
