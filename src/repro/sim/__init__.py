"""Discrete-event simulation kernel used by the timing models.

The kernel is deliberately small: a cycle clock, an event queue, and a
statistics registry.  The heavy lifting (caches, BMT update engines, the
write pending queue) lives in the other subpackages and is driven either
event-by-event through :class:`~repro.sim.engine.Engine` or analytically
through the scoreboard models in :mod:`repro.core.schedulers`.
"""

from repro.sim.engine import Engine, Event
from repro.sim.stats import Counter, Histogram, StatsRegistry

__all__ = ["Engine", "Event", "Counter", "Histogram", "StatsRegistry"]
