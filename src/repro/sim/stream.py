"""Streaming batched execution: bounded-RSS runs over chunked traces.

``run_batched_stream`` is the batched engine's incremental twin: instead
of materializing the whole functional prepass, metadata script and tick
table up front (each O(trace) in memory), it interleaves the three
stages chunk by chunk:

1. feed one packed column chunk (a :class:`~repro.workloads.trace
   .TraceChunk` from a :class:`~repro.workloads.trace.TraceReader` or an
   in-memory trace) to the chunk-resumable
   :class:`~repro.sim.batched.FunctionalPrepass`;
2. feed the chunk's eventful ops to the chunk-resumable
   :class:`~repro.sim.batched.MetadataReplay` and push the scripted
   outcomes onto deques the shadowed metadata accessors pop from;
3. dispatch the chunk's events through the shared timed handlers,
   bulk-jumping the tick clock exactly as ``run_batched`` does.

Peak memory is O(chunk) plus the simulator's own bounded state: the
prepass/metadata state is bounded by the cache geometry, the script
deques drain within the chunk that filled them (the handlers consume
outcomes for exactly the events that produced them), closed epochs are
counted but not retained, and no prepass/script memo is written (there
is no whole trace to key it on).  Results are bit-identical to
``run_batched`` on the materialized trace: the event stream, script
stream and per-event tick values are equal element for element, and the
timed handlers are the same code either way.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

import numpy as np

from repro.sim.batched import (
    FunctionalPrepass,
    MetadataReplay,
    _EV_LOAD,
    _EV_STORE,
    _cache_dims,
    _record_epoch,
    _ScriptedCombiner,
)
from repro.workloads.trace import KIND_SFENCE


def prepass_class_of(scheme, config) -> Tuple[str, Optional[int]]:
    """The (persistency class, epoch size) pair shaping the prepass."""
    if scheme.uses_epochs:
        return "ep", config.epoch_size
    if scheme.write_through:
        return "wt", None
    return "wb", None


def make_prepass(sim) -> FunctionalPrepass:
    """A fresh chunk-resumable prepass matching ``sim``'s config."""
    cfg = sim.config
    cls, esize = prepass_class_of(sim.scheme, cfg)
    return FunctionalPrepass(
        cls,
        esize,
        cfg.protect_stack,
        _cache_dims(cfg.l1_bytes, cfg.l1_assoc),
        _cache_dims(cfg.l2_bytes, cfg.l2_assoc),
        _cache_dims(cfg.l3_bytes, cfg.l3_assoc),
    )


def make_metadata_replay(sim, boundary: int) -> MetadataReplay:
    """A fresh chunk-resumable metadata replay matching ``sim``'s config."""
    cfg = sim.config
    return MetadataReplay(
        boundary,
        sim.scheme,
        sim.geometry,
        cfg.blocks_per_counter_block,
        cfg.mac_latency,
        cfg.nvm.read_latency,
        _cache_dims(cfg.counter_cache_bytes, cfg.metadata_assoc),
        _cache_dims(cfg.mac_cache_bytes, cfg.metadata_assoc),
        _cache_dims(cfg.bmt_cache_bytes, cfg.metadata_assoc),
    )


def chunk_ticks(chunk) -> Tuple[list, int, list]:
    """Per-op cumulative (tick, instruction) counts within one chunk.

    Returns ``(tick_list, chunk_ticks_total, instr_list)`` where the
    lists are cumulative *within* the chunk — the caller adds its
    running bases to place them on the whole-trace axis.
    """
    gaps = np.frombuffer(memoryview(chunk.gaps), dtype=np.uint32).astype(np.int64)
    kinds = np.frombuffer(memoryview(chunk.kind_codes), dtype=np.uint8)
    cum_ticks = np.cumsum(gaps + (kinds != KIND_SFENCE))
    cum_instr = np.cumsum(gaps + 1)
    return cum_ticks.tolist(), int(cum_ticks[-1]), cum_instr.tolist()


def wants_script(sim) -> bool:
    """Whether ``sim`` takes the scripted-metadata fast path.

    Same condition as ``run_batched``: live metadata caches (not
    ideal), and no instrumentation closure (telemetry ``cache_events``)
    already shadowing the access methods.
    """
    metadata = sim.metadata
    return not metadata.ideal and "access_counter" not in metadata.__dict__


class ScriptFeed:
    """Deque-fed scripted metadata accessors installed on a simulator.

    The incremental counterpart of ``run_batched``'s iterator scripting:
    outcomes arrive chunk by chunk via :meth:`extend` and the shadowed
    accessors pop them in the same order the timed handlers consume
    them, so the deques drain within each chunk.  :meth:`restore` puts
    the live machinery back; :meth:`assert_drained` is the
    consumed-exactly exhaustion check.
    """

    __slots__ = ("_sim", "_scoreboard", "_combiner", "stream", "walks", "comb")

    def __init__(self, sim) -> None:
        self._sim = sim
        self._scoreboard = sim.scoreboard
        self._combiner = sim._combiner
        self.stream: deque = deque()
        self.walks: deque = deque()
        self.comb: deque = deque()
        nxt = self.stream.popleft
        walk_next = self.walks.popleft
        scoreboard = sim.scoreboard
        metadata = sim.metadata
        metadata.access_counter = lambda block, is_write: nxt()
        metadata.access_mac = lambda block, is_write: nxt()

        def _scripted_bmt(label: int, is_write: bool) -> bool:
            return True if label == 0 else nxt()

        metadata.access_bmt_node = _scripted_bmt

        def _scripted_level_costs(path):
            costs, misses = walk_next()
            scoreboard.bmt_cache_misses += misses
            scoreboard.node_update_count += len(path)
            return costs

        scoreboard._level_costs = _scripted_level_costs
        sim._combiner = _ScriptedCombiner(self.comb.popleft)

    def extend(self, stream, walks, comb) -> None:
        self.stream.extend(stream)
        self.walks.extend(walks)
        self.comb.extend(comb)

    def restore(self) -> None:
        metadata = self._sim.metadata
        del metadata.access_counter, metadata.access_mac
        del metadata.access_bmt_node
        del self._scoreboard._level_costs
        self._sim._combiner = self._combiner

    def assert_drained(self) -> None:
        if self.stream or self.walks or self.comb:
            raise RuntimeError("batched metadata script not fully consumed")


def run_batched_stream(sim, source, warmup_fraction: float, segment_ops=None):
    """Batched-engine run over a chunk source in bounded memory.

    ``sim`` is a :class:`~repro.system.timing.TraceSimulator` with
    ``engine="batched"``; argument validation happened in
    ``run_stream``.
    """
    from repro.system.timing import _source_chunks, _source_name_len

    name, n = _source_name_len(source)
    boundary = int(n * warmup_fraction)
    pre = make_prepass(sim)

    md = None
    feed = None
    if wants_script(sim):
        md = make_metadata_replay(sim, boundary)
        feed = ScriptFeed(sim)

    epochs = sim.epochs
    window = None
    sim._in_warmup = boundary > 0
    snap_ticks = snap_instr = 0
    tick_base = instr_base = 0
    handle_writeback = sim._handle_writeback
    allocate_stall = sim._allocate_stall
    load_timed = sim._load_timed
    flush_timed = sim._flush_timed
    persist_store = sim._persist_store

    def dispatch(events, tick_list, chunk_start: int, end_ticks: int) -> None:
        nonlocal window
        for ev in events:
            op_idx = ev[0]
            if window is None and op_idx >= boundary:
                sim._ticks = snap_ticks
                sim._in_warmup = False
                window = sim._snapshot(snap_instr)
            local = op_idx - chunk_start
            sim._ticks = tick_list[local] if local < len(tick_list) else end_ticks
            tag = ev[1]
            if tag == _EV_STORE:
                for victim in ev[3]:
                    handle_writeback(victim)
                if ev[4]:
                    allocate_stall()
                displaced = ev[5]
                if displaced is not None and op_idx >= boundary:
                    handle_writeback(displaced)
                flush = ev[6]
                if flush is not None:
                    flush_timed(flush)
                    _record_epoch(epochs, flush, ev[7])
                elif ev[7]:
                    persist_store(ev[2])
            elif tag == _EV_LOAD:
                load_timed(ev[2], ev[3], ev[4])
            else:  # _EV_FLUSH (sfence boundary or end-of-trace drain)
                flush_timed(ev[6])
                _record_epoch(epochs, ev[6], ev[7])

    try:
        for chunk in _source_chunks(source, segment_ops):
            if not len(chunk):
                continue
            start = chunk.start
            tick_list, chunk_total, instr_list = chunk_ticks(chunk)
            if start <= boundary - 1 < start + len(chunk):
                snap_ticks = tick_base + tick_list[boundary - 1 - start]
                snap_instr = instr_base + instr_list[boundary - 1 - start]
            tick_list = [tick_base + t for t in tick_list]
            events = pre.feed(chunk.kind_codes, chunk.addresses, chunk.persistent_flags)
            tick_base += chunk_total
            instr_base += instr_list[-1]
            if events:
                if md is not None:
                    md.feed(events)
                    feed.extend(*md.take())
                dispatch(events, tick_list, start, tick_base)
        tail = pre.finish()
        if tail:
            if md is not None:
                md.feed(tail)
                feed.extend(*md.take())
            dispatch(tail, [], n, tick_base)
    finally:
        if feed is not None:
            feed.restore()
    if pre.next_index != n:
        raise RuntimeError(
            f"chunk source yielded {pre.next_index} ops; header promised {n}"
        )
    if feed is not None:
        feed.assert_drained()
    if window is None:
        sim._ticks = snap_ticks
        sim._in_warmup = False
        window = sim._snapshot(snap_instr)
    sim._ticks = tick_base

    counter = sim.stats.counter
    cc = pre.counters
    for cname, off in (("l1", 0), ("l2", 4), ("l3", 8)):
        counter(f"{cname}.hits").value += cc[off]
        counter(f"{cname}.misses").value += cc[off + 1]
        counter(f"{cname}.evictions").value += cc[off + 2]
        counter(f"{cname}.dirty_evictions").value += cc[off + 3]
    if md is not None:
        mc = md.counts
        for cname, off in (("ctr", 0), ("mac", 4), ("bmt", 8)):
            counter(f"{cname}.hits").value += mc[off]
            counter(f"{cname}.misses").value += mc[off + 1]
            counter(f"{cname}.evictions").value += mc[off + 2]
            counter(f"{cname}.dirty_evictions").value += mc[off + 3]

    return sim._make_result(name, window, instr_base)
