"""Array-native batched execution engine (``SystemConfig.engine="batched"``).

The scalar engines walk a trace one op at a time, paying a Python-level
dispatch for every op even though the overwhelming majority of ops are
*silent*: they hit in the L1, touch no queue, no scoreboard, and no
metadata cache — their only effect on the simulation is advancing the
core clock and the cache-replacement state.  The batched engine
exploits that:

1. **Functional prepass** (per trace × cache/persistency shape,
   memoized on the trace): replay only the *functional* state — the
   L1/L2/L3 replacement dictionaries, the dirty-residency window, and
   the epoch dirty sets — in one tight loop with no timing, no
   telemetry, and no per-op object allocation.  The prepass partitions
   the trace into *independence runs*: maximal spans of silent ops
   separated by *eventful* ops (NVM fills, write-backs, WPQ persists,
   epoch flushes) whose cross-op hazards (2SP stalls, coalescing
   delegation, WPQ pressure) need the full scoreboard machinery.

2. **Array kernels** resolve everything the silent spans contribute:
   cumulative tick and instruction counts come from two ``numpy``
   cumsums over the packed ``PLPTRACE`` columns, so the clock can jump
   straight from one eventful op to the next.

3. **Scalar fallback per eventful op**: each eventful op is dispatched
   through the *same* timed handlers the skip-ahead scalar loop uses
   (``_load_timed`` / ``_persist_store`` / ``_flush_timed`` /
   ``_handle_writeback`` on :class:`~repro.system.timing.TraceSimulator`),
   against the same live NVM / WPQ / scoreboard / metadata-cache state.

Bit-identity with the scalar engines is by construction, not by luck:
the decomposed tick clock (``timing.TraceSimulator._clock``) makes the
cycle at any op a pure function of the integer tick count since the
last stall, so bulk-jumping over a silent span reproduces the exact
float the scalar loop would have accumulated — including for the
non-dyadic CPIs in the SPEC profile table — and the timed handlers are
shared code, not a reimplementation.  The differential harness
(``tests/test_engine_differential.py``) asserts batched ≡ skip_ahead ≡
stepped on ``SimResult``s *and* telemetry streams for all schemes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.coalescing import CoalescingUnit
from repro.core.schemes import UpdateScheme
from repro.persistency.epochs import Epoch
from repro.workloads.trace import KIND_SFENCE, MemoryTrace

_EV_LOAD = 0
_EV_STORE = 1
_EV_FLUSH = 2

_WINDOW_CAPACITY = 512


class PrepassResult:
    """Memoized functional-prepass outcome for one trace × config shape.

    ``events`` is the independence-run partition: one entry per
    *eventful* op, in trace order — everything between two consecutive
    entries is a silent span the pass-2 clock jumps over.  Each event is
    ``(op_idx, tag, block, writebacks, memory_access, window_victim,
    flush_blocks, extra)`` where ``extra`` is the closing epoch's store
    count for flush events and the persist flag for write-through
    stores.  ``cache_counts`` carries the L1/L2/L3 hit/miss/eviction
    totals the prepass absorbed (merged into the stats registry after
    pass 2).
    """

    __slots__ = ("events", "cache_counts")

    def __init__(self, events: List[tuple], cache_counts: Tuple[int, ...]) -> None:
        self.events = events
        self.cache_counts = cache_counts


def _cache_dims(size_bytes: int, assoc: int) -> Tuple[int, Optional[int], int]:
    """Replicate :class:`repro.mem.cache.Cache` set geometry."""
    num_lines = size_bytes // 64
    num_sets = max(1, num_lines // assoc)
    mask = num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
    return num_sets, mask, assoc


def _blocks_of(trace: MemoryTrace) -> List[int]:
    if not len(trace):
        return []
    addresses = np.frombuffer(memoryview(trace.addresses), dtype=np.uint64)
    return (addresses >> np.uint64(6)).tolist()


def _blocks_of_column(addresses) -> List[int]:
    if not len(addresses):
        return []
    blocks = np.frombuffer(memoryview(addresses), dtype=np.uint64)
    return (blocks >> np.uint64(6)).tolist()


class FunctionalPrepass:
    """Chunk-resumable functional replay of the replacement state.

    The stateful core of the prepass: the L1/L2/L3 replacement
    dictionaries, the dirty-residency window, the epoch dirty sets and
    the hit/miss counters all live on the instance, and :meth:`feed`
    advances them over one packed column chunk at a time, returning the
    eventful-op partition for just that chunk.  Feeding a whole trace in
    one call reproduces ``_functional_prepass`` exactly (the wrapper
    below does just that); feeding segment-sized chunks is how the
    streaming and sharded paths bound their memory.  The state is plain
    dicts/lists, so :meth:`export_state`/:meth:`load_state` can hand a
    shard's end state to the worker simulating the next shard.
    """

    __slots__ = (
        "cls",
        "epoch_size",
        "protect_stack",
        "_dims1",
        "_dims2",
        "_dims3",
        "_l1",
        "_l2",
        "_l3",
        "_window",
        "_ep_count",
        "_ep_dirty",
        "_l1c",
        "_c",
        "_next_idx",
    )

    def __init__(
        self,
        cls: str,
        epoch_size: Optional[int],
        protect_stack: bool,
        dims1: Tuple[int, Optional[int], int],
        dims2: Tuple[int, Optional[int], int],
        dims3: Tuple[int, Optional[int], int],
    ) -> None:
        self.cls = cls
        self.epoch_size = epoch_size
        self.protect_stack = protect_stack
        self._dims1 = dims1
        self._dims2 = dims2
        self._dims3 = dims3
        self._l1 = [{} for _ in range(dims1[0])]
        self._l2 = [{} for _ in range(dims2[0])]
        self._l3 = [{} for _ in range(dims3[0])]
        # Dirty-residency window, primed exactly like the simulator's.
        self._window = {0x100000 + i * 9: None for i in range(_WINDOW_CAPACITY)}
        self._ep_count = 0
        self._ep_dirty: dict = {}
        self._l1c = [0, 0, 0, 0]  # l1 hit/miss/eviction/dirty-eviction
        self._c = [0, 0, 0, 0, 0, 0, 0, 0]  # l2 then l3, same four each
        self._next_idx = 0

    @property
    def next_index(self) -> int:
        """Absolute index of the next op to be fed."""
        return self._next_idx

    @property
    def counters(self) -> Tuple[int, ...]:
        """Cumulative L1/L2/L3 hit/miss/eviction/dirty-eviction totals."""
        return tuple(self._l1c) + tuple(self._c)

    def export_state(self) -> tuple:
        """Picklable snapshot of the carried state (shard handoff)."""
        return (
            self._l1,
            self._l2,
            self._l3,
            self._window,
            self._ep_count,
            self._ep_dirty,
            list(self._l1c),
            list(self._c),
            self._next_idx,
        )

    def load_state(self, state: tuple) -> None:
        (
            self._l1,
            self._l2,
            self._l3,
            self._window,
            self._ep_count,
            self._ep_dirty,
            l1c,
            c,
            self._next_idx,
        ) = state
        self._l1c = list(l1c)
        self._c = list(c)

    def feed(self, kind_codes, addresses, persistent_flags) -> List[tuple]:
        """Replay one chunk of packed columns; return its eventful ops.

        Event tuples carry absolute op indices, so chunked feeding and
        a single whole-trace feed produce the identical event stream.
        """
        return self._replay(
            kind_codes.tolist(),
            _blocks_of_column(addresses),
            persistent_flags.tolist(),
        )

    def finish(self) -> List[tuple]:
        """End-of-trace drain: flush a trailing partial epoch.

        The sentinel event's index is one past the last op, matching
        the scalar ``_drain()``.
        """
        if self.cls == "ep" and self._ep_count:
            blocks = tuple(self._ep_dirty)
            window = self._window
            for b in blocks:
                self._clean(b)
                window.pop(b, None)
            event = (self._next_idx, _EV_FLUSH, 0, (), False, None, blocks, self._ep_count)
            self._ep_count = 0
            self._ep_dirty = {}
            return [event]
        return []

    def _clean(self, block: int) -> None:
        s1, m1, _ = self._dims1
        s2, m2, _ = self._dims2
        s3, m3, _ = self._dims3
        d = self._l1[block & m1] if m1 is not None else self._l1[block % s1]
        if d.get(block):
            d[block] = False
        d = self._l2[block & m2] if m2 is not None else self._l2[block % s2]
        if d.get(block):
            d[block] = False
        d = self._l3[block & m3] if m3 is not None else self._l3[block % s3]
        if d.get(block):
            d[block] = False

    def _replay(self, kinds: List[int], blocks: List[int], flags: List[int]) -> List[tuple]:
        s1, m1, a1 = self._dims1
        s2, m2, a2 = self._dims2
        s3, m3, a3 = self._dims3
        l1, l2, l3 = self._l1, self._l2, self._l3
        c = self._c
        epoch_size = self.epoch_size
        protect_stack = self.protect_stack
        cls = self.cls

        wt = cls == "wt"
        track = not wt
        use_epochs = cls == "ep"

        def spill3(block: int) -> Optional[int]:
            d = l3[block & m3] if m3 is not None else l3[block % s3]
            if block in d:
                d[block] = True
                return None
            out = None
            if len(d) >= a3:
                vb = next(iter(d))
                vd = d.pop(vb)
                c[6] += 1
                if vd:
                    c[7] += 1
                    out = vb
            d[block] = True
            return out

        def spill2(block: int, wbs: List[int]) -> None:
            d = l2[block & m2] if m2 is not None else l2[block % s2]
            if block in d:
                d[block] = True
                return
            if len(d) >= a2:
                vb = next(iter(d))
                vd = d.pop(vb)
                c[2] += 1
                if vd:
                    c[3] += 1
                    out = spill3(vb)
                    if out is not None:
                        wbs.append(out)
            d[block] = True

        def miss_path(
            block: int, dirty_fill: bool, v1b: int, v1d: bool
        ) -> Tuple[List[int], bool]:
            wbs: List[int] = []
            if v1d:
                spill2(v1b, wbs)
            d = l2[block & m2] if m2 is not None else l2[block % s2]
            line = d.get(block)
            if line is not None:
                del d[block]
                d[block] = line or dirty_fill
                c[0] += 1
                return wbs, False
            c[1] += 1
            if len(d) >= a2:
                vb = next(iter(d))
                vd = d.pop(vb)
                c[2] += 1
                if vd:
                    c[3] += 1
                    out = spill3(vb)
                    if out is not None:
                        wbs.append(out)
            d[block] = dirty_fill
            d = l3[block & m3] if m3 is not None else l3[block % s3]
            line = d.get(block)
            if line is not None:
                del d[block]
                d[block] = line or dirty_fill
                c[4] += 1
                return wbs, False
            c[5] += 1
            if len(d) >= a3:
                vb = next(iter(d))
                vd = d.pop(vb)
                c[6] += 1
                if vd:
                    c[7] += 1
                    wbs.append(vb)
            d[block] = dirty_fill
            return wbs, True

        def clean(block: int) -> None:
            d = l1[block & m1] if m1 is not None else l1[block % s1]
            if d.get(block):
                d[block] = False
            d = l2[block & m2] if m2 is not None else l2[block % s2]
            if d.get(block):
                d[block] = False
            d = l3[block & m3] if m3 is not None else l3[block % s3]
            if d.get(block):
                d[block] = False

        window = self._window
        events: List[tuple] = []
        append = events.append
        l1_h, l1_m, l1_e, l1_de = self._l1c
        ep_count = self._ep_count
        ep_dirty = self._ep_dirty
        idx = self._next_idx - 1
        for kind, block, persistent in zip(kinds, blocks, flags):
            idx += 1
            if kind == 2:  # sfence
                if use_epochs and ep_count:
                    blocks_ = tuple(ep_dirty)
                    for b in blocks_:
                        clean(b)
                        window.pop(b, None)
                    append((idx, _EV_FLUSH, 0, (), False, None, blocks_, ep_count))
                    ep_count = 0
                    ep_dirty = {}
                continue
            is_write = kind == 1
            d1 = l1[block & m1] if m1 is not None else l1[block % s1]
            line = d1.get(block)
            if line is None:
                l1_m += 1
                v1b = 0
                v1d = False
                if len(d1) >= a1:
                    v1b = next(iter(d1))
                    v1d = d1.pop(v1b)
                    l1_e += 1
                    if v1d:
                        l1_de += 1
                dirty_fill = is_write and track
                d1[block] = dirty_fill
                wbs, mem = miss_path(block, dirty_fill, v1b, v1d)
            else:
                l1_h += 1
                del d1[block]
                d1[block] = line or (is_write and track)
                wbs = None
                mem = False
            if is_write:
                victim = None
                if track:
                    if block in window:
                        del window[block]
                        window[block] = None
                    else:
                        window[block] = None
                        if len(window) > _WINDOW_CAPACITY:
                            victim = next(iter(window))
                            del window[victim]
                            clean(victim)
                if persistent or protect_stack:
                    if use_epochs:
                        ep_count += 1
                        if block not in ep_dirty:
                            ep_dirty[block] = None
                        if epoch_size is not None and ep_count >= epoch_size:
                            flush = tuple(ep_dirty)
                            for b in flush:
                                clean(b)
                                window.pop(b, None)
                            append(
                                (idx, _EV_STORE, block, wbs or (), mem, victim, flush, ep_count)
                            )
                            ep_count = 0
                            ep_dirty = {}
                            continue
                    elif wt:
                        append((idx, _EV_STORE, block, wbs or (), mem, victim, None, 1))
                        continue
                if wbs or mem or victim is not None:
                    append((idx, _EV_STORE, block, wbs or (), mem, victim, None, 0))
            elif mem or wbs:
                append((idx, _EV_LOAD, block, wbs or (), mem, None, None, 0))

        self._l1c[0] = l1_h
        self._l1c[1] = l1_m
        self._l1c[2] = l1_e
        self._l1c[3] = l1_de
        self._ep_count = ep_count
        self._ep_dirty = ep_dirty
        self._next_idx = idx + 1
        return events


def _functional_prepass(
    trace: MemoryTrace,
    cls: str,
    epoch_size: Optional[int],
    protect_stack: bool,
    dims1: Tuple[int, Optional[int], int],
    dims2: Tuple[int, Optional[int], int],
    dims3: Tuple[int, Optional[int], int],
) -> PrepassResult:
    """One timing-free replay of the replacement + persistency state.

    This mirrors, operation for operation, the functional half of the
    scalar loop: LRU movement and eviction in the three data-cache
    levels (:class:`~repro.mem.cache.Cache` semantics, down to the
    dirty-bit and counter behaviour of ``access``/``fill``/``probe``/
    ``clean``), the bounded dirty-residency window, and the epoch dirty
    sets.  None of these ever read the clock, which is what makes the
    factorization sound; the proof obligation is discharged empirically
    by the differential harness.

    Thin wrapper over :class:`FunctionalPrepass` feeding the whole
    trace as one chunk — the memoized whole-trace path and the chunked
    streaming path share the same replay code.
    """
    pre = FunctionalPrepass(cls, epoch_size, protect_stack, dims1, dims2, dims3)
    events = pre.feed(trace.kind_codes, trace.addresses, trace.persistent_flags)
    events.extend(pre.finish())
    return PrepassResult(events, pre.counters)


def _prepass_for(sim, trace: MemoryTrace) -> PrepassResult:
    """Fetch (or compute and memoize) the trace's functional prepass.

    The memo rides on ``trace._stat_cache`` so it is invalidated
    whenever the trace mutates, shared across every simulation of the
    same trace under the same cache/persistency shape, and inherited
    for free by forked sweep-pool workers.
    """
    cfg = sim.config
    scheme = sim.scheme
    if scheme.uses_epochs:
        cls: str = "ep"
        esize: Optional[int] = cfg.epoch_size
    elif scheme.write_through:
        cls, esize = "wt", None
    else:
        cls, esize = "wb", None
    key = (
        "batched_prepass",
        cls,
        esize,
        cfg.protect_stack,
        cfg.l1_bytes,
        cfg.l1_assoc,
        cfg.l2_bytes,
        cfg.l2_assoc,
        cfg.l3_bytes,
        cfg.l3_assoc,
    )
    memo = trace._stat_cache
    pre = memo.get(key)
    if pre is None:
        pre = _functional_prepass(
            trace,
            cls,
            esize,
            cfg.protect_stack,
            _cache_dims(cfg.l1_bytes, cfg.l1_assoc),
            _cache_dims(cfg.l2_bytes, cfg.l2_assoc),
            _cache_dims(cfg.l3_bytes, cfg.l3_assoc),
        )
        memo[key] = pre
    return pre


class MetadataScript:
    """Precomputed metadata-cache outcomes for one run shape.

    The metadata caches see a deterministic access sequence: every
    access happens inside an eventful op's handler, the events come in
    trace order, and each handler's internal sequence is fixed by the
    scheme.  None of the lookup *outcomes* depend on the clock — only
    the latencies charged for them do — so everything the handlers ask
    of the metadata layer can be replayed from precomputed streams in
    pass 2 instead of live LRU caches:

    * ``stream`` — hit/miss booleans for counter reads/writes, MAC
      reads/writes, and the load path's BMT read walks, in call order;
    * ``walks`` — one ``(costs, misses)`` entry per ``_level_costs``
      call (the scoreboards' BMT update walks), in call order;
    * ``combiner`` — absorb/no-absorb booleans for the WPQ
      write-combiner (``_tuple_writes``), in call order;
    * ``counts`` — (hits, misses, evictions, dirty_evictions) totals
      per metadata cache, merged into the registry after pass 2.
    """

    __slots__ = ("stream", "walks", "combiner", "counts")

    def __init__(
        self,
        stream: List[bool],
        walks: List[Tuple[List[int], int]],
        combiner: List[bool],
        counts: Tuple[int, ...],
    ) -> None:
        self.stream = stream
        self.walks = walks
        self.combiner = combiner
        self.counts = counts


def _md_access(sets: List[dict], stats: List[int], dims: Tuple[int, Optional[int], int]):
    """A metadata cache replayed as per-set dicts (Cache semantics,
    write_through=False): value is the dirty bit, dict order is LRU.
    The sets/stats live on the caller so the closure can be rebuilt
    per chunk without losing state."""
    num_sets, mask, assoc = dims

    def access(key: int, dirty: bool) -> bool:
        d = sets[key & mask] if mask is not None else sets[key % num_sets]
        cur = d.get(key)
        if cur is not None:
            del d[key]
            d[key] = cur or dirty
            stats[0] += 1
            return True
        stats[1] += 1
        if len(d) >= assoc:
            vd = d.pop(next(iter(d)))
            stats[2] += 1
            if vd:
                stats[3] += 1
        d[key] = dirty
        return False

    return access


class MetadataReplay:
    """Chunk-resumable replay of the metadata caches and combiner.

    Mirrors, access for access, the sequence the timed handlers issue:

    * write-back of a victim: counter W, MAC W (``_metadata_update``),
      tuple writes through the combiner, plus a full-path BMT update
      walk under ``secure_wb``;
    * a load's NVM fill: counter R, MAC R, then a BMT read walk that
      stops at the first cached node (or the pinned root);
    * a write-through persist: counter W, MAC W, tuple writes, and a
      full-path BMT walk;
    * an epoch flush: counter W + MAC W + tuple writes per dirty block
      in first-store order, then one BMT update walk per persist — the
      full path under o3, the LCA-truncated path under coalescing (the
      truncation is a pure function of the leaf sequence;
      ``CoalescingUnit.now`` only stamps telemetry, which is off
      whenever the script is in use; empty coalesced paths never reach
      ``_level_costs``, so they add no walk entry).

    BMT update walks are resolved all the way to per-node cost lists
    (MAC latency, plus the miss penalty on a BMT cache miss) so pass 2
    can feed the scoreboards one precomputed list per ``_level_costs``
    call.  The pinned root (label 0) costs one MAC latency and never
    touches the cache, matching ``access_bmt_node``.

    :meth:`feed` consumes one chunk of prepass events and buffers the
    scripted outcomes; :meth:`take` drains the buffers.  Feeding the
    whole event partition at once reproduces ``_metadata_replay``
    exactly.  The cache sets, stats and combiner dict are plain
    containers, so :meth:`export_state`/:meth:`load_state` support the
    shard handoff (the coalescer is stateless across epochs and is
    simply rebuilt by the receiving worker).
    """

    __slots__ = (
        "boundary",
        "scheme",
        "_geometry",
        "_bpcb",
        "_mac_latency",
        "_miss_cost",
        "_dims_ctr",
        "_dims_mac",
        "_dims_bmt",
        "_ctr_sets",
        "_ctr_stats",
        "_mac_sets",
        "_mac_stats",
        "_bmt_sets",
        "_bmt_stats",
        "_comb",
        "_coalescer",
        "_secure_wb",
        "_stream",
        "_walks",
        "_comb_stream",
    )

    def __init__(
        self,
        boundary: int,
        scheme: UpdateScheme,
        geometry,
        bpcb: int,
        mac_latency: int,
        miss_latency: int,
        dims_ctr: Tuple[int, Optional[int], int],
        dims_mac: Tuple[int, Optional[int], int],
        dims_bmt: Tuple[int, Optional[int], int],
    ) -> None:
        self.boundary = boundary
        self.scheme = scheme
        self._geometry = geometry
        self._bpcb = bpcb
        self._mac_latency = mac_latency
        self._miss_cost = mac_latency + miss_latency
        self._dims_ctr = dims_ctr
        self._dims_mac = dims_mac
        self._dims_bmt = dims_bmt
        self._ctr_sets = [{} for _ in range(dims_ctr[0])]
        self._ctr_stats = [0, 0, 0, 0]  # hits, misses, evictions, dirty
        self._mac_sets = [{} for _ in range(dims_mac[0])]
        self._mac_stats = [0, 0, 0, 0]
        self._bmt_sets = [{} for _ in range(dims_bmt[0])]
        self._bmt_stats = [0, 0, 0, 0]
        # The WPQ write-combiner (timing.{_WriteCombiner,_tuple_writes}):
        # a 16-entry LRU over (kind, block) keys, insertion order = LRU.
        self._comb: dict = {}
        self._secure_wb = scheme is UpdateScheme.SECURE_WB
        self._coalescer = (
            CoalescingUnit(geometry, policy="paired", telemetry=None)
            if scheme is UpdateScheme.COALESCING
            else None
        )
        self._stream: List[bool] = []
        self._walks: List[Tuple[List[int], int]] = []
        self._comb_stream: List[bool] = []

    @property
    def counts(self) -> Tuple[int, ...]:
        """Cumulative ctr/mac/bmt hit/miss/eviction/dirty totals."""
        return tuple(self._ctr_stats + self._mac_stats + self._bmt_stats)

    def export_state(self) -> tuple:
        """Picklable snapshot of the carried state (shard handoff)."""
        return (
            self._ctr_sets,
            self._mac_sets,
            self._bmt_sets,
            list(self._ctr_stats),
            list(self._mac_stats),
            list(self._bmt_stats),
            self._comb,
        )

    def load_state(self, state: tuple) -> None:
        (
            self._ctr_sets,
            self._mac_sets,
            self._bmt_sets,
            ctr_stats,
            mac_stats,
            bmt_stats,
            self._comb,
        ) = state
        self._ctr_stats = list(ctr_stats)
        self._mac_stats = list(mac_stats)
        self._bmt_stats = list(bmt_stats)

    def take(self) -> Tuple[List[bool], List[Tuple[List[int], int]], List[bool]]:
        """Drain the buffered (stream, walks, combiner) outcomes."""
        out = (self._stream, self._walks, self._comb_stream)
        self._stream = []
        self._walks = []
        self._comb_stream = []
        return out

    def feed(self, events: List[tuple]) -> None:
        """Replay one chunk of prepass events into the buffers."""
        ctr = _md_access(self._ctr_sets, self._ctr_stats, self._dims_ctr)
        mac = _md_access(self._mac_sets, self._mac_stats, self._dims_mac)
        bmt = _md_access(self._bmt_sets, self._bmt_stats, self._dims_bmt)
        geometry = self._geometry
        arity = geometry.arity
        num_leaves = geometry.num_leaves
        path_tuple = geometry.path_tuple
        bpcb = self._bpcb
        mac_latency = self._mac_latency
        miss_cost = self._miss_cost
        boundary = self.boundary
        secure_wb = self._secure_wb
        coalescer = self._coalescer
        comb = self._comb
        walks = self._walks
        emit = self._stream.append
        emit_comb = self._comb_stream.append

        def absorbs(key) -> None:
            if key in comb:
                del comb[key]
                comb[key] = None
                emit_comb(True)
                return
            comb[key] = None
            if len(comb) > 16:
                del comb[next(iter(comb))]
            emit_comb(False)

        def tuple_writes(block: int) -> None:
            absorbs(("data", block))
            absorbs(("ctr", block // bpcb))
            absorbs(("mac", block >> 3))

        def bmt_update_walk(path) -> None:
            costs = []
            misses = 0
            for label in path:
                if label and not bmt((label - 1) // arity, True):
                    costs.append(miss_cost)
                    misses += 1
                else:
                    costs.append(mac_latency)
            walks.append((costs, misses))

        def writeback(victim: int) -> None:
            emit(ctr(victim // bpcb, True))
            emit(mac(victim >> 3, True))
            tuple_writes(victim)
            if secure_wb:
                bmt_update_walk(path_tuple(victim // bpcb % num_leaves))

        def flush(blocks) -> None:
            for b in blocks:
                emit(ctr(b // bpcb, True))
                emit(mac(b >> 3, True))
                tuple_writes(b)
            if coalescer is not None:
                # Pairing depends only on the leaf sequence, not the ids.
                pairs = [(i, b // bpcb % num_leaves) for i, b in enumerate(blocks)]
                for persist in coalescer.coalesce_epoch(pairs):
                    if persist.path:
                        bmt_update_walk(persist.path)
            else:
                for b in blocks:
                    bmt_update_walk(path_tuple(b // bpcb % num_leaves))

        for ev in events:
            tag = ev[1]
            if tag == _EV_STORE:
                for victim in ev[3]:
                    writeback(victim)
                if ev[5] is not None and ev[0] >= boundary:
                    writeback(ev[5])
                if ev[6] is not None:
                    flush(ev[6])
                elif ev[7]:
                    block = ev[2]
                    emit(ctr(block // bpcb, True))
                    emit(mac(block >> 3, True))
                    bmt_update_walk(path_tuple(block // bpcb % num_leaves))
                    tuple_writes(block)
            elif tag == _EV_LOAD:
                for victim in ev[3]:
                    writeback(victim)
                if ev[4]:
                    block = ev[2]
                    emit(ctr(block // bpcb, False))
                    emit(mac(block >> 3, False))
                    for label in path_tuple(block // bpcb % num_leaves):
                        if label == 0:
                            break  # pinned root: trusted, no cache touch
                        hit = bmt((label - 1) // arity, False)
                        emit(hit)
                        if hit:
                            break  # verification stops at a trusted node
            else:  # _EV_FLUSH
                flush(ev[6])


def _metadata_replay(
    events: List[tuple],
    boundary: int,
    scheme: UpdateScheme,
    geometry,
    bpcb: int,
    mac_latency: int,
    miss_latency: int,
    dims_ctr: Tuple[int, Optional[int], int],
    dims_mac: Tuple[int, Optional[int], int],
    dims_bmt: Tuple[int, Optional[int], int],
) -> MetadataScript:
    """Replay the whole event partition in one :class:`MetadataReplay`
    feed — the memoized whole-trace script and the chunked streaming
    path share the same replay code."""
    md = MetadataReplay(
        boundary,
        scheme,
        geometry,
        bpcb,
        mac_latency,
        miss_latency,
        dims_ctr,
        dims_mac,
        dims_bmt,
    )
    md.feed(events)
    stream, walks, comb_stream = md.take()
    return MetadataScript(stream, walks, comb_stream, md.counts)


def _metadata_script_for(sim, trace: MemoryTrace, boundary: int) -> MetadataScript:
    """Fetch (or compute and memoize) the metadata hit/miss script.

    Keyed alongside the functional prepass on everything that shapes the
    event partition, plus the metadata geometry, the scheme (which fixes
    each event's access sequence), and the warmup boundary (window
    displacements inside the warmup emit no writeback accesses).
    """
    cfg = sim.config
    geometry = sim.geometry
    key = (
        "batched_mdscript",
        sim.scheme.value,
        boundary,
        cfg.epoch_size if sim.scheme.uses_epochs else None,
        cfg.protect_stack,
        cfg.l1_bytes,
        cfg.l1_assoc,
        cfg.l2_bytes,
        cfg.l2_assoc,
        cfg.l3_bytes,
        cfg.l3_assoc,
        cfg.counter_cache_bytes,
        cfg.mac_cache_bytes,
        cfg.bmt_cache_bytes,
        cfg.metadata_assoc,
        cfg.blocks_per_counter_block,
        cfg.mac_latency,
        cfg.nvm.read_latency,
        geometry.num_leaves,
        geometry.arity,
        geometry.levels,
    )
    memo = trace._stat_cache
    script = memo.get(key)
    if script is None:
        script = _metadata_replay(
            _prepass_for(sim, trace).events,
            boundary,
            sim.scheme,
            geometry,
            cfg.blocks_per_counter_block,
            cfg.mac_latency,
            cfg.nvm.read_latency,
            _cache_dims(cfg.counter_cache_bytes, cfg.metadata_assoc),
            _cache_dims(cfg.mac_cache_bytes, cfg.metadata_assoc),
            _cache_dims(cfg.bmt_cache_bytes, cfg.metadata_assoc),
        )
        memo[key] = script
    return script


class _ScriptedCombiner:
    """Drop-in for ``timing._WriteCombiner`` replaying scripted verdicts."""

    __slots__ = ("absorbs",)

    def __init__(self, nxt) -> None:
        self.absorbs = lambda kind, block: nxt()


def _column(column, dtype):
    return np.frombuffer(memoryview(column), dtype=dtype)


def run_batched(sim, trace: MemoryTrace, warmup_fraction: float):
    """Pass 2: jump the clock between eventful ops, dispatch each one
    through the shared timed handlers, and assemble the ``SimResult``.

    ``sim`` is a :class:`~repro.system.timing.TraceSimulator`; the
    argument validation already happened in ``run()``.
    """
    n = len(trace)
    boundary = int(n * warmup_fraction)
    pre = _prepass_for(sim, trace)

    if n:
        gaps = _column(trace.gaps, np.uint32).astype(np.int64)
        kinds = _column(trace.kind_codes, np.uint8)
        # Every op retires one tick except sfence (which only carries
        # its gap); instructions count gap+1 for every op.
        cum_ticks = np.cumsum(gaps + (kinds != KIND_SFENCE))
        cum_instr = np.cumsum(gaps + 1)
        total_ticks = int(cum_ticks[-1])
        total_instr = int(cum_instr[-1])
        snap_ticks = int(cum_ticks[boundary - 1]) if boundary else 0
        snap_instr = int(cum_instr[boundary - 1]) if boundary else 0
    else:
        cum_ticks = None
        total_ticks = total_instr = snap_ticks = snap_instr = 0

    # Scripted metadata: when no instrumented (telemetry cache-event)
    # closures shadow the access methods and the caches aren't ideal,
    # replace the three live metadata caches with iterator reads over
    # the precomputed hit/miss stream — the single hottest cost in the
    # timed handlers.  The instrumented and ideal paths keep the live
    # code, so telemetry runs stay bit-identical through shared code.
    metadata = sim.metadata
    scoreboard = sim.scoreboard
    combiner = sim._combiner
    script = None
    if not metadata.ideal and "access_counter" not in metadata.__dict__:
        script = _metadata_script_for(sim, trace, boundary)
        nxt = iter(script.stream).__next__
        metadata.access_counter = lambda block, is_write: nxt()
        metadata.access_mac = lambda block, is_write: nxt()

        def _scripted_bmt(label: int, is_write: bool) -> bool:
            return True if label == 0 else nxt()

        metadata.access_bmt_node = _scripted_bmt

        walk_next = iter(script.walks).__next__

        def _scripted_level_costs(path):
            costs, misses = walk_next()
            scoreboard.bmt_cache_misses += misses
            scoreboard.node_update_count += len(path)
            return costs

        scoreboard._level_costs = _scripted_level_costs
        comb_next = iter(script.combiner).__next__
        sim._combiner = _ScriptedCombiner(comb_next)

    epochs = sim.epochs
    window = None
    sim._in_warmup = boundary > 0
    tick_list = cum_ticks.tolist() if n else []
    handle_writeback = sim._handle_writeback
    allocate_stall = sim._allocate_stall
    load_timed = sim._load_timed
    flush_timed = sim._flush_timed
    persist_store = sim._persist_store
    try:
        for ev in pre.events:
            op_idx = ev[0]
            if window is None and op_idx >= boundary:
                sim._ticks = snap_ticks
                sim._in_warmup = False
                window = sim._snapshot(snap_instr)
            sim._ticks = tick_list[op_idx] if op_idx < n else total_ticks
            tag = ev[1]
            if tag == _EV_STORE:
                for victim in ev[3]:
                    handle_writeback(victim)
                if ev[4]:
                    allocate_stall()
                displaced = ev[5]
                if displaced is not None and op_idx >= boundary:
                    handle_writeback(displaced)
                flush = ev[6]
                if flush is not None:
                    flush_timed(flush)
                    _record_epoch(epochs, flush, ev[7])
                elif ev[7]:
                    persist_store(ev[2])
            elif tag == _EV_LOAD:
                load_timed(ev[2], ev[3], ev[4])
            else:  # _EV_FLUSH (sfence boundary or end-of-trace drain)
                flush_timed(ev[6])
                _record_epoch(epochs, ev[6], ev[7])
    finally:
        if script is not None:
            # Restore the live machinery and check every stream ran
            # dry — a leftover (or a StopIteration above) would mean
            # the replay and the handlers disagreed on the sequence.
            del metadata.access_counter, metadata.access_mac
            del metadata.access_bmt_node
            del scoreboard._level_costs
            sim._combiner = combiner
    if script is not None and (
        next(_probe(nxt), None) is not None
        or next(_probe(walk_next), None) is not None
        or next(_probe(comb_next), None) is not None
    ):
        raise RuntimeError("batched metadata script not fully consumed")
    if window is None:
        # No eventful op at or past the boundary — take the snapshot
        # exactly where the scalar loop would have.
        sim._ticks = snap_ticks
        sim._in_warmup = False
        window = sim._snapshot(snap_instr)
    sim._ticks = total_ticks

    # Merge the prepass's counter totals into the live registry before
    # the result snapshots stats.as_dict().  The data-cache totals go
    # through the registry by name (the batched engine never builds the
    # live hierarchy); the metadata totals add to whatever the live
    # caches absorbed before scripting took over (zero in practice).
    counter = sim.stats.counter
    cc = pre.cache_counts
    for name, off in (("l1", 0), ("l2", 4), ("l3", 8)):
        counter(f"{name}.hits").value += cc[off]
        counter(f"{name}.misses").value += cc[off + 1]
        counter(f"{name}.evictions").value += cc[off + 2]
        counter(f"{name}.dirty_evictions").value += cc[off + 3]
    if script is not None:
        mc = script.counts
        for name, off in (("ctr", 0), ("mac", 4), ("bmt", 8)):
            counter(f"{name}.hits").value += mc[off]
            counter(f"{name}.misses").value += mc[off + 1]
            counter(f"{name}.evictions").value += mc[off + 2]
            counter(f"{name}.dirty_evictions").value += mc[off + 3]

    return sim._make_result(trace.name, window, total_instr)


def _probe(nxt):
    """Yield the script iterator's next value, if any (dry-run check)."""
    try:
        yield nxt()
    except StopIteration:
        return


def _record_epoch(tracker, blocks, store_count: int) -> None:
    """Mirror the EpochTracker bookkeeping for a flushed epoch so
    post-run inspection (``total_persists`` etc.) matches the scalar
    engines.  Honors ``retain_closed`` so streaming runs stay O(1)."""
    if tracker is None:
        return
    epoch_id = tracker.closed_count
    tracker.closed_count = epoch_id + 1
    tracker.closed_store_count += store_count
    tracker.closed_persist_count += len(blocks)
    if tracker.retain_closed:
        tracker._closed.append(
            Epoch(
                epoch_id=epoch_id,
                store_count=store_count,
                dirty_blocks=dict.fromkeys(blocks),
                closed=True,
            )
        )
    tracker._current = Epoch(epoch_id=epoch_id + 1)
