"""Statistics primitives shared by every timing model.

All hardware models register their counters in a :class:`StatsRegistry`
so that a finished simulation can be rendered as a flat ``dict`` and fed
to the benchmark harness or the report formatter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


class Counter:
    """A monotonically increasing event counter.

    A slotted plain class (not a dataclass): counter increments are the
    single most frequent operation in a simulation.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold another shard's counter into this one (values add)."""
        if other.name != self.name:
            raise ValueError(f"cannot merge counter {other.name!r} into {self.name!r}")
        self.value += other.value

    def reset(self) -> None:
        self.value = 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Counter)
            and self.name == other.name
            and self.value == other.value
        )

    def __repr__(self) -> str:
        return f"Counter(name={self.name!r}, value={self.value})"


class Histogram:
    """A bucketed histogram for latency/occupancy distributions."""

    def __init__(self, name: str, bucket_width: int = 16) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._total = 0
        self._min: int | None = None
        self._max: int | None = None

    def record(self, sample: int) -> None:
        bucket = sample // self.bucket_width
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self._count += 1
        self._total += sample
        self._min = sample if self._min is None else min(self._min, sample)
        self._max = sample if self._max is None else max(self._max, sample)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> int:
        return self._min if self._min is not None else 0

    @property
    def maximum(self) -> int:
        return self._max if self._max is not None else 0

    def buckets(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(bucket_start, count)`` in ascending order."""
        for bucket in sorted(self._buckets):
            yield bucket * self.bucket_width, self._buckets[bucket]

    def percentile(self, p: float) -> float:
        """Percentile ``p`` (0..100), linearly interpolated within buckets.

        Edge semantics: an empty histogram reports ``0.0``; ``p == 0``
        is the recorded minimum and ``p == 100`` the maximum; values
        outside ``[0, 100]`` raise.  Interpolated results are clamped to
        ``[minimum, maximum]`` so a percentile can never fall outside
        the observed range (bucket edges overshoot otherwise — e.g. a
        single-bucket histogram whose samples sit at the bucket floor).
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self._count:
            return 0.0
        if p == 0:
            return float(self.minimum)
        if p == 100:
            return float(self.maximum)
        target = self._count * p / 100.0
        seen = 0
        for start, count in self.buckets():
            previous = seen
            seen += count
            if seen >= target:
                fraction = (target - previous) / count
                value = start + fraction * self.bucket_width
                return min(max(value, float(self.minimum)), float(self.maximum))
        return float(self.maximum)

    def merge(self, other: "Histogram") -> None:
        """Fold another shard's histogram into this one.

        Bucket counts add exactly (the bucket widths must match, so the
        two histograms partition samples identically); count/total/
        min/max aggregate exactly as if every sample had been recorded
        here, which keeps ``count``/``mean``/``minimum``/``maximum``
        and ``percentile`` consistent with an unsharded run.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}"
            )
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket width "
                f"{other.bucket_width} != {self.bucket_width}"
            )
        for bucket, count in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + count
        self._count += other._count
        self._total += other._total
        if other._min is not None:
            self._min = other._min if self._min is None else min(self._min, other._min)
        if other._max is not None:
            self._max = other._max if self._max is None else max(self._max, other._max)

    def reset(self) -> None:
        """Clear every sample; the histogram object stays registered."""
        self._buckets.clear()
        self._count = 0
        self._total = 0
        self._min = None
        self._max = None


@dataclass
class StatsRegistry:
    """A namespaced collection of counters and histograms."""

    prefix: str = ""
    _counters: Dict[str, Counter] = field(default_factory=dict)
    _histograms: Dict[str, Histogram] = field(default_factory=dict)
    _children: Dict[str, "StatsRegistry"] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(self._qualify(name))
        return self._counters[name]

    def histogram(self, name: str, bucket_width: int = 16) -> Histogram:
        """Get or create the histogram ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(self._qualify(name), bucket_width)
        return self._histograms[name]

    def child(self, prefix: str) -> "StatsRegistry":
        """Get or create the nested registry ``prefix``.

        Memoized: asking for the same prefix twice returns the same
        registry, so two components sharing a namespace also share its
        counters instead of silently shadowing each other in
        :meth:`as_dict`.
        """
        registry = self._children.get(prefix)
        if registry is None:
            registry = StatsRegistry(prefix=self._qualify(prefix))
            self._children[prefix] = registry
        return registry

    def as_dict(self) -> Dict[str, float]:
        """Flatten every counter and histogram summary into one dict."""
        out: Dict[str, float] = {}
        for counter in self._counters.values():
            out[counter.name] = counter.value
        for histogram in self._histograms.values():
            out[f"{histogram.name}.count"] = histogram.count
            out[f"{histogram.name}.mean"] = histogram.mean
            out[f"{histogram.name}.max"] = histogram.maximum
        for childreg in self._children.values():
            out.update(childreg.as_dict())
        return out

    def reset(self) -> None:
        """Zero every counter and histogram, recursively.

        Histograms are reset *in place* (not discarded) so components
        holding a histogram reference keep recording into the registry
        after a reset; the recursion reaches grandchildren through each
        child's own reset.
        """
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for childreg in self._children.values():
            childreg.reset()

    def merge(self, other: "StatsRegistry") -> None:
        """Fold another shard's registry into this one, recursively.

        Counters add, histograms merge buckets, and children merge by
        prefix (created here if absent).  The mergeable protocol behind
        sharded simulation: per-shard registries fold into one whose
        flattened ``as_dict`` equals the unsharded run's (derived
        histogram summaries are recomputed from the merged state, not
        averaged).
        """
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bucket_width).merge(histogram)
        for prefix, childreg in other._children.items():
            self.child(prefix).merge(childreg)

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name


def merge_stat_dicts(dicts: List[Dict[str, float]]) -> Dict[str, float]:
    """Sum flattened per-shard stat dicts key by key.

    Sharded partial results carry *delta* stats (each shard's counter
    movement), so plain addition reconstructs the unsharded flat dict
    exactly — every simulation stat is an integer counter, and integer
    sums below 2**53 are exact in floats.  Keys missing from a shard
    (a structure never touched there) count as zero.
    """
    out: Dict[str, float] = {}
    for d in dicts:
        for key, value in d.items():
            out[key] = out.get(key, 0) + value
    return out


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, the aggregation the paper uses for overheads."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
