"""Statistics primitives shared by every timing model.

All hardware models register their counters in a :class:`StatsRegistry`
so that a finished simulation can be rendered as a flat ``dict`` and fed
to the benchmark harness or the report formatter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


class Counter:
    """A monotonically increasing event counter.

    A slotted plain class (not a dataclass): counter increments are the
    single most frequent operation in a simulation.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Counter)
            and self.name == other.name
            and self.value == other.value
        )

    def __repr__(self) -> str:
        return f"Counter(name={self.name!r}, value={self.value})"


class Histogram:
    """A bucketed histogram for latency/occupancy distributions."""

    def __init__(self, name: str, bucket_width: int = 16) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._total = 0
        self._min: int | None = None
        self._max: int | None = None

    def record(self, sample: int) -> None:
        bucket = sample // self.bucket_width
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self._count += 1
        self._total += sample
        self._min = sample if self._min is None else min(self._min, sample)
        self._max = sample if self._max is None else max(self._max, sample)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> int:
        return self._min if self._min is not None else 0

    @property
    def maximum(self) -> int:
        return self._max if self._max is not None else 0

    def buckets(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(bucket_start, count)`` in ascending order."""
        for bucket in sorted(self._buckets):
            yield bucket * self.bucket_width, self._buckets[bucket]

    def percentile(self, p: float) -> int:
        """Approximate percentile ``p`` (0..100) from bucket boundaries."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self._count:
            return 0
        target = math.ceil(self._count * p / 100)
        seen = 0
        for start, count in self.buckets():
            seen += count
            if seen >= target:
                return start + self.bucket_width - 1
        return self.maximum


@dataclass
class StatsRegistry:
    """A namespaced collection of counters and histograms."""

    prefix: str = ""
    _counters: Dict[str, Counter] = field(default_factory=dict)
    _histograms: Dict[str, Histogram] = field(default_factory=dict)
    _children: List["StatsRegistry"] = field(default_factory=list)

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(self._qualify(name))
        return self._counters[name]

    def histogram(self, name: str, bucket_width: int = 16) -> Histogram:
        """Get or create the histogram ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(self._qualify(name), bucket_width)
        return self._histograms[name]

    def child(self, prefix: str) -> "StatsRegistry":
        """Create a nested registry whose names are prefixed."""
        registry = StatsRegistry(prefix=self._qualify(prefix))
        self._children.append(registry)
        return registry

    def as_dict(self) -> Dict[str, float]:
        """Flatten every counter and histogram summary into one dict."""
        out: Dict[str, float] = {}
        for counter in self._counters.values():
            out[counter.name] = counter.value
        for histogram in self._histograms.values():
            out[f"{histogram.name}.count"] = histogram.count
            out[f"{histogram.name}.mean"] = histogram.mean
            out[f"{histogram.name}.max"] = histogram.maximum
        for childreg in self._children:
            out.update(childreg.as_dict())
        return out

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        self._histograms.clear()
        for childreg in self._children:
            childreg.reset()

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, the aggregation the paper uses for overheads."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
