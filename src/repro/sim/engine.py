"""Minimal discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples kept in a binary heap.
The sequence number breaks ties so that events scheduled for the same
cycle fire in scheduling order, which keeps the cycle-stepped hardware
models (PTT/ETT update engines) deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.telemetry.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Telemetry


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Cycle at which the callback fires.
        seq: Tie-breaker preserving scheduling order within a cycle.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Set by :meth:`Engine.cancel`; cancelled events are
            skipped when popped.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class CompletionHeap:
    """A min-heap of pending completion timestamps.

    The skip-ahead timing engines keep one entry per in-flight
    completion event — a MAC stage finishing, a BMT level freeing, a
    WPQ slot releasing, an epoch draining — and advance the clock
    directly to the earliest pending entry instead of polling every
    cycle.  Times are plain integers; ties need no tie-breaker because
    the heap only answers "when is the next event", never "which".
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[int] = []

    def push(self, time: int) -> None:
        """Record a completion event at cycle ``time``."""
        heapq.heappush(self._heap, time)

    def next_time(self) -> Optional[int]:
        """Earliest pending completion, or ``None`` when empty."""
        return self._heap[0] if self._heap else None

    def pop(self) -> int:
        """Remove and return the earliest pending completion."""
        return heapq.heappop(self._heap)

    def release_until(self, now: int) -> int:
        """Drop (and count) every completion at or before ``now``."""
        heap = self._heap
        released = 0
        while heap and heap[0] <= now:
            heapq.heappop(heap)
            released += 1
        return released

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Engine:
    """A deterministic discrete-event scheduler with an integer cycle clock."""

    def __init__(self, telemetry: "Optional[Telemetry]" = None) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0
        self._running = False
        self._telemetry = telemetry
        if telemetry is not None:
            # Structures driven by this engine (WPQ, PTT, ...) read the
            # bus clock; point it at the kernel's cycle counter.
            telemetry.clock = lambda: self._now

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        Args:
            delay: Non-negative number of cycles from the current time.
            callback: Callable invoked with no arguments.

        Returns:
            The :class:`Event`, which can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        return self.schedule(time - self._now, callback)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling a fired event is a no-op."""
        event.cancelled = True

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise RuntimeError("event queue corrupted: time went backwards")
            self._now = event.time
            tel = self._telemetry
            if tel is not None:
                tel.instant(
                    EventKind.ENGINE_FIRE, event.time, "engine", ident=event.seq
                )
                tel.sample("engine.queue_depth", event.time, len(self._queue))
            event.callback()
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        Args:
            until: Inclusive cycle bound.  ``None`` runs to quiescence.
        """
        self._running = True
        try:
            while self._running:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a :meth:`run` loop after the current event returns."""
        self._running = False

    def advance_to(self, time: int) -> None:
        """Move the clock forward without running events (time >= now)."""
        if time < self._now:
            raise ValueError("cannot move the clock backwards")
        if self._queue and self.peek_time() is not None and self.peek_time() < time:
            raise RuntimeError("pending events before target time; run() first")
        self._now = time
