"""Three-level data cache hierarchy (Table III: 64 KB L1 / 512 KB L2 / 4 MB L3).

The hierarchy reports which level served each access and surfaces dirty
evictions from the last level — those evictions are what the
``secure_WB`` baseline turns into (unordered) memory-tuple writes and
sequential BMT updates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mem.cache import Cache
from repro.sim.stats import StatsRegistry


class AccessResult:
    """Outcome of one hierarchy access.

    Attributes:
        level: 1, 2, or 3 for a cache hit; 0 for a memory access.
        writebacks: Dirty blocks evicted from the LLC by this access.
    """

    __slots__ = ("level", "writebacks")

    def __init__(self, level: int, writebacks: List[int]) -> None:
        self.level = level
        self.writebacks = writebacks

    @property
    def memory_access(self) -> bool:
        return self.level == 0

    def __repr__(self) -> str:
        return f"AccessResult(level={self.level}, writebacks={self.writebacks})"


class CacheHierarchy:
    """An inclusive-fill L1/L2/L3 hierarchy operating on block numbers."""

    def __init__(
        self,
        l1_bytes: int = 64 * 1024,
        l2_bytes: int = 512 * 1024,
        l3_bytes: int = 4 * 1024 * 1024,
        l1_assoc: int = 8,
        l2_assoc: int = 16,
        l3_assoc: int = 32,
        write_through: bool = False,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        registry = stats if stats is not None else StatsRegistry()
        self.write_through = write_through
        self.l1 = Cache("l1", l1_bytes, l1_assoc, write_through=write_through, stats=registry)
        self.l2 = Cache("l2", l2_bytes, l2_assoc, write_through=write_through, stats=registry)
        self.l3 = Cache("l3", l3_bytes, l3_assoc, write_through=write_through, stats=registry)

    _L1_HIT = AccessResult(level=1, writebacks=())

    def access(self, block: int, is_write: bool) -> AccessResult:
        """Perform a load or store.

        A hit in a lower level fills the levels above it.  Dirty victims
        cascade downwards; dirty LLC victims are returned as writebacks.

        Args:
            block: Block number.
            is_write: Store if ``True``.

        Returns:
            An :class:`AccessResult`.
        """
        hit1, victim1 = self.l1.access(block, is_write)
        if hit1:
            # The overwhelmingly common case allocates nothing: L1 hits
            # never produce a victim, so the result is a shared constant.
            return self._L1_HIT

        writebacks: List[int] = []
        if victim1 is not None and victim1.dirty:
            self._spill(self.l2, victim1.block, writebacks)

        hit2, victim2 = self.l2.access(block, is_write)
        if victim2 is not None and victim2.dirty:
            self._spill(self.l3, victim2.block, writebacks)
        if hit2:
            return AccessResult(level=2, writebacks=writebacks)

        hit3, victim3 = self.l3.access(block, is_write)
        if victim3 is not None and victim3.dirty:
            writebacks.append(victim3.block)
        level = 3 if hit3 else 0
        return AccessResult(level=level, writebacks=writebacks)

    def _spill(self, lower: Cache, block: int, writebacks: List[int]) -> None:
        """Install a dirty victim into a lower level, cascading evictions."""
        line = lower.probe(block)
        if line is not None:
            line.dirty = True
            return
        victim = lower.fill(block, dirty=True)
        if victim is not None and victim.dirty:
            if lower is self.l2:
                self._spill(self.l3, victim.block, writebacks)
            else:
                writebacks.append(victim.block)

    def clean_block(self, block: int) -> bool:
        """``clwb`` semantics: clean the block everywhere it is resident."""
        cleaned = False
        for cache in (self.l1, self.l2, self.l3):
            cleaned = cache.clean(block) or cleaned
        return cleaned

    def drain_dirty(self) -> List[int]:
        """Flush every dirty block in the hierarchy (end-of-run drain)."""
        dirty = set()
        for cache in (self.l1, self.l2, self.l3):
            dirty.update(cache.flush_all())
        return sorted(dirty)
