"""A queue-based NVM (PCM DIMM) timing model.

Table III: 8 GB DDR-based PCM at 1200 MHz with 128-entry write and
64-entry read queues; tWR = 150 ns dominates write service.  At the
4 GHz core clock the model uses cycle-denominated latencies:

* read access: ~240 cycles (60 ns array read),
* write service: ~600 cycles (150 ns tWR),
* channel burst occupancy: ~20 cycles per transfer.

The model captures exactly the two effects the evaluation depends on:
(1) reads behind a full read queue wait, and (2) bursty epoch-boundary
write traffic backs up the write queue (the Fig. 12 epoch-256
regression).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.sim.stats import StatsRegistry


@dataclass
class NVMConfig:
    """Timing and queue parameters for the NVM DIMM."""

    read_latency: int = 240
    write_latency: int = 600
    burst_cycles: int = 8
    """Channel occupancy per 64 B transfer.  Smaller than the raw burst
    time because bank/rank parallelism overlaps transfers."""
    read_queue_size: int = 64
    write_queue_size: int = 128
    channels: int = 1
    """Independent memory channels; transfers go to the least-loaded
    one.  The Table III system is modelled as one (bank parallelism is
    folded into ``burst_cycles``), but the knob supports scaling
    studies."""


class NVMModel:
    """Scoreboard NVM channel with bounded read/write queues."""

    def __init__(self, config: Optional[NVMConfig] = None, stats: Optional[StatsRegistry] = None) -> None:
        self.config = config or NVMConfig()
        if self.config.channels <= 0:
            raise ValueError("channels must be positive")
        registry = stats if stats is not None else StatsRegistry()
        self._reads = registry.counter("nvm.reads")
        self._writes = registry.counter("nvm.writes")
        self._read_stalls = registry.counter("nvm.read_queue_stall_cycles")
        self._write_stalls = registry.counter("nvm.write_queue_stall_cycles")
        self._channel_free = [0] * self.config.channels
        self._read_completions: Deque[int] = deque()
        self._write_completions: Deque[int] = deque()

    def _drain(self, completions: Deque[int], now: int) -> None:
        while completions and completions[0] <= now:
            completions.popleft()

    def _queue_admit(
        self, completions: Deque[int], capacity: int, now: int
    ) -> int:
        """Earliest cycle at which the queue has a free slot."""
        self._drain(completions, now)
        if len(completions) < capacity:
            return now
        return completions[len(completions) - capacity]

    def _issue_on_channel(self, admit: int) -> int:
        """Place a transfer on the least-loaded channel."""
        channels = self._channel_free
        if len(channels) == 1:
            # Table III models one channel; skip the arg-min entirely.
            free = channels[0]
            issue = admit if admit >= free else free
            channels[0] = issue + self.config.burst_cycles
            return issue
        index = min(range(len(channels)), key=channels.__getitem__)
        issue = max(admit, channels[index])
        channels[index] = issue + self.config.burst_cycles
        return issue

    def read(self, now: int) -> int:
        """Issue a read; returns the cycle its data is available."""
        cfg = self.config
        admit = self._queue_admit(self._read_completions, cfg.read_queue_size, now)
        if admit > now:
            self._read_stalls.value += admit - now
        issue = self._issue_on_channel(admit)
        completion = issue + cfg.read_latency
        self._insert(self._read_completions, completion)
        self._reads.value += 1
        return completion

    def write(self, now: int) -> int:
        """Issue a write; returns the cycle it is durable in the media.

        Note that with ADR the WPQ is already in the persistence domain,
        so persist *completion* does not wait for this time — but channel
        and queue occupancy still throttle everything else.
        """
        cfg = self.config
        admit = self._queue_admit(self._write_completions, cfg.write_queue_size, now)
        if admit > now:
            self._write_stalls.value += admit - now
        issue = self._issue_on_channel(admit)
        completion = issue + cfg.write_latency
        self._insert(self._write_completions, completion)
        self._writes.value += 1
        return completion

    @staticmethod
    def _insert(completions: Deque[int], completion: int) -> None:
        """Keep the completion deque sorted (completions are nearly FIFO)."""
        if not completions or completion >= completions[-1]:
            completions.append(completion)
            return
        # Rare out-of-order completion: insert in place.
        items = list(completions)
        lo, hi = 0, len(items)
        while lo < hi:
            mid = (lo + hi) // 2
            if items[mid] <= completion:
                lo = mid + 1
            else:
                hi = mid
        items.insert(lo, completion)
        completions.clear()
        completions.extend(items)

    @property
    def reads_issued(self) -> int:
        return self._reads.value

    @property
    def writes_issued(self) -> int:
        return self._writes.value
