"""Discrete metadata caches for counters, MACs, and BMT nodes.

The paper's architecture (§V) assumes *separate* metadata caches, 128 KB
each by default (Table III).  The mapping from a protected data block to
its metadata blocks:

* **counter block** — one per 4 KB page: ``page = block >> 6``;
* **MAC block** — eight 64-bit MACs per 64 B block: ``block >> 3``;
* **BMT node** — identified by its tree label (8 sibling hashes form the
  64 B input of their parent node, and are cached under the parent's
  label).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.bmt import BMTGeometry
from repro.mem.cache import Cache
from repro.sim.stats import StatsRegistry
from repro.telemetry.bus import Telemetry
from repro.telemetry.events import EventKind


@dataclass
class MetadataLookup:
    """Hit/miss outcome for the three metadata structures."""

    counter_hit: bool
    mac_hit: bool


class MetadataCaches:
    """Bundles the counter, MAC, and BMT caches with their address maps."""

    def __init__(
        self,
        geometry: BMTGeometry,
        counter_bytes: int = 128 * 1024,
        mac_bytes: int = 128 * 1024,
        bmt_bytes: int = 128 * 1024,
        assoc: int = 8,
        ideal: bool = False,
        blocks_per_counter_block: int = 64,
        stats: Optional[StatsRegistry] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        """Create the three metadata caches.

        Args:
            blocks_per_counter_block: Data blocks covered by one 64 B
                counter block — 64 for the split organization (a 4 KB
                page), 8 for monolithic 64-bit counters.
        """
        if blocks_per_counter_block <= 0:
            raise ValueError("blocks_per_counter_block must be positive")
        registry = stats if stats is not None else StatsRegistry()
        self.geometry = geometry
        self.ideal = ideal
        self.blocks_per_counter_block = blocks_per_counter_block
        self.counter_cache = Cache("ctr", counter_bytes, assoc, stats=registry)
        self.mac_cache = Cache("mac", mac_bytes, assoc, stats=registry)
        self.bmt_cache = Cache("bmt", bmt_bytes, assoc, stats=registry)
        # Hot-path bindings: both standard organizations (64 split / 8
        # monolithic) are powers of two, so the counter map is a shift.
        self._counter_shift = (
            blocks_per_counter_block.bit_length() - 1
            if blocks_per_counter_block & (blocks_per_counter_block - 1) == 0
            else None
        )
        self._counter_access = self.counter_cache.access
        self._mac_access = self.mac_cache.access
        self._bmt_access = self.bmt_cache.access
        self._bmt_arity = geometry.arity
        # Telemetry: install instrumented *instance* methods only when a
        # bus is present, so the disabled path keeps the uninstrumented
        # class methods — zero overhead, not even a dead branch.
        if telemetry is not None and telemetry.config.cache_events and not ideal:
            self._instrument(telemetry)

    def _instrument(self, telemetry: Telemetry) -> None:
        """Shadow the access methods with event-emitting closures."""
        hit_kind, miss_kind, evict_kind = (
            EventKind.MDC_HIT,
            EventKind.MDC_MISS,
            EventKind.MDC_EVICT,
        )

        def make(track: str, cache_access, key_of):
            instant = telemetry.instant

            def access(data_key: int, is_write: bool) -> bool:
                key = key_of(data_key)
                hit, victim = cache_access(key, is_write)
                # clock read through the bus each call: the simulator
                # rebinds ``telemetry.clock`` after instrumentation.
                now = telemetry.clock()
                instant(hit_kind if hit else miss_kind, now, track, ident=key)
                if victim is not None:
                    instant(evict_kind, now, track, ident=victim.block)
                return hit

            return access

        self.access_counter = make(  # type: ignore[method-assign]
            "mdc.ctr", self._counter_access, self.counter_block_of
        )
        self.access_mac = make(  # type: ignore[method-assign]
            "mdc.mac", self._mac_access, self.mac_block_of
        )
        bmt_inner = make(
            "mdc.bmt", self._bmt_access, lambda label: (label - 1) // self._bmt_arity
        )

        def access_bmt(label: int, is_write: bool) -> bool:
            if label == 0:  # pinned root always hits, no cache touch
                return True
            return bmt_inner(label, is_write)

        self.access_bmt_node = access_bmt  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # address maps
    # ------------------------------------------------------------------

    def counter_block_of(self, data_block: int) -> int:
        """Counter block index covering a data block."""
        if self._counter_shift is not None:
            return data_block >> self._counter_shift
        return data_block // self.blocks_per_counter_block

    @staticmethod
    def mac_block_of(data_block: int) -> int:
        """MAC block index holding the data block's 8-byte MAC."""
        return data_block >> 3

    def bmt_cache_block_of(self, label: int) -> int:
        """Cache block identifier for a BMT node label.

        Sibling hashes are co-located: nodes that share a parent share a
        cache block, which is what gives BMT caching its locality.
        """
        if label == self.geometry.ROOT_LABEL:
            return self.geometry.ROOT_LABEL
        return self.geometry.parent(label)

    # ------------------------------------------------------------------
    # accesses
    # ------------------------------------------------------------------

    def access_counter(self, data_block: int, is_write: bool) -> bool:
        """Touch the counter block for a data access; returns hit."""
        if self.ideal:
            return True
        hit, _ = self._counter_access(self.counter_block_of(data_block), is_write)
        return hit

    def access_mac(self, data_block: int, is_write: bool) -> bool:
        """Touch the MAC block for a data access; returns hit."""
        if self.ideal:
            return True
        hit, _ = self._mac_access(data_block >> 3, is_write)
        return hit

    def access_bmt_node(self, label: int, is_write: bool) -> bool:
        """Touch a BMT node; returns hit.

        The root is pinned on-chip and always hits.
        """
        if self.ideal or label == 0:  # label 0 is the pinned root
            return True
        hit, _ = self._bmt_access((label - 1) // self._bmt_arity, is_write)
        return hit
