"""Persist-gathering Write Pending Queue with the two-step persist (2SP).

The WPQ sits in the memory controller and — via ADR — inside the
persistence domain: whatever has been *delivered* to it survives a
crash.  The 2SP mechanism (paper §IV-A1) uses it as the gathering point
for memory tuples:

1. **Gather & lock** — a persist's tuple components (ciphertext,
   counter, MAC) arrive and are held, flagged *incomplete*.
2. **Complete & release** — once every component has arrived *and* the
   BMT root update is acknowledged, the entry is flagged complete and
   its blocks may drain to NVM.

On power failure, entries still flagged incomplete are invalidated —
their contents never become visible post-crash, which is what makes a
tuple persist atomic.

Epoch persistency relaxes the locking: same-epoch entries drain as they
arrive (they are not locked), and the WPQ only tracks whether the
epoch's tuples have all arrived to declare the epoch complete.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.telemetry.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import Telemetry


def gather_before_release_violations(events) -> List[int]:
    """Check the 2SP invariant on a telemetry event stream.

    A persist's WPQ entry may only be *released* (``WPQ_RELEASE``) after
    it was *gathered* (``WPQ_ENQUEUE``) — releasing a persist that was
    never enqueued, or whose release is stamped before its enqueue,
    would let tuple blocks drain to NVM before the entry was locked in
    the persistence domain.  Used by the property and differential test
    suites to validate event streams from either timing engine.

    Args:
        events: Iterable of :class:`~repro.telemetry.events.TraceEvent`
            (any track; non-WPQ events are ignored), in emission order.

    Returns:
        Persist IDs whose release violates the invariant, in the order
        the offending releases appear.  Empty means the stream is clean.
    """
    enqueued_at: Dict[int, int] = {}
    violations: List[int] = []
    for event in events:
        if event.kind is EventKind.WPQ_ENQUEUE:
            # First enqueue wins: re-enqueueing the same persist id is
            # not part of the 2SP protocol and must not reset the check.
            enqueued_at.setdefault(event.ident, event.time)
        elif event.kind is EventKind.WPQ_RELEASE:
            gathered = enqueued_at.get(event.ident)
            if gathered is None or event.time < gathered:
                violations.append(event.ident)
    return violations


class TupleItem(enum.Enum):
    """Components of the crash-recovery memory tuple (C, γ, M, R)."""

    DATA = "data"
    COUNTER = "counter"
    MAC = "mac"
    ROOT_ACK = "root_ack"


REQUIRED_ITEMS = frozenset({TupleItem.DATA, TupleItem.COUNTER, TupleItem.MAC, TupleItem.ROOT_ACK})


class WPQFullError(RuntimeError):
    """Raised when allocating into a full WPQ."""


@dataclass
class WPQEntry:
    """One persist being gathered in the WPQ."""

    persist_id: int
    epoch_id: Optional[int] = None
    locked: bool = True
    arrived: Set[TupleItem] = field(default_factory=set)
    payloads: Dict[TupleItem, object] = field(default_factory=dict)
    complete: bool = False
    drained: Set[TupleItem] = field(default_factory=set)

    def missing(self) -> Set[TupleItem]:
        return set(REQUIRED_ITEMS) - self.arrived


class WritePendingQueue:
    """A bounded, FIFO-ordered persist gathering queue."""

    def __init__(
        self,
        capacity: int = 32,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("WPQ capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, WPQEntry]" = OrderedDict()
        self._known_epochs: Set[int] = set()
        self.persists_completed = 0
        self._telemetry = telemetry

    def _emit(self, kind, persist_id: int, args: Optional[dict] = None) -> None:
        """Record one WPQ event (functional layer: logical clock)."""
        tel = self._telemetry
        if tel is not None:
            tel.instant(kind, tel.clock(), "wpq", ident=persist_id, args=args)
            tel.sample("wpq.occupancy", tel.clock(), len(self._entries))

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def entry(self, persist_id: int) -> WPQEntry:
        try:
            return self._entries[persist_id]
        except KeyError:
            raise KeyError(f"persist {persist_id} not in WPQ") from None

    # ------------------------------------------------------------------
    # 2SP step 1: gather
    # ------------------------------------------------------------------

    def allocate(
        self,
        persist_id: int,
        epoch_id: Optional[int] = None,
        locked: bool = True,
    ) -> WPQEntry:
        """Create an entry for a new persist.

        Args:
            persist_id: Unique, monotonically increasing persist ID.
            epoch_id: Owning epoch under epoch persistency.
            locked: ``True`` for strict persistency / future epochs
                (blocks are held until complete); ``False`` for the
                current epoch under EP (blocks drain as they come).

        Raises:
            WPQFullError: No free entry.
        """
        if self.full:
            raise WPQFullError(f"WPQ full ({self.capacity} entries)")
        if persist_id in self._entries:
            raise ValueError(f"persist {persist_id} already allocated")
        entry = WPQEntry(persist_id=persist_id, epoch_id=epoch_id, locked=locked)
        self._entries[persist_id] = entry
        if epoch_id is not None:
            self._known_epochs.add(epoch_id)
        if self._telemetry is not None:
            self._emit(
                EventKind.WPQ_ENQUEUE,
                persist_id,
                args={"epoch": epoch_id, "locked": locked},
            )
        return entry

    def deliver(
        self,
        persist_id: int,
        item: TupleItem,
        payload: object = None,
    ) -> WPQEntry:
        """Deliver one tuple component (or the BMT-root ack) to an entry."""
        entry = self.entry(persist_id)
        entry.arrived.add(item)
        if payload is not None:
            entry.payloads[item] = payload
        if not entry.locked and item is not TupleItem.ROOT_ACK:
            # EP: unlocked components drain to NVM as they arrive.
            entry.drained.add(item)
        if not entry.missing():
            self._mark_complete(entry)
        return entry

    def ack_root(self, persist_id: int) -> WPQEntry:
        """Acknowledge that the persist's BMT root update finished."""
        return self.deliver(persist_id, TupleItem.ROOT_ACK)

    def _mark_complete(self, entry: WPQEntry) -> None:
        if not entry.complete:
            entry.complete = True
            self.persists_completed += 1

    # ------------------------------------------------------------------
    # 2SP step 2: release
    # ------------------------------------------------------------------

    def drain_completed(self) -> List[WPQEntry]:
        """Release completed entries (FIFO) to NVM and free their slots."""
        released = []
        while self._entries:
            head_id = next(iter(self._entries))
            head = self._entries[head_id]
            if not head.complete:
                break
            head.drained = {
                item for item in head.arrived if item is not TupleItem.ROOT_ACK
            }
            released.append(self._entries.popitem(last=False)[1])
            if self._telemetry is not None:
                self._emit(EventKind.WPQ_RELEASE, head.persist_id)
        return released

    def epoch_known(self, epoch_id: int) -> bool:
        """Whether any entry was ever allocated under this epoch id."""
        return epoch_id in self._known_epochs

    def epoch_complete(self, epoch_id: int) -> bool:
        """True when no resident entry of the epoch is still incomplete.

        An epoch whose entries have all drained is complete; an epoch id
        that was *never allocated* is a caller bug, not a complete epoch.

        Raises:
            KeyError: ``epoch_id`` was never allocated in this WPQ.
        """
        if epoch_id not in self._known_epochs:
            raise KeyError(f"epoch {epoch_id} was never allocated in this WPQ")
        return all(
            entry.complete
            for entry in self._entries.values()
            if entry.epoch_id == epoch_id
        )

    def unlock_epoch(self, epoch_id: int) -> None:
        """Unlock a future epoch's entries once the prior epoch completed."""
        for entry in self._entries.values():
            if entry.epoch_id == epoch_id and entry.locked:
                entry.locked = False
                entry.drained.update(
                    item for item in entry.arrived if item is not TupleItem.ROOT_ACK
                )
                if self._telemetry is not None:
                    self._emit(
                        EventKind.WPQ_UNLOCK,
                        entry.persist_id,
                        args={"epoch": epoch_id},
                    )

    # ------------------------------------------------------------------
    # crash semantics (ADR)
    # ------------------------------------------------------------------

    def crash_flush(self) -> Tuple[List[WPQEntry], List[WPQEntry]]:
        """Apply ADR power-failure semantics.

        Returns:
            ``(persisted, invalidated)``.  Completed entries and the
            already-drained components of unlocked entries persist;
            locked incomplete entries are invalidated wholesale.
        """
        persisted: List[WPQEntry] = []
        invalidated: List[WPQEntry] = []
        for entry in self._entries.values():
            if entry.complete:
                entry.drained = {
                    item for item in entry.arrived if item is not TupleItem.ROOT_ACK
                }
                persisted.append(entry)
            elif not entry.locked and entry.drained:
                persisted.append(entry)
            else:
                invalidated.append(entry)
        self._entries.clear()
        if self._telemetry is not None:
            for entry in persisted:
                self._emit(
                    EventKind.WPQ_RELEASE, entry.persist_id, args={"crash": True}
                )
            for entry in invalidated:
                self._emit(EventKind.WPQ_INVALIDATE, entry.persist_id)
        return persisted, invalidated
