"""A set-associative, write-back/write-through cache model.

The cache operates on *block numbers* (byte address >> 6); the caller
owns the address arithmetic.  Replacement is true LRU via per-set
ordered dictionaries, which keeps lookups O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.stats import StatsRegistry


@dataclass
class CacheLine:
    """Residency metadata for one cached block."""

    block: int
    dirty: bool = False


class Cache:
    """Set-associative LRU cache keyed by block number.

    Args:
        name: Label used in statistics.
        size_bytes: Total capacity.
        assoc: Ways per set.
        block_bytes: Line size (default 64, as everywhere in the paper).
        write_through: If ``True``, stores never set the dirty bit (the
            write is assumed to be forwarded down immediately) — used by
            the strict-persistency configurations.
        stats: Optional registry to record hits/misses/evictions into.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        block_bytes: int = 64,
        write_through: bool = False,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or block_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        num_lines = size_bytes // block_bytes
        if num_lines < assoc:
            raise ValueError("cache smaller than one set")
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, num_lines // assoc)
        self.write_through = write_through
        self._sets: Dict[int, OrderedDict[int, CacheLine]] = {}
        registry = stats if stats is not None else StatsRegistry()
        self._hits = registry.counter(f"{name}.hits")
        self._misses = registry.counter(f"{name}.misses")
        self._evictions = registry.counter(f"{name}.evictions")
        self._dirty_evictions = registry.counter(f"{name}.dirty_evictions")

    def _set_for(self, block: int) -> OrderedDict[int, CacheLine]:
        index = block % self.num_sets
        lines = self._sets.get(index)
        if lines is None:
            lines = OrderedDict()
            self._sets[index] = lines
        return lines

    def access(self, block: int, is_write: bool) -> Tuple[bool, Optional[CacheLine]]:
        """Look up a block, filling on miss.

        Args:
            block: Block number.
            is_write: Whether the access dirties the line.

        Returns:
            ``(hit, victim)`` where ``victim`` is the evicted line (with
            its dirty bit intact) or ``None``.
        """
        lines = self._set_for(block)
        line = lines.get(block)
        if line is not None:
            lines.move_to_end(block)
            if is_write and not self.write_through:
                line.dirty = True
            self._hits.add()
            return True, None
        self._misses.add()
        victim = None
        if len(lines) >= self.assoc:
            _, victim = lines.popitem(last=False)
            self._evictions.add()
            if victim.dirty:
                self._dirty_evictions.add()
        new_line = CacheLine(block, dirty=is_write and not self.write_through)
        lines[block] = new_line
        return False, victim

    def probe(self, block: int) -> Optional[CacheLine]:
        """Check residency without updating LRU or filling."""
        return self._sets.get(block % self.num_sets, {}).get(block)

    def fill(self, block: int, dirty: bool = False) -> Optional[CacheLine]:
        """Insert a block (e.g. a victim from the level above).

        Returns:
            The evicted line, if any.
        """
        lines = self._set_for(block)
        line = lines.get(block)
        if line is not None:
            lines.move_to_end(block)
            line.dirty = line.dirty or dirty
            return None
        victim = None
        if len(lines) >= self.assoc:
            _, victim = lines.popitem(last=False)
            self._evictions.add()
            if victim.dirty:
                self._dirty_evictions.add()
        lines[block] = CacheLine(block, dirty=dirty)
        return victim

    def clean(self, block: int) -> bool:
        """Clear a block's dirty bit (cache-line write-back, ``clwb``).

        Returns:
            ``True`` if the block was present and dirty.
        """
        line = self.probe(block)
        if line is not None and line.dirty:
            line.dirty = False
            return True
        return False

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove a block, returning its line if it was present."""
        lines = self._sets.get(block % self.num_sets)
        if lines is None:
            return None
        return lines.pop(block, None)

    def dirty_blocks(self) -> List[int]:
        """All currently dirty block numbers (used by epoch flushes)."""
        out = []
        for lines in self._sets.values():
            out.extend(line.block for line in lines.values() if line.dirty)
        return out

    def flush_all(self) -> List[int]:
        """Write back and clean every dirty line; returns their blocks."""
        flushed = []
        for lines in self._sets.values():
            for line in lines.values():
                if line.dirty:
                    line.dirty = False
                    flushed.append(line.block)
        return flushed

    def __iter__(self) -> Iterator[CacheLine]:
        for lines in self._sets.values():
            yield from lines.values()

    def __len__(self) -> int:
        return sum(len(lines) for lines in self._sets.values())

    def __repr__(self) -> str:
        return (
            f"Cache({self.name!r}, sets={self.num_sets}, assoc={self.assoc}, "
            f"resident={len(self)})"
        )
