"""A set-associative, write-back/write-through cache model.

The cache operates on *block numbers* (byte address >> 6); the caller
owns the address arithmetic.  Replacement is true LRU via per-set
ordered dictionaries, which keeps lookups O(1).

This sits on the simulator's hottest path (every load, store, and
metadata touch lands here), so the implementation favours cheap
arithmetic: the set array is preallocated, power-of-two set counts use
a bitmask instead of a modulo, and the stats-counter increments are
pre-bound methods.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from repro.sim.stats import StatsRegistry


class CacheLine:
    """Residency metadata for one cached block."""

    __slots__ = ("block", "dirty")

    def __init__(self, block: int, dirty: bool = False) -> None:
        self.block = block
        self.dirty = dirty

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CacheLine)
            and self.block == other.block
            and self.dirty == other.dirty
        )

    def __repr__(self) -> str:
        return f"CacheLine(block={self.block}, dirty={self.dirty})"


class Cache:
    """Set-associative LRU cache keyed by block number.

    Args:
        name: Label used in statistics.
        size_bytes: Total capacity.
        assoc: Ways per set.
        block_bytes: Line size (default 64, as everywhere in the paper).
        write_through: If ``True``, stores never set the dirty bit (the
            write is assumed to be forwarded down immediately) — used by
            the strict-persistency configurations.
        stats: Optional registry to record hits/misses/evictions into.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        block_bytes: int = 64,
        write_through: bool = False,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or block_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        num_lines = size_bytes // block_bytes
        if num_lines < assoc:
            raise ValueError("cache smaller than one set")
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, num_lines // assoc)
        self.write_through = write_through
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        # Set counts are powers of two for every paper configuration;
        # fall back to a modulo only for odd sweep values.
        self._mask = self.num_sets - 1 if self.num_sets & (self.num_sets - 1) == 0 else None
        registry = stats if stats is not None else StatsRegistry()
        self._hits = registry.counter(f"{name}.hits")
        self._misses = registry.counter(f"{name}.misses")
        self._evictions = registry.counter(f"{name}.evictions")
        self._dirty_evictions = registry.counter(f"{name}.dirty_evictions")

    def _set_index(self, block: int) -> int:
        if self._mask is not None:
            return block & self._mask
        return block % self.num_sets

    def _set_for(self, block: int) -> "OrderedDict[int, CacheLine]":
        return self._sets[self._set_index(block)]

    def access(self, block: int, is_write: bool) -> Tuple[bool, Optional[CacheLine]]:
        """Look up a block, filling on miss.

        Args:
            block: Block number.
            is_write: Whether the access dirties the line.

        Returns:
            ``(hit, victim)`` where ``victim`` is the evicted line (with
            its dirty bit intact) or ``None``.
        """
        mask = self._mask
        lines = self._sets[block & mask if mask is not None else block % self.num_sets]
        line = lines.get(block)
        if line is not None:
            lines.move_to_end(block)
            if is_write and not self.write_through:
                line.dirty = True
            self._hits.value += 1
            return True, None
        self._misses.value += 1
        victim = None
        if len(lines) >= self.assoc:
            _, victim = lines.popitem(last=False)
            self._evictions.value += 1
            if victim.dirty:
                self._dirty_evictions.value += 1
        lines[block] = CacheLine(block, dirty=is_write and not self.write_through)
        return False, victim

    def probe(self, block: int) -> Optional[CacheLine]:
        """Check residency without updating LRU or filling."""
        return self._set_for(block).get(block)

    def fill(self, block: int, dirty: bool = False) -> Optional[CacheLine]:
        """Insert a block (e.g. a victim from the level above).

        Returns:
            The evicted line, if any.
        """
        lines = self._set_for(block)
        line = lines.get(block)
        if line is not None:
            lines.move_to_end(block)
            line.dirty = line.dirty or dirty
            return None
        victim = None
        if len(lines) >= self.assoc:
            _, victim = lines.popitem(last=False)
            self._evictions.add()
            if victim.dirty:
                self._dirty_evictions.add()
        lines[block] = CacheLine(block, dirty=dirty)
        return victim

    def clean(self, block: int) -> bool:
        """Clear a block's dirty bit (cache-line write-back, ``clwb``).

        Returns:
            ``True`` if the block was present and dirty.
        """
        line = self._set_for(block).get(block)
        if line is not None and line.dirty:
            line.dirty = False
            return True
        return False

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove a block, returning its line if it was present."""
        return self._set_for(block).pop(block, None)

    def dirty_blocks(self) -> List[int]:
        """All currently dirty block numbers (used by epoch flushes)."""
        out = []
        for lines in self._sets:
            out.extend(line.block for line in lines.values() if line.dirty)
        return out

    def flush_all(self) -> List[int]:
        """Write back and clean every dirty line; returns their blocks."""
        flushed = []
        for lines in self._sets:
            for line in lines.values():
                if line.dirty:
                    line.dirty = False
                    flushed.append(line.block)
        return flushed

    def __iter__(self) -> Iterator[CacheLine]:
        for lines in self._sets:
            yield from lines.values()

    def __len__(self) -> int:
        return sum(len(lines) for lines in self._sets)

    def __repr__(self) -> str:
        return (
            f"Cache({self.name!r}, sets={self.num_sets}, assoc={self.assoc}, "
            f"resident={len(self)})"
        )
