"""Memory-system substrate: caches, metadata caches, WPQ, and NVM timing.

The models here are deliberately structural (set-associative arrays,
queues with occupancy) rather than byte-accurate: the functional
security state lives in :mod:`repro.crypto`, while these components
provide hit/miss behaviour, write-back traffic, persist gathering, and
queueing delay for the timing simulations.
"""

from repro.mem.cache import Cache, CacheLine
from repro.mem.hierarchy import CacheHierarchy
from repro.mem.metadata_cache import MetadataCaches
from repro.mem.nvm import NVMModel
from repro.mem.wpq import WritePendingQueue, WPQEntry, TupleItem

__all__ = [
    "Cache",
    "CacheLine",
    "CacheHierarchy",
    "MetadataCaches",
    "NVMModel",
    "WritePendingQueue",
    "WPQEntry",
    "TupleItem",
]
