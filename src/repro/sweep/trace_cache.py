"""Content-addressed on-disk cache of packed binary traces.

Sweep workers used to regenerate every trace from ``(benchmark,
kilo_instructions, seed)`` — a pure-Python RNG walk that dominates cold
sweep start-up.  Traces are deterministic functions of those inputs plus
the *generator version* (the ``repro.workloads`` sources), so this cache
keys each trace by a SHA-256 digest over exactly that tuple and stores
the packed binary format written by
:meth:`~repro.workloads.trace.MemoryTrace.save_binary`.  A warm hit is a
single ``array.fromfile`` read of the four columns — orders of magnitude
faster than re-running the generator — and any edit to the generator
sources invalidates the whole cache.

Layout: one binary file per trace under
``<root>/<key[:2]>/<key>.trace``.  The root defaults to
``~/.cache/plp-repro/traces`` and can be moved with the
``PLP_TRACE_CACHE`` environment variable; setting
``PLP_NO_TRACE_CACHE=1`` disables the cache entirely (the generator
runs every time, as before).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.workloads.trace import MemoryTrace, TraceFormatError

_GENERATOR_VERSION: Optional[str] = None


def generator_version() -> str:
    """Digest of the ``repro.workloads`` sources (cache invalidation key).

    Any change to the record format, the synthetic generators, or the
    profile calibration changes the traces they produce, so the digest
    covers every ``.py`` file in the package.
    """
    global _GENERATOR_VERSION
    if _GENERATOR_VERSION is None:
        root = Path(__file__).resolve().parent.parent / "workloads"
        digest = hashlib.sha256()
        for path in sorted(root.glob("*.py")):
            digest.update(path.name.encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _GENERATOR_VERSION = digest.hexdigest()[:16]
    return _GENERATOR_VERSION


def trace_key(benchmark: str, kilo_instructions: int, seed: int) -> str:
    """Content-addressed key for one deterministic benchmark trace."""
    blob = f"{benchmark}\0{kilo_instructions}\0{seed}\0{generator_version()}"
    return hashlib.sha256(blob.encode()).hexdigest()


def default_trace_cache_root() -> Path:
    env = os.environ.get("PLP_TRACE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "plp-repro" / "traces"


def trace_caching_disabled() -> bool:
    return os.environ.get("PLP_NO_TRACE_CACHE", "") not in ("", "0")


class TraceCache:
    """Directory of content-addressed packed binary traces."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_trace_cache_root()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.trace"

    def get(self, benchmark: str, kilo_instructions: int, seed: int) -> Optional[MemoryTrace]:
        """Load a cached packed trace; counts the hit/miss."""
        path = self.path_for(trace_key(benchmark, kilo_instructions, seed))
        try:
            trace = MemoryTrace.load_binary(path)
        except (OSError, TraceFormatError):
            # Missing, unreadable, or corrupt (e.g. a crashed writer
            # before atomic-rename semantics): treat as a miss and let
            # the generator rebuild it.
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def put(self, benchmark: str, kilo_instructions: int, seed: int, trace: MemoryTrace) -> None:
        """Store a packed trace atomically (write-then-rename).

        The payload is packed once with :meth:`MemoryTrace.to_bytes` and
        written in a single call — ``save_binary``'s per-column
        ``tofile`` writes plus a ``mkstemp`` round-trip made the cold
        cache measurably slower than not caching at all on small traces.
        The temp name is pid-suffixed, so concurrent writers (sweep
        workers racing on the same cold key) never collide, and the
        ``os.replace`` keeps readers crash-consistent.
        """
        path = self.path_for(trace_key(benchmark, kilo_instructions, seed))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(trace.to_bytes())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_or_generate(
        self, benchmark: str, kilo_instructions: int, seed: int = 2020
    ) -> MemoryTrace:
        """The trace for a benchmark: packed bytes if cached, else generated.

        A miss runs the synthetic generator and stores the packed result
        so every later worker (and every later process) loads bytes
        instead of re-walking the RNG.
        """
        from repro.workloads.spec_profiles import profile_trace

        cached = self.get(benchmark, kilo_instructions, seed)
        if cached is not None:
            return cached
        trace = profile_trace(benchmark, kilo_instructions, seed)
        self.put(benchmark, kilo_instructions, seed, trace)
        return trace

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return f"TraceCache(root={str(self.root)!r}, hits={self.hits}, misses={self.misses})"
