"""Epoch-safe trace sharding across the persistent worker pool.

One huge trace, many processes, bit-identical results.  The batched
engine factors a run into a *functional chain* (prepass + metadata
replay — sequential by nature, every op's outcome depends on all prior
state) and a *timed pass 2* (dispatching the eventful-op partition
through the scoreboards).  The two cost about the same, which dooms the
obvious "replay the prefix redundantly in every worker" plan: with
functional fraction F and pass-2 fraction P of the run, S-way redundant
prefixes give wall-clock ``max(F + P/S, P + F/S)`` — under 1.4x for the
measured F≈0.6 splits.  What does scale is a *state-handoff pipeline*:

* the trace is cut into S shards at epoch-drain boundaries
  (:func:`plan_shards`);
* worker ``w`` replays **only its shard** — it receives the functional
  state the previous shard ended with (replacement dicts, dirty window,
  epoch sets, metadata cache sets, combiner LRU; all plain picklable
  containers exported by
  :class:`~repro.sim.batched.FunctionalPrepass` /
  :class:`~repro.sim.batched.MetadataReplay`), feeds its chunk range,
  and returns a packed :class:`ShardArtifact` plus the end state;
* the parent submits shard ``w+1`` the moment shard ``w``'s state
  arrives, then overlaps shard ``w``'s timed pass 2 on its own
  simulator while the worker chews on ``w+1``.

The functional chain and pass 2 thus run concurrently but each stays
strictly in trace order, so every handler sees exactly the state it
would in an unsharded run — bit-identity is by construction, and
:func:`run_sharded` additionally *checks* it: the parent's simulator
yields the direct whole-run result for free, and the merged per-shard
partial :class:`~repro.system.timing.SimResult`\\ s (exact telescoping
deltas; see :func:`~repro.system.timing.merge_results`) must equal it.
Wall-clock approaches ``max(F, P)`` plus the (cheap) handoff, a ceiling
of roughly 1.6-2.2x depending on scheme — and it only ever needs one
worker in flight, so two cores suffice.
"""

from __future__ import annotations

from array import array
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.sim.batched import (
    FunctionalPrepass,
    MetadataReplay,
    _EV_LOAD,
    _EV_STORE,
    _cache_dims,
    _record_epoch,
)
from repro.sim.stream import ScriptFeed, chunk_ticks, wants_script
from repro.system.config import SystemConfig
from repro.system.timing import SimResult, TraceSimulator, merge_results
from repro.workloads.trace import (
    KIND_SFENCE,
    KIND_STORE,
    MemoryTrace,
    TraceChunk,
    TraceReader,
)

TraceSource = Union[str, Path, MemoryTrace]


def _source_spec(source: TraceSource) -> Tuple[str, object, str, int]:
    """Normalize a shard source to a picklable spec plus (name, ops)."""
    if isinstance(source, MemoryTrace):
        return ("trace", source, source.name, len(source))
    path = str(source)
    with TraceReader(path) as reader:
        summary = reader.summary()
    return ("path", path, summary.name, summary.record_count)


def _iter_source_chunks(kind: str, payload, start: int, stop: int):
    """Yield the packed column chunks covering ops ``[start, stop)``."""
    if kind == "path":
        with TraceReader(payload) as reader:
            yield from reader.chunks(start, stop)
    else:
        yield TraceChunk(
            start,
            payload.kind_codes[start:stop],
            payload.addresses[start:stop],
            payload.gaps[start:stop],
            payload.persistent_flags[start:stop],
        )


def _scan_columns(kind: str, payload) -> Tuple[np.ndarray, np.ndarray]:
    """The kind and persist-flag columns as numpy arrays (for planning)."""
    kinds_parts: List[np.ndarray] = []
    flags_parts: List[np.ndarray] = []
    if kind == "path":
        with TraceReader(payload) as reader:
            for chunk in reader.chunks():
                kinds_parts.append(
                    np.frombuffer(memoryview(chunk.kind_codes), dtype=np.uint8)
                )
                flags_parts.append(
                    np.frombuffer(memoryview(chunk.persistent_flags), dtype=np.uint8)
                )
    else:
        kinds_parts.append(np.frombuffer(memoryview(payload.kind_codes), dtype=np.uint8))
        flags_parts.append(
            np.frombuffer(memoryview(payload.persistent_flags), dtype=np.uint8)
        )
    if not kinds_parts:
        return np.zeros(0, dtype=np.uint8), np.zeros(0, dtype=np.uint8)
    return np.concatenate(kinds_parts), np.concatenate(flags_parts)


def plan_shards(source: TraceSource, shards: int, config: SystemConfig) -> List[int]:
    """Interior shard split indices for an ``S``-way cut of ``source``.

    For epoch-persistency schemes (``o3``/``coalescing``) every split
    must land on an *epoch-drain boundary* — a point where the epoch
    store count and dirty set are empty — so that no epoch spans two
    shards and per-shard partial results stay meaningful.  The aligned
    point nearest at-or-after each even target ``w*n/S`` is found from
    the kind/persist-flag columns alone: the epoch count entering any
    position is ``(cumulative qualifying stores - count at the last
    sfence) mod epoch_size`` (every sfence resets the count, and
    implicit closes fire exactly at multiples of the epoch size), which
    two vectorized passes precompute; a short forward walk from each
    target then lands on the next drain point.  Schemes without epochs
    split at the even targets directly — the handoff state makes any
    cut exact; alignment is about clean shard semantics, not
    correctness.

    Returns a strictly increasing, deduplicated list of indices in
    ``(0, n)``; fewer than ``shards - 1`` entries means some targets had
    no drain boundary before end-of-trace.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    kind, payload, _name, n = _source_spec(source)
    if shards == 1 or n < 2:
        return []
    targets = sorted({(w * n) // shards for w in range(1, shards)})
    targets = [t for t in targets if 0 < t < n]
    if not config.scheme.uses_epochs:
        return targets
    kinds, flags = _scan_columns(kind, payload)
    if config.protect_stack:
        qualifying = kinds == KIND_STORE
    else:
        qualifying = (kinds == KIND_STORE) & (flags != 0)
    cum_q = np.cumsum(qualifying, dtype=np.int64)
    sfence_pos = np.nonzero(kinds == KIND_SFENCE)[0]
    esize = config.epoch_size
    qual_list = qualifying  # numpy bool array; scalar reads below
    kind_arr = kinds
    splits: List[int] = []
    for target in targets:
        # Epoch store count entering op ``target``.
        j = int(np.searchsorted(sfence_pos, target)) - 1
        base = int(cum_q[sfence_pos[j]]) if j >= 0 else 0
        count = int(cum_q[target - 1]) - base
        if esize is not None:
            count %= esize
        split = target if count == 0 else None
        if split is None:
            i = target
            while i < n:
                if kind_arr[i] == KIND_SFENCE:
                    split = i + 1
                    break
                if qual_list[i]:
                    count += 1
                    if esize is not None and count >= esize:
                        split = i + 1
                        break
                i += 1
        if split is not None and 0 < split < n and (not splits or split > splits[-1]):
            splits.append(split)
    return splits


class ShardArtifact:
    """One shard's pass-2 input, packed into flat arrays for IPC.

    The eventful-op partition rides in parallel columns (absolute op
    index, tag, block, NVM-access flag, window victim with ``-1`` for
    none, extra, precomputed clock tick) plus two ragged columns
    (write-back victims and flush blocks, each as per-event counts over
    a flat value array).  The metadata script is packed the same way:
    hit/miss stream and combiner verdicts as byte arrays, BMT walks as
    per-walk lengths/misses over a flat cost array.  ``pre_delta`` /
    ``md_delta`` are this shard's movement of the prepass / metadata
    hit-miss counters, and ``snap`` carries the warmup snapshot's
    (ticks, instructions) when the boundary falls inside this shard.
    """

    __slots__ = (
        "start",
        "stop",
        "ev_idx",
        "ev_tag",
        "ev_block",
        "ev_mem",
        "ev_victim",
        "ev_extra",
        "ev_tick",
        "wb_counts",
        "wb_flat",
        "flush_counts",
        "flush_flat",
        "stream",
        "comb",
        "walk_lens",
        "walk_misses",
        "walk_costs",
        "pre_delta",
        "md_delta",
        "snap",
        "end_ticks",
        "end_instr",
    )


def _pack_artifact(
    start: int,
    stop: int,
    events: List[tuple],
    ticks: List[int],
    script: Optional[Tuple[List[bool], List[Tuple[List[int], int]], List[bool]]],
    pre_delta: Tuple[int, ...],
    md_delta: Optional[Tuple[int, ...]],
    snap: Optional[Tuple[int, int]],
    end_ticks: int,
    end_instr: int,
) -> ShardArtifact:
    art = ShardArtifact()
    art.start = start
    art.stop = stop
    art.ev_idx = array("q", [ev[0] for ev in events])
    art.ev_tag = array("b", [ev[1] for ev in events])
    art.ev_block = array("q", [ev[2] for ev in events])
    art.ev_mem = array("b", [1 if ev[4] else 0 for ev in events])
    art.ev_victim = array("q", [-1 if ev[5] is None else ev[5] for ev in events])
    art.ev_extra = array("q", [ev[7] for ev in events])
    art.ev_tick = array("q", ticks)
    wb_counts = array("i")
    wb_flat = array("q")
    flush_counts = array("i")
    flush_flat = array("q")
    for ev in events:
        wbs = ev[3]
        wb_counts.append(len(wbs))
        wb_flat.extend(wbs)
        flush = ev[6]
        if flush is None:
            flush_counts.append(0)
        else:
            flush_counts.append(len(flush))
            flush_flat.extend(flush)
    art.wb_counts = wb_counts
    art.wb_flat = wb_flat
    art.flush_counts = flush_counts
    art.flush_flat = flush_flat
    if script is None:
        art.stream = art.comb = None
        art.walk_lens = art.walk_misses = art.walk_costs = None
    else:
        stream, walks, comb = script
        art.stream = array("b", [1 if hit else 0 for hit in stream])
        art.comb = array("b", [1 if hit else 0 for hit in comb])
        art.walk_lens = array("i", [len(costs) for costs, _misses in walks])
        art.walk_misses = array("i", [misses for _costs, misses in walks])
        walk_costs = array("q")
        for costs, _misses in walks:
            walk_costs.extend(costs)
        art.walk_costs = walk_costs
    art.pre_delta = pre_delta
    art.md_delta = md_delta
    art.snap = snap
    art.end_ticks = end_ticks
    art.end_instr = end_instr
    return art


def _unpack_script(art: ShardArtifact):
    """Rebuild the (stream, walks, comb) lists a ScriptFeed consumes."""
    stream = [bool(v) for v in art.stream]
    comb = [bool(v) for v in art.comb]
    walks = []
    pos = 0
    costs_flat = art.walk_costs
    for length, misses in zip(art.walk_lens, art.walk_misses):
        walks.append((costs_flat[pos : pos + length].tolist(), misses))
        pos += length
    return stream, walks, comb


def _make_worker_prepass(config: SystemConfig) -> FunctionalPrepass:
    scheme = config.scheme
    if scheme.uses_epochs:
        cls: str = "ep"
        esize: Optional[int] = config.epoch_size
    elif scheme.write_through:
        cls, esize = "wt", None
    else:
        cls, esize = "wb", None
    return FunctionalPrepass(
        cls,
        esize,
        config.protect_stack,
        _cache_dims(config.l1_bytes, config.l1_assoc),
        _cache_dims(config.l2_bytes, config.l2_assoc),
        _cache_dims(config.l3_bytes, config.l3_assoc),
    )


def _make_worker_replay(config: SystemConfig, boundary: int) -> MetadataReplay:
    geometry = config.geometry()
    return MetadataReplay(
        boundary,
        config.scheme,
        geometry,
        config.blocks_per_counter_block,
        config.mac_latency,
        config.nvm.read_latency,
        _cache_dims(config.counter_cache_bytes, config.metadata_assoc),
        _cache_dims(config.mac_cache_bytes, config.metadata_assoc),
        _cache_dims(config.bmt_cache_bytes, config.metadata_assoc),
    )


def _shard_worker(payload) -> Tuple[ShardArtifact, tuple]:
    """Advance the functional chain over one shard (pool worker body).

    Replays prepass + metadata script for ops ``[start, stop)`` from the
    carried state, packs the shard's pass-2 artifact, and exports the
    end state for the next shard's worker.
    """
    (
        source_kind,
        source_payload,
        start,
        stop,
        config,
        boundary,
        scripted,
        pre_state,
        md_state,
        tick_base,
        instr_base,
        is_last,
    ) = payload
    pre = _make_worker_prepass(config)
    if pre_state is not None:
        pre.load_state(pre_state)
    if pre.next_index != start:
        raise RuntimeError(
            f"shard state ends at op {pre.next_index}, shard starts at {start}"
        )
    md = _make_worker_replay(config, boundary) if scripted else None
    if md is not None and md_state is not None:
        md.load_state(md_state)
    pre_before = pre.counters
    md_before = md.counts if md is not None else None

    events_all: List[tuple] = []
    ticks_all: List[int] = []
    snap: Optional[Tuple[int, int]] = None
    for chunk in _iter_source_chunks(source_kind, source_payload, start, stop):
        if not len(chunk):
            continue
        cs = chunk.start
        tick_list, chunk_total, instr_list = chunk_ticks(chunk)
        if cs <= boundary - 1 < cs + len(chunk):
            snap = (
                tick_base + tick_list[boundary - 1 - cs],
                instr_base + instr_list[boundary - 1 - cs],
            )
        events = pre.feed(chunk.kind_codes, chunk.addresses, chunk.persistent_flags)
        for ev in events:
            ticks_all.append(tick_base + tick_list[ev[0] - cs])
        if md is not None and events:
            md.feed(events)
        events_all.extend(events)
        tick_base += chunk_total
        instr_base += instr_list[-1]
    if pre.next_index != stop:
        raise RuntimeError(
            f"shard [{start}, {stop}) fed {pre.next_index - start} ops"
        )
    if is_last:
        tail = pre.finish()
        if tail:
            if md is not None:
                md.feed(tail)
            events_all.extend(tail)
            ticks_all.extend(tick_base for _ in tail)

    script = md.take() if md is not None else None
    pre_delta = tuple(a - b for a, b in zip(pre.counters, pre_before))
    md_delta = (
        tuple(a - b for a, b in zip(md.counts, md_before)) if md is not None else None
    )
    artifact = _pack_artifact(
        start,
        stop,
        events_all,
        ticks_all,
        script,
        pre_delta,
        md_delta,
        snap,
        tick_base,
        instr_base,
    )
    state = (
        pre.export_state(),
        md.export_state() if md is not None else None,
        tick_base,
        instr_base,
    )
    return artifact, state


def _dispatch_artifact(sim, art: ShardArtifact, boundary, window, snap):
    """Parent-side pass 2 over one shard's packed events.

    Mirrors ``run_batched``'s dispatch loop, reading the packed columns
    directly; returns the (possibly newly taken) warmup window.
    """
    epochs = sim.epochs
    handle_writeback = sim._handle_writeback
    allocate_stall = sim._allocate_stall
    load_timed = sim._load_timed
    flush_timed = sim._flush_timed
    persist_store = sim._persist_store
    wb_flat = art.wb_flat
    flush_flat = art.flush_flat
    wpos = fpos = 0
    for i in range(len(art.ev_idx)):
        op_idx = art.ev_idx[i]
        if window is None and op_idx >= boundary:
            sim._ticks = snap[0]
            sim._in_warmup = False
            window = sim._snapshot(snap[1])
        sim._ticks = art.ev_tick[i]
        tag = art.ev_tag[i]
        wn = art.wb_counts[i]
        wbs = tuple(wb_flat[wpos : wpos + wn]) if wn else ()
        wpos += wn
        fn = art.flush_counts[i]
        if fn:
            flush = tuple(flush_flat[fpos : fpos + fn])
            fpos += fn
        else:
            flush = None
        if tag == _EV_STORE:
            for victim in wbs:
                handle_writeback(victim)
            if art.ev_mem[i]:
                allocate_stall()
            displaced = art.ev_victim[i]
            if displaced >= 0 and op_idx >= boundary:
                handle_writeback(displaced)
            if flush is not None:
                flush_timed(flush)
                _record_epoch(epochs, flush, art.ev_extra[i])
            elif art.ev_extra[i]:
                persist_store(art.ev_block[i])
        elif tag == _EV_LOAD:
            load_timed(art.ev_block[i], wbs, bool(art.ev_mem[i]))
        else:  # _EV_FLUSH
            flush_timed(flush)
            _record_epoch(epochs, flush, art.ev_extra[i])
    return window


_COUNTER_GROUPS = (("l1", 0), ("l2", 4), ("l3", 8))
_MD_GROUPS = (("ctr", 0), ("mac", 4), ("bmt", 8))


def _merge_count_delta(stats, groups, delta) -> None:
    counter = stats.counter
    for name, off in groups:
        counter(f"{name}.hits").value += delta[off]
        counter(f"{name}.misses").value += delta[off + 1]
        counter(f"{name}.evictions").value += delta[off + 2]
        counter(f"{name}.dirty_evictions").value += delta[off + 3]


def run_sharded(
    source: TraceSource,
    config: SystemConfig,
    shards: int,
    warmup_fraction: float = 0.2,
    workers: Optional[int] = None,
    return_partials: bool = False,
    splits: Optional[List[int]] = None,
):
    """Simulate ``source`` sharded ``shards`` ways; bit-identical result.

    The functional chain advances shard by shard in pool workers while
    this process overlaps the timed pass 2 (see the module docstring).
    Per-shard partial :class:`SimResult`\\ s (delta-valued) are merged
    via :func:`~repro.system.timing.merge_results` and checked against
    the direct whole-run result the parent's simulator produces — a
    mismatch raises.  Runs on the batched engine regardless of
    ``config.engine`` (the engines are bit-identical, so the merged
    result equals an unsharded run under any of them).

    Args:
        source: Path to a binary trace (v1 or v2) or an in-memory
            :class:`MemoryTrace`.
        config: System configuration; ``engine`` is forced to
            ``"batched"``.
        shards: Number of trace shards (``>= 1``).
        warmup_fraction: As in :meth:`TraceSimulator.run`.
        workers: Pool size hint (the chain keeps exactly one worker
            busy; default 2 keeps the persistent pool warm for sweeps).
        return_partials: Also return the per-shard partial results.
        splits: Explicit interior split indices, overriding
            :func:`plan_shards` (``shards`` is then ignored).  For
            epoch-persistency schemes each split must sit on an
            epoch-drain boundary or the partial results lose their
            per-shard meaning (the merged total stays exact either
            way — the handoff state makes any cut bit-identical).

    Returns:
        The merged :class:`SimResult`, or ``(partials, merged)`` when
        ``return_partials`` is set.
    """
    from repro.sweep.runner import _get_pool

    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if config.engine != "batched":
        config = config.variant(engine="batched")
    source_kind, source_payload, name, n = _source_spec(source)
    if splits is None:
        splits = plan_shards(source, shards, config)
    else:
        splits = sorted(set(splits))
        if splits and not (0 < splits[0] and splits[-1] < n):
            raise ValueError(f"explicit splits must lie in (0, {n})")
    bounds = [0] + splits + [n]
    sim = TraceSimulator(config)
    if sim.epochs is not None:
        sim.epochs.retain_closed = False
    if len(bounds) < 3 or n == 0:
        if source_kind == "path":
            with TraceReader(source_payload) as reader:
                result = sim.run_stream(reader, warmup_fraction)
        else:
            result = sim.run_stream(source_payload, warmup_fraction)
        return ([result], result) if return_partials else result

    boundary = int(n * warmup_fraction)
    scripted = wants_script(sim)
    num_shards = len(bounds) - 1
    pool = _get_pool(max(2, workers or 0))

    def _payload(w: int, state: tuple):
        pre_state, md_state, tick_base, instr_base = state
        return (
            source_kind,
            source_payload,
            bounds[w],
            bounds[w + 1],
            config,
            boundary,
            scripted,
            pre_state,
            md_state,
            tick_base,
            instr_base,
            w == num_shards - 1,
        )

    feed = ScriptFeed(sim) if scripted else None
    window = None
    snap = (0, 0)
    sim._in_warmup = boundary > 0
    partials: List[SimResult] = []
    prev_stats = sim.stats.as_dict()
    prev_vals = (0, 0, 0, 0, 0)
    state = (None, None, 0, 0)
    try:
        future = pool.submit(_shard_worker, _payload(0, state))
        for w in range(num_shards):
            artifact, state = future.result()
            if w + 1 < num_shards:
                future = pool.submit(_shard_worker, _payload(w + 1, state))
            if artifact.snap is not None:
                snap = artifact.snap
            if feed is not None and artifact.stream is not None:
                feed.extend(*_unpack_script(artifact))
            window = _dispatch_artifact(sim, artifact, boundary, window, snap)
            if window is None and boundary <= artifact.stop:
                # The warmup boundary passed inside this shard without a
                # post-boundary event; take the snapshot exactly where
                # the unsharded lazy logic eventually would (no counter
                # moves in between).
                sim._ticks = snap[0]
                sim._in_warmup = False
                window = sim._snapshot(snap[1])
            _merge_count_delta(sim.stats, _COUNTER_GROUPS, artifact.pre_delta)
            if artifact.md_delta is not None:
                _merge_count_delta(sim.stats, _MD_GROUPS, artifact.md_delta)
            sim._ticks = artifact.end_ticks
            if window is not None:
                end_cycle = max(sim._clock(), float(sim._last_completion))
                vals = (
                    int(end_cycle - window.cycles),
                    artifact.end_instr - window.instructions,
                    sim._persist_count - window.persists,
                    sim.scoreboard.node_update_count - window.node_updates,
                    sim.scoreboard.bmt_cache_misses - window.bmt_misses,
                )
            else:
                vals = (0, 0, 0, 0, 0)
            cur_stats = sim.stats.as_dict()
            partials.append(
                SimResult(
                    scheme=sim.scheme.value,
                    trace_name=name,
                    cycles=vals[0] - prev_vals[0],
                    instructions=vals[1] - prev_vals[1],
                    persists=vals[2] - prev_vals[2],
                    node_updates=vals[3] - prev_vals[3],
                    bmt_cache_misses=vals[4] - prev_vals[4],
                    stats={
                        key: value - prev_stats.get(key, 0)
                        for key, value in cur_stats.items()
                    },
                )
            )
            prev_stats = cur_stats
            prev_vals = vals
    finally:
        if feed is not None:
            feed.restore()
    if feed is not None:
        feed.assert_drained()
    _pre_state, _md_state, total_ticks, total_instr = state
    if window is None:
        sim._ticks = snap[0]
        sim._in_warmup = False
        window = sim._snapshot(snap[1])
    sim._ticks = total_ticks
    direct = sim._make_result(name, window, total_instr)
    merged = merge_results(partials)
    if merged != direct:
        raise RuntimeError(
            "sharded merge mismatch: merged partial results disagree with "
            f"the direct result for {name}/{sim.scheme.value}"
        )
    return (partials, merged) if return_partials else merged
