"""Parallel experiment runner for benchmark sweeps.

Every paper artifact is an embarrassingly parallel sweep over
``(benchmark, scheme, config overrides)`` triples; this module fans
those jobs across a :class:`~concurrent.futures.ProcessPoolExecutor`
and deduplicates work through the content-addressed
:class:`~repro.sweep.cache.ResultCache`.

Design points:

* **Determinism.**  A job is executed by rebuilding its trace from
  ``(benchmark, ki, seed)`` inside the worker and running a fresh
  :class:`~repro.system.timing.TraceSimulator`; results are therefore
  bit-identical to the sequential path regardless of worker count or
  completion order (``tests/test_sweep_runner.py`` enforces this).
* **No trace pickling.**  Only the small :class:`SweepJob` spec and
  :class:`~repro.system.config.SystemConfig` cross the process
  boundary; each worker keeps a bounded per-process trace cache.
* **Fork start method.**  Workers inherit ``sys.path`` from the parent,
  so the runner works from a source checkout without installation.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.sweep.cache import JSONCache, ResultCache, caching_disabled, job_key
from repro.sweep.trace_cache import (
    TraceCache,
    default_trace_cache_root,
    trace_caching_disabled,
)
from repro.system.config import SystemConfig
from repro.system.timing import SimResult, TraceSimulator
from repro.workloads.spec_profiles import SPEC_PROFILES, profile_trace

TRACE_CACHE_CAP = 16
"""Per-process bound on in-memory cached traces (packed columns, a few
hundred KB per 25 KI trace)."""

_trace_cache: "OrderedDict[Tuple[str, int, int], Any]" = OrderedDict()
_disk_trace_cache: Optional[TraceCache] = None


def _disk_traces() -> Optional[TraceCache]:
    global _disk_trace_cache
    if trace_caching_disabled():
        return None
    root = default_trace_cache_root()
    if _disk_trace_cache is None or _disk_trace_cache.root != root:
        _disk_trace_cache = TraceCache(root)
    return _disk_trace_cache


def cached_profile_trace(name: str, kilo_instructions: int, seed: int = 2020):
    """Bounded-LRU cached deterministic trace (safe per worker process).

    Misses fall through to the content-addressed on-disk
    :class:`~repro.sweep.trace_cache.TraceCache`, so across processes
    each trace is generated once and thereafter loaded as packed bytes;
    the generator only runs on a completely cold cache (or with
    ``PLP_NO_TRACE_CACHE=1``).
    """
    key = (name, kilo_instructions, seed)
    trace = _trace_cache.get(key)
    if trace is not None:
        _trace_cache.move_to_end(key)
        return trace
    disk = _disk_traces()
    if disk is not None:
        trace = disk.load_or_generate(name, kilo_instructions, seed)
    else:
        trace = profile_trace(name, kilo_instructions, seed)
    _trace_cache[key] = trace
    if len(_trace_cache) > TRACE_CACHE_CAP:
        _trace_cache.popitem(last=False)
    return trace


@dataclass(frozen=True)
class SweepJob:
    """One simulation: a benchmark trace under a scheme and overrides.

    ``overrides`` is a sorted tuple of ``(field, value)`` pairs so jobs
    stay hashable and their cache keys stable.
    """

    benchmark: str
    scheme: str
    kilo_instructions: int = 25
    seed: int = 2020
    warmup_fraction: float = 0.2
    overrides: Tuple[Tuple[str, Any], ...] = ()
    use_profile_ipc: bool = True

    @classmethod
    def make(
        cls,
        benchmark: str,
        scheme: str,
        kilo_instructions: int = 25,
        seed: int = 2020,
        warmup_fraction: float = 0.2,
        use_profile_ipc: bool = True,
        **overrides: Any,
    ) -> "SweepJob":
        scheme_name = scheme if isinstance(scheme, str) else scheme.value
        return cls(
            benchmark=benchmark,
            scheme=scheme_name,
            kilo_instructions=kilo_instructions,
            seed=seed,
            warmup_fraction=warmup_fraction,
            overrides=tuple(sorted(overrides.items())),
            use_profile_ipc=use_profile_ipc,
        )

    def resolved_config(self, base: Optional[SystemConfig] = None) -> SystemConfig:
        """The full :class:`SystemConfig` this job simulates.

        Mirrors ``benchmarks/common.py::run_scheme``: the profile's
        calibrated core IPC applies unless explicitly overridden.
        """
        from repro.core.schemes import UpdateScheme

        config = base if base is not None else SystemConfig()
        changes = dict(self.overrides)
        if self.use_profile_ipc:
            changes.setdefault("core_ipc", SPEC_PROFILES[self.benchmark].core_ipc)
        changes["scheme"] = UpdateScheme.from_name(self.scheme)
        return config.variant(**changes)

    def key(self, base: Optional[SystemConfig] = None) -> str:
        return job_key(
            self.benchmark,
            self.kilo_instructions,
            self.seed,
            self.warmup_fraction,
            self.resolved_config(base),
        )


@dataclass
class SweepReport:
    """Machine-readable summary of one :func:`run_jobs` invocation."""

    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def jobs_per_second(self) -> float:
        return self.jobs / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "jobs": self.jobs,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "jobs_per_second": self.jobs_per_second,
        }

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        return (
            f"{self.jobs} jobs in {self.wall_seconds:.2f}s "
            f"({self.jobs_per_second:.1f} jobs/s, {self.workers} worker"
            f"{'s' if self.workers != 1 else ''}, "
            f"{self.cache_hits} cache hit{'s' if self.cache_hits != 1 else ''})"
        )


def default_workers() -> int:
    env = os.environ.get("PLP_SWEEP_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _execute(job: SweepJob, config: SystemConfig) -> SimResult:
    """Run one job in the current process (also the worker entry point)."""
    trace = cached_profile_trace(job.benchmark, job.kilo_instructions, job.seed)
    simulator = TraceSimulator(config)
    return simulator.run(trace, warmup_fraction=job.warmup_fraction)


def _mp_context():
    # fork keeps sys.path (and warm module state) in workers; it is the
    # Linux default and required for uninstalled source checkouts.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------
#
# Spawning a ProcessPoolExecutor per sweep made the cold runner *slower*
# than the sequential path on small matrices: pool spin-up and the first
# fork dominated the actual simulation work.  The pool is therefore a
# module-level singleton, created lazily at the first parallel run and
# reused by every later sweep in the process.  Lazy creation matters
# beyond spin-up cost: with the fork start method, workers inherit
# whatever the parent has already warmed (imported modules, in-memory
# traces and their batched-engine prepass memos) copy-on-write, so a
# pool created *after* a sequential stage starts with hot caches.

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
pool_spawns = 0
"""Number of executors created so far (observable worker-reuse proof:
``tests/test_sweep_runner.py`` asserts back-to-back sweeps share one)."""


def _worker_init() -> None:
    """One-time per-worker setup: resolve the on-disk trace cache handle
    so the first job in each worker skips the env/root resolution."""
    _disk_traces()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, created (or grown) on demand.

    A request for more workers than the current pool has recreates it;
    a smaller request reuses the existing, larger pool (idle workers
    are cheap, respawning is not).
    """
    global _pool, _pool_workers, pool_spawns
    if _pool is None or _pool_workers < workers:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
        _pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=_worker_init,
        )
        _pool_workers = workers
        pool_spawns += 1
    return _pool


def shutdown_pool() -> None:
    """Tear down the persistent pool (atexit hook; tests call it to
    force a fresh pool)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


def run_tasks(
    specs: Sequence[Any],
    keys: Sequence[str],
    execute: Callable[[Any], Any],
    workers: Optional[int] = None,
    cache: Optional[JSONCache] = None,
) -> Tuple[List[Any], SweepReport]:
    """Generic deterministic fan-out: dedupe, cache, then execute.

    The engine behind :func:`run_jobs` (simulation sweeps) and the
    crash-injection campaign runner.  ``execute`` must be a picklable
    module-level callable taking one spec; specs sharing a key are
    executed once.  Results are installed by input index, so the output
    order — and, for value types that round-trip through the cache's
    JSON encoding, the bytes — are identical to a sequential run.

    Args:
        specs: Task specs, in output order.
        keys: Content-addressed key per spec (``len(keys) == len(specs)``).
        execute: Module-level callable run per unique pending spec.
        workers: Process count (``None``: ``PLP_SWEEP_JOBS`` or CPU
            count; ``1`` runs inline with no pool).
        cache: Optional :class:`~repro.sweep.cache.JSONCache`; hits skip
            execution entirely.

    Returns:
        ``(results, report)`` with ``results[i]`` the outcome of
        ``specs[i]``.
    """
    if len(keys) != len(specs):
        raise ValueError("keys must parallel specs")
    if workers is None:
        workers = default_workers()
    workers = max(1, workers)

    report = SweepReport(jobs=len(specs), workers=workers)
    start = time.perf_counter()

    results: List[Any] = [None] * len(specs)
    # Deduplicate identical specs and resolve cache hits first.
    pending: "OrderedDict[str, List[int]]" = OrderedDict()
    pending_spec: Dict[str, Any] = {}
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if key in pending:
            pending[key].append(index)
            continue
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                report.cache_hits += 1
                continue
            report.cache_misses += 1
        pending[key] = [index]
        pending_spec[key] = spec

    def _install(key: str, result: Any) -> None:
        for index in pending[key]:
            results[index] = result
        if cache is not None:
            cache.put(key, result)

    if pending:
        report.executed = len(pending)
        if workers == 1 or len(pending) == 1:
            for key, spec in pending_spec.items():
                _install(key, execute(spec))
        else:
            done: set = set()
            for attempt in (0, 1):
                pool = _get_pool(workers)
                try:
                    futures = {
                        key: pool.submit(execute, pending_spec[key])
                        for key in pending
                        if key not in done
                    }
                    for key, future in futures.items():
                        _install(key, future.result())
                        done.add(key)
                    break
                except BrokenProcessPool:
                    # A worker died (OOM kill, crash).  Drop the broken
                    # executor and retry the unfinished keys once on a
                    # fresh pool; a second break is a real failure.
                    shutdown_pool()
                    if attempt:
                        raise

    report.wall_seconds = time.perf_counter() - start
    if any(r is None for r in results):
        missing = [i for i, r in enumerate(results) if r is None]
        raise RuntimeError(f"sweep tasks {missing} produced no result")
    return results, report


def _execute_pair(pair: Tuple[SweepJob, SystemConfig]) -> SimResult:
    """Worker entry point for :func:`run_jobs` specs."""
    job, config = pair
    return _execute(job, config)


def run_jobs(
    jobs: Sequence[SweepJob],
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, bool, None] = True,
    base_config: Optional[SystemConfig] = None,
) -> Tuple[List[SimResult], SweepReport]:
    """Run a sweep, in parallel, through the result cache.

    Args:
        jobs: The sweep's jobs, in output order.
        workers: Process count (``None``: ``PLP_SWEEP_JOBS`` or CPU
            count; ``1`` runs inline with no pool).
        cache: ``True`` for the default on-disk cache, ``False``/``None``
            to disable, or a :class:`ResultCache`/path.  The
            ``PLP_NO_RESULT_CACHE=1`` environment variable forces off.
        base_config: Base :class:`SystemConfig` shared by every job.

    Returns:
        ``(results, report)`` with ``results[i]`` the outcome of
        ``jobs[i]`` — bit-identical to running each job sequentially.
    """
    result_cache: Optional[ResultCache] = None
    if not caching_disabled():
        if isinstance(cache, ResultCache):
            result_cache = cache
        elif cache is True:
            result_cache = ResultCache()
        elif isinstance(cache, (str, os.PathLike)):
            result_cache = ResultCache(cache)

    specs: List[Tuple[SweepJob, SystemConfig]] = []
    keys: List[str] = []
    for job in jobs:
        config = job.resolved_config(base_config)
        specs.append((job, config))
        keys.append(
            job_key(
                job.benchmark,
                job.kilo_instructions,
                job.seed,
                job.warmup_fraction,
                config,
            )
        )
    return run_tasks(
        specs, keys, _execute_pair, workers=workers, cache=result_cache
    )


def run_matrix(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    kilo_instructions: int = 25,
    seed: int = 2020,
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, bool, None] = True,
    base_config: Optional[SystemConfig] = None,
    **overrides: Any,
) -> Tuple[Dict[str, Dict[str, SimResult]], SweepReport]:
    """Run a full ``benchmark x scheme`` grid.

    Returns:
        ``(results[benchmark][scheme], report)``.
    """
    jobs = [
        SweepJob.make(name, scheme, kilo_instructions, seed, **overrides)
        for name in benchmarks
        for scheme in schemes
    ]
    flat, report = run_jobs(jobs, workers=workers, cache=cache, base_config=base_config)
    grid: Dict[str, Dict[str, SimResult]] = {}
    for job, result in zip(jobs, flat):
        grid.setdefault(job.benchmark, {})[job.scheme] = result
    return grid, report
