"""Parallel sweep infrastructure: job fan-out, result and trace caching.

See :mod:`repro.sweep.runner` for the process-pool runner,
:mod:`repro.sweep.cache` for the content-addressed result cache,
:mod:`repro.sweep.trace_cache` for the packed binary trace cache, and
:mod:`repro.sweep.shard` for epoch-safe sharding of one trace across
the pool.
"""

from repro.sweep.cache import (
    JSONCache,
    ResultCache,
    caching_disabled,
    code_version,
    config_digest,
    job_key,
)
from repro.sweep.trace_cache import (
    TraceCache,
    generator_version,
    trace_caching_disabled,
    trace_key,
)
from repro.sweep.runner import (
    SweepJob,
    SweepReport,
    cached_profile_trace,
    default_workers,
    run_jobs,
    run_matrix,
    run_tasks,
)
from repro.sweep.shard import plan_shards, run_sharded

__all__ = [
    "JSONCache",
    "ResultCache",
    "SweepJob",
    "SweepReport",
    "TraceCache",
    "cached_profile_trace",
    "caching_disabled",
    "code_version",
    "config_digest",
    "default_workers",
    "generator_version",
    "job_key",
    "plan_shards",
    "run_jobs",
    "run_matrix",
    "run_sharded",
    "run_tasks",
    "trace_caching_disabled",
    "trace_key",
]
