"""Parallel sweep infrastructure: job fan-out and result caching.

See :mod:`repro.sweep.runner` for the process-pool runner and
:mod:`repro.sweep.cache` for the content-addressed result cache.
"""

from repro.sweep.cache import (
    ResultCache,
    caching_disabled,
    code_version,
    config_digest,
    job_key,
)
from repro.sweep.runner import (
    SweepJob,
    SweepReport,
    cached_profile_trace,
    default_workers,
    run_jobs,
    run_matrix,
)

__all__ = [
    "ResultCache",
    "SweepJob",
    "SweepReport",
    "cached_profile_trace",
    "caching_disabled",
    "code_version",
    "config_digest",
    "default_workers",
    "job_key",
    "run_jobs",
    "run_matrix",
]
