"""Content-addressed on-disk cache for simulation results.

A sweep job is fully determined by ``(trace key, scheme, SystemConfig,
code version)``: traces are generated deterministically from
``(benchmark, kilo_instructions, seed)``, and the simulator is
deterministic given a trace and a config.  The cache therefore keys each
:class:`~repro.system.timing.SimResult` by a SHA-256 digest over exactly
those inputs, where *code version* is a digest of every ``.py`` file
under ``repro`` — so any source change invalidates the whole cache, and
an unchanged artifact regeneration is a pure cache hit.

Layout: one JSON file per result under ``<root>/<key[:2]>/<key>.json``.
The root defaults to ``~/.cache/plp-repro/results`` and can be moved
with the ``PLP_SWEEP_CACHE`` environment variable; setting
``PLP_NO_RESULT_CACHE=1`` disables caching entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.system.config import SystemConfig
from repro.system.timing import SimResult

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (cache invalidation key)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def config_digest(config: SystemConfig) -> str:
    """Stable digest of every ``SystemConfig`` field (nested dataclasses
    included)."""
    payload = asdict(config)
    payload["scheme"] = config.scheme.value
    # Telemetry is pure observation: it never changes a SimResult, so it
    # must not fork cache keys (a telemetry-on run is a valid cache hit
    # for a telemetry-off sweep and vice versa).
    payload.pop("telemetry", None)
    # Likewise the timing-engine family: batched, skip-ahead, and
    # stepped are bit-identical by construction (the differential
    # harness enforces it), so any engine's result is a valid hit for
    # the others.
    payload.pop("engine", None)
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def job_key(
    benchmark: str,
    kilo_instructions: int,
    seed: int,
    warmup_fraction: float,
    config: SystemConfig,
) -> str:
    """Content-addressed key for one (trace, config) simulation."""
    blob = json.dumps(
        {
            "trace": [benchmark, kilo_instructions, seed],
            "warmup": warmup_fraction,
            "config": config_digest(config),
            "code": code_version(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def result_to_dict(result: SimResult) -> Dict:
    return asdict(result)


def result_from_dict(payload: Dict) -> SimResult:
    return SimResult(**payload)


def default_cache_root() -> Path:
    env = os.environ.get("PLP_SWEEP_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "plp-repro" / "results"


def caching_disabled() -> bool:
    return os.environ.get("PLP_NO_RESULT_CACHE", "") not in ("", "0")


class JSONCache:
    """Directory of content-addressed JSON payloads.

    Base class for every on-disk result store in the sweep layer: one
    JSON file per entry under ``<root>/<key[:2]>/<key>.json``, written
    atomically (write-then-rename).  Subclasses override
    :meth:`_encode`/:meth:`_decode` to map their value type onto JSON.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- value mapping (override in subclasses) -------------------------

    def _encode(self, value):
        return value

    def _decode(self, payload):
        return payload

    # -- storage --------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str):
        """Fetch a cached value; counts the hit/miss."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return self._decode(payload)

    def put(self, key: str, value) -> None:
        """Store a value atomically (write-then-rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._encode(value), fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(root={str(self.root)!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class ResultCache(JSONCache):
    """Directory of content-addressed :class:`SimResult` JSON files."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        super().__init__(root if root is not None else default_cache_root())

    def _encode(self, value: SimResult) -> Dict:
        return result_to_dict(value)

    def _decode(self, payload: Dict) -> SimResult:
        return result_from_dict(payload)
