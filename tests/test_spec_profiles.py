"""Tests for the SPEC-calibrated workload profiles (Table V)."""

import pytest

from repro.persistency.epochs import EpochTracker
from repro.workloads.spec_profiles import (
    REFERENCE_EPOCH,
    SPEC_PROFILES,
    profile_trace,
)
from repro.workloads.trace import OpKind


def test_all_fifteen_benchmarks_present():
    assert len(SPEC_PROFILES) == 15
    assert "gamess" in SPEC_PROFILES
    assert "milc" in SPEC_PROFILES


def test_table_v_values_recorded():
    gamess = SPEC_PROFILES["gamess"]
    assert gamess.sp_full_ppki == pytest.approx(100.72)
    assert gamess.sp_ppki == pytest.approx(51.38)
    assert gamess.o3_ppki == pytest.approx(30.433)
    assert gamess.wb_full_ppki == 0.0


def test_derived_stack_fraction():
    sphinx3 = SPEC_PROFILES["sphinx3"]
    assert sphinx3.stack_store_fraction == pytest.approx(1 - 4.87 / 184.29)


def test_derived_new_block_rate():
    bwaves = SPEC_PROFILES["bwaves"]
    assert bwaves.new_block_rate == pytest.approx(8.70 / 61.60)


def test_epoch_unique_target():
    gamess = SPEC_PROFILES["gamess"]
    assert gamess.epoch_unique_target == pytest.approx(
        REFERENCE_EPOCH * 30.433 / 51.38
    )


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        profile_trace("nonexistent")


@pytest.mark.parametrize("name", ["gamess", "bwaves", "astar", "sphinx3", "milc"])
def test_trace_matches_paper_store_statistics(name):
    """Measured PPKI must track Table V within 15 %."""
    profile = SPEC_PROFILES[name]
    trace = profile_trace(name, kilo_instructions=20)
    assert trace.stores_per_kilo_instruction() == pytest.approx(
        profile.sp_full_ppki, rel=0.05
    )
    assert trace.stores_per_kilo_instruction(persistent_only=True) == pytest.approx(
        profile.sp_ppki, rel=0.15
    )
    tracker = EpochTracker(REFERENCE_EPOCH)
    for r in trace:
        if r.kind is OpKind.STORE and r.persistent:
            tracker.record_store(r.block)
    tracker.flush()
    measured_o3 = 1000.0 * tracker.total_persists() / trace.instruction_count
    # Relative tolerance, with an absolute floor for tiny-PPKI profiles
    # (sphinx3's 1.04 persists/KI is statistically noisy at 20 KI).
    assert measured_o3 == pytest.approx(profile.o3_ppki, rel=0.3, abs=0.6)


def test_trace_determinism():
    a = profile_trace("gcc", kilo_instructions=5, seed=7)
    b = profile_trace("gcc", kilo_instructions=5, seed=7)
    assert a.records == b.records


def test_trace_seed_variation():
    a = profile_trace("gcc", kilo_instructions=5, seed=7)
    b = profile_trace("gcc", kilo_instructions=5, seed=8)
    assert a.records != b.records


def test_load_reuse_fraction_bounds():
    for profile in SPEC_PROFILES.values():
        assert 0.0 <= profile.load_reuse_fraction <= 1.0
