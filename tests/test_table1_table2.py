"""Functional reproduction of the paper's Tables I and II.

Table I: recovery failure cases when one memory-tuple item of a persist
fails to persist (non-atomic strawman).  Table II: recovery failures
when the persist *order* of tuple items is violated between two ordered
persists.
"""

import pytest

from repro.mem.wpq import TupleItem
from repro.recovery.crash import CrashInjector
from repro.system.secure_memory import FunctionalSecureMemory

from conftest import make_block


def broken_memory():
    """2SP disabled: tuple items drain to NVM independently."""
    return FunctionalSecureMemory(num_pages=64, atomic_tuples=False)


def addr(block):
    return block * 64


def run_single_drop(item):
    """Persist one new value, drop one tuple item, crash, recover."""
    mem = broken_memory()
    mem.store(addr(0), make_block(1))  # old value, fully persisted
    victim = mem.store(addr(0), make_block(2))  # new value
    mem.crash(CrashInjector().drop(victim, item))
    return mem.recover()


# ----------------------------------------------------------------------
# Table I rows (C, γ, M, R columns; x marks the dropped item)
# ----------------------------------------------------------------------


def test_table1_row1_missing_root_gives_bmt_failure():
    """C ✓, γ ✓, M ✓, R ✗ → BMT (verification) failure."""
    report = run_single_drop(TupleItem.ROOT_ACK)
    assert not report.bmt_ok
    assert report.blocks[0].mac_ok
    assert report.blocks[0].plaintext_correct
    assert "BMT failure" in report.outcome_row(0)


def test_table1_row2_missing_mac_gives_mac_failure():
    """C ✓, γ ✓, M ✗, R ✓ → MAC (verification) failure."""
    report = run_single_drop(TupleItem.MAC)
    assert report.bmt_ok
    assert not report.blocks[0].mac_ok
    assert report.blocks[0].plaintext_correct  # plaintext IS recovered
    assert report.outcome_row(0) == "MAC failure"


def test_table1_row3_missing_counter_gives_wrong_plaintext_and_failures():
    """C ✓, γ ✗, M ✓, R ✓ → wrong plaintext, BMT & MAC failure."""
    report = run_single_drop(TupleItem.COUNTER)
    assert not report.bmt_ok
    assert not report.blocks[0].mac_ok
    assert not report.blocks[0].plaintext_correct
    assert report.outcome_row(0) == "Wrong plaintext, BMT & MAC failure"


def test_table1_row4_missing_data_gives_wrong_plaintext_and_mac_failure():
    """C ✗, γ ✓, M ✓, R ✓ → wrong plaintext, MAC failure."""
    report = run_single_drop(TupleItem.DATA)
    assert report.bmt_ok
    assert not report.blocks[0].mac_ok
    assert not report.blocks[0].plaintext_correct
    assert report.outcome_row(0) == "Wrong plaintext, MAC failure"


def test_complete_tuple_recovers():
    """Control: with the full tuple persisted, recovery succeeds."""
    mem = broken_memory()
    mem.store(addr(0), make_block(1))
    mem.store(addr(0), make_block(2))
    mem.crash()
    report = mem.recover()
    assert report.recovered
    assert report.outcome_row(0) == "Recovered"


def test_2sp_defends_against_every_single_drop():
    """With atomic tuples (2SP), every Table I scenario recovers
    consistently — to the pre-persist state."""
    for item in TupleItem:
        mem = FunctionalSecureMemory(num_pages=64, atomic_tuples=True)
        mem.store(addr(0), make_block(1))
        victim = mem.store(addr(0), make_block(2))
        mem.crash(CrashInjector().drop(victim, item))
        report = mem.recover()
        assert report.recovered, f"2SP failed to defend against dropped {item}"
        assert mem.load(addr(0)) == make_block(1)


# ----------------------------------------------------------------------
# Table II rows: ordering violations between two ordered persists
# ----------------------------------------------------------------------


def two_ordered_persists(drop_item):
    """α1 → α2 to different pages; α2's tuple fully persists while α1
    loses ``drop_item`` — i.e. the item's persist order was violated and
    the crash landed between the two item persists."""
    mem = broken_memory()
    first = mem.store(addr(0), make_block(1))     # α1, page 0
    second = mem.store(addr(64), make_block(2))   # α2, page 1
    mem.crash(CrashInjector().drop(first, drop_item))
    report = mem.recover()
    return mem, report


def test_table2_counter_order_violation():
    """Violating γ1 → γ2: plaintext P1 not recoverable."""
    mem, report = two_ordered_persists(TupleItem.COUNTER)
    assert not report.blocks[0].plaintext_correct  # P1 lost
    assert report.blocks[1].plaintext_correct      # P2 fine


def test_table2_mac_order_violation():
    """Violating M1 → M2: MAC verification failure for C1."""
    mem, report = two_ordered_persists(TupleItem.MAC)
    assert not report.blocks[0].mac_ok
    assert report.blocks[1].mac_ok
    assert report.blocks[0].plaintext_correct


def test_table2_root_order_violation():
    """Violating R1 → R2: BMT verification failure for C1.

    The paper's scenario: the crash lands after one root update but
    before the other, so the durable root register does not cover every
    persisted counter — the rebuilt root mismatches and BMT verification
    fails at recovery.
    """
    mem = broken_memory()
    mem.store(addr(0), make_block(1))
    second = mem.store(addr(64), make_block(2))
    mem.crash(CrashInjector().drop(second, TupleItem.ROOT_ACK))
    report = mem.recover()
    assert not report.bmt_ok
    # Data and MACs themselves are fine; only the tree is inconsistent.
    assert all(b.mac_ok and b.plaintext_correct for b in report.blocks)


def test_ordering_violation_only_affects_victims():
    mem, report = two_ordered_persists(TupleItem.MAC)
    assert report.mac_failures == [0]
    assert report.wrong_plaintext == []
