"""Tests for persistency models, epoch tracking, and order logging."""

import pytest

from repro.mem.wpq import TupleItem
from repro.persistency.epochs import EpochTracker
from repro.persistency.models import PersistencyModel
from repro.persistency.ordering import PersistOrderLog


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------


def test_strict_orders_everything():
    sp = PersistencyModel.STRICT
    assert sp.orders_all_persists
    assert sp.requires_ordering(0, 0)
    assert sp.requires_ordering(0, 1)


def test_epoch_orders_across_epochs_only():
    ep = PersistencyModel.EPOCH
    assert not ep.orders_all_persists
    assert ep.orders_across_epochs
    assert not ep.requires_ordering(3, 3)
    assert ep.requires_ordering(2, 3)


def test_none_orders_nothing():
    none = PersistencyModel.NONE
    assert not none.requires_ordering(0, 1)


# ----------------------------------------------------------------------
# epochs
# ----------------------------------------------------------------------


def test_implicit_boundary_at_epoch_size():
    tracker = EpochTracker(epoch_size=4)
    closed = None
    for i in range(4):
        closed = tracker.record_store(block=i)
    assert closed is not None
    assert closed.epoch_id == 0
    assert closed.store_count == 4
    assert closed.persist_count == 4


def test_same_block_stores_collapse():
    """Multiple stores to one block within an epoch persist once —
    the source of Table V's sp → o3 PPKI reduction."""
    tracker = EpochTracker(epoch_size=8)
    for _ in range(8):
        tracker.record_store(block=42)
    assert tracker.closed_epochs[0].persist_count == 1


def test_explicit_barrier():
    tracker = EpochTracker(epoch_size=100)
    tracker.record_store(0)
    closed = tracker.barrier()
    assert closed.store_count == 1
    assert tracker.current_epoch.epoch_id == 1


def test_empty_barrier_collapses():
    tracker = EpochTracker(epoch_size=100)
    assert tracker.barrier() is None
    tracker.record_store(0)
    tracker.barrier()
    assert tracker.barrier() is None
    assert len(tracker.closed_epochs) == 1


def test_flush_closes_partial_epoch():
    tracker = EpochTracker(epoch_size=100)
    tracker.record_store(0)
    tracker.record_store(1)
    closed = tracker.flush()
    assert closed.persist_count == 2


def test_totals():
    tracker = EpochTracker(epoch_size=2)
    for block in (0, 0, 1, 2, 3):
        tracker.record_store(block)
    tracker.flush()
    assert tracker.total_stores() == 5
    assert tracker.total_persists() == 4  # {0}, {1,2}, {3}


def test_none_epoch_size_requires_explicit_barriers():
    tracker = EpochTracker(epoch_size=None)
    for i in range(1000):
        assert tracker.record_store(i) is None
    assert tracker.barrier().persist_count == 1000


def test_invalid_epoch_size():
    with pytest.raises(ValueError):
        EpochTracker(epoch_size=0)


# ----------------------------------------------------------------------
# order log
# ----------------------------------------------------------------------


def _register_two(log, epoch_a=0, epoch_b=0):
    log.register_persist(0, epoch_a)
    log.register_persist(1, epoch_b)


def test_ordered_events_are_consistent():
    log = PersistOrderLog(PersistencyModel.STRICT)
    _register_two(log)
    for item in TupleItem:
        log.record(0, item, time=10)
        log.record(1, item, time=20)
    assert log.is_consistent()


def test_root_inversion_detected_under_sp():
    log = PersistOrderLog(PersistencyModel.STRICT)
    _register_two(log)
    log.record(0, TupleItem.ROOT_ACK, time=30)
    log.record(1, TupleItem.ROOT_ACK, time=20)
    violations = log.violations()
    assert len(violations) == 1
    assert violations[0].item is TupleItem.ROOT_ACK
    assert "persist 1" in violations[0].describe()


def test_same_epoch_inversion_allowed_under_ep():
    log = PersistOrderLog(PersistencyModel.EPOCH)
    _register_two(log, epoch_a=5, epoch_b=5)
    log.record(0, TupleItem.ROOT_ACK, time=30)
    log.record(1, TupleItem.ROOT_ACK, time=20)
    assert log.is_consistent()


def test_cross_epoch_inversion_detected_under_ep():
    log = PersistOrderLog(PersistencyModel.EPOCH)
    _register_two(log, epoch_a=1, epoch_b=2)
    log.record(0, TupleItem.COUNTER, time=30)
    log.record(1, TupleItem.COUNTER, time=20)
    assert not log.is_consistent()


def test_non_adjacent_violation_detected():
    """Transitivity: an inversion hidden behind an unordered run."""
    log = PersistOrderLog(PersistencyModel.EPOCH)
    log.register_persist(0, 0)
    log.register_persist(1, 1)
    log.register_persist(2, 1)
    # Persist 2's item lands before persist 0's, but adjacent pairs
    # (0,1) and (1,2) look fine.
    log.record(0, TupleItem.MAC, time=25)
    log.record(1, TupleItem.MAC, time=26)
    log.record(2, TupleItem.MAC, time=10)
    violations = log.violations()
    assert any(v.older_persist == 0 and v.younger_persist == 2 for v in violations)


def test_duplicate_event_rejected():
    log = PersistOrderLog()
    log.register_persist(0)
    log.record(0, TupleItem.DATA, 1)
    with pytest.raises(ValueError):
        log.record(0, TupleItem.DATA, 2)


def test_unregistered_persist_rejected():
    log = PersistOrderLog()
    with pytest.raises(KeyError):
        log.record(0, TupleItem.DATA, 1)
    log.register_persist(0)
    with pytest.raises(ValueError):
        log.register_persist(0)
