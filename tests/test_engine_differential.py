"""Differential harness: batched and skip-ahead engines vs the stepped
reference.

All three timing-engine families (``SystemConfig.engine``) — the
array-native batched engine (the default), the scalar skip-ahead
event-queue engine, and the per-cycle stepped oracle — must be
bit-identical: same ``SimResult`` field for field, and — with telemetry
enabled — the same event stream, event for event.  This suite runs the
engines over randomized (seeded) configs x workloads x all seven
schemes and asserts exact equality; any drift in the batched prepass or
the skip-ahead arithmetic fails here first.

The scoreboard-level differential reuses ``test_cross_validation``'s
machinery, so the stepped family is also validated against the
cycle-accurate engine by the tests there.
"""

import random

import pytest

from repro.core.schemes import UpdateScheme
from repro.mem.wpq import gather_before_release_violations
from repro.system.config import SystemConfig
from repro.system.timing import TraceSimulator
from repro.telemetry.config import TelemetryConfig
from repro.workloads.spec_profiles import profile_trace

from test_cross_validation import run_scoreboard

ALL_SCHEMES = list(UpdateScheme)
WORKLOADS = ["gamess", "gcc"]
KI = 2  # stepped is deliberately O(cycles waited); keep traces small


def _trace(name):
    return profile_trace(name, KI)


def random_config(seed: int, scheme: UpdateScheme, telemetry: bool = False) -> SystemConfig:
    """A seeded, reproducible config variant exercising the lane state."""
    rng = random.Random(seed)
    return SystemConfig(
        scheme=scheme,
        mac_latency=rng.choice([10, 40, 100]),
        wpq_entries=rng.choice([4, 32]),
        epoch_size=rng.choice([8, 32]),
        ett_entries=rng.choice([2, 4]),
        bmt_cache_bytes=rng.choice([16, 128]) * 1024,
        telemetry=TelemetryConfig(enabled=telemetry),
    )


def run_both(config: SystemConfig, trace):
    """Run the same config under every engine family."""
    out = {}
    for engine in ("batched", "skip_ahead", "stepped"):
        sim = TraceSimulator(config.variant(engine=engine))
        result = sim.run(trace)
        events = (
            [
                (e.kind, e.time, e.duration, e.track, e.ident, e.args)
                for e in sim.telemetry.events()
            ]
            if sim.telemetry is not None
            else None
        )
        out[engine] = (result, events)
    return out


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
def test_simresults_bit_identical(scheme, workload):
    trace = _trace(workload)
    out = run_both(SystemConfig(scheme=scheme), trace)
    assert out["batched"][0] == out["skip_ahead"][0] == out["stepped"][0]


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
def test_randomized_configs_bit_identical(scheme, seed):
    trace = _trace("gamess")
    out = run_both(random_config(seed, scheme), trace)
    assert out["batched"][0] == out["skip_ahead"][0] == out["stepped"][0]


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
def test_telemetry_streams_identical(scheme):
    """With the bus on, every engine emits the exact same event sequence."""
    trace = _trace("gcc")
    out = run_both(random_config(7, scheme, telemetry=True), trace)
    batched_result, batched_events = out["batched"]
    skip_result, skip_events = out["skip_ahead"]
    stepped_result, stepped_events = out["stepped"]
    assert batched_result == skip_result == stepped_result
    assert batched_events == skip_events == stepped_events
    # Both streams must also satisfy the 2SP gathering invariant.
    from repro.telemetry.events import TraceEvent

    replay = [TraceEvent(k, t, track=tr, ident=i) for k, t, _, tr, i, _ in skip_events]
    assert gather_before_release_violations(replay) == []


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.value)
def test_cache_event_streams_identical(scheme):
    """Deep-inspection mode (per-access metadata-cache events) matches too.

    ``cache_events=True`` installs instrumented closures on the
    metadata caches, which forces the batched engine off its scripted
    metadata replay and onto the live machinery — the streams (and
    results) must still be identical, event for event.
    """
    trace = _trace("gcc")
    config = SystemConfig(
        scheme=scheme,
        telemetry=TelemetryConfig(enabled=True, cache_events=True),
    )
    out = run_both(config, trace)
    assert out["batched"] == out["skip_ahead"] == out["stepped"]


@pytest.mark.parametrize("engine", ["batched", "skip_ahead", "stepped"])
@pytest.mark.parametrize(
    "scheme",
    [
        UpdateScheme.SP,
        UpdateScheme.PIPELINE,
        UpdateScheme.O3,
        UpdateScheme.TRIAD_NVM,
        UpdateScheme.PHOENIX,
        UpdateScheme.SECPM_WT,
        UpdateScheme.ANUBIS,
    ],
    ids=lambda s: s.value,
)
def test_scoreboard_level_differential(scheme, engine):
    """Scoreboard timings agree across engines on random leaf streams.

    Uses the cross-validation machinery directly, without a trace: the
    same leaves produce the same completion map under either family.
    """
    rng = random.Random(99)
    leaves = [rng.randrange(512) for _ in range(32)]
    epochs = [i // 8 for i in range(32)] if scheme.uses_epochs else None
    baseline, _ = run_scoreboard(scheme, leaves, epochs, engine="skip_ahead")
    other, _ = run_scoreboard(scheme, leaves, epochs, engine=engine)
    assert other == baseline


def test_engine_field_validation():
    with pytest.raises(ValueError, match="engine"):
        SystemConfig(engine="warp_drive")


def test_engine_excluded_from_cache_key():
    """Bit-identical engines must share result-cache entries."""
    from repro.sweep.cache import config_digest

    base = SystemConfig()
    assert config_digest(base) == config_digest(base.variant(engine="stepped"))


# ----------------------------------------------------------------------
# KV-store traces: application-shaped streams through every engine
# ----------------------------------------------------------------------

from repro.app.workloads import app_memory_trace
from repro.campaign.app_engine import APP_CAMPAIGN_SCHEMES

APP_SCHEMES = [UpdateScheme.from_name(name) for name in APP_CAMPAIGN_SCHEMES]


@pytest.mark.parametrize("idiom", ["snapshot", "undolog"])
@pytest.mark.parametrize("scheme", APP_SCHEMES, ids=lambda s: s.value)
def test_kv_traces_bit_identical(scheme, idiom):
    """The lowered KV-store traces — log runs, pointer flips,
    barrier-dense commit sequences — produce bit-identical results
    under all three engine families for the whole app-campaign roster."""
    trace = app_memory_trace(idiom, "txn", reps=2)
    out = run_both(SystemConfig(scheme=scheme), trace)
    assert out["batched"][0] == out["skip_ahead"][0] == out["stepped"][0]


@pytest.mark.parametrize("idiom", ["snapshot", "undolog"])
def test_kv_trace_telemetry_identical(idiom):
    """With the bus on, the KV trace's event streams match event for
    event (the barrier-heavy shape stresses epoch bookkeeping)."""
    trace = app_memory_trace(idiom, "deferred_fsync", reps=2)
    out = run_both(random_config(11, UpdateScheme.COALESCING, telemetry=True), trace)
    assert out["batched"] == out["skip_ahead"] == out["stepped"]


@pytest.mark.parametrize("idiom", ["snapshot", "undolog"])
@pytest.mark.parametrize("seed", [21, 22])
def test_kv_traces_randomized_configs(idiom, seed):
    trace = app_memory_trace(idiom, "torn")
    out = run_both(random_config(seed, UpdateScheme.O3), trace)
    assert out["batched"][0] == out["skip_ahead"][0] == out["stepped"][0]
