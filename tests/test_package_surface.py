"""Package-surface tests: imports, exports, and version metadata.

Guards against broken `__all__` lists, stale re-exports, and modules
that only break when first imported.
"""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


def test_package_has_modules():
    assert len(ALL_MODULES) > 25


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_every_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.core",
        "repro.crypto",
        "repro.mem",
        "repro.persistency",
        "repro.recovery",
        "repro.sim",
        "repro.system",
        "repro.workloads",
        "repro.analysis",
    ],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_api_is_usable():
    # The README quickstart's names all exist at the top level.
    for name in (
        "FunctionalSecureMemory",
        "run_benchmark",
        "run_trace",
        "SystemConfig",
        "TraceSimulator",
        "UpdateScheme",
        "PersistencyModel",
    ):
        assert hasattr(repro, name)
