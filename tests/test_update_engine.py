"""Tests for the cycle-accurate PTT/ETT update engine."""

import pytest

from repro.core.invariants import check_root_order, completions_in_order
from repro.core.schemes import UpdateScheme
from repro.core.update_engine import CycleAccurateEngine, EngineConfig
from repro.crypto.bmt import BMTGeometry
from repro.persistency.models import PersistencyModel


def make_engine(scheme, geometry=None, mac=40, **kwargs):
    geometry = geometry or BMTGeometry(num_leaves=64, arity=8)  # 3 levels
    config = EngineConfig(scheme=scheme, mac_latency=mac, **kwargs)
    return CycleAccurateEngine(geometry, config)


def test_sp_sequential_latency():
    """One persist: levels x MAC latency (§III: 9 x 80 = 720 example)."""
    engine = make_engine(UpdateScheme.SP)
    engine.submit(0, leaf_index=0)
    engine.run_until_drained()
    assert engine.completions[0] == 3 * 40


def test_sp_serializes_persists():
    engine = make_engine(UpdateScheme.SP)
    for i in range(3):
        engine.submit(i, leaf_index=i)
    engine.run_until_drained()
    assert engine.completions == {0: 120, 1: 240, 2: 360}


def test_pipeline_overlaps_levels():
    """Pipelined updates: steady-state one persist per MAC latency."""
    engine = make_engine(UpdateScheme.PIPELINE)
    for i in range(4):
        engine.submit(i, leaf_index=i)
    engine.run_until_drained()
    assert engine.completions[0] == 120
    for i in range(1, 4):
        assert engine.completions[i] == 120 + 40 * i


def test_pipeline_keeps_root_updates_in_order():
    engine = make_engine(UpdateScheme.PIPELINE)
    for i in range(6):
        engine.submit(i, leaf_index=(i * 13) % 64)
    engine.run_until_drained()
    assert completions_in_order(engine.completions)
    assert not check_root_order(engine.events, PersistencyModel.STRICT)


def test_ptt_capacity_backpressure():
    engine = make_engine(UpdateScheme.SP, ptt_capacity=2)
    assert engine.submit(0, 0)
    assert engine.submit(1, 1)
    assert not engine.submit(2, 2)  # full: core must stall
    engine.run_until_drained()
    assert engine.submit(2, 2)


def test_o3_same_epoch_completes_out_of_order_allowed():
    engine = make_engine(UpdateScheme.O3)
    for i in range(4):
        engine.submit(i, leaf_index=i, epoch_id=0)
    engine.run_until_drained()
    # All four complete; throughput ~1/cycle after the pipeline fills.
    times = [engine.completions[i] for i in range(4)]
    assert times == sorted(times)
    assert times[3] - times[0] <= 10  # far less than 3 x 120 sequential


def test_o3_orders_across_epochs():
    engine = make_engine(UpdateScheme.O3)
    for i in range(3):
        engine.submit(i, leaf_index=i, epoch_id=0)
    for i in range(3, 6):
        engine.submit(i, leaf_index=i, epoch_id=1)
    engine.run_until_drained()
    assert not check_root_order(engine.events, PersistencyModel.EPOCH)
    epoch0_last = max(engine.completions[i] for i in range(3))
    epoch1_first = min(engine.completions[i] for i in range(3, 6))
    assert epoch1_first >= epoch0_last


def test_ett_capacity_rejects_third_epoch():
    engine = make_engine(UpdateScheme.O3, ett_capacity=2)
    assert engine.submit(0, 0, epoch_id=0)
    assert engine.submit(1, 1, epoch_id=1)
    assert not engine.submit(2, 2, epoch_id=2)  # barrier stall
    engine.run_until_drained()
    assert engine.submit(2, 2, epoch_id=2)


def test_o3_hides_miss_latency_of_one_persist():
    """Fig. 4: a BMT miss delays only the missing persist under OOO."""
    from repro.mem.metadata_cache import MetadataCaches

    geometry = BMTGeometry(num_leaves=64, arity=8)

    def run(scheme):
        metadata = MetadataCaches(geometry, 1024, 1024, 1024, assoc=2)
        # Prime the BMT cache with persist 1's path only.
        for label in geometry.update_path(32):
            metadata.access_bmt_node(label, is_write=True)
        config = EngineConfig(scheme=scheme, mac_latency=40, bmt_miss_latency=200)
        engine = CycleAccurateEngine(geometry, config, metadata=metadata)
        engine.submit(0, leaf_index=0, epoch_id=0)   # cold path: misses
        engine.submit(1, leaf_index=32, epoch_id=0)  # warm path
        engine.run_until_drained()
        return engine.completions

    o3 = run(UpdateScheme.O3)
    pipe = run(UpdateScheme.PIPELINE)
    # Under in-order pipelining the warm persist is stuck behind the
    # cold one's bubbles; OOO lets it finish far earlier.
    assert o3[1] < pipe[1]


def test_coalescing_reduces_node_updates():
    o3 = make_engine(UpdateScheme.O3)
    coal = make_engine(UpdateScheme.COALESCING)
    for engine in (o3, coal):
        for i in range(8):
            engine.submit(i, leaf_index=i, epoch_id=0)  # one subtree
        engine.run_until_drained()
    assert coal.node_update_count < o3.node_update_count
    assert set(coal.completions) == set(o3.completions)


def test_coalescing_delegated_persists_complete():
    engine = make_engine(UpdateScheme.COALESCING)
    for i in range(4):
        engine.submit(i, leaf_index=i, epoch_id=0)
    engine.run_until_drained()
    assert len(engine.completions) == 4


def test_unordered_ignores_ordering():
    engine = make_engine(UpdateScheme.UNORDERED)
    for i in range(4):
        engine.submit(i, leaf_index=i)
    engine.run_until_drained()
    assert len(engine.completions) == 4


def test_events_record_node_update_counts():
    engine = make_engine(UpdateScheme.SP)
    engine.submit(0, leaf_index=0)
    engine.run_until_drained()
    [event] = engine.events
    assert event.node_updates == 3
    assert event.root_ack_cycle == engine.completions[0]


def test_root_ack_callback():
    acks = []
    geometry = BMTGeometry(num_leaves=64, arity=8)
    engine = CycleAccurateEngine(
        geometry,
        EngineConfig(scheme=UpdateScheme.SP, mac_latency=10),
        on_root_ack=lambda pid, cycle: acks.append((pid, cycle)),
    )
    engine.submit(0, 0)
    engine.run_until_drained()
    assert acks == [(0, 30)]


def test_drain_guard_raises_on_deadlock_window():
    engine = make_engine(UpdateScheme.SP)
    engine.submit(0, 0)
    with pytest.raises(RuntimeError):
        engine.run_until_drained(max_cycles=5)
