"""Unit tests for the timing simulator's internal models."""

import pytest

from repro.core.schemes import UpdateScheme
from repro.system.config import SystemConfig
from repro.system.timing import TraceSimulator, _WriteCombiner
from repro.workloads.trace import MemoryTrace, OpKind, TraceRecord


def small_sim(scheme=UpdateScheme.SECURE_WB, **overrides):
    config = SystemConfig(scheme=scheme, memory_bytes=64 * 1024 * 1024, **overrides)
    return TraceSimulator(config)


# ----------------------------------------------------------------------
# write combiner
# ----------------------------------------------------------------------


def test_combiner_absorbs_repeat_writes():
    combiner = _WriteCombiner(capacity=4)
    assert not combiner.absorbs("data", 1)
    assert combiner.absorbs("data", 1)


def test_combiner_distinguishes_kinds():
    combiner = _WriteCombiner(capacity=4)
    assert not combiner.absorbs("data", 1)
    assert not combiner.absorbs("ctr", 1)


def test_combiner_evicts_lru():
    combiner = _WriteCombiner(capacity=2)
    combiner.absorbs("d", 1)
    combiner.absorbs("d", 2)
    combiner.absorbs("d", 3)  # evicts 1
    assert not combiner.absorbs("d", 1)


def test_combiner_refreshes_on_hit():
    combiner = _WriteCombiner(capacity=2)
    combiner.absorbs("d", 1)
    combiner.absorbs("d", 2)
    combiner.absorbs("d", 1)  # refresh 1
    combiner.absorbs("d", 3)  # evicts 2, not 1
    assert combiner.absorbs("d", 1)
    assert not combiner.absorbs("d", 2)


# ----------------------------------------------------------------------
# steady-state dirty-residency window
# ----------------------------------------------------------------------


def test_reused_blocks_do_not_write_back():
    """Hot blocks re-dirtied within the residency window stay resident."""
    sim = small_sim()
    records = [TraceRecord(OpKind.STORE, 0x1000, gap=4) for _ in range(500)]
    result = sim.run(MemoryTrace(records), warmup_fraction=0.0)
    assert result.persists <= 1


def test_fresh_blocks_displace_and_write_back():
    sim = small_sim()
    records = [
        TraceRecord(OpKind.STORE, 0x1000 + 64 * i, gap=4) for i in range(500)
    ]
    result = sim.run(MemoryTrace(records), warmup_fraction=0.0)
    assert result.persists == pytest.approx(500, rel=0.05)


def test_warmup_displacements_emit_no_writebacks():
    sim = small_sim()
    records = [
        TraceRecord(OpKind.STORE, 0x1000 + 64 * i, gap=4) for i in range(500)
    ]
    result = sim.run(MemoryTrace(records), warmup_fraction=0.5)
    # Only the measured half produces persists.
    assert result.persists == pytest.approx(250, rel=0.10)


def test_write_through_schemes_have_no_residency_writebacks():
    sim = small_sim(scheme=UpdateScheme.SP)
    records = [
        TraceRecord(OpKind.STORE, 0x1000 + 64 * i, gap=4, persistent=False)
        for i in range(200)
    ]
    result = sim.run(MemoryTrace(records), warmup_fraction=0.0)
    # Non-persistent stores under write-through: no persists at all.
    assert result.persists == 0


def test_epoch_flush_cleans_residency_window():
    """Blocks persisted at an epoch boundary must not write back again."""
    sim = small_sim(scheme=UpdateScheme.O3, epoch_size=8)
    records = [
        TraceRecord(OpKind.STORE, 0x1000 + 64 * (i % 16), gap=4)
        for i in range(160)
    ]
    result = sim.run(MemoryTrace(records), warmup_fraction=0.0)
    # All persists come from epoch flushes (16 unique per 8-store epoch
    # window), none from residency displacement of persisted blocks.
    assert result.persists == sim.epochs.total_persists()


# ----------------------------------------------------------------------
# misc accounting
# ----------------------------------------------------------------------


def test_leaf_folding_keeps_leaves_in_range():
    sim = small_sim()
    huge_block = (1 << 40) // 64
    leaf = sim._leaf_of(huge_block)
    assert 0 <= leaf < sim.geometry.num_leaves


def test_stats_exposed_in_result():
    sim = small_sim(scheme=UpdateScheme.SP)
    records = [TraceRecord(OpKind.STORE, 64 * i, gap=4) for i in range(50)]
    result = sim.run(MemoryTrace(records), warmup_fraction=0.0)
    assert "nvm.writes" in result.stats
    assert "l1.hits" in result.stats
    assert "core.wpq_stall_cycles" in result.stats


def test_sfence_noop_for_strict_schemes():
    sim = small_sim(scheme=UpdateScheme.SP)
    records = [
        TraceRecord(OpKind.STORE, 0x1000, gap=4),
        TraceRecord(OpKind.SFENCE),
        TraceRecord(OpKind.STORE, 0x1040, gap=4),
    ]
    result = sim.run(MemoryTrace(records), warmup_fraction=0.0)
    assert result.persists == 2
