"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list_shows_schemes_and_benchmarks(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    for scheme in ("secure_wb", "sp", "pipeline", "o3", "coalescing", "sgx_sp"):
        assert scheme in out
    assert "gamess" in out and "milc" in out


def test_run_prints_comparison_table(capsys):
    code, out, _ = run_cli(
        capsys, "run", "milc", "--ki", "5", "--schemes", "secure_wb,sp"
    )
    assert code == 0
    assert "milc" in out
    assert "secure_wb" in out and "sp" in out
    assert "vs secure_wb" in out


def test_run_unknown_benchmark_fails(capsys):
    code, _, err = run_cli(capsys, "run", "doom")
    assert code == 2
    assert "unknown benchmark" in err


def test_run_full_memory_flag(capsys):
    code, out, _ = run_cli(
        capsys, "run", "milc", "--ki", "5", "--schemes", "secure_wb,sp", "--full-memory"
    )
    assert code == 0
    assert "full memory" in out


def test_sweep(capsys):
    code, out, _ = run_cli(
        capsys,
        "sweep",
        "--benchmark", "milc",
        "--scheme", "o3",
        "--param", "epoch_size",
        "--values", "8,32",
        "--ki", "5",
    )
    assert code == 0
    assert "epoch_size" in out
    assert "8" in out and "32" in out


def test_sweep_unknown_param_fails(capsys):
    code, _, err = run_cli(
        capsys, "sweep", "--param", "warp_factor", "--values", "1"
    )
    assert code == 2
    assert "unknown SystemConfig parameter" in err


def test_crash_broken_mode_shows_failure(capsys):
    code, out, _ = run_cli(capsys, "crash", "--drop", "counter")
    assert code == 0
    assert "recovered consistently: False" in out
    assert "Wrong plaintext" in out


def test_crash_atomic_mode_recovers(capsys):
    code, out, _ = run_cli(capsys, "crash", "--drop", "counter", "--atomic")
    assert code == 0
    assert "recovered consistently: True" in out
    assert "old value" in out


def test_rebuild_time(capsys):
    code, out, _ = run_cli(capsys, "rebuild-time", "--pages", "100")
    assert code == 0
    assert "full" in out and "touched" in out


def test_timeline_prints_occupancy_tables(capsys):
    code, out, _ = run_cli(capsys, "timeline", "gamess", "--ki", "3")
    assert code == 0
    assert "BMT level occupancy" in out
    assert "avg occupied levels" in out
    assert "sp" in out and "pipeline" in out


def test_timeline_render_and_chrome_export(capsys, tmp_path):
    out_path = tmp_path / "timeline.json"
    code, out, _ = run_cli(
        capsys,
        "timeline",
        "gamess",
        "--ki", "3",
        "--render",
        "--export", "chrome",
        "--out", str(out_path),
    )
    assert code == 0
    assert "timeline: cycles" in out  # ASCII strips rendered
    assert "Perfetto" in out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]
    processes = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert processes == {"sp", "pipeline"}


def test_timeline_jsonl_export(capsys, tmp_path):
    stem = tmp_path / "timeline"
    code, out, _ = run_cli(
        capsys,
        "timeline",
        "gamess",
        "--ki", "3",
        "--schemes", "sp",
        "--export", "jsonl",
        "--out", str(stem),
    )
    assert code == 0
    assert (tmp_path / "timeline.sp.jsonl").exists()


def test_timeline_unknown_benchmark_fails(capsys):
    code, _, err = run_cli(capsys, "timeline", "doom")
    assert code == 2
    assert "unknown benchmark" in err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure_renders_bars(capsys):
    code, out, _ = run_cli(capsys, "figure", "fig10", "--ki", "5")
    assert code == 0
    assert "normalized to secure_WB" in out
    assert "o3" in out and "coalescing" in out
    assert "|#" in out  # bars rendered


def test_figure_unknown_name_rejected(capsys):
    with pytest.raises(SystemExit):
        run_cli(capsys, "figure", "fig99")


def test_crash_campaign_quick_grid(capsys, tmp_path):
    out_path = tmp_path / "campaign.json"
    code, out, _ = run_cli(
        capsys,
        "crash-campaign",
        "--drops",
        "singletons",
        "--no-cache",
        "--out",
        str(out_path),
    )
    assert code == 0
    assert "Crash-injection campaign summary" in out
    assert "Table I" in out and "Table II" in out
    assert "verify: zero silent corruptions" in out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["report"]["jobs"] == len(payload["cells"]) > 0


def test_crash_campaign_filtered_schemes_skips_tables(capsys):
    code, out, _ = run_cli(
        capsys,
        "crash-campaign",
        "--schemes",
        "sp,pipeline",
        "--workloads",
        "overwrite",
        "--drops",
        "singletons",
        "--no-cache",
    )
    assert code == 0
    assert "Table I" not in out  # unordered cells absent: tables skipped
    assert "verify: zero silent corruptions" in out
