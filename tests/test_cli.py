"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list_shows_schemes_and_benchmarks(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    for scheme in ("secure_wb", "sp", "pipeline", "o3", "coalescing", "sgx_sp"):
        assert scheme in out
    assert "gamess" in out and "milc" in out


def test_run_prints_comparison_table(capsys):
    code, out, _ = run_cli(
        capsys, "run", "milc", "--ki", "5", "--schemes", "secure_wb,sp"
    )
    assert code == 0
    assert "milc" in out
    assert "secure_wb" in out and "sp" in out
    assert "vs secure_wb" in out


def test_run_unknown_benchmark_fails(capsys):
    code, _, err = run_cli(capsys, "run", "doom")
    assert code == 2
    assert "unknown benchmark" in err


def test_run_full_memory_flag(capsys):
    code, out, _ = run_cli(
        capsys, "run", "milc", "--ki", "5", "--schemes", "secure_wb,sp", "--full-memory"
    )
    assert code == 0
    assert "full memory" in out


def test_sweep(capsys):
    code, out, _ = run_cli(
        capsys,
        "sweep",
        "--benchmark", "milc",
        "--scheme", "o3",
        "--param", "epoch_size",
        "--values", "8,32",
        "--ki", "5",
    )
    assert code == 0
    assert "epoch_size" in out
    assert "8" in out and "32" in out


def test_sweep_unknown_param_fails(capsys):
    code, _, err = run_cli(
        capsys, "sweep", "--param", "warp_factor", "--values", "1"
    )
    assert code == 2
    assert "unknown SystemConfig parameter" in err


def test_crash_broken_mode_shows_failure(capsys):
    code, out, _ = run_cli(capsys, "crash", "--drop", "counter")
    assert code == 0
    assert "recovered consistently: False" in out
    assert "Wrong plaintext" in out


def test_crash_atomic_mode_recovers(capsys):
    code, out, _ = run_cli(capsys, "crash", "--drop", "counter", "--atomic")
    assert code == 0
    assert "recovered consistently: True" in out
    assert "old value" in out


def test_rebuild_time(capsys):
    code, out, _ = run_cli(capsys, "rebuild-time", "--pages", "100")
    assert code == 0
    assert "full" in out and "touched" in out


def test_recovery_table_covers_the_zoo(capsys):
    code, out, _ = run_cli(capsys, "recovery-table", "--ki", "3")
    assert code == 0
    for scheme in (
        "sp", "pipeline", "o3", "coalescing",
        "triad_nvm", "phoenix", "secpm_wt", "anubis",
    ):
        assert scheme in out
    assert "relaxed root order" in out
    assert "invariants 1+2" in out


def test_recovery_table_markdown_and_touched(capsys):
    code, out, _ = run_cli(
        capsys,
        "recovery-table",
        "--ki", "3",
        "--schemes", "sp,anubis",
        "--touched-pages", "64",
        "--markdown",
    )
    assert code == 0
    assert "| sp |" in out and "| anubis |" in out
    assert "touched" in out


def test_timeline_prints_occupancy_tables(capsys):
    code, out, _ = run_cli(capsys, "timeline", "gamess", "--ki", "3")
    assert code == 0
    assert "BMT level occupancy" in out
    assert "avg occupied levels" in out
    assert "sp" in out and "pipeline" in out


def test_timeline_render_and_chrome_export(capsys, tmp_path):
    out_path = tmp_path / "timeline.json"
    code, out, _ = run_cli(
        capsys,
        "timeline",
        "gamess",
        "--ki", "3",
        "--render",
        "--export", "chrome",
        "--out", str(out_path),
    )
    assert code == 0
    assert "timeline: cycles" in out  # ASCII strips rendered
    assert "Perfetto" in out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]
    processes = {
        e["args"]["name"]
        for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert processes == {"sp", "pipeline"}


def test_timeline_jsonl_export(capsys, tmp_path):
    stem = tmp_path / "timeline"
    code, out, _ = run_cli(
        capsys,
        "timeline",
        "gamess",
        "--ki", "3",
        "--schemes", "sp",
        "--export", "jsonl",
        "--out", str(stem),
    )
    assert code == 0
    assert (tmp_path / "timeline.sp.jsonl").exists()


def test_timeline_unknown_benchmark_fails(capsys):
    code, _, err = run_cli(capsys, "timeline", "doom")
    assert code == 2
    assert "unknown benchmark" in err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure_renders_bars(capsys):
    code, out, _ = run_cli(capsys, "figure", "fig10", "--ki", "5")
    assert code == 0
    assert "normalized to secure_WB" in out
    assert "o3" in out and "coalescing" in out
    assert "|#" in out  # bars rendered


def test_figure_unknown_name_rejected(capsys):
    with pytest.raises(SystemExit):
        run_cli(capsys, "figure", "fig99")


def test_crash_campaign_quick_grid(capsys, tmp_path):
    out_path = tmp_path / "campaign.json"
    code, out, _ = run_cli(
        capsys,
        "crash-campaign",
        "--drops",
        "singletons",
        "--no-cache",
        "--out",
        str(out_path),
    )
    assert code == 0
    assert "Crash-injection campaign summary" in out
    assert "Table I" in out and "Table II" in out
    assert "verify: zero silent corruptions" in out
    import json

    payload = json.loads(out_path.read_text())
    assert payload["report"]["jobs"] == len(payload["cells"]) > 0


def test_crash_campaign_filtered_schemes_skips_tables(capsys):
    code, out, _ = run_cli(
        capsys,
        "crash-campaign",
        "--schemes",
        "sp,pipeline",
        "--workloads",
        "overwrite",
        "--drops",
        "singletons",
        "--no-cache",
    )
    assert code == 0
    assert "Table I" not in out  # unordered cells absent: tables skipped
    assert "verify: zero silent corruptions" in out


def test_trace_inspect_is_header_only(capsys, tmp_path):
    path = tmp_path / "t.plptrace"
    code, out, _ = run_cli(
        capsys,
        "trace",
        "--stream",
        "lca_pingpong",
        "--ops",
        "3000",
        "--segment-ops",
        "512",
        "--out",
        str(path),
    )
    assert code == 0
    assert "v2 chunked" in out

    code, out, _ = run_cli(capsys, "trace", "--inspect", str(path))
    assert code == 0
    assert "lca_pingpong" in out
    assert "3,000" in out  # store count
    assert "format version" in out and "2" in out

    # O(1): the inspect path must not read the columns — corrupt one
    # byte of column data and the summary must be unchanged.
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    code, out2, _ = run_cli(capsys, "trace", "--inspect", str(path))
    assert code == 0
    assert out2 == out


def test_trace_inspect_missing_file_fails(capsys):
    code, _, err = run_cli(capsys, "trace", "--inspect", "/no/such/file.plptrace")
    assert code == 1
    assert "cannot inspect" in err


def test_trace_stream_requires_out(capsys):
    code, _, err = run_cli(capsys, "trace", "--stream", "synthetic")
    assert code == 2
    assert "--out" in err


def test_trace_without_benchmark_or_mode_fails(capsys):
    code, _, err = run_cli(capsys, "trace")
    assert code == 2
    assert "benchmark required" in err


def test_trace_stream_multi_tenant_roundtrip(capsys, tmp_path):
    from repro.workloads.trace import TraceReader

    path = tmp_path / "mt.plptrace"
    code, out, _ = run_cli(
        capsys,
        "trace",
        "--stream",
        "multi_tenant",
        "--ops",
        "2000",
        "--clients",
        "2",
        "--out",
        str(path),
    )
    assert code == 0
    with TraceReader(path) as reader:
        summary = reader.summary()
    assert summary.name == "multi_tenant"
    assert summary.record_count == 2000


def test_sweep_shards_matches_unsharded(capsys):
    argv = [
        "sweep",
        "--benchmark",
        "gamess",
        "--scheme",
        "o3",
        "--param",
        "epoch_size",
        "--values",
        "16,64",
        "--ki",
        "5",
    ]
    code, plain, _ = run_cli(capsys, *argv, "--no-cache")
    assert code == 0
    code, sharded, _ = run_cli(capsys, *argv, "--shards", "3")
    assert code == 0
    # Identical tables: the sharded merge is bit-identical per point.
    table = lambda text: [l for l in text.splitlines() if "x" in l and "|" not in l]
    assert table(plain)[:-1] == table(sharded)[:-1]
    assert "3 shards" in sharded
