"""Tests for the parallel sweep runner (determinism + result cache)."""

import dataclasses
import os
from pathlib import Path

import pytest

import repro.sweep.runner as runner_mod
from repro.sweep import (
    ResultCache,
    SweepJob,
    cached_profile_trace,
    code_version,
    config_digest,
    run_jobs,
    run_matrix,
)
from repro.sweep.runner import TRACE_CACHE_CAP, _trace_cache, run_tasks
from repro.system.config import SystemConfig
from repro.system.factory import run_trace
from repro.workloads.spec_profiles import SPEC_PROFILES, profile_trace

BENCHMARKS = ["gamess", "gcc", "milc"]
SCHEMES = ["secure_wb", "sp", "coalescing"]
KI = 5

HEADLINE = ("cycles", "persists", "node_updates", "ppki")


def _jobs():
    return [
        SweepJob.make(name, scheme, KI)
        for name in BENCHMARKS
        for scheme in SCHEMES
    ]


def _headline(result):
    return {field: getattr(result, field) for field in HEADLINE}


# ----------------------------------------------------------------------
# determinism: parallel == sequential, cold and warm
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_parallel_matches_sequential_cold_and_warm(tmp_path):
    jobs = _jobs()
    sequential, seq_report = run_jobs(jobs, workers=1, cache=False)
    assert seq_report.executed == len(jobs)

    cache_dir = tmp_path / "cache"
    cold, cold_report = run_jobs(jobs, workers=2, cache=str(cache_dir))
    warm, warm_report = run_jobs(jobs, workers=2, cache=str(cache_dir))

    for parallel in (cold, warm):
        for seq_result, par_result in zip(sequential, parallel):
            assert _headline(par_result) == _headline(seq_result)
            # Full field-level equality, not just the headline metrics.
            assert dataclasses.asdict(par_result) == dataclasses.asdict(seq_result)

    assert cold_report.cache_hits == 0
    assert cold_report.cache_misses == len(jobs)
    assert warm_report.cache_hits == len(jobs)
    assert warm_report.executed == 0


def test_runner_matches_direct_factory_path():
    """The runner reproduces run_trace with the profile's core IPC."""
    name, scheme = "gamess", "sp"
    job = SweepJob.make(name, scheme, KI)
    (via_runner,), _ = run_jobs([job], workers=1, cache=False)
    trace = profile_trace(name, KI, 2020)
    config = SystemConfig().variant(core_ipc=SPEC_PROFILES[name].core_ipc)
    direct = run_trace(trace, scheme, config=config)
    assert dataclasses.asdict(via_runner) == dataclasses.asdict(direct)


def test_duplicate_jobs_share_one_execution(tmp_path):
    job = SweepJob.make("gcc", "secure_wb", KI)
    results, report = run_jobs([job, job, job], workers=2, cache=str(tmp_path / "c"))
    assert report.executed == 1
    assert results[0] == results[1] == results[2]


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------


def _worker_pid(spec):
    """Module-level (picklable) probe: which process ran this spec."""
    return os.getpid()


def _die_once(spec: str):
    """Kill the worker the first time a flag spec is seen (pool-break probe)."""
    if spec.endswith(".flag"):
        flag = Path(spec)
        if not flag.exists():
            flag.write_text("died")
            os._exit(1)
    return os.getpid()


def test_persistent_pool_reused_across_sweeps():
    specs = list(range(4))
    keys = [f"pid-{i}" for i in specs]
    first, _ = run_tasks(specs, keys, _worker_pid, workers=2)
    spawns = runner_mod.pool_spawns
    second, _ = run_tasks(specs, keys, _worker_pid, workers=2)
    # No new executor was created, and the very same worker processes
    # (not just the same count) served both sweeps.
    assert runner_mod.pool_spawns == spawns
    assert set(first) & set(second)
    assert os.getpid() not in set(first) | set(second)


def test_pool_grows_by_recreation_and_shrinks_by_reuse():
    runner_mod.shutdown_pool()  # order-independence: start from no pool
    run_tasks([0, 1], ["g0", "g1"], _worker_pid, workers=2)
    spawns = runner_mod.pool_spawns
    run_tasks([0, 1, 2], ["g0", "g1", "g2"], _worker_pid, workers=3)
    assert runner_mod.pool_spawns == spawns + 1  # grew: recreated
    run_tasks([0, 1], ["g0", "g1"], _worker_pid, workers=2)
    assert runner_mod.pool_spawns == spawns + 1  # smaller request reuses


def test_broken_pool_retries_once_on_fresh_workers(tmp_path):
    specs = [str(tmp_path / "a.flag"), "benign"]
    results, report = run_tasks(specs, specs, _die_once, workers=2)
    # First attempt killed worker(s); the retry ran on a fresh pool.
    assert all(isinstance(pid, int) and pid != os.getpid() for pid in results)
    assert report.executed == 2


def test_parallel_pool_results_bit_identical_to_sequential():
    jobs = [SweepJob.make("gamess", s, KI) for s in SCHEMES]
    sequential, _ = run_jobs(jobs, workers=1, cache=False)
    parallel, _ = run_jobs(jobs, workers=2, cache=False)
    for seq_result, par_result in zip(sequential, parallel):
        assert dataclasses.asdict(par_result) == dataclasses.asdict(seq_result)


# ----------------------------------------------------------------------
# result cache keys
# ----------------------------------------------------------------------


def test_cache_key_sensitive_to_overrides():
    base = SweepJob.make("gamess", "sp", KI)
    assert base.key() != SweepJob.make("gamess", "sp", KI, epoch_size=4).key()
    assert base.key() != SweepJob.make("gamess", "coalescing", KI).key()
    assert base.key() != SweepJob.make("gamess", "sp", KI, seed=7).key()
    assert base.key() != SweepJob.make("gamess", "sp", KI + 1).key()
    # Same spec -> same key (override ordering canonicalized by make()).
    assert (
        SweepJob.make("gamess", "sp", KI, epoch_size=4, protect_stack=True).key()
        == SweepJob.make("gamess", "sp", KI, protect_stack=True, epoch_size=4).key()
    )


def test_cache_key_includes_code_version(monkeypatch):
    job = SweepJob.make("gamess", "sp", KI)
    before = job.key()
    monkeypatch.setattr("repro.sweep.cache._CODE_VERSION", "f" * 16)
    assert job.key() != before


def test_config_digest_stable_and_scheme_aware():
    a = SystemConfig()
    assert config_digest(a) == config_digest(SystemConfig())
    assert config_digest(a) != config_digest(a.variant(epoch_size=4))


def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    job = SweepJob.make("gamess", "secure_wb", KI)
    (result,), _ = run_jobs([job], workers=1, cache=cache)
    assert cache.get(job.key()) == result
    assert cache.hit_rate > 0.0


def test_no_result_cache_env_disables(tmp_path, monkeypatch):
    monkeypatch.setenv("PLP_NO_RESULT_CACHE", "1")
    job = SweepJob.make("gamess", "secure_wb", KI)
    _, first = run_jobs([job], workers=1, cache=str(tmp_path))
    _, second = run_jobs([job], workers=1, cache=str(tmp_path))
    assert first.executed == second.executed == 1
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# trace cache + helpers
# ----------------------------------------------------------------------


def test_trace_cache_is_bounded_lru():
    _trace_cache.clear()
    for ki in range(1, TRACE_CACHE_CAP + 3):
        cached_profile_trace("gamess", ki)
    assert len(_trace_cache) == TRACE_CACHE_CAP
    # The oldest entries were evicted, the newest kept.
    assert ("gamess", 1, 2020) not in _trace_cache
    assert ("gamess", TRACE_CACHE_CAP + 2, 2020) in _trace_cache
    _trace_cache.clear()


def test_cached_trace_identical_to_fresh_build():
    cached = cached_profile_trace("gcc", KI)
    assert cached is cached_profile_trace("gcc", KI)
    fresh = profile_trace("gcc", KI, 2020)
    assert list(cached) == list(fresh)


@pytest.mark.slow
def test_run_matrix_shape(tmp_path):
    grid, report = run_matrix(
        ["gamess", "gcc"], ["secure_wb", "sp"], KI, cache=str(tmp_path)
    )
    assert set(grid) == {"gamess", "gcc"}
    assert set(grid["gamess"]) == {"secure_wb", "sp"}
    assert report.jobs == 4
    assert grid["gamess"]["sp"].cycles > grid["gamess"]["secure_wb"].cycles


def test_code_version_is_stable_hex():
    version = code_version()
    assert version == code_version()
    assert len(version) == 16
    int(version, 16)
