"""Tests for the scoreboard engine models."""

import pytest

from repro.core.schedulers import (
    CoalescingScoreboard,
    OccupancyRing,
    OutOfOrderScoreboard,
    PipelineScoreboard,
    SequentialScoreboard,
    UnorderedScoreboard,
    make_scoreboard,
)
from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry


@pytest.fixture
def geometry():
    return BMTGeometry(num_leaves=64, arity=8)  # 3 levels


# ----------------------------------------------------------------------
# occupancy ring
# ----------------------------------------------------------------------


def test_ring_admits_until_full():
    ring = OccupancyRing(capacity=2)
    assert ring.admit(0) == 0
    ring.occupy(100)
    assert ring.admit(0) == 0
    ring.occupy(200)
    assert ring.admit(0) == 100  # waits for the oldest release
    ring.occupy(300)
    assert ring.admit(250) == 250  # 100 and 200 have released


def test_ring_fifo_release_order():
    ring = OccupancyRing(capacity=1)
    ring.occupy(100)
    ring.occupy(50)  # releases FIFO: clamped to 100
    assert ring.admit(0) == 100


def test_ring_invalid_capacity():
    with pytest.raises(ValueError):
        OccupancyRing(0)


# ----------------------------------------------------------------------
# sequential
# ----------------------------------------------------------------------


def test_sequential_back_to_back(geometry):
    sb = SequentialScoreboard(geometry, mac_latency=40)
    t0 = sb.submit(0, 0, arrival=0)
    t1 = sb.submit(1, 1, arrival=0)
    assert t0.completion == 120
    assert t1.completion == 240
    assert sb.engine_busy_until() == 240


def test_sequential_idle_gap(geometry):
    sb = SequentialScoreboard(geometry, mac_latency=40)
    sb.submit(0, 0, arrival=0)
    t1 = sb.submit(1, 1, arrival=1000)
    assert t1.completion == 1120


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------


def test_pipeline_throughput_one_per_stage(geometry):
    sb = PipelineScoreboard(geometry, mac_latency=40)
    completions = [sb.submit(i, i, arrival=0).completion for i in range(4)]
    assert completions == [120, 160, 200, 240]


def test_pipeline_respects_arrival(geometry):
    sb = PipelineScoreboard(geometry, mac_latency=40)
    sb.submit(0, 0, arrival=0)
    late = sb.submit(1, 1, arrival=500)
    assert late.completion == 620


def test_pipeline_root_updates_in_order(geometry):
    sb = PipelineScoreboard(geometry, mac_latency=40)
    times = [sb.submit(i, (i * 7) % 64, arrival=i * 3).completion for i in range(10)]
    assert times == sorted(times)


# ----------------------------------------------------------------------
# unordered
# ----------------------------------------------------------------------


def test_unordered_never_waits(geometry):
    sb = UnorderedScoreboard(geometry, mac_latency=40)
    t = sb.submit(0, 0, arrival=17)
    assert t.completion == 17
    assert sb.node_update_count == 3  # updates still happen


# ----------------------------------------------------------------------
# out-of-order
# ----------------------------------------------------------------------


def test_o3_epoch_roots_gated_on_prior_epoch(geometry):
    sb = OutOfOrderScoreboard(geometry, mac_latency=40)
    first = sb.submit_epoch([(0, 0), (1, 1)], arrival=0)
    second = sb.submit_epoch([(2, 2), (3, 3)], arrival=0)
    last_first = max(t.completion for t in first)
    assert all(t.completion >= last_first for t in second)


def test_o3_admission_gated_two_epochs_back(geometry):
    sb = OutOfOrderScoreboard(geometry, mac_latency=40, ett_capacity=2)
    e0 = sb.submit_epoch([(0, 0)], arrival=0)
    sb.submit_epoch([(1, 1)], arrival=0)
    e2 = sb.submit_epoch([(2, 2)], arrival=0)
    assert min(t.completion for t in e2) - 120 >= max(t.completion for t in e0)


def test_o3_parallel_within_epoch(geometry):
    sb = OutOfOrderScoreboard(geometry, mac_latency=40)
    timings = sb.submit_epoch([(i, i) for i in range(8)], arrival=0)
    spread = max(t.completion for t in timings) - min(t.completion for t in timings)
    assert spread <= 8  # issue port spacing, not serial 120-cycle steps


def test_o3_wpq_ring_limits_flush_issue(geometry):
    ring = OccupancyRing(capacity=2)
    sb = OutOfOrderScoreboard(geometry, mac_latency=40, wpq_ring=ring)
    sb.submit_epoch([(i, i) for i in range(6)], arrival=0)
    # With 2 WPQ slots, later persists waited for earlier completions.
    assert sb.last_issue_time > 0


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------


def test_coalescing_counts_fewer_updates(geometry):
    o3 = OutOfOrderScoreboard(geometry, mac_latency=40)
    coal = CoalescingScoreboard(geometry, mac_latency=40)
    persists = [(i, i) for i in range(8)]
    o3.submit_epoch(persists, arrival=0)
    coal.submit_epoch(persists, arrival=0)
    assert coal.node_update_count < o3.node_update_count
    assert coal.coalesced_away == o3.node_update_count - coal.node_update_count


def test_coalescing_delegates_complete_with_final_delegate(geometry):
    sb = CoalescingScoreboard(geometry, mac_latency=40)
    timings = sb.submit_epoch([(0, 0), (1, 1)], arrival=0)
    # The leading persist's root ack comes from the trailing persist.
    assert timings[0].completion == timings[1].completion


def test_coalescing_cross_epoch_ordering_kept(geometry):
    sb = CoalescingScoreboard(geometry, mac_latency=40)
    first = sb.submit_epoch([(0, 0), (1, 1)], arrival=0)
    second = sb.submit_epoch([(2, 32), (3, 33)], arrival=0)
    assert min(t.completion for t in second) >= max(t.completion for t in first)


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------


def test_make_scoreboard_types(geometry):
    assert isinstance(
        make_scoreboard(UpdateScheme.SP, geometry), SequentialScoreboard
    )
    assert isinstance(
        make_scoreboard(UpdateScheme.SECURE_WB, geometry), SequentialScoreboard
    )
    assert isinstance(
        make_scoreboard(UpdateScheme.PIPELINE, geometry), PipelineScoreboard
    )
    assert isinstance(
        make_scoreboard(UpdateScheme.UNORDERED, geometry), UnorderedScoreboard
    )
    assert isinstance(make_scoreboard(UpdateScheme.O3, geometry), OutOfOrderScoreboard)
    assert isinstance(
        make_scoreboard(UpdateScheme.COALESCING, geometry), CoalescingScoreboard
    )
