"""Tests for counters, histograms, and the stats registry."""

import math

import pytest

from repro.sim.stats import (
    Counter,
    Histogram,
    StatsRegistry,
    geometric_mean,
    merge_stat_dicts,
)


def test_counter_add_and_reset():
    c = Counter("x")
    c.add()
    c.add(5)
    assert c.value == 6
    c.reset()
    assert c.value == 0


def test_histogram_mean_min_max():
    h = Histogram("lat", bucket_width=10)
    for sample in (5, 15, 25, 25):
        h.record(sample)
    assert h.count == 4
    assert h.mean == pytest.approx(17.5)
    assert h.minimum == 5
    assert h.maximum == 25


def test_histogram_buckets_sorted():
    h = Histogram("lat", bucket_width=10)
    for sample in (35, 5, 15):
        h.record(sample)
    assert [b for b, _ in h.buckets()] == [0, 10, 30]


def test_histogram_percentile():
    h = Histogram("lat", bucket_width=1)
    for sample in range(100):
        h.record(sample)
    assert h.percentile(50) in range(49, 52)
    assert h.percentile(100) >= 99
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_percentile_empty_is_zero():
    h = Histogram("lat")
    assert h.percentile(50) == 0.0
    assert h.percentile(0) == 0.0
    assert h.percentile(100) == 0.0


def test_histogram_percentile_endpoints_are_min_max():
    h = Histogram("lat", bucket_width=10)
    for sample in (7, 23, 55):
        h.record(sample)
    assert h.percentile(0) == 7.0
    assert h.percentile(100) == 55.0


def test_histogram_percentile_rejects_out_of_range():
    h = Histogram("lat")
    h.record(1)
    with pytest.raises(ValueError):
        h.percentile(-1)
    with pytest.raises(ValueError):
        h.percentile(100.5)


def test_histogram_percentile_single_bucket_clamps_to_observed_range():
    # All samples land in bucket [0, 16); interpolation must not report
    # values outside [min, max] = [3, 5].
    h = Histogram("lat", bucket_width=16)
    for sample in (3, 4, 5):
        h.record(sample)
    for p in (1, 25, 50, 75, 99):
        assert 3.0 <= h.percentile(p) <= 5.0


def test_histogram_percentile_interpolates_within_bucket():
    # 100 samples uniform over [0, 100) with width-10 buckets: p50 falls
    # exactly on a bucket boundary and must interpolate to ~50, not jump
    # to the bucket's top edge (the old ceil-based semantics gave 59).
    h = Histogram("lat", bucket_width=10)
    for sample in range(100):
        h.record(sample)
    assert h.percentile(50) == pytest.approx(50.0)
    assert h.percentile(95) == pytest.approx(95.0)
    assert h.percentile(10) == pytest.approx(10.0)


def test_histogram_percentile_monotone_in_p():
    h = Histogram("lat", bucket_width=8)
    for sample in (1, 2, 3, 40, 41, 200):
        h.record(sample)
    values = [h.percentile(p) for p in range(0, 101, 5)]
    assert values == sorted(values)
    assert values[0] == 1.0 and values[-1] == 200.0


def test_histogram_reset_clears_samples_in_place():
    h = Histogram("lat", bucket_width=4)
    for sample in (1, 9, 17):
        h.record(sample)
    h.reset()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.minimum == 0 and h.maximum == 0
    assert list(h.buckets()) == []
    h.record(6)
    assert h.count == 1
    assert h.minimum == 6 and h.maximum == 6


def test_histogram_rejects_bad_bucket_width():
    with pytest.raises(ValueError):
        Histogram("x", bucket_width=0)


def test_registry_namespacing():
    reg = StatsRegistry()
    child = reg.child("l1")
    child.counter("hits").add(3)
    reg.counter("total").add(1)
    flat = reg.as_dict()
    assert flat["l1.hits"] == 3
    assert flat["total"] == 1


def test_registry_counter_identity():
    reg = StatsRegistry()
    assert reg.counter("a") is reg.counter("a")


def test_registry_qualified_name_format():
    reg = StatsRegistry()
    child = reg.child("mem")
    grandchild = child.child("l2")
    assert reg.counter("total").name == "total"
    assert child.counter("hits").name == "mem.hits"
    assert grandchild.counter("hits").name == "mem.l2.hits"
    assert grandchild.histogram("lat").name == "mem.l2.lat"


def test_registry_child_memoized_by_prefix():
    reg = StatsRegistry()
    a = reg.child("mem")
    b = reg.child("mem")
    assert a is b
    a.counter("hits").add(2)
    b.counter("hits").add(3)
    assert reg.as_dict()["mem.hits"] == 5


def test_registry_reset_reaches_grandchildren():
    reg = StatsRegistry()
    grandchild = reg.child("mem").child("l2")
    hits = grandchild.counter("hits")
    lat = grandchild.histogram("lat")
    hits.add(7)
    lat.record(12)
    reg.reset()
    assert hits.value == 0
    assert lat.count == 0
    # The histogram was reset in place, not discarded: the component's
    # reference keeps recording into the registry after the reset.
    lat.record(30)
    flat = reg.as_dict()
    assert flat["mem.l2.lat.count"] == 1
    assert flat["mem.l2.lat.mean"] == 30


def test_registry_histogram_summary_in_dict():
    reg = StatsRegistry()
    reg.histogram("lat").record(10)
    flat = reg.as_dict()
    assert flat["lat.count"] == 1
    assert flat["lat.mean"] == 10


def test_geometric_mean_matches_definition():
    values = [2.0, 8.0]
    assert geometric_mean(values) == pytest.approx(4.0)
    assert geometric_mean([7.2]) == pytest.approx(7.2)


def test_geometric_mean_rejects_bad_input():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


# ----------------------------------------------------------------------
# mergeable protocol (sharded simulation)
# ----------------------------------------------------------------------


def test_counter_merge_adds_values():
    a = Counter("hits", 3)
    b = Counter("hits", 4)
    a.merge(b)
    assert a.value == 7
    assert b.value == 4


def test_counter_merge_rejects_name_mismatch():
    with pytest.raises(ValueError):
        Counter("hits").merge(Counter("misses"))


def test_histogram_merge_matches_recording_everything():
    one = Histogram("lat", bucket_width=8)
    two = Histogram("lat", bucket_width=8)
    golden = Histogram("lat", bucket_width=8)
    for sample in (3, 17, 90, 4):
        one.record(sample)
        golden.record(sample)
    for sample in (250, 1, 33):
        two.record(sample)
        golden.record(sample)
    one.merge(two)
    assert list(one.buckets()) == list(golden.buckets())
    assert one.count == golden.count
    assert one.mean == golden.mean
    assert one.minimum == golden.minimum
    assert one.maximum == golden.maximum
    assert one.percentile(50) == golden.percentile(50)


def test_histogram_merge_empty_is_identity():
    h = Histogram("lat")
    h.record(12)
    h.merge(Histogram("lat"))
    assert h.count == 1 and h.minimum == 12 and h.maximum == 12


def test_histogram_merge_rejects_mismatch():
    with pytest.raises(ValueError):
        Histogram("lat").merge(Histogram("other"))
    with pytest.raises(ValueError):
        Histogram("lat", bucket_width=8).merge(Histogram("lat", bucket_width=16))


def test_registry_merge_recursive():
    a = StatsRegistry()
    a.counter("hits").add(2)
    a.child("l2").counter("misses").add(5)
    a.child("l2").histogram("lat").record(10)
    b = StatsRegistry()
    b.counter("hits").add(3)
    b.counter("new").add(1)
    b.child("l2").counter("misses").add(7)
    b.child("l2").histogram("lat").record(26)
    b.child("l3").counter("misses").add(9)
    a.merge(b)
    flat = a.as_dict()
    assert flat["hits"] == 5
    assert flat["new"] == 1
    assert flat["l2.misses"] == 12
    assert flat["l2.lat.count"] == 2
    assert flat["l3.misses"] == 9


def test_merge_stat_dicts_sums_keywise():
    merged = merge_stat_dicts(
        [{"a": 1, "b": 2}, {"a": 3, "c": 4}, {}]
    )
    assert merged == {"a": 4, "b": 2, "c": 4}
