"""Tests for counters, histograms, and the stats registry."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, StatsRegistry, geometric_mean


def test_counter_add_and_reset():
    c = Counter("x")
    c.add()
    c.add(5)
    assert c.value == 6
    c.reset()
    assert c.value == 0


def test_histogram_mean_min_max():
    h = Histogram("lat", bucket_width=10)
    for sample in (5, 15, 25, 25):
        h.record(sample)
    assert h.count == 4
    assert h.mean == pytest.approx(17.5)
    assert h.minimum == 5
    assert h.maximum == 25


def test_histogram_buckets_sorted():
    h = Histogram("lat", bucket_width=10)
    for sample in (35, 5, 15):
        h.record(sample)
    assert [b for b, _ in h.buckets()] == [0, 10, 30]


def test_histogram_percentile():
    h = Histogram("lat", bucket_width=1)
    for sample in range(100):
        h.record(sample)
    assert h.percentile(50) in range(49, 52)
    assert h.percentile(100) >= 99
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_rejects_bad_bucket_width():
    with pytest.raises(ValueError):
        Histogram("x", bucket_width=0)


def test_registry_namespacing():
    reg = StatsRegistry()
    child = reg.child("l1")
    child.counter("hits").add(3)
    reg.counter("total").add(1)
    flat = reg.as_dict()
    assert flat["l1.hits"] == 3
    assert flat["total"] == 1


def test_registry_counter_identity():
    reg = StatsRegistry()
    assert reg.counter("a") is reg.counter("a")


def test_registry_histogram_summary_in_dict():
    reg = StatsRegistry()
    reg.histogram("lat").record(10)
    flat = reg.as_dict()
    assert flat["lat.count"] == 1
    assert flat["lat.mean"] == 10


def test_geometric_mean_matches_definition():
    values = [2.0, 8.0]
    assert geometric_mean(values) == pytest.approx(4.0)
    assert geometric_mean([7.2]) == pytest.approx(7.2)


def test_geometric_mean_rejects_bad_input():
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])
