"""Tests for the application-level crash-plan campaign.

Covers the KV store's block encodings and lowering, the idioms'
recovery procedures, the persist map against the real journal, the
crash-plan pruner (including the exhaustive soundness cross-check and a
hypothesis-generated workload arm), the app-state differential
classifier, and the loud-failure gate in ``verify_campaign``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.campaign import CampaignViolation, summarize_app, verify_campaign
from repro.app.kvstore import (
    AppWorkload,
    COMMIT_ROLES,
    decode_log_head,
    decode_pointer,
    decode_slot,
    decode_undo_record,
    encode_log_head,
    encode_pointer,
    encode_slot,
    encode_undo_record,
    lower,
    recover_app,
    replay_app,
)
from repro.app.workloads import APP_WORKLOADS, app_memory_trace, resolve_workload
from repro.campaign.app_engine import (
    APP_CAMPAIGN_SCHEMES,
    AppScenario,
    persist_map,
    run_app_scenario,
)
from repro.campaign.grid import DROP_SUBSETS, build_memory, semantics_for
from repro.campaign.plans import crosscheck_pruning, exhaustive_cells, generate_plans
from repro.campaign.runner import AppCampaignCache, run_app_campaign
from repro.crypto.primitives import BLOCK_SIZE


# ----------------------------------------------------------------------
# block encodings
# ----------------------------------------------------------------------


def test_slot_roundtrip():
    raw = encode_slot(3, 1, b"hello")
    assert len(raw) == BLOCK_SIZE
    assert decode_slot(raw) == (3, 1, b"hello")


def test_pointer_roundtrip():
    assert decode_pointer(encode_pointer(1, 513)) == (1, 513)


def test_log_head_roundtrip():
    assert decode_log_head(encode_log_head(300, 5)) == (300, 5)


def test_undo_record_roundtrip():
    old = encode_slot(2, 0, b"old-value")
    gen, slot, was_empty, chunk = decode_undo_record(encode_undo_record(7, 258, old))
    assert (gen, slot, was_empty, chunk) == (7, 258, False, b"old-value")
    gen, slot, was_empty, chunk = decode_undo_record(
        encode_undo_record(7, 258, bytes(BLOCK_SIZE))
    )
    assert (was_empty, chunk) == (True, b"")


def test_decoders_reject_foreign_blocks():
    zero = bytes(BLOCK_SIZE)
    assert decode_slot(zero) is None
    assert decode_pointer(zero) is None
    assert decode_log_head(zero) is None
    assert decode_undo_record(zero) is None
    # A slot block is not a pointer block and vice versa.
    assert decode_pointer(encode_slot(0, 0, b"x")) is None
    assert decode_slot(encode_pointer(0, 1)) is None


def test_slot_chunk_size_enforced():
    with pytest.raises(ValueError):
        encode_slot(0, 0, b"x" * 49)


# ----------------------------------------------------------------------
# workloads and lowering
# ----------------------------------------------------------------------


def test_workload_validation():
    with pytest.raises(ValueError):
        AppWorkload("bad", (("put", 9, b"v"),), num_keys=2)
    with pytest.raises(ValueError):
        AppWorkload("bad", (("put", 0, b""),), num_keys=2)
    with pytest.raises(ValueError):
        AppWorkload("bad", (("put", 0, b"x" * 49),), num_keys=2, value_blocks=1)
    with pytest.raises(ValueError):
        AppWorkload("bad", (("frobnicate", 0),), num_keys=2)


def test_lowering_state_timeline_matches_semantics():
    wl = resolve_workload("basic")
    for idiom in ("snapshot", "undolog"):
        trace = lower(idiom, wl)
        assert trace.op_count == len(wl.ops)
        state = {}
        from repro.app.kvstore import apply_op

        for index, op in enumerate(wl.ops):
            state = apply_op(state, op)
            assert trace.states[index + 1] == state


def test_snapshot_ops_end_with_pointer_flip():
    wl = resolve_workload("smoke")
    trace = lower("snapshot", wl)
    stores = [r for r in trace.records if r.kind == "store"]
    for index in range(trace.op_count):
        mine = [r for r in stores if r.app_index == index]
        assert mine[-1].role == "snap_ptr"


def test_undolog_ops_end_with_commit():
    wl = resolve_workload("smoke")
    trace = lower("undolog", wl)
    stores = [r for r in trace.records if r.kind == "store"]
    for index in range(trace.op_count):
        mine = [r for r in stores if r.app_index == index]
        assert mine[0].role == "log_rec"
        assert mine[-1].role == "log_commit"


def test_recover_app_on_clean_image_returns_final_state():
    wl = resolve_workload("basic")
    for idiom in ("snapshot", "undolog"):
        trace = lower(idiom, wl)
        mem = build_memory(semantics_for("sp"))
        replay_app(mem, trace)
        mem.drain()
        recovered = recover_app(
            idiom, wl, lambda block: mem.load(block * BLOCK_SIZE)
        )
        assert recovered == trace.states[-1]


def test_app_memory_trace_is_deterministic():
    a = app_memory_trace("snapshot", "smoke")
    b = app_memory_trace("snapshot", "smoke")
    assert len(a) == len(b)
    assert list(a.kind_codes) == list(b.kind_codes)
    assert list(a.addresses) == list(b.addresses)


# ----------------------------------------------------------------------
# persist map vs the real journal
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", APP_CAMPAIGN_SCHEMES)
@pytest.mark.parametrize("idiom", ["snapshot", "undolog"])
def test_persist_map_matches_journal(scheme, idiom):
    """The crypto-free persist map predicts the journal block-for-block."""
    sem = semantics_for(scheme)
    wl = resolve_workload("basic")
    trace = lower(idiom, wl)
    mem = build_memory(sem)
    replay_app(mem, trace)
    pmap = persist_map(sem, trace)
    journal = mem.journal
    assert len(pmap) == len(journal)
    for info, record in zip(pmap, journal):
        assert info.block == record.block


# ----------------------------------------------------------------------
# the pruner: plan generation and soundness
# ----------------------------------------------------------------------


def test_exhaustive_space_size():
    cells = exhaustive_cells(3, list(DROP_SUBSETS))
    assert len(cells) == 1 + 16 * 3
    assert cells[0] == (-1, ())


@pytest.mark.parametrize("scheme", ["sp", "coalescing"])
@pytest.mark.parametrize("idiom", ["snapshot", "undolog"])
def test_generate_plans_accounting(scheme, idiom):
    plan_set = generate_plans(scheme, idiom, "smoke")
    assert plan_set.exhaustive_cells == 1 + 16 * plan_set.total_persists
    assert sum(plan.represented for plan in plan_set.plans) == plan_set.exhaustive_cells
    assert plan_set.skipped_cells == plan_set.exhaustive_cells - len(plan_set.plans)
    keys = [plan.class_key for plan in plan_set.plans]
    assert len(keys) == len(set(keys))
    # The bench gate's floor, with lots of headroom on atomic schemes.
    assert plan_set.prune_ratio >= 0.5


def test_plan_classes_cover_every_commit_count():
    """Each commit role instance starts its own class: the smoke trace's
    three ops yield three distinct commits-before values."""
    plan_set = generate_plans("sp", "snapshot", "smoke")
    end_plans = [p for p in plan_set.plans if p.class_key == "end"]
    assert len(end_plans) == 1
    commits = {
        p.class_key.rsplit(":c", 1)[1]
        for p in plan_set.plans
        if p.class_key != "end"
    }
    assert commits == {"0", "1", "2"}


@pytest.mark.parametrize("scheme", ["sp", "coalescing"])
@pytest.mark.parametrize("idiom", ["snapshot", "undolog"])
def test_pruning_soundness_crosscheck(scheme, idiom):
    """Every exhaustive cell classifies like its representative — no
    mismatch-producing plan was pruned away."""
    result = crosscheck_pruning(scheme, idiom, "smoke")
    assert result["agree"], result["disagreements"]
    assert result["missed_mismatches"] == 0
    assert result["prune_ratio"] >= 0.5


def test_pruning_soundness_non_atomic_fallback():
    """The unordered strawman prunes via exact damage signatures — less
    aggressively, but still soundly."""
    result = crosscheck_pruning("unordered", "snapshot", "smoke")
    assert result["agree"], result["disagreements"]
    assert result["missed_mismatches"] == 0


_hyp_values = st.binary(min_size=1, max_size=48)
_hyp_keys = st.integers(min_value=0, max_value=2)
_hyp_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _hyp_keys, _hyp_values),
        st.tuples(st.just("delete"), _hyp_keys),
        st.tuples(st.just("get"), _hyp_keys),
        st.tuples(
            st.just("txn"),
            st.lists(
                st.tuples(_hyp_keys, st.one_of(st.none(), _hyp_values)),
                min_size=1,
                max_size=2,
            ).map(tuple),
        ),
    ),
    min_size=1,
    max_size=3,
)


@pytest.mark.slow
@pytest.mark.parametrize("idiom", ["snapshot", "undolog"])
@settings(max_examples=12, deadline=None)
@given(ops=_hyp_ops)
def test_pruning_sound_on_generated_workloads(idiom, ops):
    """Property arm: the pruner stays sound on arbitrary small
    workloads, not just the curated roster."""
    wl = AppWorkload("hyp", tuple(ops), num_keys=3)
    result = crosscheck_pruning("sp", idiom, wl)
    assert result["agree"], result["disagreements"]
    assert result["missed_mismatches"] == 0


# ----------------------------------------------------------------------
# scenario classification
# ----------------------------------------------------------------------


def test_boundary_scenario_is_post_op():
    cell = run_app_scenario(AppScenario("sp", "snapshot", "smoke", -1))
    assert cell.classification == "post_op"
    assert cell.in_flight_op == -1
    assert not cell.problems


def test_first_victim_is_pre_op():
    cell = run_app_scenario(
        AppScenario("sp", "undolog", "smoke", 0, ("data", "counter", "mac", "root_ack"))
    )
    assert cell.classification == "pre_op"
    assert cell.in_flight_op == 0
    assert cell.durable_persists == 0


def test_non_persistent_scheme_rejected():
    with pytest.raises(ValueError):
        run_app_scenario(AppScenario("secure_wb", "snapshot", "smoke", -1))


def test_scenario_validation():
    with pytest.raises(ValueError):
        AppScenario("sp", "b-tree", "smoke", -1)
    with pytest.raises(ValueError):
        AppScenario("sp", "snapshot", "smoke", -1, ("mac",))
    with pytest.raises(ValueError):
        AppScenario("sp", "snapshot", "smoke", 0, ("flux",))


@pytest.mark.parametrize("scheme", APP_CAMPAIGN_SCHEMES)
def test_full_pruned_campaign_is_clean(scheme):
    """The acceptance bar: every pruned plan of both idioms recovers to
    a legal frame under every roster scheme, zero problems."""
    for idiom in ("snapshot", "undolog"):
        plan_set = generate_plans(scheme, idiom, "smoke")
        for plan in plan_set.plans:
            cell = run_app_scenario(plan.scenario)
            assert cell.consistent_frame, (scheme, idiom, plan)
            assert not cell.problems


# ----------------------------------------------------------------------
# verify_campaign: loud failure on app-state mismatch
# ----------------------------------------------------------------------


def _forged_cell(**overrides):
    from repro.campaign.app_engine import AppCampaignCell

    base = dict(
        scheme="sp",
        idiom="snapshot",
        workload="smoke",
        victim=3,
        drops=["mac"],
        compliant=True,
        relaxed=False,
        classification="mismatch",
        bmt_ok=True,
        in_flight_op=1,
        durable_persists=3,
        total_persists=8,
        recovered=[["0", "ff"]],
        expected_pre=[["0", "aa"]],
        expected_post=[["0", "bb"]],
        problems=[],
    )
    base.update(overrides)
    return AppCampaignCell(**base)


def test_verify_campaign_fails_loudly_on_compliant_mismatch():
    with pytest.raises(CampaignViolation, match="APP-STATE MISMATCH"):
        verify_campaign([_forged_cell()], require_tables=False)


def test_verify_campaign_fails_loudly_on_relaxed_mismatch():
    cell = _forged_cell(scheme="triad_nvm", compliant=False, relaxed=True)
    with pytest.raises(CampaignViolation, match="relaxed"):
        verify_campaign([cell], require_tables=False)


def test_verify_campaign_tolerates_non_compliant_mismatch():
    cell = _forged_cell(scheme="unordered", compliant=False, relaxed=False)
    verify_campaign([cell], require_tables=False)


def test_verify_campaign_rejects_detected_in_compliant():
    cell = _forged_cell(classification="detected", bmt_ok=False)
    with pytest.raises(CampaignViolation, match="classified detected"):
        verify_campaign([cell], require_tables=False)


def test_verify_campaign_flags_problems():
    cell = _forged_cell(classification="post_op", problems=["tuple incomplete"])
    with pytest.raises(CampaignViolation, match="mechanical invariant"):
        verify_campaign([cell], require_tables=False)


def test_verify_campaign_accepts_real_cells():
    plan_set = generate_plans("sp", "undolog", "smoke")
    cells = [run_app_scenario(plan.scenario) for plan in plan_set.plans]
    verify_campaign(cells, require_tables=False)
    table = summarize_app(cells, [plan_set])
    rendered = str(table)
    assert "sp" in rendered and "undolog" in rendered


# ----------------------------------------------------------------------
# runner and cache
# ----------------------------------------------------------------------


def _smoke_scenarios():
    scenarios = []
    for scheme in ("sp", "triad_nvm"):
        for idiom in ("snapshot", "undolog"):
            plan_set = generate_plans(scheme, idiom, "smoke")
            scenarios.extend(plan.scenario for plan in plan_set.plans)
    return scenarios


def test_app_campaign_cache_roundtrip(tmp_path):
    cache = AppCampaignCache(tmp_path / "app-cells")
    cell = run_app_scenario(AppScenario("sp", "snapshot", "smoke", -1))
    cache.put("k1", cell)
    loaded = cache.get("k1")
    assert loaded == cell


def test_run_app_campaign_parallel_matches_sequential(tmp_path):
    scenarios = _smoke_scenarios()
    sequential, _ = run_app_campaign(scenarios, workers=1, cache=False)
    parallel, _ = run_app_campaign(scenarios, workers=2, cache=False)
    assert sequential == parallel


def test_run_app_campaign_cache_hits(tmp_path):
    scenarios = _smoke_scenarios()
    cache = AppCampaignCache(tmp_path / "app-cells")
    cold, cold_report = run_app_campaign(scenarios, workers=1, cache=cache)
    warm, warm_report = run_app_campaign(scenarios, workers=1, cache=cache)
    assert cold == warm
    assert warm_report.cache_hits == len(scenarios)
    assert cold_report.cache_hits == 0


# ----------------------------------------------------------------------
# roster sanity
# ----------------------------------------------------------------------


def test_roster_workloads_resolve_and_lower():
    for name in APP_WORKLOADS:
        wl = resolve_workload(name)
        for idiom in ("snapshot", "undolog"):
            trace = lower(idiom, wl)
            assert trace.store_count > 0


def test_commit_roles_are_the_moving_parts():
    assert COMMIT_ROLES == {"snap_ptr", "log_head", "log_commit"}
