"""Tests for the synthetic trace generators."""

import pytest

from repro.persistency.epochs import EpochTracker
from repro.workloads.synthetic import (
    SyntheticSpec,
    calibrate_pool,
    expected_uniques,
    generate_trace,
    kvstore_trace,
    pointer_chase,
    sequential_stream,
    strided_stream,
    uniform_random,
    zipfian,
)
from repro.workloads.trace import OpKind


def test_generate_trace_is_deterministic():
    spec = SyntheticSpec(kilo_instructions=5, seed=99)
    a = generate_trace(spec)
    b = generate_trace(spec)
    assert a.records == b.records


def test_generate_trace_store_rate():
    spec = SyntheticSpec(kilo_instructions=10, stores_per_ki=80, loads_per_ki=100)
    trace = generate_trace(spec)
    assert trace.stores_per_kilo_instruction() == pytest.approx(80, rel=0.05)


def test_generate_trace_stack_fraction():
    spec = SyntheticSpec(
        kilo_instructions=10, stores_per_ki=100, stack_store_fraction=0.4, seed=1
    )
    trace = generate_trace(spec)
    total = trace.count(OpKind.STORE)
    persistent = trace.count(OpKind.STORE, persistent_only=True)
    assert 1 - persistent / total == pytest.approx(0.4, abs=0.05)


def test_generate_trace_epoch_uniques_track_pool():
    spec = SyntheticSpec(
        kilo_instructions=10,
        stores_per_ki=100,
        stack_store_fraction=0.0,
        pool_blocks=8,
        new_block_rate=0.0,
        seed=5,
    )
    trace = generate_trace(spec)
    tracker = EpochTracker(32)
    for r in trace:
        if r.kind is OpKind.STORE and r.persistent:
            tracker.record_store(r.block)
    tracker.flush()
    mean_uniques = tracker.total_persists() / len(tracker.closed_epochs)
    assert mean_uniques == pytest.approx(
        expected_uniques(8, 0.0, 32), rel=0.2
    )


def test_expected_uniques_bounds():
    assert expected_uniques(1, 0.0, 32) == pytest.approx(1.0)
    assert expected_uniques(10_000, 1.0, 32) == 32.0
    assert expected_uniques(16, 0.0, 64) <= 16.0


def test_expected_uniques_monotone_in_pool():
    values = [expected_uniques(p, 0.05, 32) for p in (1, 4, 16, 64)]
    assert values == sorted(values)


def test_calibrate_pool_hits_target():
    for target in (2.0, 8.0, 19.0, 28.0):
        pool = calibrate_pool(target, new_rate=0.0, window=32)
        achieved = expected_uniques(pool, 0.0, 32)
        assert achieved >= target * 0.85


def test_sequential_stream_blocks():
    trace = sequential_stream(10, start=0)
    assert [r.block for r in trace] == list(range(10))


def test_strided_stream():
    trace = strided_stream(4, stride_blocks=8, start=0)
    assert [r.block for r in trace] == [0, 8, 16, 24]


def test_uniform_random_span():
    trace = uniform_random(100, span_blocks=16, start=0)
    assert all(0 <= r.block < 16 for r in trace)


def test_zipfian_is_skewed():
    trace = zipfian(2000, span_blocks=64, skew=1.2, start=0)
    counts = {}
    for r in trace:
        counts[r.block] = counts.get(r.block, 0) + 1
    hottest = max(counts.values())
    assert hottest > 2000 / 64 * 4  # far above uniform share


def test_zipfian_rejects_bad_skew():
    with pytest.raises(ValueError):
        zipfian(10, 10, skew=0)


def test_pointer_chase_stays_in_span():
    trace = pointer_chase(50, span_blocks=32, start=0)
    assert all(r.kind is OpKind.LOAD for r in trace)
    assert all(r.block < 32 for r in trace)


def test_kvstore_has_barriers_and_log_appends():
    trace = kvstore_trace(200, num_keys=64, put_fraction=1.0, seed=3)
    kinds = [r.kind for r in trace]
    assert OpKind.SFENCE in kinds
    # Log appends are sequential persistent stores.
    log_blocks = [r.block for r in trace if r.kind is OpKind.STORE][::2]
    assert log_blocks == sorted(log_blocks)


def test_kvstore_get_only_has_no_stores():
    trace = kvstore_trace(100, put_fraction=0.0, seed=4)
    assert trace.count(OpKind.STORE) == 0
    assert trace.count(OpKind.LOAD) == 100
