"""Tests for the synthetic trace generators."""

import pytest

from repro.persistency.epochs import EpochTracker
from repro.workloads.synthetic import (
    SyntheticSpec,
    calibrate_pool,
    emit_ops,
    expected_uniques,
    generate_trace,
    kvstore_trace,
    lca_pingpong,
    lca_pingpong_ops,
    multi_tenant,
    multi_tenant_ops,
    pointer_chase,
    sequential_stream,
    stream_trace,
    strided_stream,
    synthetic_ops,
    uniform_random,
    zipfian,
)
from repro.workloads.trace import MemoryTrace, OpKind


def test_generate_trace_is_deterministic():
    spec = SyntheticSpec(kilo_instructions=5, seed=99)
    a = generate_trace(spec)
    b = generate_trace(spec)
    assert a.records == b.records


def test_generate_trace_store_rate():
    spec = SyntheticSpec(kilo_instructions=10, stores_per_ki=80, loads_per_ki=100)
    trace = generate_trace(spec)
    assert trace.stores_per_kilo_instruction() == pytest.approx(80, rel=0.05)


def test_generate_trace_stack_fraction():
    spec = SyntheticSpec(
        kilo_instructions=10, stores_per_ki=100, stack_store_fraction=0.4, seed=1
    )
    trace = generate_trace(spec)
    total = trace.count(OpKind.STORE)
    persistent = trace.count(OpKind.STORE, persistent_only=True)
    assert 1 - persistent / total == pytest.approx(0.4, abs=0.05)


def test_generate_trace_epoch_uniques_track_pool():
    spec = SyntheticSpec(
        kilo_instructions=10,
        stores_per_ki=100,
        stack_store_fraction=0.0,
        pool_blocks=8,
        new_block_rate=0.0,
        seed=5,
    )
    trace = generate_trace(spec)
    tracker = EpochTracker(32)
    for r in trace:
        if r.kind is OpKind.STORE and r.persistent:
            tracker.record_store(r.block)
    tracker.flush()
    mean_uniques = tracker.total_persists() / len(tracker.closed_epochs)
    assert mean_uniques == pytest.approx(
        expected_uniques(8, 0.0, 32), rel=0.2
    )


def test_expected_uniques_bounds():
    assert expected_uniques(1, 0.0, 32) == pytest.approx(1.0)
    assert expected_uniques(10_000, 1.0, 32) == 32.0
    assert expected_uniques(16, 0.0, 64) <= 16.0


def test_expected_uniques_monotone_in_pool():
    values = [expected_uniques(p, 0.05, 32) for p in (1, 4, 16, 64)]
    assert values == sorted(values)


def test_calibrate_pool_hits_target():
    for target in (2.0, 8.0, 19.0, 28.0):
        pool = calibrate_pool(target, new_rate=0.0, window=32)
        achieved = expected_uniques(pool, 0.0, 32)
        assert achieved >= target * 0.85


def test_sequential_stream_blocks():
    trace = sequential_stream(10, start=0)
    assert [r.block for r in trace] == list(range(10))


def test_strided_stream():
    trace = strided_stream(4, stride_blocks=8, start=0)
    assert [r.block for r in trace] == [0, 8, 16, 24]


def test_uniform_random_span():
    trace = uniform_random(100, span_blocks=16, start=0)
    assert all(0 <= r.block < 16 for r in trace)


def test_zipfian_is_skewed():
    trace = zipfian(2000, span_blocks=64, skew=1.2, start=0)
    counts = {}
    for r in trace:
        counts[r.block] = counts.get(r.block, 0) + 1
    hottest = max(counts.values())
    assert hottest > 2000 / 64 * 4  # far above uniform share


def test_zipfian_rejects_bad_skew():
    with pytest.raises(ValueError):
        zipfian(10, 10, skew=0)


def test_pointer_chase_stays_in_span():
    trace = pointer_chase(50, span_blocks=32, start=0)
    assert all(r.kind is OpKind.LOAD for r in trace)
    assert all(r.block < 32 for r in trace)


def test_kvstore_has_barriers_and_log_appends():
    trace = kvstore_trace(200, num_keys=64, put_fraction=1.0, seed=3)
    kinds = [r.kind for r in trace]
    assert OpKind.SFENCE in kinds
    # Log appends are sequential persistent stores.
    log_blocks = [r.block for r in trace if r.kind is OpKind.STORE][::2]
    assert log_blocks == sorted(log_blocks)


def test_kvstore_get_only_has_no_stores():
    trace = kvstore_trace(100, put_fraction=0.0, seed=4)
    assert trace.count(OpKind.STORE) == 0
    assert trace.count(OpKind.LOAD) == 100


# ----------------------------------------------------------------------
# adversarial generators + streaming emission
# ----------------------------------------------------------------------


def _column_digest(trace):
    import hashlib

    h = hashlib.sha256()
    for column in (
        trace.kind_codes,
        trace.addresses,
        trace.gaps,
        trace.persistent_flags,
    ):
        h.update(bytes(memoryview(column)))
    return h.hexdigest()


def test_lca_pingpong_is_seed_deterministic():
    assert _column_digest(lca_pingpong(2000)) == _column_digest(lca_pingpong(2000))
    assert _column_digest(lca_pingpong(2000, seed=7)) != _column_digest(
        lca_pingpong(2000)
    )


def test_lca_pingpong_alternates_across_the_separation():
    separation = 1 << 20
    trace = lca_pingpong(
        400, separation_blocks=separation, pairs=3, sfence_every=0
    )
    blocks = [r.block for r in trace.records]
    # Consecutive stores always sit on opposite sides of the separation
    # span, so their BMT lowest common ancestor is maximally shallow.
    for even, odd in zip(blocks[0::2], blocks[1::2]):
        assert odd - even == separation or even - odd == separation
    assert trace.count(OpKind.STORE, persistent_only=True) == 400


def test_lca_pingpong_sfence_cadence():
    trace = lca_pingpong(320, sfence_every=64)
    assert trace.count(OpKind.SFENCE) == 320 // 64
    assert trace.count(OpKind.STORE) == 320


def test_lca_pingpong_rejects_bad_params():
    with pytest.raises(ValueError):
        list(lca_pingpong_ops(-1))
    with pytest.raises(ValueError):
        list(lca_pingpong_ops(10, separation_blocks=8))


def test_multi_tenant_is_seed_deterministic():
    kwargs = dict(clients=3, ops_per_client=2000)
    assert _column_digest(multi_tenant(**kwargs)) == _column_digest(
        multi_tenant(**kwargs)
    )
    assert _column_digest(multi_tenant(seed=9, **kwargs)) != _column_digest(
        multi_tenant(**kwargs)
    )


def test_multi_tenant_regions_are_disjoint():
    stride = 1 << 22
    trace = multi_tenant(
        clients=4, ops_per_client=1500, tenant_stride_blocks=stride
    )
    from repro.workloads.synthetic import BLOCK, HEAP_BASE

    tenants = set()
    for record in trace.records:
        tenants.add((record.address - HEAP_BASE) // (stride * BLOCK))
    assert tenants == {0, 1, 2, 3}
    assert len(trace) == 4 * 1500


def test_multi_tenant_adding_a_tenant_preserves_existing_streams():
    """Per-tenant sub-seeded RNGs: tenant c's addresses do not depend on
    how many tenants run beside it."""

    def addresses_of(clients):
        per_tenant = {}
        stride = 1 << 22
        from repro.workloads.synthetic import BLOCK, HEAP_BASE

        trace = multi_tenant(
            clients=clients, ops_per_client=800, tenant_stride_blocks=stride, seed=5
        )
        for record in trace.records:
            tenant = (record.address - HEAP_BASE) // (stride * BLOCK)
            per_tenant.setdefault(tenant, []).append(record.address)
        return per_tenant

    three = addresses_of(3)
    four = addresses_of(4)
    # The mixer interleave changes with the tenant count, but each
    # tenant's own address sequence is a prefix-stable stream.
    for tenant in range(3):
        shorter, longer = sorted((three[tenant], four[tenant]), key=len)
        assert longer[: len(shorter)] == shorter


def test_synthetic_ops_streams_equal_materialized(tmp_path):
    spec = SyntheticSpec(kilo_instructions=20, seed=31)
    mem = emit_ops(MemoryTrace(name="s"), synthetic_ops(spec))
    path = tmp_path / "s.plptrace"
    count = stream_trace(path, synthetic_ops(spec), name="s", segment_ops=127)
    loaded = MemoryTrace.load_binary(path)
    assert count == len(mem) == len(loaded)
    assert loaded == mem


def test_synthetic_ops_matches_spec_rates():
    spec = SyntheticSpec(kilo_instructions=50, seed=8)
    trace = emit_ops(MemoryTrace(name="s"), synthetic_ops(spec))
    assert trace.count(OpKind.STORE) == round(
        spec.kilo_instructions * spec.stores_per_ki
    )
    assert trace.count(OpKind.LOAD) == round(spec.kilo_instructions * spec.loads_per_ki)
    assert trace.instruction_count == spec.kilo_instructions * 1000
