"""Tests for the report/table rendering helpers."""

import pytest

from repro.analysis.report import Table, format_series, normalized


def test_table_renders_aligned_columns():
    table = Table("Demo", ["name", "value"])
    table.add_row("short", 1)
    table.add_row("a-much-longer-name", 123.456)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[1] and "value" in lines[1]
    # All data rows equally wide header separation.
    assert "a-much-longer-name" in text
    assert "123.5" in text  # >=100: one decimal place


def test_table_rejects_wrong_cell_count():
    table = Table("Demo", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_table_float_formatting():
    table = Table("t", ["x"])
    table.add_row(1.23456)
    table.add_row(12345.6)
    text = table.render()
    assert "1.235" in text
    assert "12345.6" in text


def test_table_str_equals_render():
    table = Table("t", ["x"])
    table.add_row("v")
    assert str(table) == table.render()


def test_normalized():
    values = {"base": 2.0, "fast": 1.0, "slow": 8.0}
    norm = normalized(values, "base")
    assert norm == {"base": 1.0, "fast": 0.5, "slow": 4.0}


def test_normalized_zero_baseline_rejected():
    with pytest.raises(ValueError):
        normalized({"base": 0.0}, "base")


def test_format_series():
    text = format_series("PPKI", [4, 8], [27.7, 23.3], x_label="epoch")
    assert "PPKI" in text and "epoch" in text
    assert "4" in text and "27.7" in text
