"""Tests for trace records and (de)serialization."""

import pytest

from repro.workloads.trace import (
    KIND_LOAD,
    KIND_SFENCE,
    KIND_STORE,
    TRACE_MAGIC,
    MemoryTrace,
    OpKind,
    TraceFormatError,
    TraceRecord,
)


def test_record_block_and_page_arithmetic():
    r = TraceRecord(OpKind.STORE, address=0x1040, gap=3)
    assert r.block == 0x41
    assert r.page == 0x1


def test_instruction_count_includes_gaps_and_ops():
    trace = MemoryTrace(
        [
            TraceRecord(OpKind.LOAD, 0, gap=9),
            TraceRecord(OpKind.STORE, 64, gap=9),
            TraceRecord(OpKind.SFENCE),
        ]
    )
    assert trace.instruction_count == 3 + 18


def test_counts_and_persistent_filter():
    trace = MemoryTrace(
        [
            TraceRecord(OpKind.STORE, 0, persistent=True),
            TraceRecord(OpKind.STORE, 64, persistent=False),
            TraceRecord(OpKind.LOAD, 0),
        ]
    )
    assert trace.count(OpKind.STORE) == 2
    assert trace.count(OpKind.STORE, persistent_only=True) == 1
    assert trace.count(OpKind.LOAD) == 1


def test_stores_per_kilo_instruction():
    records = [TraceRecord(OpKind.STORE, i * 64, gap=9) for i in range(100)]
    trace = MemoryTrace(records)
    assert trace.stores_per_kilo_instruction() == pytest.approx(100.0)


def test_touched_blocks():
    trace = MemoryTrace(
        [
            TraceRecord(OpKind.STORE, 0),
            TraceRecord(OpKind.STORE, 32),  # same block
            TraceRecord(OpKind.LOAD, 128),
        ]
    )
    assert trace.touched_blocks() == 2


def test_save_load_roundtrip(tmp_path):
    trace = MemoryTrace(
        [
            TraceRecord(OpKind.STORE, 0x1000, gap=7, persistent=True),
            TraceRecord(OpKind.LOAD, 0x2040, gap=0, persistent=False),
            TraceRecord(OpKind.SFENCE),
        ],
        name="demo",
    )
    path = tmp_path / "demo.trace"
    trace.save(path)
    loaded = MemoryTrace.load(path)
    assert loaded.records == trace.records
    assert loaded.name == "demo"


def test_empty_trace():
    trace = MemoryTrace()
    assert len(trace) == 0
    assert trace.instruction_count == 0
    assert trace.stores_per_kilo_instruction() == 0.0


# ----------------------------------------------------------------------
# columnar storage
# ----------------------------------------------------------------------


SAMPLE = [
    TraceRecord(OpKind.STORE, 0x1000, gap=7, persistent=True),
    TraceRecord(OpKind.LOAD, 0x2040, gap=0, persistent=False),
    TraceRecord(OpKind.SFENCE),
    TraceRecord(OpKind.STORE, 0xFFFF_FFFF_0040, gap=3, persistent=False),
]


def test_columns_parallel_and_packed():
    trace = MemoryTrace(SAMPLE)
    assert list(trace.kind_codes) == [KIND_STORE, KIND_LOAD, KIND_SFENCE, KIND_STORE]
    assert list(trace.addresses) == [r.address for r in SAMPLE]
    assert list(trace.gaps) == [r.gap for r in SAMPLE]
    assert list(trace.persistent_flags) == [int(r.persistent) for r in SAMPLE]
    assert trace.kind_codes.itemsize == 1
    assert trace.addresses.itemsize == 8


def test_records_view_indexing_and_equality():
    trace = MemoryTrace(SAMPLE)
    assert trace.records[0] == SAMPLE[0]
    assert trace.records[-1] == SAMPLE[-1]
    assert trace.records[1:3] == SAMPLE[1:3]
    assert trace.records == list(SAMPLE)
    assert list(trace) == SAMPLE
    with pytest.raises(IndexError):
        trace.records[len(SAMPLE)]


def test_records_assignment_repacks_columns():
    trace = MemoryTrace(SAMPLE)
    trace.records = [r for r in trace.records if r.kind is not OpKind.SFENCE]
    assert len(trace) == 3
    assert KIND_SFENCE not in set(trace.kind_codes)
    assert trace.records[1] == SAMPLE[1]


def test_append_op_matches_append():
    via_records = MemoryTrace(SAMPLE)
    via_ops = MemoryTrace()
    for r in SAMPLE:
        via_ops.append_op(r.kind.code, r.address, r.gap, int(r.persistent))
    assert via_ops.records == via_records.records


def test_trace_record_is_immutable():
    record = TraceRecord(OpKind.STORE, 0x40)
    with pytest.raises(AttributeError):
        record.address = 0x80


# ----------------------------------------------------------------------
# cached summary statistics
# ----------------------------------------------------------------------


def test_statistics_cache_invalidated_on_append():
    trace = MemoryTrace([TraceRecord(OpKind.STORE, 0, gap=9)])
    assert trace.instruction_count == 10
    assert trace.count(OpKind.STORE) == 1
    assert trace.touched_blocks() == 1
    trace.append(TraceRecord(OpKind.STORE, 128, gap=4, persistent=False))
    assert trace.instruction_count == 15
    assert trace.count(OpKind.STORE) == 2
    assert trace.count(OpKind.STORE, persistent_only=True) == 1
    assert trace.touched_blocks() == 2


def test_statistics_cache_invalidated_on_records_assignment():
    trace = MemoryTrace(SAMPLE)
    assert trace.count(OpKind.SFENCE) == 1
    trace.records = []
    assert trace.count(OpKind.SFENCE) == 0
    assert trace.instruction_count == 0


def test_repeated_statistics_are_cached():
    trace = MemoryTrace(SAMPLE)
    assert trace.instruction_count == trace.instruction_count
    assert "instructions" in trace._stat_cache
    assert ("count", OpKind.STORE, False) not in trace._stat_cache
    trace.count(OpKind.STORE)
    assert ("count", OpKind.STORE, False) in trace._stat_cache


# ----------------------------------------------------------------------
# text header (regression: load used to discard the header name)
# ----------------------------------------------------------------------


def test_load_parses_header_name_not_file_stem(tmp_path):
    trace = MemoryTrace(SAMPLE, name="real-name")
    path = tmp_path / "different-stem.trace"
    trace.save(path)
    loaded = MemoryTrace.load(path)
    assert loaded.name == "real-name"


def test_load_without_header_falls_back_to_stem(tmp_path):
    path = tmp_path / "stem-name.trace"
    path.write_text("S 1000 7 1\n", encoding="ascii")
    loaded = MemoryTrace.load(path)
    assert loaded.name == "stem-name"
    assert loaded.records == [TraceRecord(OpKind.STORE, 0x1000, gap=7)]


# ----------------------------------------------------------------------
# binary format round trips
# ----------------------------------------------------------------------


def _assert_traces_identical(a: MemoryTrace, b: MemoryTrace) -> None:
    assert a.name == b.name
    assert a.records == b.records
    for mine, theirs in zip(a, b):
        assert mine.kind is theirs.kind
        assert mine.address == theirs.address
        assert mine.gap == theirs.gap
        assert mine.persistent == theirs.persistent


def test_binary_roundtrip_every_field(tmp_path):
    trace = MemoryTrace(SAMPLE, name="binary-demo")
    path = tmp_path / "demo.bin"
    trace.save_binary(path)
    _assert_traces_identical(MemoryTrace.load_binary(path), trace)


def test_bytes_roundtrip(tmp_path):
    trace = MemoryTrace(SAMPLE, name="bytes-demo")
    _assert_traces_identical(MemoryTrace.from_bytes(trace.to_bytes()), trace)


def test_text_binary_text_roundtrip(tmp_path):
    trace = MemoryTrace(SAMPLE, name="cross-format")
    text_path = tmp_path / "t.trace"
    bin_path = tmp_path / "t.bin"
    trace.save(text_path)
    from_text = MemoryTrace.load(text_path)
    from_text.save_binary(bin_path)
    from_binary = MemoryTrace.load_binary(bin_path)
    _assert_traces_identical(from_binary, trace)


def test_binary_roundtrip_empty_trace(tmp_path):
    trace = MemoryTrace(name="empty")
    path = tmp_path / "empty.bin"
    trace.save_binary(path)
    loaded = MemoryTrace.load_binary(path)
    assert len(loaded) == 0
    assert loaded.name == "empty"


def test_binary_bad_magic_raises(tmp_path):
    path = tmp_path / "bad.bin"
    path.write_bytes(b"NOTATRCE" + b"\0" * 32)
    with pytest.raises(TraceFormatError, match="magic"):
        MemoryTrace.load_binary(path)


def test_binary_truncated_payload_raises(tmp_path):
    trace = MemoryTrace(SAMPLE, name="trunc")
    path = tmp_path / "trunc.bin"
    trace.save_binary(path)
    blob = path.read_bytes()
    path.write_bytes(blob[:-5])
    with pytest.raises(TraceFormatError, match="truncated"):
        MemoryTrace.load_binary(path)
    with pytest.raises(TraceFormatError):
        MemoryTrace.from_bytes(blob[:-5])


def test_bytes_roundtrip_zero_op_trace():
    trace = MemoryTrace(name="zero-ops")
    restored = MemoryTrace.from_bytes(trace.to_bytes())
    assert len(restored) == 0
    assert restored.name == "zero-ops"


def test_from_bytes_truncated_inside_name_raises():
    """A payload cut inside the name must raise TraceFormatError, not
    decode garbage or leak a UnicodeDecodeError."""
    trace = MemoryTrace(SAMPLE, name="a-rather-long-trace-name")
    blob = trace.to_bytes()
    with pytest.raises(TraceFormatError, match="name"):
        MemoryTrace.from_bytes(blob[:30])  # header (24 B) + partial name


def test_from_bytes_non_utf8_name_raises():
    trace = MemoryTrace(SAMPLE, name="ascii")
    blob = bytearray(trace.to_bytes())
    blob[24:29] = b"\xff\xfe\xff\xfe\xff"  # clobber the 5-byte name
    with pytest.raises(TraceFormatError, match="UTF-8"):
        MemoryTrace.from_bytes(bytes(blob))


def test_from_bytes_cut_mid_column_raises():
    """Truncation landing mid-item in a column is a format error."""
    trace = MemoryTrace(SAMPLE, name="midcol")
    blob = trace.to_bytes()
    with pytest.raises(TraceFormatError, match="header implies"):
        MemoryTrace.from_bytes(blob[:-3])  # not an item multiple
    with pytest.raises(TraceFormatError, match="header implies"):
        MemoryTrace.from_bytes(blob[: len(blob) - len(SAMPLE) * 8 // 2])


def test_from_bytes_oversized_payload_raises():
    trace = MemoryTrace(SAMPLE, name="extra")
    with pytest.raises(TraceFormatError, match="header implies"):
        MemoryTrace.from_bytes(trace.to_bytes() + b"\x00" * 7)


def test_load_binary_non_utf8_name_raises(tmp_path):
    trace = MemoryTrace(SAMPLE, name="ascii")
    blob = bytearray(trace.to_bytes())
    blob[24:29] = b"\xff\xfe\xff\xfe\xff"
    path = tmp_path / "garbled.bin"
    path.write_bytes(bytes(blob))
    with pytest.raises(TraceFormatError, match="UTF-8"):
        MemoryTrace.load_binary(path)


def test_binary_unsupported_version_raises(tmp_path):
    trace = MemoryTrace(SAMPLE, name="ver")
    blob = bytearray(trace.to_bytes())
    assert blob[:8] == TRACE_MAGIC
    blob[8] = 99  # version field (little-endian u16 after the magic)
    with pytest.raises(TraceFormatError, match="version"):
        MemoryTrace.from_bytes(bytes(blob))
    path = tmp_path / "ver.bin"
    path.write_bytes(bytes(blob))
    with pytest.raises(TraceFormatError, match="version"):
        MemoryTrace.load_binary(path)
