"""Tests for trace records and (de)serialization."""

import pytest

from repro.workloads.trace import MemoryTrace, OpKind, TraceRecord


def test_record_block_and_page_arithmetic():
    r = TraceRecord(OpKind.STORE, address=0x1040, gap=3)
    assert r.block == 0x41
    assert r.page == 0x1


def test_instruction_count_includes_gaps_and_ops():
    trace = MemoryTrace(
        [
            TraceRecord(OpKind.LOAD, 0, gap=9),
            TraceRecord(OpKind.STORE, 64, gap=9),
            TraceRecord(OpKind.SFENCE),
        ]
    )
    assert trace.instruction_count == 3 + 18


def test_counts_and_persistent_filter():
    trace = MemoryTrace(
        [
            TraceRecord(OpKind.STORE, 0, persistent=True),
            TraceRecord(OpKind.STORE, 64, persistent=False),
            TraceRecord(OpKind.LOAD, 0),
        ]
    )
    assert trace.count(OpKind.STORE) == 2
    assert trace.count(OpKind.STORE, persistent_only=True) == 1
    assert trace.count(OpKind.LOAD) == 1


def test_stores_per_kilo_instruction():
    records = [TraceRecord(OpKind.STORE, i * 64, gap=9) for i in range(100)]
    trace = MemoryTrace(records)
    assert trace.stores_per_kilo_instruction() == pytest.approx(100.0)


def test_touched_blocks():
    trace = MemoryTrace(
        [
            TraceRecord(OpKind.STORE, 0),
            TraceRecord(OpKind.STORE, 32),  # same block
            TraceRecord(OpKind.LOAD, 128),
        ]
    )
    assert trace.touched_blocks() == 2


def test_save_load_roundtrip(tmp_path):
    trace = MemoryTrace(
        [
            TraceRecord(OpKind.STORE, 0x1000, gap=7, persistent=True),
            TraceRecord(OpKind.LOAD, 0x2040, gap=0, persistent=False),
            TraceRecord(OpKind.SFENCE),
        ],
        name="demo",
    )
    path = tmp_path / "demo.trace"
    trace.save(path)
    loaded = MemoryTrace.load(path)
    assert loaded.records == trace.records
    assert loaded.name == "demo"


def test_empty_trace():
    trace = MemoryTrace()
    assert len(trace) == 0
    assert trace.instruction_count == 0
    assert trace.stores_per_kilo_instruction() == 0.0
