"""WPQ event-ordering regression tests.

The 2SP contract is temporal: an entry is *gathered* (enqueue) before it
is ever *released* (drain to NVM) or *invalidated* (crash).  The
telemetry stream makes that ordering observable, so these tests pin it —
for the plain queue, for epoch unlocking, and for every crash-injection
campaign path (``crash_flush`` after partial delivery).
"""

from collections import defaultdict

import pytest

from repro.campaign import SINGLETON_SUBSETS, enumerate_grid, run_scenario
from repro.mem.wpq import TupleItem, WritePendingQueue
from repro.telemetry import EventKind, Telemetry, TelemetryConfig

_GATHER = EventKind.WPQ_ENQUEUE
_TERMINAL = (EventKind.WPQ_RELEASE, EventKind.WPQ_INVALIDATE)


def _check_order(telemetry: Telemetry) -> int:
    """Assert no WPQ release/invalidate precedes its persist's enqueue.

    Returns the number of terminal (release/invalidate) events checked.
    The ring preserves emission order, so list position is the ordering
    witness even though the functional WPQ has no cycle clock.
    """
    first_seen: dict = {}
    terminals = 0
    for position, event in enumerate(telemetry.events()):
        if event.track != "wpq":
            continue
        if event.kind is _GATHER:
            first_seen.setdefault(event.ident, position)
        elif event.kind in _TERMINAL:
            terminals += 1
            assert event.ident in first_seen, (
                f"{event.kind.name} for persist {event.ident} "
                "with no prior WPQ_ENQUEUE"
            )
            assert first_seen[event.ident] < position
    return terminals


def _fresh_bus() -> Telemetry:
    return Telemetry(TelemetryConfig(enabled=True))


def test_release_follows_enqueue_in_plain_drain():
    tel = _fresh_bus()
    wpq = WritePendingQueue(capacity=8, telemetry=tel)
    for p in range(4):
        wpq.allocate(p)
        for item in TupleItem:
            wpq.deliver(p, item)
    released = wpq.drain_completed()
    assert [e.persist_id for e in released] == [0, 1, 2, 3]
    assert _check_order(tel) == 4


def test_out_of_order_completion_still_releases_after_enqueue():
    tel = _fresh_bus()
    wpq = WritePendingQueue(capacity=8, telemetry=tel)
    for p in range(3):
        wpq.allocate(p)
    # Complete the *youngest* first; FIFO release still waits for head.
    for p in (2, 0, 1):
        for item in TupleItem:
            wpq.deliver(p, item)
        wpq.drain_completed()
    assert _check_order(tel) == 3


def test_crash_flush_events_follow_enqueue():
    tel = _fresh_bus()
    wpq = WritePendingQueue(capacity=8, telemetry=tel)
    wpq.allocate(0)
    for item in TupleItem:
        wpq.deliver(0, item)
    wpq.allocate(1)
    wpq.deliver(1, TupleItem.DATA)  # incomplete, locked -> invalidated
    persisted, invalidated = wpq.crash_flush()
    assert [e.persist_id for e in persisted] == [0]
    assert [e.persist_id for e in invalidated] == [1]
    assert _check_order(tel) == 2


def test_epoch_unlock_events_follow_enqueue():
    tel = _fresh_bus()
    wpq = WritePendingQueue(capacity=8, telemetry=tel)
    wpq.allocate(0, epoch_id=1, locked=True)
    wpq.deliver(0, TupleItem.DATA)
    wpq.unlock_epoch(1)
    events = [e.kind for e in tel.events() if e.track == "wpq"]
    assert events.index(EventKind.WPQ_ENQUEUE) < events.index(EventKind.WPQ_UNLOCK)


@pytest.mark.parametrize("victim", [0, 1, -1])
def test_campaign_crash_paths_never_release_before_enqueue(victim):
    """Every campaign cell's WPQ stream obeys gather-before-release."""
    grid = [
        s for s in enumerate_grid(subsets=SINGLETON_SUBSETS) if s.victim == victim
    ]
    assert grid
    checked = 0
    for scenario in grid:
        tel = _fresh_bus()
        run_scenario(scenario, telemetry=tel)
        checked += _check_order(tel)
    # Each cell crash-flushes its whole journal: every persist must have
    # produced exactly one terminal event after its enqueue.
    assert checked > 0


def test_campaign_scenario_emits_one_terminal_event_per_persist():
    scenario = next(iter(enumerate_grid(subsets=SINGLETON_SUBSETS)))
    tel = _fresh_bus()
    run_scenario(scenario, telemetry=tel)
    by_kind = defaultdict(set)
    for event in tel.events():
        if event.track == "wpq":
            by_kind[event.kind].add(event.ident)
    enqueued = by_kind[EventKind.WPQ_ENQUEUE]
    terminal = by_kind[EventKind.WPQ_RELEASE] | by_kind[EventKind.WPQ_INVALIDATE]
    assert enqueued == terminal
    # A persist is either persisted or invalidated at the crash — never both.
    assert not (by_kind[EventKind.WPQ_RELEASE] & by_kind[EventKind.WPQ_INVALIDATE])
