"""Chunked v2 trace format: writer/reader, hardening, streamed runs.

Covers the PLPTRACE v2 layer end to end: ``TraceWriter`` emission vs
``save_binary``, v1<->v2 round-trips, the O(1) ``TraceReader.summary``,
chunk iteration parity with ``MemoryTrace.chunks``, the reader's
``from_bytes``-grade hardening against truncated/corrupt files, and the
bounded-memory ``run_stream`` differential against the materialized
``run`` on every scheme.
"""

import struct

import pytest

from repro.core.schemes import UpdateScheme
from repro.system.config import SystemConfig
from repro.system.timing import TraceSimulator
from repro.workloads.synthetic import kvstore_trace
from repro.workloads.trace import (
    KIND_LOAD,
    KIND_SFENCE,
    KIND_STORE,
    MemoryTrace,
    TraceFormatError,
    TraceReader,
    TraceWriter,
)


def small_trace(num_ops: int = 400) -> MemoryTrace:
    """Deterministic mixed trace with sfences and both persist flags."""
    trace = kvstore_trace(num_ops)
    trace.append_op(KIND_STORE, 0x7FFF_0040, 3, 0)
    trace.append_op(KIND_LOAD, 0x1000_2040, 1, 1)
    trace.append_op(KIND_SFENCE)
    return trace


@pytest.fixture(scope="module")
def trace():
    return small_trace()


# ----------------------------------------------------------------------
# writer / round-trips
# ----------------------------------------------------------------------


def test_writer_matches_save_binary(trace, tmp_path):
    via_save = tmp_path / "save.plptrace"
    via_writer = tmp_path / "writer.plptrace"
    trace.save_binary(via_save, version=2, segment_ops=64)
    with TraceWriter(via_writer, name=trace.name, segment_ops=64) as writer:
        for code, address, gap, flag in zip(
            trace.kind_codes, trace.addresses, trace.gaps, trace.persistent_flags
        ):
            writer.append_op(code, address, gap, flag)
    assert via_save.read_bytes() == via_writer.read_bytes()


def test_writer_extend_packed_matches_append_op(trace, tmp_path):
    one = tmp_path / "one.plptrace"
    two = tmp_path / "two.plptrace"
    with TraceWriter(one, name=trace.name, segment_ops=50) as writer:
        writer.extend_packed(
            trace.kind_codes, trace.addresses, trace.gaps, trace.persistent_flags
        )
    with TraceWriter(two, name=trace.name, segment_ops=50) as writer:
        for record in zip(
            trace.kind_codes, trace.addresses, trace.gaps, trace.persistent_flags
        ):
            writer.append_op(*record)
    assert one.read_bytes() == two.read_bytes()


def test_v1_v2_roundtrip(trace, tmp_path):
    v1 = tmp_path / "v1.plptrace"
    v2 = tmp_path / "v2.plptrace"
    trace.save_binary(v1, version=1)
    loaded_v1 = MemoryTrace.load_binary(v1)
    loaded_v1.save_binary(v2, version=2, segment_ops=37)
    loaded_v2 = MemoryTrace.load_binary(v2)
    assert loaded_v2 == trace
    assert loaded_v2.name == trace.name
    loaded_v2.save_binary(v1, version=1)
    assert MemoryTrace.load_binary(v1) == trace


def test_reader_read_all_both_versions(trace, tmp_path):
    for version, segment_ops in ((1, None), (2, 53)):
        path = tmp_path / f"v{version}.plptrace"
        kwargs = {} if segment_ops is None else {"segment_ops": segment_ops}
        trace.save_binary(path, version=version, **kwargs)
        with TraceReader(path) as reader:
            assert reader.read_all() == trace


# ----------------------------------------------------------------------
# O(1) summary
# ----------------------------------------------------------------------


def test_summary_matches_trace_statistics(trace, tmp_path):
    from repro.workloads.trace import OpKind

    path = tmp_path / "t.plptrace"
    trace.save_binary(path, version=2, segment_ops=61)
    with TraceReader(path) as reader:
        summary = reader.summary()
    assert summary.name == trace.name
    assert summary.version == 2
    assert summary.record_count == len(trace)
    assert summary.instruction_count == trace.instruction_count
    assert summary.loads == trace.count(OpKind.LOAD)
    assert summary.stores == trace.count(OpKind.STORE)
    assert summary.persistent_stores == trace.count(OpKind.STORE, persistent_only=True)
    assert summary.sfences == trace.count(OpKind.SFENCE)
    assert summary.stores_per_kilo_instruction() == pytest.approx(
        trace.stores_per_kilo_instruction()
    )


def test_summary_reads_no_column_data(trace, tmp_path):
    """The v2 summary must come from the header + index alone."""
    path = tmp_path / "t.plptrace"
    trace.save_binary(path, version=2, segment_ops=61)
    with TraceReader(path) as reader:
        golden = reader.summary()
        first = reader.segments[0]
    # Corrupt a byte in the middle of the first segment's column data;
    # the summary must not notice (it never touches the columns).
    raw = bytearray(path.read_bytes())
    raw[first.offset + 5] ^= 0xFF
    path.write_bytes(bytes(raw))
    with TraceReader(path) as reader:
        summary = reader.summary()
    assert summary.record_count == golden.record_count
    assert summary.stores == golden.stores


def test_summary_v1_streams_columns(trace, tmp_path):
    path = tmp_path / "t.plptrace"
    trace.save_binary(path, version=1)
    with TraceReader(path) as reader:
        summary = reader.summary()
    assert summary.version == 1
    assert summary.record_count == len(trace)
    assert summary.instruction_count == trace.instruction_count


# ----------------------------------------------------------------------
# chunk iteration
# ----------------------------------------------------------------------


def _concat_chunks(chunks):
    kinds = bytearray()
    addrs = []
    gaps = []
    flags = bytearray()
    starts = []
    for chunk in chunks:
        starts.append(chunk.start)
        kinds.extend(chunk.kind_codes)
        addrs.extend(chunk.addresses)
        gaps.extend(chunk.gaps)
        flags.extend(chunk.persistent_flags)
    return starts, kinds, addrs, gaps, flags


@pytest.mark.parametrize("version,segment_ops", [(1, 41), (2, 41)])
def test_reader_chunks_match_memory_chunks(trace, tmp_path, version, segment_ops):
    path = tmp_path / "t.plptrace"
    kwargs = {"segment_ops": segment_ops} if version == 2 else {}
    trace.save_binary(path, version=version, **kwargs)
    with TraceReader(path) as reader:
        file_chunks = _concat_chunks(reader.chunks())
    mem_chunks = _concat_chunks(trace.chunks(segment_ops=reader.segment_ops))
    assert file_chunks[0] == mem_chunks[0]  # starts
    assert bytes(file_chunks[1]) == bytes(memoryview(trace.kind_codes))
    assert file_chunks[2] == list(trace.addresses)
    assert file_chunks[3] == list(trace.gaps)
    assert bytes(file_chunks[4]) == bytes(memoryview(trace.persistent_flags))


def test_reader_chunks_subrange(trace, tmp_path):
    path = tmp_path / "t.plptrace"
    trace.save_binary(path, version=2, segment_ops=29)
    lo, hi = 33, len(trace) - 17
    with TraceReader(path) as reader:
        _starts, _kinds, addrs, _gaps, _flags = _concat_chunks(
            reader.chunks(lo, hi)
        )
    assert addrs == list(trace.addresses[lo:hi])


# ----------------------------------------------------------------------
# hardening: reader parity with from_bytes
# ----------------------------------------------------------------------


def _v2_bytes(trace, segment_ops=32) -> bytes:
    return trace.to_bytes(version=2, segment_ops=segment_ops)


def test_reader_truncated_segment_raises(trace, tmp_path):
    blob = _v2_bytes(trace)
    # Cut the file inside the last segment's columns (before the index).
    with TraceReader.from_bytes(blob) as reader:
        last = reader.segments[-1]
    cut = last.offset + 3
    with pytest.raises(TraceFormatError, match="corrupt index|truncated"):
        TraceReader.from_bytes(blob[:cut])
    path = tmp_path / "cut.plptrace"
    path.write_bytes(blob[:cut])
    with pytest.raises(TraceFormatError, match="corrupt index|truncated"):
        TraceReader(path)


def test_reader_corrupt_index_offset_raises(trace):
    blob = bytearray(_v2_bytes(trace))
    with TraceReader.from_bytes(bytes(blob)) as reader:
        first = reader.segments[0]
    # The index is a run of _SEGMENT_ENTRY structs at the tail; corrupt
    # the first entry's offset field so it no longer matches the layout.
    index_offset = len(blob) - (len(reader.segments)) * struct.calcsize("<QIIIIIQ")
    struct.pack_into("<Q", blob, index_offset, first.offset + 7)
    with pytest.raises(TraceFormatError, match="corrupt index"):
        TraceReader.from_bytes(bytes(blob))


def test_reader_mid_column_cut_raises(trace):
    blob = _v2_bytes(trace)
    # Remove bytes from the middle (inside segment 0's address column)
    # while keeping the tail, so the index offsets no longer line up.
    with TraceReader.from_bytes(blob) as reader:
        first = reader.segments[0]
    cut_at = first.offset + first.count + 4  # inside the address column
    mangled = blob[:cut_at] + blob[cut_at + 8 :]
    with pytest.raises(TraceFormatError, match="corrupt index|truncated"):
        TraceReader.from_bytes(mangled)


def test_reader_bad_magic_and_version(trace):
    blob = _v2_bytes(trace)
    with pytest.raises(TraceFormatError, match="magic"):
        TraceReader.from_bytes(b"NOTAPLPT" + blob[8:])
    bad_version = blob[:8] + struct.pack("<H", 9) + blob[10:]
    with pytest.raises(TraceFormatError, match="version"):
        TraceReader.from_bytes(bad_version)


def test_reader_empty_segment_rejected(trace):
    blob = bytearray(_v2_bytes(trace))
    with TraceReader.from_bytes(bytes(blob)) as reader:
        nsegs = len(reader.segments)
    index_offset = len(blob) - nsegs * struct.calcsize("<QIIIIIQ")
    # Zero the first entry's count field (after the 8-byte offset).
    struct.pack_into("<I", blob, index_offset + 8, 0)
    with pytest.raises(TraceFormatError, match="corrupt index"):
        TraceReader.from_bytes(bytes(blob))


# ----------------------------------------------------------------------
# streamed simulation differential
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", list(UpdateScheme))
def test_run_stream_matches_run_batched(trace, tmp_path, scheme):
    config = SystemConfig(scheme=scheme)
    ref = TraceSimulator(config).run(trace, 0.2)
    # In-memory chunk source with an awkward segment size.
    streamed = TraceSimulator(config).run_stream(trace, 0.2, segment_ops=67)
    assert streamed == ref
    # On-disk v2 source.
    path = tmp_path / "t.plptrace"
    trace.save_binary(path, version=2, segment_ops=59)
    with TraceReader(path) as reader:
        from_file = TraceSimulator(config).run_stream(reader, 0.2)
    assert from_file == ref


@pytest.mark.parametrize("scheme", [UpdateScheme.SP, UpdateScheme.COALESCING])
def test_run_stream_matches_run_skip_ahead(trace, scheme):
    config = SystemConfig(scheme=scheme, engine="skip_ahead")
    ref = TraceSimulator(config).run(trace, 0.2)
    streamed = TraceSimulator(config).run_stream(trace, 0.2, segment_ops=73)
    assert streamed == ref


def test_run_stream_zero_warmup(trace):
    config = SystemConfig(scheme=UpdateScheme.SP)
    ref = TraceSimulator(config).run(trace, 0.0)
    assert TraceSimulator(config).run_stream(trace, 0.0, segment_ops=31) == ref


def test_run_stream_rejects_bad_warmup(trace):
    sim = TraceSimulator(SystemConfig(scheme=UpdateScheme.SP))
    with pytest.raises(ValueError):
        sim.run_stream(trace, 1.0)
