"""Tests for counter-mode encryption and stateful MACs."""

import pytest

from repro.crypto.counters import SplitCounter
from repro.crypto.encryption import CounterModeEncryptor
from repro.crypto.keys import KeySchedule
from repro.crypto.mac import StatefulMAC

from conftest import make_block


@pytest.fixture
def enc(keys):
    return CounterModeEncryptor(keys)


@pytest.fixture
def mac(keys):
    return StatefulMAC(keys)


def test_encrypt_decrypt_roundtrip(enc):
    plain = make_block(1)
    cipher = enc.encrypt(plain, 0x1000, b"seed")
    assert cipher != plain
    assert enc.decrypt(cipher, 0x1000, b"seed") == plain


def test_decrypt_with_stale_counter_gives_garbage(enc):
    """Table I: losing γ means the correct plaintext is unrecoverable."""
    ctr = SplitCounter()
    ctr.increment(0)
    new_seed = ctr.seed(0)
    plain = make_block(2)
    cipher = enc.encrypt(plain, 0x1000, new_seed)
    stale = SplitCounter().seed(0)
    assert enc.decrypt(cipher, 0x1000, stale) != plain


def test_decrypt_at_wrong_address_gives_garbage(enc):
    """Spatial uniqueness: ciphertext splicing yields garbage."""
    plain = make_block(3)
    cipher = enc.encrypt(plain, 0x1000, b"seed")
    assert enc.decrypt(cipher, 0x2000, b"seed") != plain


def test_encryption_requires_full_block(enc):
    with pytest.raises(ValueError):
        enc.encrypt(b"short", 0, b"seed")
    with pytest.raises(ValueError):
        enc.decrypt(b"short", 0, b"seed")


def test_same_plaintext_different_counters_differ(enc):
    plain = make_block(4)
    c1 = enc.encrypt(plain, 0x1000, b"seed1")
    c2 = enc.encrypt(plain, 0x1000, b"seed2")
    assert c1 != c2


def test_mac_verifies_genuine(mac):
    cipher = make_block(5)
    tag = mac.compute(cipher, 0x1000, b"seed")
    assert len(tag) == 8
    assert mac.verify(cipher, 0x1000, b"seed", tag)


def test_mac_detects_data_tamper(mac):
    cipher = bytearray(make_block(6))
    tag = mac.compute(bytes(cipher), 0x1000, b"seed")
    cipher[0] ^= 1
    assert not mac.verify(bytes(cipher), 0x1000, b"seed", tag)


def test_mac_detects_splicing(mac):
    """Moving a valid (block, MAC) pair to another address is detected."""
    cipher = make_block(7)
    tag = mac.compute(cipher, 0x1000, b"seed")
    assert not mac.verify(cipher, 0x2000, b"seed", tag)


def test_mac_detects_replay(mac):
    """Replaying old data with an old MAC under a new counter fails."""
    cipher = make_block(8)
    old_tag = mac.compute(cipher, 0x1000, b"old-seed")
    assert not mac.verify(cipher, 0x1000, b"new-seed", old_tag)


def test_mac_detects_mac_tamper(mac):
    cipher = make_block(9)
    tag = bytearray(mac.compute(cipher, 0x1000, b"seed"))
    tag[0] ^= 0xFF
    assert not mac.verify(cipher, 0x1000, b"seed", bytes(tag))


def test_key_schedule_role_separation():
    ks = KeySchedule(b"root")
    assert ks.encryption_key != ks.mac_key != ks.bmt_key
    assert ks.encryption_key == KeySchedule(b"root").encryption_key
    assert ks.encryption_key != KeySchedule(b"other").encryption_key


def test_key_schedule_rejects_empty_key():
    with pytest.raises(ValueError):
        KeySchedule(b"")


def test_key_schedule_repr_hides_key():
    assert "s3cret" not in repr(KeySchedule(b"s3cret"))
