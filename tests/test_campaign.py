"""Tests for the crash-injection campaign engine (grid, engine, runner,
analysis) and its acceptance properties: compliant schemes never fail,
Tables I & II regenerate from campaign cells, and parallel results are
bit-identical to sequential runs — cold and warm cache."""

import pytest

from repro.analysis.campaign import (
    CampaignViolation,
    summarize,
    table1,
    table2,
    verify_campaign,
)
from repro.campaign import (
    CAMPAIGN_SCHEMES,
    DROP_SUBSETS,
    SINGLETON_SUBSETS,
    CampaignCache,
    CampaignCell,
    Scenario,
    enumerate_grid,
    journal_plan,
    run_campaign,
    run_scenario,
    scenario_key,
    semantics_for,
)
from repro.campaign.engine import (
    OUTCOME_DETECTED,
    OUTCOME_RECOVERED,
    OUTCOME_SILENT_CORRUPTION,
)
from repro.sweep import code_version


# ----------------------------------------------------------------------
# grid
# ----------------------------------------------------------------------


def test_drop_subsets_cover_the_powerset():
    assert len(DROP_SUBSETS) == 16
    assert () in DROP_SUBSETS
    assert len(set(DROP_SUBSETS)) == 16
    assert len(SINGLETON_SUBSETS) == 5  # empty + one per tuple item


def test_scenario_canonicalizes_drops():
    a = Scenario("unordered", "overwrite", 0, ("mac", "data"))
    b = Scenario("unordered", "overwrite", 0, ("data", "mac", "mac"))
    assert a == b
    assert a.drops == ("data", "mac")


def test_scenario_rejects_bad_inputs():
    with pytest.raises(ValueError):
        Scenario("nope", "overwrite", 0)
    with pytest.raises(ValueError):
        Scenario("sp", "nope", 0)
    with pytest.raises(ValueError):
        Scenario("sp", "overwrite", 0, ("bogus_item",))
    with pytest.raises(ValueError):
        Scenario("sp", "overwrite", -1, ("mac",))  # drops need a victim


def test_grid_enumeration_is_deterministic():
    assert enumerate_grid() == enumerate_grid()
    grid = enumerate_grid()
    assert len(grid) == len(set(grid))  # scenarios are hashable + unique


def test_grid_covers_every_persist_boundary_and_subset():
    grid = enumerate_grid(schemes=["sp"], workloads=["overwrite"])
    persists = len(journal_plan("sp", "overwrite"))
    assert persists == 2
    # 1 all-complete boundary + per victim all 16 subsets.
    assert len(grid) == 1 + persists * 16


def test_secure_wb_journals_nothing():
    assert journal_plan("secure_wb", "epoch_mix") == ()


def test_epoch_persistency_collapses_same_block_stores():
    # overwrite hits one block twice in one epoch -> a single persist.
    assert len(journal_plan("o3", "overwrite")) == 1
    assert len(journal_plan("sp", "overwrite")) == 2


def test_scenario_key_depends_on_every_dimension():
    code = code_version()
    base = Scenario("sp", "overwrite", 0, ("mac",))
    keys = {
        scenario_key(base, code),
        scenario_key(Scenario("o3", "overwrite", 0, ("mac",)), code),
        scenario_key(Scenario("sp", "ordered_pair", 0, ("mac",)), code),
        scenario_key(Scenario("sp", "overwrite", 1, ("mac",)), code),
        scenario_key(Scenario("sp", "overwrite", 0, ("data",)), code),
        scenario_key(base, "other-code"),
    }
    assert len(keys) == 6


def test_semantics_compliance_matches_scheme_registry():
    for scheme in CAMPAIGN_SCHEMES:
        sem = semantics_for(scheme)
        assert sem.compliant == sem.scheme.crash_recoverable


# ----------------------------------------------------------------------
# engine: single cells
# ----------------------------------------------------------------------


def test_compliant_scheme_recovers_mid_gather_drop():
    cell = run_scenario(Scenario("sp", "overwrite", 1, ("mac",)))
    assert cell.classification == OUTCOME_RECOVERED
    assert cell.compliant
    # 2SP invalidated the victim: only the older persist is durable.
    assert cell.persisted == [0]
    assert cell.invalidated == [1]
    assert not cell.problems


def test_unordered_reproduces_table1_rows():
    expected = {
        "root_ack": "BMT failure",
        "mac": "MAC failure",
        "counter": "Wrong plaintext, BMT & MAC failure",
        "data": "Wrong plaintext, MAC failure",
    }
    for item, outcome in expected.items():
        cell = run_scenario(Scenario("unordered", "overwrite", 1, (item,)))
        assert cell.block_outcome(0) == outcome
        assert cell.classification == OUTCOME_DETECTED


def test_unordered_whole_tuple_loss_is_silent_corruption():
    """Losing the entire tuple rolls the block back consistently: the
    integrity machinery accepts the stale value — invisible data loss,
    the failure mode only ordering + intent tracking can surface."""
    cell = run_scenario(
        Scenario("unordered", "overwrite", 1, ("counter", "data", "mac", "root_ack"))
    )
    assert cell.classification == OUTCOME_SILENT_CORRUPTION
    assert cell.consistent and not cell.intent_ok


def test_secure_wb_cell_is_vacuously_recovered():
    cell = run_scenario(Scenario("secure_wb", "overwrite", -1))
    assert cell.classification == OUTCOME_RECOVERED
    assert cell.vacuous
    assert cell.total_persists == 0


def test_coalescing_boundary_holds_leading_persist():
    """With paired coalescing the leading persist's root ack is
    delegated: at a boundary crash right after it, nothing is durable."""
    cell = run_scenario(Scenario("coalescing", "ordered_pair", 0))
    assert cell.classification == OUTCOME_RECOVERED
    assert cell.persisted == []  # still waiting for the trailing root ack
    cell = run_scenario(Scenario("coalescing", "ordered_pair", -1))
    assert cell.persisted == [0, 1]


def test_open_epoch_tail_store_is_not_expected_durable():
    cell = run_scenario(Scenario("o3", "open_epoch", -1))
    assert cell.classification == OUTCOME_RECOVERED
    # Only the closed epoch's two persists exist in the journal.
    assert cell.total_persists == 2


def test_victim_out_of_range_raises():
    with pytest.raises(ValueError):
        run_scenario(Scenario("sp", "overwrite", 99, ("mac",)))


# ----------------------------------------------------------------------
# full-grid acceptance
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def full_grid_cells():
    grid = enumerate_grid()
    cells, report = run_campaign(grid, workers=1, cache=False)
    return grid, cells, report


@pytest.mark.slow
def test_compliant_schemes_never_fail_anywhere(full_grid_cells):
    _, cells, _ = full_grid_cells
    for cell in cells:
        if cell.compliant:
            assert cell.classification == OUTCOME_RECOVERED, (
                cell.scheme,
                cell.workload,
                cell.victim,
                cell.drops,
            )
        assert not cell.problems


@pytest.mark.slow
def test_zero_silent_corruption_in_compliant_schemes(full_grid_cells):
    _, cells, _ = full_grid_cells
    silent = [c for c in cells if c.compliant and c.consistent and not c.intent_ok]
    assert silent == []


@pytest.mark.slow
def test_campaign_verify_passes_on_full_grid(full_grid_cells):
    _, cells, _ = full_grid_cells
    verify_campaign(cells)


@pytest.mark.slow
def test_tables_regenerate_from_campaign(full_grid_cells):
    _, cells, _ = full_grid_cells
    t1 = table1(cells).render()
    assert "NO" not in t1 and "<missing cell>" not in t1
    t2 = table2(cells).render()
    assert "NO" not in t2 and "<missing cell>" not in t2
    summary = summarize(cells).render()
    assert "unordered" in summary


@pytest.mark.slow
def test_verify_flags_forged_silent_corruption(full_grid_cells):
    _, cells, _ = full_grid_cells
    import copy

    forged = copy.deepcopy(list(cells))
    victim = next(c for c in forged if c.compliant)
    victim.intent_ok = False
    victim.classification = OUTCOME_SILENT_CORRUPTION
    with pytest.raises(CampaignViolation, match="SILENT CORRUPTION"):
        verify_campaign(forged)


@pytest.mark.slow
def test_verify_flags_table_mismatch(full_grid_cells):
    _, cells, _ = full_grid_cells
    import copy

    forged = copy.deepcopy(list(cells))
    row = next(
        c
        for c in forged
        if c.scheme == "unordered"
        and c.workload == "overwrite"
        and c.victim == c.total_persists - 1
        and c.drops == ["mac"]
    )
    for block in row.blocks:
        block["outcome"] = "Recovered"
    with pytest.raises(CampaignViolation, match="Table I"):
        verify_campaign(forged)


# ----------------------------------------------------------------------
# runner: parallel + cache bit-identity
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_parallel_matches_sequential_cold_and_warm(tmp_path, full_grid_cells):
    grid, sequential_cells, _ = full_grid_cells
    subset = grid[:: max(1, len(grid) // 60)]  # spread across schemes
    expected = [sequential_cells[grid.index(s)] for s in subset]

    cold_cache = CampaignCache(tmp_path / "cold")
    parallel_cells, report = run_campaign(subset, workers=4, cache=cold_cache)
    assert parallel_cells == expected
    assert report.cache_hits == 0

    warm_cells, warm_report = run_campaign(subset, workers=4, cache=cold_cache)
    assert warm_cells == expected
    assert warm_report.cache_hits == len(subset)
    assert warm_report.executed == 0


def test_cache_round_trip_preserves_cells(tmp_path):
    cache = CampaignCache(tmp_path)
    cell = run_scenario(Scenario("unordered", "ordered_pair", 0, ("counter",)))
    key = scenario_key(
        Scenario("unordered", "ordered_pair", 0, ("counter",)), code_version()
    )
    cache.put(key, cell)
    loaded = cache.get(key)
    assert isinstance(loaded, CampaignCell)
    assert loaded == cell


def test_duplicate_scenarios_execute_once(tmp_path):
    scenario = Scenario("sp", "overwrite", 0, ("mac",))
    cells, report = run_campaign(
        [scenario, scenario, scenario], workers=1, cache=CampaignCache(tmp_path)
    )
    assert cells[0] == cells[1] == cells[2]
    assert report.executed == 1
