"""Tests for the functional Bonsai Merkle Tree."""

import pytest

from repro.crypto.bmt import BMTGeometry, BonsaiMerkleTree
from repro.crypto.keys import KeySchedule

from conftest import make_block


def test_update_changes_root(small_tree):
    before = small_tree.root
    small_tree.update_leaf(0, make_block(1))
    assert small_tree.root != before


def test_update_path_is_leaf_to_root(small_tree):
    path = small_tree.update_leaf(9, make_block(2))
    assert path == small_tree.geometry.update_path(9)


def test_verify_accepts_current_counter(small_tree):
    block = make_block(3)
    small_tree.update_leaf(5, block)
    assert small_tree.verify_leaf(5, block)


def test_verify_rejects_stale_counter(small_tree):
    """Replay of an old counter block fails BMT verification."""
    old = make_block(4)
    new = make_block(5)
    small_tree.update_leaf(5, old)
    small_tree.update_leaf(5, new)
    assert small_tree.verify_leaf(5, new)
    assert not small_tree.verify_leaf(5, old)


def test_verify_rejects_tampered_sibling(small_tree):
    block = make_block(6)
    small_tree.update_leaf(0, block)
    sibling = small_tree.geometry.leaf_label(1)
    small_tree.set_node_hash(sibling, b"\xde\xad\xbe\xef\xde\xad\xbe\xef")
    assert not small_tree.verify_leaf(0, block)


def test_untouched_leaves_verify_against_defaults(small_tree):
    assert small_tree.verify_leaf(42, bytes(64))


def test_default_root_is_deterministic(small_geometry, keys):
    t1 = BonsaiMerkleTree(small_geometry, keys)
    t2 = BonsaiMerkleTree(small_geometry, keys)
    assert t1.root == t2.root


def test_update_order_within_set_does_not_matter(small_geometry, keys):
    """OOO-update soundness (§IV-B1): the final root is order-independent."""
    blocks = {0: make_block(1), 1: make_block(2), 9: make_block(3), 63: make_block(4)}
    t1 = BonsaiMerkleTree(small_geometry, keys)
    t2 = BonsaiMerkleTree(small_geometry, keys)
    for leaf in sorted(blocks):
        t1.update_leaf(leaf, blocks[leaf])
    for leaf in reversed(sorted(blocks)):
        t2.update_leaf(leaf, blocks[leaf])
    assert t1.root == t2.root


def test_rebuild_matches_incremental(small_geometry, keys):
    """Recovery rebuild equals the incrementally maintained tree."""
    incremental = BonsaiMerkleTree(small_geometry, keys)
    blocks = {leaf: make_block(leaf) for leaf in (0, 3, 8, 62)}
    for leaf, block in blocks.items():
        incremental.update_leaf(leaf, block)
    rebuilt = BonsaiMerkleTree(small_geometry, keys)
    root = rebuilt.rebuild_from_counters(blocks)
    assert root == incremental.root


def test_rebuild_empty_gives_default_root(small_geometry, keys):
    tree = BonsaiMerkleTree(small_geometry, keys)
    default = tree.root
    tree.update_leaf(0, make_block(9))
    assert tree.rebuild_from_counters({}) == default


def test_rebuild_missing_counter_changes_root(small_geometry, keys):
    """Losing a counter from NVM makes the rebuilt root mismatch."""
    tree = BonsaiMerkleTree(small_geometry, keys)
    blocks = {0: make_block(1), 1: make_block(2)}
    for leaf, block in blocks.items():
        tree.update_leaf(leaf, block)
    full_root = tree.root
    partial = {0: blocks[0]}
    assert tree.rebuild_from_counters(partial) != full_root


def test_snapshot_restore(small_tree):
    small_tree.update_leaf(0, make_block(1))
    snap = small_tree.snapshot()
    root = small_tree.root
    small_tree.update_leaf(0, make_block(2))
    small_tree.restore(snap)
    assert small_tree.root == root


def test_sparse_storage(paper_geometry, keys):
    """An 8 GB tree stores only touched paths."""
    tree = BonsaiMerkleTree(paper_geometry, keys)
    tree.update_leaf(12345, make_block(7))
    assert tree.stored_node_count() == paper_geometry.levels
    assert tree.verify_leaf(12345, make_block(7))
    assert tree.verify_leaf(999_999, bytes(64))


def test_key_separation(small_geometry):
    t1 = BonsaiMerkleTree(small_geometry, KeySchedule(b"k1"))
    t2 = BonsaiMerkleTree(small_geometry, KeySchedule(b"k2"))
    assert t1.root != t2.root


def test_set_node_hash_validates_width(small_tree):
    with pytest.raises(ValueError):
        small_tree.set_node_hash(0, b"short")
