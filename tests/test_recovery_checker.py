"""Tests for crash injection and the recovery checker in isolation."""

import pytest

from repro.crypto.bmt import BonsaiMerkleTree
from repro.crypto.counters import SplitCounter
from repro.crypto.encryption import CounterModeEncryptor
from repro.crypto.mac import StatefulMAC
from repro.mem.wpq import TupleItem
from repro.recovery.checker import RecoveryChecker
from repro.recovery.crash import CrashInjector, DropSpec
from repro.recovery.tuple_state import DurableRoot, NVMImage

from conftest import make_block


# ----------------------------------------------------------------------
# CrashInjector / DropSpec
# ----------------------------------------------------------------------


def test_injector_default_everything_survives():
    injector = CrashInjector()
    assert injector.empty
    assert injector.survives(0, TupleItem.DATA)


def test_injector_drop_specific_items():
    injector = CrashInjector().drop(3, TupleItem.MAC, TupleItem.COUNTER)
    assert not injector.survives(3, TupleItem.MAC)
    assert not injector.survives(3, TupleItem.COUNTER)
    assert injector.survives(3, TupleItem.DATA)
    assert injector.survives(4, TupleItem.MAC)
    assert injector.dropped_items(3) == {TupleItem.MAC, TupleItem.COUNTER}


def test_injector_requires_items():
    with pytest.raises(ValueError):
        CrashInjector().drop(0)


def test_drop_spec_validates_item_type():
    with pytest.raises(TypeError):
        DropSpec(persist_id=0, items=frozenset({"mac"}))


def test_drop_spec_coerces_plain_set_to_frozenset():
    """Regression: a plain set left the frozen dataclass unhashable."""
    spec = DropSpec(persist_id=1, items={TupleItem.MAC, TupleItem.DATA})
    assert isinstance(spec.items, frozenset)
    assert spec.items == frozenset({TupleItem.MAC, TupleItem.DATA})
    assert hash(spec) == hash(DropSpec(1, frozenset({TupleItem.DATA, TupleItem.MAC})))
    assert spec in {spec}


def test_drop_spec_coerces_any_iterable():
    spec = DropSpec(persist_id=0, items=[TupleItem.COUNTER])
    assert spec.items == frozenset({TupleItem.COUNTER})


def test_injector_from_specs():
    specs = [
        DropSpec(0, {TupleItem.MAC}),
        DropSpec(2, {TupleItem.DATA, TupleItem.ROOT_ACK}),
        DropSpec(3, frozenset()),  # empty spec: no-op
    ]
    injector = CrashInjector.from_specs(specs)
    assert not injector.survives(0, TupleItem.MAC)
    assert not injector.survives(2, TupleItem.ROOT_ACK)
    assert injector.survives(3, TupleItem.DATA)


# ----------------------------------------------------------------------
# NVMImage / DurableRoot
# ----------------------------------------------------------------------


def test_nvm_image_snapshot_is_independent():
    image = NVMImage()
    image.write_data(0, make_block(1))
    snap = image.snapshot()
    image.write_data(0, make_block(2))
    assert snap.data[0] == make_block(1)


def test_durable_root_commit_counts():
    root = DurableRoot()
    assert root.value is None
    root.commit(b"12345678")
    root.commit(b"abcdefgh")
    assert root.update_count == 2
    assert root.value == b"abcdefgh"


# ----------------------------------------------------------------------
# RecoveryChecker against a hand-built image
# ----------------------------------------------------------------------


def build_consistent_image(geometry, keys, block=0, payload=None):
    payload = payload or make_block(9)
    enc = CounterModeEncryptor(keys)
    mac = StatefulMAC(keys)
    counter = SplitCounter()
    counter.increment(block & 63)
    seed = counter.seed(block & 63)
    image = NVMImage()
    ciphertext = enc.encrypt(payload, block << 6, seed)
    image.write_data(block, ciphertext)
    image.write_counter(block >> 6, counter.to_bytes())
    image.write_mac(block, mac.compute(ciphertext, block << 6, seed))
    tree = BonsaiMerkleTree(geometry, keys)
    tree.update_leaf(block >> 6, counter.to_bytes())
    durable = DurableRoot()
    durable.commit(tree.root)
    return image, durable, payload


def test_checker_accepts_consistent_image(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert report.recovered
    assert report.blocks[0].recovered_plaintext == payload


def test_checker_detects_stale_root(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    durable.commit(b"\x00" * 8)
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert not report.bmt_ok
    assert not report.recovered


def test_checker_detects_missing_counter(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    del image.counters[0]
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert not report.bmt_ok
    assert not report.blocks[0].plaintext_correct
    assert not report.blocks[0].mac_ok


def test_checker_reports_uncommitted_root(small_geometry, keys):
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(NVMImage(), DurableRoot(), expected={})
    assert not report.bmt_ok  # no committed root to validate against


def test_outcome_row_unknown_block_raises(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    with pytest.raises(KeyError):
        report.outcome_row(99)


def test_rebuild_root_matches_functional_tree(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    checker = RecoveryChecker(small_geometry, keys)
    assert checker.rebuild_root(image) == durable.value


# ----------------------------------------------------------------------
# RecoveryReport semantics (vacuous recovery, Table I strings)
# ----------------------------------------------------------------------


def test_empty_report_is_vacuous_not_recovered(small_geometry, keys):
    """Regression: zero checked blocks used to read as full recovery."""
    tree = BonsaiMerkleTree(small_geometry, keys)
    durable = DurableRoot()
    durable.commit(tree.root)
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(NVMImage(), durable, expected={})
    assert report.vacuous
    assert not report.recovered
    assert report.consistent  # verification-only: an empty image is fine


def test_nonvacuous_report_not_flagged_vacuous(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert not report.vacuous
    assert report.recovered
    assert report.consistent


def test_outcome_row_pins_table1_strings(small_geometry, keys):
    """The combined failure reads 'BMT & MAC failure' as in Table I."""
    image, durable, payload = build_consistent_image(small_geometry, keys)
    del image.counters[0]  # drop gamma: wrong plaintext + both failures
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert report.outcome_row(0) == "Wrong plaintext, BMT & MAC failure"


def test_checker_counters_persist_data_and_mac_dropped(small_geometry, keys):
    """Edge: gamma durable but C and M lost — stale data under a fresh
    counter decrypts to garbage and both MAC and plaintext checks fail,
    while the rebuilt BMT still matches (the counter did persist)."""
    image, durable, payload = build_consistent_image(small_geometry, keys)
    del image.data[0]
    del image.macs[0]
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert report.bmt_ok
    assert not report.blocks[0].mac_ok
    assert not report.blocks[0].plaintext_correct
    assert report.outcome_row(0) == "Wrong plaintext, MAC failure"
    assert not report.recovered
    assert not report.consistent
