"""Tests for crash injection and the recovery checker in isolation."""

import pytest

from repro.crypto.bmt import BonsaiMerkleTree
from repro.crypto.counters import SplitCounter
from repro.crypto.encryption import CounterModeEncryptor
from repro.crypto.mac import StatefulMAC
from repro.mem.wpq import TupleItem
from repro.recovery.checker import RecoveryChecker
from repro.recovery.crash import CrashInjector, DropSpec
from repro.recovery.tuple_state import DurableRoot, NVMImage

from conftest import make_block


# ----------------------------------------------------------------------
# CrashInjector / DropSpec
# ----------------------------------------------------------------------


def test_injector_default_everything_survives():
    injector = CrashInjector()
    assert injector.empty
    assert injector.survives(0, TupleItem.DATA)


def test_injector_drop_specific_items():
    injector = CrashInjector().drop(3, TupleItem.MAC, TupleItem.COUNTER)
    assert not injector.survives(3, TupleItem.MAC)
    assert not injector.survives(3, TupleItem.COUNTER)
    assert injector.survives(3, TupleItem.DATA)
    assert injector.survives(4, TupleItem.MAC)
    assert injector.dropped_items(3) == {TupleItem.MAC, TupleItem.COUNTER}


def test_injector_requires_items():
    with pytest.raises(ValueError):
        CrashInjector().drop(0)


def test_drop_spec_validates_item_type():
    with pytest.raises(TypeError):
        DropSpec(persist_id=0, items=frozenset({"mac"}))


# ----------------------------------------------------------------------
# NVMImage / DurableRoot
# ----------------------------------------------------------------------


def test_nvm_image_snapshot_is_independent():
    image = NVMImage()
    image.write_data(0, make_block(1))
    snap = image.snapshot()
    image.write_data(0, make_block(2))
    assert snap.data[0] == make_block(1)


def test_durable_root_commit_counts():
    root = DurableRoot()
    assert root.value is None
    root.commit(b"12345678")
    root.commit(b"abcdefgh")
    assert root.update_count == 2
    assert root.value == b"abcdefgh"


# ----------------------------------------------------------------------
# RecoveryChecker against a hand-built image
# ----------------------------------------------------------------------


def build_consistent_image(geometry, keys, block=0, payload=None):
    payload = payload or make_block(9)
    enc = CounterModeEncryptor(keys)
    mac = StatefulMAC(keys)
    counter = SplitCounter()
    counter.increment(block & 63)
    seed = counter.seed(block & 63)
    image = NVMImage()
    ciphertext = enc.encrypt(payload, block << 6, seed)
    image.write_data(block, ciphertext)
    image.write_counter(block >> 6, counter.to_bytes())
    image.write_mac(block, mac.compute(ciphertext, block << 6, seed))
    tree = BonsaiMerkleTree(geometry, keys)
    tree.update_leaf(block >> 6, counter.to_bytes())
    durable = DurableRoot()
    durable.commit(tree.root)
    return image, durable, payload


def test_checker_accepts_consistent_image(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert report.recovered
    assert report.blocks[0].recovered_plaintext == payload


def test_checker_detects_stale_root(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    durable.commit(b"\x00" * 8)
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert not report.bmt_ok
    assert not report.recovered


def test_checker_detects_missing_counter(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    del image.counters[0]
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    assert not report.bmt_ok
    assert not report.blocks[0].plaintext_correct
    assert not report.blocks[0].mac_ok


def test_checker_reports_uncommitted_root(small_geometry, keys):
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(NVMImage(), DurableRoot(), expected={})
    assert not report.bmt_ok  # no committed root to validate against


def test_outcome_row_unknown_block_raises(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    checker = RecoveryChecker(small_geometry, keys)
    report = checker.check(image, durable, expected={0: payload})
    with pytest.raises(KeyError):
        report.outcome_row(99)


def test_rebuild_root_matches_functional_tree(small_geometry, keys):
    image, durable, payload = build_consistent_image(small_geometry, keys)
    checker = RecoveryChecker(small_geometry, keys)
    assert checker.rebuild_root(image) == durable.value
