"""Tests for the content-addressed on-disk trace cache."""

import dataclasses

import pytest

from repro.sweep import cached_profile_trace, generator_version, trace_key
from repro.sweep.runner import _trace_cache
from repro.sweep.trace_cache import TraceCache
from repro.system.config import SystemConfig
from repro.system.timing import TraceSimulator
from repro.workloads.spec_profiles import profile_trace

KI = 3


def test_trace_key_sensitive_to_inputs(monkeypatch):
    base = trace_key("gamess", KI, 2020)
    assert base != trace_key("gcc", KI, 2020)
    assert base != trace_key("gamess", KI + 1, 2020)
    assert base != trace_key("gamess", KI, 7)
    assert base == trace_key("gamess", KI, 2020)
    monkeypatch.setattr("repro.sweep.trace_cache._GENERATOR_VERSION", "f" * 16)
    assert base != trace_key("gamess", KI, 2020)


def test_generator_version_is_stable_hex():
    version = generator_version()
    assert version == generator_version()
    assert len(version) == 16
    int(version, 16)


def test_cold_miss_generates_and_stores(tmp_path):
    cache = TraceCache(tmp_path)
    trace = cache.load_or_generate("gamess", KI)
    assert cache.misses == 1 and cache.hits == 0
    path = cache.path_for(trace_key("gamess", KI, 2020))
    assert path.is_file()
    assert trace.records == profile_trace("gamess", KI, 2020).records


def test_warm_hit_loads_identical_packed_trace(tmp_path):
    cache = TraceCache(tmp_path)
    generated = cache.load_or_generate("milc", KI)
    loaded = cache.load_or_generate("milc", KI)
    assert cache.hits == 1
    assert loaded.name == generated.name == "milc"
    assert loaded.records == generated.records
    assert loaded.kind_codes == generated.kind_codes
    assert loaded.addresses == generated.addresses
    assert loaded.gaps == generated.gaps
    assert loaded.persistent_flags == generated.persistent_flags


def test_cached_trace_simulates_bit_identically(tmp_path):
    cache = TraceCache(tmp_path)
    cache.load_or_generate("gcc", KI)
    loaded = cache.load_or_generate("gcc", KI)
    fresh = profile_trace("gcc", KI, 2020)
    from_cache = TraceSimulator(SystemConfig()).run(loaded)
    from_generator = TraceSimulator(SystemConfig()).run(fresh)
    assert dataclasses.asdict(from_cache) == dataclasses.asdict(from_generator)


def test_corrupt_cache_entry_treated_as_miss(tmp_path):
    cache = TraceCache(tmp_path)
    cache.load_or_generate("gamess", KI)
    path = cache.path_for(trace_key("gamess", KI, 2020))
    path.write_bytes(b"garbage")
    recovered = cache.load_or_generate("gamess", KI)
    assert recovered.records == profile_trace("gamess", KI, 2020).records
    # The rebuilt entry replaced the corrupt one.
    assert TraceCache(tmp_path).get("gamess", KI, 2020) is not None


def test_env_root_override_and_disable(tmp_path, monkeypatch):
    monkeypatch.setenv("PLP_TRACE_CACHE", str(tmp_path / "root"))
    _trace_cache.clear()
    cached_profile_trace("gamess", KI)
    stored = list((tmp_path / "root").rglob("*.trace"))
    assert len(stored) == 1

    monkeypatch.setenv("PLP_NO_TRACE_CACHE", "1")
    monkeypatch.setenv("PLP_TRACE_CACHE", str(tmp_path / "disabled"))
    _trace_cache.clear()
    cached_profile_trace("gamess", KI)
    assert not (tmp_path / "disabled").exists()
    _trace_cache.clear()


def test_runner_memory_lru_fronts_disk_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("PLP_TRACE_CACHE", str(tmp_path))
    _trace_cache.clear()
    first = cached_profile_trace("gcc", KI)
    assert cached_profile_trace("gcc", KI) is first  # in-memory hit
    _trace_cache.clear()
    reloaded = cached_profile_trace("gcc", KI)  # disk hit, fresh object
    assert reloaded is not first
    assert reloaded.records == first.records
    _trace_cache.clear()
