"""Tests for split/monolithic counters and the counter store."""

import pytest

from repro.crypto.counters import (
    BLOCKS_PER_PAGE,
    MINOR_COUNTER_MAX,
    CounterStore,
    MonolithicCounter,
    SplitCounter,
)


def test_split_counter_initial_state():
    ctr = SplitCounter()
    assert ctr.value(0) == (0, 0)
    assert ctr.value(63) == (0, 0)


def test_split_counter_increment():
    ctr = SplitCounter()
    assert ctr.increment(5) is False
    assert ctr.value(5) == (0, 1)
    assert ctr.value(4) == (0, 0)


def test_split_counter_minor_overflow_resets_page():
    ctr = SplitCounter()
    ctr.minors[3] = MINOR_COUNTER_MAX
    ctr.minors[7] = 42
    overflowed = ctr.increment(3)
    assert overflowed is True
    assert ctr.major == 1
    assert ctr.value(3) == (1, 1)
    # Every other minor resets (the page must be re-encrypted).
    assert ctr.value(7) == (1, 0)


def test_split_counter_seed_changes_on_increment():
    ctr = SplitCounter()
    before = ctr.seed(0)
    ctr.increment(0)
    assert ctr.seed(0) != before


def test_split_counter_seed_distinct_blocks():
    ctr = SplitCounter()
    ctr.increment(0)
    ctr.increment(1)
    # Same (major, minor) values but identical seeds would break spatial
    # separation only if address weren't part of the pad; seeds here may
    # match across blocks of equal count, which is fine.
    assert ctr.seed(0) == ctr.seed(1)


def test_split_counter_serialization_roundtrip():
    ctr = SplitCounter()
    ctr.major = 9
    for i in range(0, 64, 3):
        ctr.minors[i] = (i * 5) % (MINOR_COUNTER_MAX + 1)
    raw = ctr.to_bytes()
    assert len(raw) == 64
    assert SplitCounter.from_bytes(raw) == ctr


def test_split_counter_serialization_is_64_bytes_for_extremes():
    ctr = SplitCounter()
    ctr.major = (1 << 64) - 1
    ctr.minors = [MINOR_COUNTER_MAX] * BLOCKS_PER_PAGE
    raw = ctr.to_bytes()
    assert len(raw) == 64
    assert SplitCounter.from_bytes(raw) == ctr


def test_split_counter_from_bytes_rejects_wrong_length():
    with pytest.raises(ValueError):
        SplitCounter.from_bytes(b"short")


def test_split_counter_index_bounds():
    ctr = SplitCounter()
    with pytest.raises(IndexError):
        ctr.increment(64)
    with pytest.raises(IndexError):
        ctr.value(-1)


def test_split_counter_copy_is_independent():
    ctr = SplitCounter()
    dup = ctr.copy()
    ctr.increment(0)
    assert dup.value(0) == (0, 0)


def test_monolithic_counter():
    ctr = MonolithicCounter()
    assert ctr.increment() is False
    assert ctr.value == 1
    assert ctr.seed() != MonolithicCounter().seed()


def test_monolithic_counter_wraparound():
    ctr = MonolithicCounter((1 << 64) - 1)
    assert ctr.increment() is True
    assert ctr.value == 0


def test_counter_store_lazy_pages():
    store = CounterStore(num_pages=16)
    assert store.touched_pages() == []
    store.increment(3, 0)
    assert store.touched_pages() == [3]


def test_counter_store_peek_does_not_create():
    store = CounterStore(num_pages=16)
    assert store.peek(5).value(0) == (0, 0)
    assert store.touched_pages() == []


def test_counter_store_overflow_callback():
    overflowed = []
    store = CounterStore(num_pages=4, on_page_overflow=overflowed.append)
    page = store.page(2)
    page.minors[1] = MINOR_COUNTER_MAX
    store.increment(2, 1)
    assert overflowed == [2]
    assert store.overflow_count == 1


def test_counter_store_snapshot_restore():
    store = CounterStore(num_pages=8)
    store.increment(1, 0)
    snap = store.snapshot()
    store.increment(1, 0)
    store.restore(snap)
    assert store.page(1).value(0) == (0, 1)


def test_counter_store_bounds():
    store = CounterStore(num_pages=8)
    with pytest.raises(IndexError):
        store.page(8)
    with pytest.raises(ValueError):
        CounterStore(num_pages=0)
