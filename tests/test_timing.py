"""Tests for the trace-driven timing simulator."""

import pytest

from repro.core.schemes import UpdateScheme
from repro.system.config import SystemConfig
from repro.system.factory import build_simulator, run_benchmark, run_trace
from repro.system.timing import TraceSimulator
from repro.workloads.synthetic import sequential_stream, uniform_random, zipfian
from repro.workloads.trace import MemoryTrace, OpKind, TraceRecord


def small_config(scheme=UpdateScheme.SP, **kwargs):
    defaults = dict(scheme=scheme, memory_bytes=64 * 1024 * 1024)
    defaults.update(kwargs)
    return SystemConfig(**defaults)


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------


def test_config_defaults_match_table_iii():
    cfg = SystemConfig()
    assert cfg.l3_bytes == 4 * 1024 * 1024
    assert cfg.wpq_entries == 32
    assert cfg.counter_cache_bytes == 128 * 1024
    assert cfg.mac_latency == 40
    assert cfg.epoch_size == 32
    assert cfg.ptt_entries == 64
    assert cfg.ett_entries == 2
    assert cfg.geometry().levels == 9


def test_config_variants():
    cfg = SystemConfig()
    v = cfg.variant(mac_latency=80)
    assert v.mac_latency == 80 and cfg.mac_latency == 40
    s = cfg.with_scheme(UpdateScheme.O3)
    assert s.scheme is UpdateScheme.O3


def test_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(mac_latency=-1)
    with pytest.raises(ValueError):
        SystemConfig(memory_bytes=100)


@pytest.mark.parametrize(
    "field",
    [
        "epoch_size",
        "wpq_entries",
        "ptt_entries",
        "ett_entries",
        "bmt_arity",
        "triad_persist_levels",
    ],
)
@pytest.mark.parametrize("value", [0, -1])
def test_config_rejects_degenerate_capacities(field, value):
    """Regression: epoch_size=0 used to slip through and hit a
    mod-by-zero deep in sweep/shard.plan_shards; wpq_entries=0 could
    never admit a persist.  The constructor must reject them."""
    with pytest.raises(ValueError, match=f"{field} must be positive"):
        SystemConfig(**{field: value})


def test_config_variant_revalidates():
    """variant() re-runs __post_init__, so degenerate overrides are
    rejected on the copy path too."""
    cfg = SystemConfig()
    with pytest.raises(ValueError, match="epoch_size must be positive"):
        cfg.variant(epoch_size=0)
    with pytest.raises(ValueError, match="wpq_entries must be positive"):
        cfg.variant(wpq_entries=-4)


def test_config_leaves_per_page_by_organization():
    assert SystemConfig().leaves_per_page == 1
    assert SystemConfig(counter_organization="monolithic").leaves_per_page == 8


# ----------------------------------------------------------------------
# scheme behaviour in the simulator
# ----------------------------------------------------------------------


def test_sp_persists_every_persistent_store():
    trace = sequential_stream(200, gap=8)
    result = run_trace(trace, "sp", small_config(), warmup_fraction=0.0)
    assert result.persists == 200


def test_secure_wb_persists_only_writebacks():
    """secure_WB persists on dirty write-backs, not per store.

    A hot-set workload keeps its blocks resident (re-dirtied in the
    residency window), so write-backs — and hence BMT updates — are far
    rarer than stores.
    """
    trace = zipfian(400, span_blocks=64, skew=1.2, gap=8, seed=9)
    result = run_trace(
        trace, "secure_wb", small_config(UpdateScheme.SECURE_WB), warmup_fraction=0.0
    )
    assert result.persists < 400 * 0.5


def test_secure_wb_streaming_stores_write_back():
    """Streaming stores displace old dirty blocks one-for-one in steady
    state, so a pure store stream writes back at about its store rate."""
    trace = sequential_stream(200, gap=8)
    result = run_trace(
        trace, "secure_wb", small_config(UpdateScheme.SECURE_WB), warmup_fraction=0.0
    )
    assert result.persists == pytest.approx(200, rel=0.1)


def test_epoch_scheme_collapses_same_block_stores():
    records = [TraceRecord(OpKind.STORE, 0x1000, gap=8) for _ in range(64)]
    trace = MemoryTrace(records)
    result = run_trace(
        trace, "o3", small_config(UpdateScheme.O3, epoch_size=32), warmup_fraction=0.0
    )
    assert result.persists == 2  # one per epoch


def test_sfence_closes_epoch():
    records = [
        TraceRecord(OpKind.STORE, 0x1000, gap=4),
        TraceRecord(OpKind.SFENCE),
        TraceRecord(OpKind.STORE, 0x1000, gap=4),
    ]
    trace = MemoryTrace(records)
    result = run_trace(
        trace, "o3", small_config(UpdateScheme.O3, epoch_size=1000), warmup_fraction=0.0
    )
    assert result.persists == 2


def test_scheme_ordering_on_store_heavy_trace():
    """The paper's headline ordering: sp slowest, then pipeline, then
    the epoch schemes, with secure_wb fastest (no persistency).

    Needs a workload with store locality — epoch persistency's
    advantage comes partly from same-block collapse, which a pure
    uniform-random stream lacks.
    """
    trace = zipfian(600, span_blocks=512, skew=1.1, gap=8, seed=5)
    cycles = {}
    for scheme in ("secure_wb", "sp", "pipeline", "o3"):
        cycles[scheme] = run_trace(
            trace, scheme, small_config(), warmup_fraction=0.0
        ).cycles
    assert cycles["sp"] > cycles["pipeline"] > cycles["o3"]
    # o3 may even beat secure_WB (the paper's milc case): the baseline's
    # evicted dirty blocks update the BMT sequentially, while o3
    # overlaps them.  Sanity-bound it rather than forcing a minimum.
    assert cycles["o3"] >= cycles["secure_wb"] * 0.3


def test_unordered_close_to_baseline():
    trace = uniform_random(400, span_blocks=256, gap=8, seed=6)
    base = run_trace(trace, "secure_wb", small_config(), warmup_fraction=0.0)
    unordered = run_trace(trace, "unordered", small_config(), warmup_fraction=0.0)
    assert unordered.cycles < 2.0 * base.cycles


def test_protect_stack_increases_persists():
    records = [
        TraceRecord(OpKind.STORE, 0x1000 + 64 * i, gap=8, persistent=(i % 2 == 0))
        for i in range(100)
    ]
    trace = MemoryTrace(records)
    partial = run_trace(trace, "sp", small_config(), warmup_fraction=0.0)
    full = run_trace(
        trace, "sp", small_config(), warmup_fraction=0.0, protect_stack=True
    )
    assert full.persists == 2 * partial.persists


def test_mac_latency_scaling():
    trace = sequential_stream(300, gap=8)
    slow = run_trace(trace, "sp", small_config(), warmup_fraction=0.0, mac_latency=80)
    fast = run_trace(trace, "sp", small_config(), warmup_fraction=0.0, mac_latency=20)
    assert slow.cycles > fast.cycles


def test_zero_mac_latency_runs():
    trace = sequential_stream(100, gap=8)
    result = run_trace(trace, "sp", small_config(), warmup_fraction=0.0, mac_latency=0)
    assert result.cycles > 0


def test_result_metrics():
    trace = sequential_stream(100, gap=9)
    result = run_trace(trace, "sp", small_config(), warmup_fraction=0.0)
    assert result.instructions == trace.instruction_count
    assert result.ppki == pytest.approx(100.0, rel=0.01)
    assert 0 < result.ipc < 4
    assert result.node_updates == 100 * 9


def test_warmup_window_excludes_prefix():
    trace = sequential_stream(200, gap=9)
    full = run_trace(trace, "sp", small_config(), warmup_fraction=0.0)
    windowed = run_trace(trace, "sp", small_config(), warmup_fraction=0.5)
    assert windowed.instructions == pytest.approx(full.instructions / 2, rel=0.02)
    assert windowed.cycles < full.cycles


def test_invalid_warmup_fraction():
    trace = sequential_stream(10)
    sim = TraceSimulator(small_config())
    with pytest.raises(ValueError):
        sim.run(trace, warmup_fraction=1.0)


def test_slowdown_requires_same_trace():
    a = run_trace(sequential_stream(100, gap=8), "sp", small_config(), warmup_fraction=0.0)
    b = run_trace(sequential_stream(50, gap=8), "sp", small_config(), warmup_fraction=0.0)
    with pytest.raises(ValueError):
        a.slowdown_vs(b)


# ----------------------------------------------------------------------
# factory helpers
# ----------------------------------------------------------------------


def test_build_simulator_accepts_names_and_enums():
    assert build_simulator("coalescing").scheme is UpdateScheme.COALESCING
    assert build_simulator(UpdateScheme.SP).scheme is UpdateScheme.SP
    with pytest.raises(ValueError):
        build_simulator("bogus")


def test_run_benchmark_uses_profile_ipc():
    results = run_benchmark("gamess", ["secure_wb"], kilo_instructions=20)
    assert set(results) == {"secure_wb"}
    assert results["secure_wb"].ipc > 1.5  # gamess is a high-IPC profile


def test_scheme_registry_roundtrip():
    for scheme in UpdateScheme:
        assert UpdateScheme.from_name(scheme.value) is scheme
    assert UpdateScheme.from_name("SP") is UpdateScheme.SP
