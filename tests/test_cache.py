"""Tests for the set-associative cache model."""

import pytest

from repro.mem.cache import Cache


def make_cache(sets=4, assoc=2, write_through=False):
    # 64 B blocks; size = sets * assoc * 64.
    return Cache("t", sets * assoc * 64, assoc, write_through=write_through)


def test_miss_then_hit():
    cache = make_cache()
    hit, victim = cache.access(0, is_write=False)
    assert not hit and victim is None
    hit, _ = cache.access(0, is_write=False)
    assert hit


def test_lru_eviction_order():
    cache = make_cache(sets=1, assoc=2)
    cache.access(0, False)
    cache.access(1, False)
    cache.access(0, False)  # 0 becomes MRU
    _, victim = cache.access(2, False)
    assert victim is not None and victim.block == 1


def test_write_sets_dirty():
    cache = make_cache()
    cache.access(0, is_write=True)
    assert cache.probe(0).dirty


def test_write_through_never_dirty():
    cache = make_cache(write_through=True)
    cache.access(0, is_write=True)
    assert not cache.probe(0).dirty
    assert cache.dirty_blocks() == []


def test_dirty_victim_reported():
    cache = make_cache(sets=1, assoc=1)
    cache.access(0, is_write=True)
    _, victim = cache.access(1, is_write=False)
    assert victim.block == 0 and victim.dirty


def test_set_mapping_isolates_conflicts():
    cache = make_cache(sets=4, assoc=1)
    cache.access(0, False)
    cache.access(1, False)  # different set
    assert cache.probe(0) is not None
    assert cache.probe(1) is not None
    _, victim = cache.access(4, False)  # maps onto set 0
    assert victim.block == 0


def test_probe_does_not_fill_or_touch():
    cache = make_cache(sets=1, assoc=2)
    assert cache.probe(0) is None
    cache.access(0, False)
    cache.access(1, False)
    cache.probe(0)  # must NOT refresh LRU
    _, victim = cache.access(2, False)
    assert victim.block == 0


def test_fill_existing_merges_dirty():
    cache = make_cache()
    cache.access(0, False)
    assert cache.fill(0, dirty=True) is None
    assert cache.probe(0).dirty


def test_clean_clears_dirty():
    cache = make_cache()
    cache.access(0, True)
    assert cache.clean(0) is True
    assert not cache.probe(0).dirty
    assert cache.clean(0) is False
    assert cache.clean(999) is False


def test_invalidate():
    cache = make_cache()
    cache.access(0, True)
    line = cache.invalidate(0)
    assert line.block == 0 and line.dirty
    assert cache.probe(0) is None
    assert cache.invalidate(0) is None


def test_flush_all_returns_dirty_blocks():
    cache = make_cache()
    cache.access(0, True)
    cache.access(1, True)
    cache.access(2, False)
    flushed = cache.flush_all()
    assert sorted(flushed) == [0, 1]
    assert cache.dirty_blocks() == []


def test_len_and_iter():
    cache = make_cache()
    for block in range(3):
        cache.access(block, False)
    assert len(cache) == 3
    assert {line.block for line in cache} == {0, 1, 2}


def test_invalid_dimensions():
    with pytest.raises(ValueError):
        Cache("x", 0, 1)
    with pytest.raises(ValueError):
        Cache("x", 64, 2)  # smaller than one set
