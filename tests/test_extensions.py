"""Tests for the extension features: SGX-tree scheme, counter
organizations, and related config plumbing."""

import pytest

from repro.core.schedulers import SGXPathScoreboard, make_scoreboard
from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry
from repro.system.config import SystemConfig
from repro.system.factory import run_trace
from repro.workloads.synthetic import sequential_stream


@pytest.fixture
def geometry():
    return BMTGeometry(num_leaves=64, arity=8)  # 3 levels


# ----------------------------------------------------------------------
# SGX-tree strict persistency
# ----------------------------------------------------------------------


def test_sgx_scheme_properties():
    sgx = UpdateScheme.SGX_SP
    assert sgx.persistency.orders_all_persists
    assert sgx.write_through
    assert sgx.crash_recoverable
    assert sgx.persists_whole_path
    assert not UpdateScheme.SP.persists_whole_path


def test_sgx_scoreboard_charges_path_persists(geometry):
    bmt = make_scoreboard(UpdateScheme.SP, geometry, mac_latency=40)
    sgx = make_scoreboard(UpdateScheme.SGX_SP, geometry, mac_latency=40)
    assert isinstance(sgx, SGXPathScoreboard)
    t_bmt = bmt.submit(0, 0, arrival=0)
    t_sgx = sgx.submit(0, 0, arrival=0)
    # Same MAC work plus serialized per-node persist cost.
    assert t_sgx.completion == t_bmt.completion + 3 * sgx.node_persist_cycles
    assert sgx.path_persists == 3


def test_sgx_scoreboard_serializes_like_sp(geometry):
    sgx = make_scoreboard(UpdateScheme.SGX_SP, geometry, mac_latency=40)
    t0 = sgx.submit(0, 0, arrival=0)
    t1 = sgx.submit(1, 1, arrival=0)
    assert t1.completion == 2 * t0.completion


def test_sgx_scheme_slower_than_sp_end_to_end():
    trace = sequential_stream(300, gap=8)
    config = SystemConfig(memory_bytes=64 * 1024 * 1024)
    sp = run_trace(trace, "sp", config, warmup_fraction=0.0)
    sgx = run_trace(trace, "sgx_sp", config, warmup_fraction=0.0)
    assert sgx.cycles > sp.cycles
    # Path-node persists also show up as extra NVM write traffic.
    assert sgx.stats["nvm.writes"] > sp.stats["nvm.writes"]


# ----------------------------------------------------------------------
# counter organizations
# ----------------------------------------------------------------------


def test_counter_organization_config():
    split = SystemConfig(counter_organization="split")
    mono = SystemConfig(counter_organization="monolithic")
    assert split.blocks_per_counter_block == 64
    assert mono.blocks_per_counter_block == 8
    assert split.counter_storage_overhead == pytest.approx(1 / 64)
    assert mono.counter_storage_overhead == pytest.approx(1 / 8)
    with pytest.raises(ValueError):
        SystemConfig(counter_organization="quantum")


def test_monolithic_tree_is_deeper_or_equal():
    """8x more counter blocks means a deeper (or equal, if padded) BMT."""
    split = SystemConfig(counter_organization="split", bmt_min_levels=1)
    mono = SystemConfig(counter_organization="monolithic", bmt_min_levels=1)
    assert mono.geometry().num_leaves == 8 * split.geometry().num_leaves
    assert mono.geometry().levels == split.geometry().levels + 1


def test_monolithic_counter_cache_reach_shrinks():
    trace = sequential_stream(500, gap=8)
    config = SystemConfig(memory_bytes=64 * 1024 * 1024, bmt_min_levels=1)
    split = run_trace(
        trace, "sp", config, warmup_fraction=0.0, counter_organization="split"
    )
    mono = run_trace(
        trace, "sp", config, warmup_fraction=0.0, counter_organization="monolithic"
    )
    assert mono.stats["ctr.misses"] > split.stats["ctr.misses"]


# ----------------------------------------------------------------------
# memory-size scaling (tree height)
# ----------------------------------------------------------------------


def test_tree_height_scales_with_memory():
    gb = 1 << 30
    levels = [
        SystemConfig(memory_bytes=size, bmt_min_levels=1).geometry().levels
        for size in (1 * gb, 8 * gb, 64 * gb, 512 * gb)
    ]
    assert levels == [7, 8, 9, 10]


def test_sp_cost_scales_with_tree_height():
    trace = sequential_stream(200, gap=8)
    small = run_trace(
        trace, "sp", SystemConfig(memory_bytes=1 << 30, bmt_min_levels=1),
        warmup_fraction=0.0,
    )
    large = run_trace(
        trace, "sp", SystemConfig(memory_bytes=512 << 30, bmt_min_levels=1),
        warmup_fraction=0.0,
    )
    assert large.cycles > small.cycles
    assert large.node_updates == 200 * 10
    assert small.node_updates == 200 * 7
