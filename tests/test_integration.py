"""Cross-subsystem integration tests.

These exercise whole pipelines: trace → functional memory → crash →
recovery; trace → epoch tracker → coalescing → engine; and the
consistency between the functional journal and the persist-order
invariants.
"""

import random

import pytest

from repro.core.invariants import check_root_order
from repro.core.schemes import UpdateScheme
from repro.core.update_engine import CycleAccurateEngine, EngineConfig
from repro.crypto.bmt import BMTGeometry
from repro.mem.wpq import TupleItem
from repro.persistency.models import PersistencyModel
from repro.persistency.ordering import PersistOrderLog
from repro.recovery.crash import CrashInjector
from repro.system.factory import run_trace
from repro.system.config import SystemConfig
from repro.system.secure_memory import FunctionalSecureMemory
from repro.workloads.synthetic import kvstore_trace, zipfian
from repro.workloads.trace import OpKind

from conftest import make_block


def test_workload_through_functional_memory_and_recovery():
    """Replay a synthetic store trace into the functional memory, crash
    at a random point, and verify full recovery of the committed state."""
    rng = random.Random(3)
    trace = zipfian(300, span_blocks=128, skew=1.1, start=0, seed=21)
    mem = FunctionalSecureMemory(num_pages=64)
    shadow = {}
    crash_at = rng.randrange(100, 250)
    for i, record in enumerate(trace):
        payload = make_block(i)
        mem.store(record.address, payload)
        shadow[record.block] = payload
        if i == crash_at:
            break
    mem.crash()
    report = mem.recover()
    assert report.recovered
    for block, payload in shadow.items():
        assert mem.load(block * 64) == payload


def test_kvstore_trace_through_epoch_memory():
    """Drive the kvstore workload's stores/barriers through the
    functional EP memory; recovery lands exactly on the last commit."""
    trace = kvstore_trace(
        300, num_keys=128, put_fraction=1.0, seed=5,
        log_base=0, table_base=64 * 1024,
    )
    mem = FunctionalSecureMemory(
        num_pages=2048,
        persistency=PersistencyModel.EPOCH,
        epoch_size=None,
    )
    committed = {}
    open_writes = {}
    for record in trace:
        if record.kind is OpKind.STORE:
            payload = make_block(record.block & 0xFF)
            mem.store(record.address, payload)
            open_writes[record.block] = payload
        elif record.kind is OpKind.SFENCE:
            mem.barrier()
            committed.update(open_writes)
            open_writes.clear()
    # Crash with (possibly) an open transaction in flight.
    mem.crash()
    assert mem.recover().recovered
    for block, payload in committed.items():
        assert mem.load(block * 64) == payload


def test_functional_journal_satisfies_persist_order_invariant():
    """The functional memory's journal, interpreted as persist events,
    must satisfy Invariant 2 under strict persistency."""
    mem = FunctionalSecureMemory(num_pages=64)
    for i in range(20):
        mem.store((i % 8) * 64, make_block(i))
    log = PersistOrderLog(PersistencyModel.STRICT)
    for t, record in enumerate(mem._journal):
        log.register_persist(record.persist_id, epoch_id=0)
        for item in TupleItem:
            log.record(record.persist_id, item, time=t)
    assert log.is_consistent()


def test_engine_driven_by_trace_epochs():
    """Trace → epoch tracker → cycle-accurate engine end to end."""
    from repro.persistency.epochs import EpochTracker

    trace = zipfian(400, span_blocks=256, skew=1.1, start=0, seed=9)
    tracker = EpochTracker(16)
    geometry = BMTGeometry(num_leaves=64, arity=8)
    engine = CycleAccurateEngine(
        geometry, EngineConfig(scheme=UpdateScheme.COALESCING, mac_latency=5)
    )
    pid = 0
    for record in trace:
        closed = tracker.record_store(record.block)
        if closed is None:
            continue
        for block in closed.dirty_blocks:
            leaf = (block >> 6) % 64
            while not engine.submit(pid, leaf, epoch_id=closed.epoch_id):
                engine.tick()
            pid += 1
    engine.run_until_drained()
    assert len(engine.completions) == pid
    assert not check_root_order(engine.events, PersistencyModel.EPOCH)


def test_crash_between_epochs_is_atomic_per_epoch():
    """Under EP with 2SP, a crash drops whole epochs, never partial ones."""
    mem = FunctionalSecureMemory(
        num_pages=64, persistency=PersistencyModel.EPOCH, epoch_size=None
    )
    mem.store(0, make_block(1))
    mem.store(64, make_block(2))
    first_ids = mem.barrier()
    mem.store(128, make_block(3))
    second_ids = mem.barrier()
    # Lose one persist of the *second* epoch.
    injector = CrashInjector().drop(second_ids[0], TupleItem.COUNTER)
    mem.crash(injector)
    report = mem.recover()
    assert report.recovered
    assert mem.load(0) == make_block(1)
    assert mem.load(64) == make_block(2)
    assert 2 not in mem.committed_state  # block 128>>6==2 rolled back


def test_timing_and_functional_persist_counts_agree():
    """The timing simulator's persist count matches the functional EP
    memory's journal for an identical store stream."""
    trace = zipfian(256, span_blocks=96, skew=1.05, start=0, gap=8, seed=13)
    config = SystemConfig(memory_bytes=64 * 1024 * 1024, epoch_size=16)
    result = run_trace(trace, "o3", config, warmup_fraction=0.0)

    mem = FunctionalSecureMemory(
        num_pages=1024, persistency=PersistencyModel.EPOCH, epoch_size=16
    )
    for i, record in enumerate(trace):
        mem.store(record.address, make_block(i & 0xFF))
    mem.barrier()
    mem.drain()
    assert result.persists == mem._next_persist_id


@pytest.mark.parametrize("scheme", ["sp", "pipeline", "o3", "coalescing"])
def test_all_schemes_complete_all_persists(scheme):
    trace = zipfian(300, span_blocks=200, skew=1.2, start=0, gap=8, seed=17)
    config = SystemConfig(memory_bytes=64 * 1024 * 1024)
    result = run_trace(trace, scheme, config, warmup_fraction=0.0)
    assert result.persists > 0
    assert result.node_updates > 0
    assert result.cycles > 0
