"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=180):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "recovered after crash: True" in out
    assert "coalescing" in out


def test_crash_recovery_demo():
    out = run_example("crash_recovery_demo.py")
    assert "MAC failure" in out
    assert "recovered=True" in out
    assert "replay attack detected" in out


def test_scheme_explorer():
    out = run_example("scheme_explorer.py", "6")
    assert "sp" in out and "coalescing" in out
    assert "616" in out  # PTT storage bytes


def test_attack_gallery():
    out = run_example("attack_gallery.py")
    assert "detected 5/5 active attacks" in out


def test_persistent_kvstore():
    out = run_example("persistent_kvstore.py")
    assert "recovered cleanly: True" in out
    assert "rolled back" in out


def test_persistent_btree():
    out = run_example("persistent_btree.py")
    assert "crash + recovery verified: True" in out
    assert "committed keys intact: True" in out
    assert "post-recovery insert works: True" in out
