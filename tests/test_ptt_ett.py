"""Tests for the Persist Tracking Table and Epoch Tracking Table."""

import pytest

from repro.core.ett import EpochTrackingTable, ETTFullError
from repro.core.ptt import PersistTrackingTable, PTTFullError


# ----------------------------------------------------------------------
# PTT
# ----------------------------------------------------------------------


def test_ptt_allocate_initial_entry_state(small_geometry):
    ptt = PersistTrackingTable(capacity=4)
    path = small_geometry.update_path(0)
    entry = ptt.allocate(persist_id=0, path=path, wpq_ptr=7)
    assert entry.valid and not entry.ready and not entry.persisted
    assert entry.pending_node == path[0]
    assert entry.level == small_geometry.depth
    assert entry.lvl == small_geometry.levels  # paper numbering
    assert entry.wpq_ptr == 7


def test_ptt_capacity(small_geometry):
    ptt = PersistTrackingTable(capacity=1)
    ptt.allocate(0, small_geometry.update_path(0), 0)
    with pytest.raises(PTTFullError):
        ptt.allocate(1, small_geometry.update_path(1), 1)


def test_ptt_advance_walks_path(small_geometry):
    ptt = PersistTrackingTable()
    path = small_geometry.update_path(9)
    entry = ptt.allocate(0, path, 0)
    entry.ready = True
    assert entry.advance()
    assert entry.pending_node == path[1]
    assert entry.level == small_geometry.depth - 1
    assert not entry.ready  # cleared when moving on
    assert entry.advance()
    assert entry.pending_node == 0  # root
    assert not entry.advance()  # path exhausted


def test_ptt_retire_requires_persisted(small_geometry):
    ptt = PersistTrackingTable()
    entry = ptt.allocate(0, small_geometry.update_path(0), 0)
    with pytest.raises(RuntimeError):
        ptt.retire_head()
    entry.persisted = True
    assert ptt.retire_head() is entry
    assert ptt.empty


def test_ptt_retire_is_fifo(small_geometry):
    ptt = PersistTrackingTable()
    e0 = ptt.allocate(0, small_geometry.update_path(0), 0)
    e1 = ptt.allocate(1, small_geometry.update_path(1), 1)
    e1.persisted = True  # younger done first (OOO under EP)
    assert ptt.retire_ready_heads() == []  # blocked behind head
    e0.persisted = True
    assert [e.persist_id for e in ptt.retire_ready_heads()] == [0, 1]


def test_ptt_find_and_epoch_filter(small_geometry):
    ptt = PersistTrackingTable()
    ptt.allocate(0, small_geometry.update_path(0), 0, epoch_id=0)
    ptt.allocate(1, small_geometry.update_path(1), 1, epoch_id=1)
    assert ptt.find(1).epoch_id == 1
    assert ptt.find(9) is None
    assert [e.persist_id for e in ptt.entries_of_epoch(0)] == [0]


def test_ptt_storage_cost_matches_paper(small_geometry):
    """§VI: 64 entries x 77 bits = 616 bytes."""
    ptt = PersistTrackingTable(capacity=64)
    assert ptt.storage_bits() == 64 * 77
    assert ptt.storage_bits() // 8 == 616


def test_ptt_empty_path_rejected():
    ptt = PersistTrackingTable()
    with pytest.raises(ValueError):
        ptt.allocate(0, [], 0)


def test_ptt_invalid_capacity():
    with pytest.raises(ValueError):
        PersistTrackingTable(capacity=0)


# ----------------------------------------------------------------------
# ETT
# ----------------------------------------------------------------------


def test_ett_open_assigns_increasing_ids():
    ett = EpochTrackingTable(capacity=2)
    e0 = ett.open_epoch(deepest_level=8)
    e1 = ett.open_epoch(deepest_level=8)
    assert (e0.epoch_id, e1.epoch_id) == (0, 1)
    assert ett.gec == 2


def test_ett_capacity_limits_epochs_in_flight():
    ett = EpochTrackingTable(capacity=2)
    ett.open_epoch(8)
    ett.open_epoch(8)
    with pytest.raises(ETTFullError):
        ett.open_epoch(8)


def test_ett_close_must_be_oldest():
    ett = EpochTrackingTable(capacity=2)
    ett.open_epoch(8)
    ett.open_epoch(8)
    with pytest.raises(RuntimeError):
        ett.close_epoch(1)
    ett.close_epoch(0)
    assert ett.pec == 1
    ett.open_epoch(8)  # slot freed


def test_ett_level_authorization():
    """A younger epoch may only update strictly below its predecessor."""
    ett = EpochTrackingTable(capacity=2)
    older = ett.open_epoch(deepest_level=8)
    younger = ett.open_epoch(deepest_level=8)
    older.level = 2  # oldest epoch's deepest in-flight update
    assert ett.level_authorized(younger.epoch_id, 3)
    assert not ett.level_authorized(younger.epoch_id, 2)
    assert not ett.level_authorized(younger.epoch_id, 1)
    # The oldest epoch is unconstrained.
    assert ett.level_authorized(older.epoch_id, 0)


def test_ett_predecessor():
    ett = EpochTrackingTable(capacity=2)
    e0 = ett.open_epoch(8)
    e1 = ett.open_epoch(8)
    assert ett.predecessor(e0.epoch_id) is None
    assert ett.predecessor(e1.epoch_id) is e0
    with pytest.raises(KeyError):
        ett.predecessor(99)


def test_ett_paper_lvl_numbering():
    ett = EpochTrackingTable()
    entry = ett.open_epoch(deepest_level=1)
    assert entry.lvl == 2  # root is paper level 1


def test_ett_storage_cost_matches_paper():
    """§VI: 2 entries x 24 bits = 48 bits."""
    assert EpochTrackingTable(capacity=2).storage_bits() == 48
