"""Tests for the NVM timing model."""

from repro.mem.nvm import NVMConfig, NVMModel


def test_read_latency():
    nvm = NVMModel(NVMConfig(read_latency=240, burst_cycles=20))
    assert nvm.read(100) == 100 + 240


def test_write_latency():
    nvm = NVMModel(NVMConfig(write_latency=600, burst_cycles=20))
    assert nvm.write(0) == 600


def test_channel_serializes_bursts():
    cfg = NVMConfig(read_latency=240, burst_cycles=20)
    nvm = NVMModel(cfg)
    first = nvm.read(0)
    second = nvm.read(0)
    assert second == first + cfg.burst_cycles


def test_write_queue_backpressure():
    cfg = NVMConfig(write_latency=600, burst_cycles=1, write_queue_size=4)
    nvm = NVMModel(cfg)
    completions = [nvm.write(0) for _ in range(5)]
    # The 5th write waits for the 1st to complete before admission.
    assert completions[4] >= completions[0] + cfg.write_latency


def test_read_queue_backpressure():
    cfg = NVMConfig(read_latency=100, burst_cycles=1, read_queue_size=2)
    nvm = NVMModel(cfg)
    completions = [nvm.read(0) for _ in range(3)]
    assert completions[2] >= completions[0] + cfg.read_latency


def test_queue_drains_over_time():
    cfg = NVMConfig(write_latency=100, burst_cycles=1, write_queue_size=2)
    nvm = NVMModel(cfg)
    nvm.write(0)
    nvm.write(0)
    # Much later, the queue is empty again: no admission delay.
    done = nvm.write(10_000)
    assert done == 10_000 + cfg.write_latency


def test_counters():
    nvm = NVMModel()
    nvm.read(0)
    nvm.write(0)
    nvm.write(0)
    assert nvm.reads_issued == 1
    assert nvm.writes_issued == 2


def test_reads_and_writes_share_channel():
    cfg = NVMConfig(read_latency=100, write_latency=200, burst_cycles=50)
    nvm = NVMModel(cfg)
    nvm.write(0)
    read_done = nvm.read(0)
    # The read issues only after the write's burst slot.
    assert read_done == 50 + 100


def test_multi_channel_parallelism():
    """Two channels double back-to-back transfer throughput."""
    one = NVMModel(NVMConfig(read_latency=100, burst_cycles=10, channels=1))
    two = NVMModel(NVMConfig(read_latency=100, burst_cycles=10, channels=2))
    last_one = [one.read(0) for _ in range(8)][-1]
    last_two = [two.read(0) for _ in range(8)][-1]
    assert last_two < last_one
    # With 2 channels, pairs of reads complete together.
    assert two.read(1000) == two.read(1000)


def test_invalid_channel_count():
    import pytest

    with pytest.raises(ValueError):
        NVMModel(NVMConfig(channels=0))
