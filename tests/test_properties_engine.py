"""Property-based tests (hypothesis) for the timing-engine invariants.

Generated persist streams and event schedules check the properties the
skip-ahead rewrite must preserve:

* **Invariant 2** — persist completion order matches program order
  under strict persistency (SP / pipelined SP), and epochs drain in
  program order under epoch persistency;
* **2SP gathering** — a WPQ entry is always gathered (enqueued) before
  it is released, on the telemetry streams of either engine family;
* **monotone clock** — the discrete-event queue never runs time
  backwards, and a :class:`CompletionHeap` releases completions in
  non-decreasing order.

``hypothesis`` is an optional test dependency: without it this module
skips cleanly (``pip install plp-repro[dev]`` brings it in).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.schedulers import OccupancyRing, make_scoreboard
from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry
from repro.mem.wpq import gather_before_release_violations
from repro.sim.engine import CompletionHeap, Engine
from repro.system.config import SystemConfig
from repro.system.timing import TraceSimulator
from repro.telemetry.config import TelemetryConfig
from repro.workloads.trace import KIND_LOAD, KIND_SFENCE, KIND_STORE, MemoryTrace

GEOMETRY = BMTGeometry(num_leaves=512, arity=8)

leaf_streams = st.lists(st.integers(0, 511), min_size=1, max_size=32)
gap_streams = st.lists(st.integers(0, 500), min_size=1, max_size=32)
ENGINES = ["batched", "skip_ahead", "stepped"]


# ----------------------------------------------------------------------
# Invariant 2: completion order == program order (strict persistency)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheme", [UpdateScheme.SP, UpdateScheme.PIPELINE])
@given(leaves=leaf_streams, gaps=gap_streams)
@settings(max_examples=30, deadline=None)
def test_strict_completions_follow_program_order(scheme, engine, leaves, gaps):
    sb = make_scoreboard(scheme, GEOMETRY, engine=engine)
    arrival = 0
    completions = []
    for i, leaf in enumerate(leaves):
        arrival += gaps[i % len(gaps)]
        completions.append(sb.submit(i, leaf, arrival).completion)
    assert completions == sorted(completions), (
        "Invariant 2 violated: a younger persist completed before an older one"
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheme", [UpdateScheme.O3, UpdateScheme.COALESCING])
@given(leaves=leaf_streams, epoch_size=st.integers(1, 8), gap=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_epochs_drain_in_program_order(scheme, engine, leaves, epoch_size, gap):
    """Under EP, whole epochs complete in order even if persists inside
    one epoch complete out of order (the per-epoch drain frontier is
    non-decreasing, and no persist completes before the prior epoch)."""
    sb = make_scoreboard(scheme, GEOMETRY, engine=engine)
    frontiers = []
    arrival = 0
    for start in range(0, len(leaves), epoch_size):
        chunk = [
            (start + j, leaf)
            for j, leaf in enumerate(leaves[start : start + epoch_size])
        ]
        timings = sb.submit_epoch(chunk, arrival)
        if frontiers:
            prior = frontiers[-1]
            assert all(t.completion >= prior for t in timings), (
                "a persist completed before the previous epoch drained"
            )
        frontiers.append(max(t.completion for t in timings))
        arrival += gap
    assert frontiers == sorted(frontiers)


# ----------------------------------------------------------------------
# three-way engine equivalence on hazard-forcing traces
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "scheme",
    [UpdateScheme.SP, UpdateScheme.O3, UpdateScheme.COALESCING, UpdateScheme.SECURE_WB],
    ids=lambda s: s.value,
)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 2),  # 0: load, 1: store, 2: sfence
            st.integers(0, 1 << 14),  # block (small space -> reuse + coalescing)
            st.integers(0, 64),  # gap
            st.booleans(),  # persistent store?
        ),
        min_size=4,
        max_size=48,
    ),
    epoch_size=st.integers(2, 6),
    wpq_entries=st.integers(2, 8),
    warmup=st.sampled_from([0.0, 0.2, 0.5]),
)
@settings(max_examples=20, deadline=None)
def test_engines_bit_identical_on_hazard_traces(scheme, ops, epoch_size, wpq_entries, warmup):
    """batched == skip_ahead == stepped on traces built to split runs.

    The generated traces force the batched engine's independence-run
    partition to break at every hazard it special-cases: epoch
    boundaries (dense sfences + tiny ``epoch_size``), 2SP backpressure
    stalls (tiny ``wpq_entries``), coalescing delegation (blocks drawn
    from a small space, so adjacent leaves share truncated paths), and
    warmup-crossing snapshots (varied ``warmup_fraction``).
    """
    trace = MemoryTrace(name="hazard")
    for kind, block, gap, persistent in ops:
        if kind == 2:
            trace.append_op(KIND_SFENCE)
        else:
            trace.append_op(
                KIND_LOAD if kind == 0 else KIND_STORE,
                block << 6,
                gap=gap,
                persistent=int(persistent),
            )
    config = SystemConfig(
        scheme=scheme,
        epoch_size=epoch_size,
        wpq_entries=wpq_entries,
        telemetry=TelemetryConfig(enabled=True),
    )
    results = {}
    events = {}
    for engine in ENGINES:
        sim = TraceSimulator(config.variant(engine=engine))
        results[engine] = sim.run(trace, warmup_fraction=warmup)
        events[engine] = [
            (e.kind, e.time, e.duration, e.track, e.ident, e.args)
            for e in sim.telemetry.events()
        ]
    assert results["batched"] == results["skip_ahead"] == results["stepped"]
    assert events["batched"] == events["skip_ahead"] == events["stepped"]


# ----------------------------------------------------------------------
# 2SP: gather before release (on real telemetry streams)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "scheme", [UpdateScheme.SP, UpdateScheme.O3, UpdateScheme.SECURE_WB]
)
@given(ops=st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()), min_size=1, max_size=60), data=st.data())
@settings(max_examples=15, deadline=None)
def test_wpq_gather_before_release(scheme, engine, ops, data):
    trace = MemoryTrace(name="prop")
    for address, fence in ops:
        trace.append_op(KIND_STORE, address << 6, gap=1, persistent=1)
        if fence:
            trace.append_op(KIND_SFENCE)
    config = SystemConfig(
        scheme=scheme,
        engine=engine,
        epoch_size=data.draw(st.integers(2, 16)),
        telemetry=TelemetryConfig(enabled=True),
    )
    sim = TraceSimulator(config)
    sim.run(trace, warmup_fraction=0.0)
    assert gather_before_release_violations(sim.telemetry.events()) == []


# ----------------------------------------------------------------------
# monotone clocks
# ----------------------------------------------------------------------


@given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_event_queue_clock_is_monotone(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert engine.now == max(delays)


@given(
    delays=st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)), min_size=1, max_size=30)
)
@settings(max_examples=50, deadline=None)
def test_nested_scheduling_keeps_clock_monotone(delays):
    """Callbacks that schedule further events never move time backwards."""
    engine = Engine()
    fired = []

    def chain(extra):
        fired.append(engine.now)
        engine.schedule(extra, lambda: fired.append(engine.now))

    for first, extra in delays:
        engine.schedule(first, lambda extra=extra: chain(extra))
    engine.run()
    assert fired == sorted(fired)


@given(times=st.lists(st.integers(0, 10**9), min_size=1, max_size=100), data=st.data())
@settings(max_examples=50, deadline=None)
def test_completion_heap_releases_in_order(times, data):
    heap = CompletionHeap()
    for t in times:
        heap.push(t)
    assert heap.next_time() == min(times)
    popped = []
    while heap:
        popped.append(heap.pop())
    assert popped == sorted(times)
    # release_until drops exactly the entries at or before the cut.
    heap2 = CompletionHeap()
    for t in times:
        heap2.push(t)
    cut = data.draw(st.integers(0, 10**9))
    released = heap2.release_until(cut)
    assert released == sum(1 for t in times if t <= cut)
    assert len(heap2) == len(times) - released


@given(
    capacity=st.integers(1, 8),
    releases=st.lists(st.integers(0, 500), min_size=1, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_occupancy_ring_admits_monotonically(capacity, releases):
    """Admission times never decrease and occupancy never exceeds capacity."""
    ring = OccupancyRing(capacity)
    now = 0
    last_admit = 0
    for extra in releases:
        admit = ring.admit(now)
        assert admit >= now
        assert admit >= last_admit or admit >= now
        ring.occupy(admit + extra)
        assert ring.occupancy(admit) <= capacity
        last_admit = admit
        now = admit
