"""Property-based tests (hypothesis) for the timing-engine invariants.

Generated persist streams and event schedules check the properties the
skip-ahead rewrite must preserve:

* **Invariant 2** — persist completion order matches program order
  under strict persistency (SP / pipelined SP), and epochs drain in
  program order under epoch persistency;
* **2SP gathering** — a WPQ entry is always gathered (enqueued) before
  it is released, on the telemetry streams of either engine family;
* **monotone clock** — the discrete-event queue never runs time
  backwards, and a :class:`CompletionHeap` releases completions in
  non-decreasing order.

``hypothesis`` is an optional test dependency: without it this module
skips cleanly (``pip install plp-repro[dev]`` brings it in).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.schedulers import OccupancyRing, make_scoreboard
from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry
from repro.mem.wpq import gather_before_release_violations
from repro.sim.engine import CompletionHeap, Engine
from repro.system.config import SystemConfig
from repro.system.timing import TraceSimulator
from repro.telemetry.config import TelemetryConfig
from repro.workloads.trace import KIND_SFENCE, KIND_STORE, MemoryTrace

GEOMETRY = BMTGeometry(num_leaves=512, arity=8)

leaf_streams = st.lists(st.integers(0, 511), min_size=1, max_size=32)
gap_streams = st.lists(st.integers(0, 500), min_size=1, max_size=32)
ENGINES = ["skip_ahead", "stepped"]


# ----------------------------------------------------------------------
# Invariant 2: completion order == program order (strict persistency)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheme", [UpdateScheme.SP, UpdateScheme.PIPELINE])
@given(leaves=leaf_streams, gaps=gap_streams)
@settings(max_examples=30, deadline=None)
def test_strict_completions_follow_program_order(scheme, engine, leaves, gaps):
    sb = make_scoreboard(scheme, GEOMETRY, engine=engine)
    arrival = 0
    completions = []
    for i, leaf in enumerate(leaves):
        arrival += gaps[i % len(gaps)]
        completions.append(sb.submit(i, leaf, arrival).completion)
    assert completions == sorted(completions), (
        "Invariant 2 violated: a younger persist completed before an older one"
    )


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheme", [UpdateScheme.O3, UpdateScheme.COALESCING])
@given(leaves=leaf_streams, epoch_size=st.integers(1, 8), gap=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_epochs_drain_in_program_order(scheme, engine, leaves, epoch_size, gap):
    """Under EP, whole epochs complete in order even if persists inside
    one epoch complete out of order (the per-epoch drain frontier is
    non-decreasing, and no persist completes before the prior epoch)."""
    sb = make_scoreboard(scheme, GEOMETRY, engine=engine)
    frontiers = []
    arrival = 0
    for start in range(0, len(leaves), epoch_size):
        chunk = [
            (start + j, leaf)
            for j, leaf in enumerate(leaves[start : start + epoch_size])
        ]
        timings = sb.submit_epoch(chunk, arrival)
        if frontiers:
            prior = frontiers[-1]
            assert all(t.completion >= prior for t in timings), (
                "a persist completed before the previous epoch drained"
            )
        frontiers.append(max(t.completion for t in timings))
        arrival += gap
    assert frontiers == sorted(frontiers)


# ----------------------------------------------------------------------
# 2SP: gather before release (on real telemetry streams)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "scheme", [UpdateScheme.SP, UpdateScheme.O3, UpdateScheme.SECURE_WB]
)
@given(ops=st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()), min_size=1, max_size=60), data=st.data())
@settings(max_examples=15, deadline=None)
def test_wpq_gather_before_release(scheme, engine, ops, data):
    trace = MemoryTrace(name="prop")
    for address, fence in ops:
        trace.append_op(KIND_STORE, address << 6, gap=1, persistent=1)
        if fence:
            trace.append_op(KIND_SFENCE)
    config = SystemConfig(
        scheme=scheme,
        engine=engine,
        epoch_size=data.draw(st.integers(2, 16)),
        telemetry=TelemetryConfig(enabled=True),
    )
    sim = TraceSimulator(config)
    sim.run(trace, warmup_fraction=0.0)
    assert gather_before_release_violations(sim.telemetry.events()) == []


# ----------------------------------------------------------------------
# monotone clocks
# ----------------------------------------------------------------------


@given(delays=st.lists(st.integers(0, 1000), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_event_queue_clock_is_monotone(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert engine.now == max(delays)


@given(
    delays=st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)), min_size=1, max_size=30)
)
@settings(max_examples=50, deadline=None)
def test_nested_scheduling_keeps_clock_monotone(delays):
    """Callbacks that schedule further events never move time backwards."""
    engine = Engine()
    fired = []

    def chain(extra):
        fired.append(engine.now)
        engine.schedule(extra, lambda: fired.append(engine.now))

    for first, extra in delays:
        engine.schedule(first, lambda extra=extra: chain(extra))
    engine.run()
    assert fired == sorted(fired)


@given(times=st.lists(st.integers(0, 10**9), min_size=1, max_size=100), data=st.data())
@settings(max_examples=50, deadline=None)
def test_completion_heap_releases_in_order(times, data):
    heap = CompletionHeap()
    for t in times:
        heap.push(t)
    assert heap.next_time() == min(times)
    popped = []
    while heap:
        popped.append(heap.pop())
    assert popped == sorted(times)
    # release_until drops exactly the entries at or before the cut.
    heap2 = CompletionHeap()
    for t in times:
        heap2.push(t)
    cut = data.draw(st.integers(0, 10**9))
    released = heap2.release_until(cut)
    assert released == sum(1 for t in times if t <= cut)
    assert len(heap2) == len(times) - released


@given(
    capacity=st.integers(1, 8),
    releases=st.lists(st.integers(0, 500), min_size=1, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_occupancy_ring_admits_monotonically(capacity, releases):
    """Admission times never decrease and occupancy never exceeds capacity."""
    ring = OccupancyRing(capacity)
    now = 0
    last_admit = 0
    for extra in releases:
        admit = ring.admit(now)
        assert admit >= now
        assert admit >= last_admit or admit >= now
        ring.occupy(admit + extra)
        assert ring.occupancy(admit) <= capacity
        last_admit = admit
        now = admit
