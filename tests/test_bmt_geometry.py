"""Tests for BMT label arithmetic (paper §V-C)."""

import pytest

from repro.crypto.bmt import BMTGeometry


def test_paper_configuration_has_nine_levels(paper_geometry):
    assert paper_geometry.levels == 9
    assert len(paper_geometry.update_path(0)) == 9


def test_small_tree_shape(small_geometry):
    assert small_geometry.levels == 3
    assert small_geometry.nodes_at_level(0) == 1
    assert small_geometry.nodes_at_level(1) == 8
    assert small_geometry.nodes_at_level(2) == 64


def test_min_levels_pads_shallow_trees():
    g = BMTGeometry(num_leaves=8, arity=8, min_levels=5)
    assert g.levels == 5


def test_label_level_roundtrip(small_geometry):
    g = small_geometry
    for level in range(g.levels):
        for index in (0, g.nodes_at_level(level) - 1):
            label = g.label(level, index)
            assert g.level_of(label) == level
            assert g.index_of(label) == index


def test_root_label_is_zero(small_geometry):
    assert small_geometry.label(0, 0) == BMTGeometry.ROOT_LABEL


def test_parent_child_consistency(small_geometry):
    g = small_geometry
    for label in range(1, 73):
        parent = g.parent(label)
        assert label in g.children(parent)


def test_paper_labeling_formula(small_geometry):
    """parent(n) == (n - 1) // arity, the scheme from prior work [16]."""
    g = small_geometry
    for label in (1, 8, 9, 17, 72):
        assert g.parent(label) == (label - 1) // g.arity


def test_root_has_no_parent(small_geometry):
    with pytest.raises(ValueError):
        small_geometry.parent(0)


def test_leaf_nodes_have_no_children(small_geometry):
    g = small_geometry
    assert g.children(g.leaf_label(0)) == []


def test_leaf_label_roundtrip(small_geometry):
    g = small_geometry
    for leaf in (0, 7, 63):
        assert g.leaf_index(g.leaf_label(leaf)) == leaf


def test_leaf_bounds(small_geometry):
    with pytest.raises(IndexError):
        small_geometry.leaf_label(64)


def test_update_path_runs_leaf_to_root(small_geometry):
    g = small_geometry
    path = g.update_path(9)
    assert len(path) == 3
    assert g.level_of(path[0]) == g.depth
    assert path[-1] == 0
    for child, parent in zip(path, path[1:]):
        assert g.parent(child) == parent


def test_lca_siblings_is_parent(small_geometry):
    """Leaves 0 and 1 share a parent: LCA is that level-1 node."""
    g = small_geometry
    lca = g.lca_of_leaves(0, 1)
    assert g.level_of(lca) == 1
    assert lca == g.parent(g.leaf_label(0))


def test_lca_distant_leaves_is_root(small_geometry):
    g = small_geometry
    assert g.lca_of_leaves(0, 63) == 0


def test_lca_same_leaf_is_leaf(small_geometry):
    g = small_geometry
    assert g.lca_of_leaves(5, 5) == g.leaf_label(5)


def test_lca_symmetry(small_geometry):
    g = small_geometry
    for a, b in [(0, 1), (0, 8), (3, 60), (9, 10)]:
        assert g.lca_of_leaves(a, b) == g.lca_of_leaves(b, a)


def test_lca_matches_ancestor_intersection(small_geometry):
    """LCA is the deepest label on both update paths (Definition 2)."""
    g = small_geometry
    for a, b in [(0, 1), (0, 9), (5, 62), (17, 18)]:
        path_a = set(g.update_path(a))
        path_b = set(g.update_path(b))
        common = path_a & path_b
        lca = g.lca_of_leaves(a, b)
        assert lca in common
        # Deepest common ancestor: no common node lies strictly below.
        assert all(g.level_of(n) <= g.level_of(lca) for n in common)


def test_path_through_stops_below_label(small_geometry):
    g = small_geometry
    lca = g.lca_of_leaves(0, 1)
    prefix = g.path_through(0, lca)
    assert prefix == [g.leaf_label(0)]
    assert lca not in prefix


def test_path_through_rejects_off_path_label(small_geometry):
    g = small_geometry
    with pytest.raises(ValueError):
        g.path_through(0, g.leaf_label(63))


def test_ancestors(small_geometry):
    g = small_geometry
    leaf = g.leaf_label(10)
    ancestors = g.ancestors(leaf)
    assert ancestors == g.update_path(10)[1:]


def test_invalid_construction():
    with pytest.raises(ValueError):
        BMTGeometry(num_leaves=0)
    with pytest.raises(ValueError):
        BMTGeometry(num_leaves=8, arity=1)
    with pytest.raises(ValueError):
        BMTGeometry(num_leaves=8, min_levels=0)


def test_level_of_out_of_range(small_geometry):
    with pytest.raises(IndexError):
        small_geometry.level_of(73)
    with pytest.raises(IndexError):
        small_geometry.level_of(-1)
