"""Tests for the write pending queue and 2SP semantics."""

import pytest

from repro.mem.wpq import (
    REQUIRED_ITEMS,
    TupleItem,
    WPQFullError,
    WritePendingQueue,
)


def full_delivery(wpq, pid, epoch=None, locked=True):
    wpq.allocate(pid, epoch_id=epoch, locked=locked)
    wpq.deliver(pid, TupleItem.DATA)
    wpq.deliver(pid, TupleItem.COUNTER)
    wpq.deliver(pid, TupleItem.MAC)
    wpq.ack_root(pid)


def test_allocate_and_capacity():
    wpq = WritePendingQueue(capacity=2)
    wpq.allocate(0)
    wpq.allocate(1)
    assert wpq.full
    with pytest.raises(WPQFullError):
        wpq.allocate(2)


def test_duplicate_allocation_rejected():
    wpq = WritePendingQueue()
    wpq.allocate(0)
    with pytest.raises(ValueError):
        wpq.allocate(0)


def test_completion_requires_all_four_items():
    wpq = WritePendingQueue()
    wpq.allocate(0)
    for item in (TupleItem.DATA, TupleItem.COUNTER, TupleItem.MAC):
        wpq.deliver(0, item)
        assert not wpq.entry(0).complete
    wpq.ack_root(0)
    assert wpq.entry(0).complete
    assert wpq.persists_completed == 1


def test_missing_reports_outstanding_items():
    wpq = WritePendingQueue()
    wpq.allocate(0)
    wpq.deliver(0, TupleItem.DATA)
    assert wpq.entry(0).missing() == REQUIRED_ITEMS - {TupleItem.DATA}


def test_drain_releases_fifo_completed_prefix():
    wpq = WritePendingQueue()
    full_delivery(wpq, 0)
    wpq.allocate(1)  # incomplete
    full_delivery(wpq, 2)
    released = wpq.drain_completed()
    assert [e.persist_id for e in released] == [0]
    assert len(wpq) == 2  # 1 blocks 2 (FIFO)


def test_locked_entries_do_not_drain_items_early():
    wpq = WritePendingQueue()
    wpq.allocate(0, locked=True)
    wpq.deliver(0, TupleItem.DATA)
    assert wpq.entry(0).drained == set()


def test_unlocked_entries_drain_items_as_they_arrive():
    wpq = WritePendingQueue()
    wpq.allocate(0, epoch_id=0, locked=False)
    wpq.deliver(0, TupleItem.DATA)
    assert TupleItem.DATA in wpq.entry(0).drained


def test_epoch_completion_tracking():
    wpq = WritePendingQueue()
    full_delivery(wpq, 0, epoch=0, locked=False)
    wpq.allocate(1, epoch_id=0, locked=False)
    assert not wpq.epoch_complete(0)
    wpq.deliver(1, TupleItem.DATA)
    wpq.deliver(1, TupleItem.COUNTER)
    wpq.deliver(1, TupleItem.MAC)
    wpq.ack_root(1)
    assert wpq.epoch_complete(0)


def test_epoch_complete_rejects_unknown_epoch():
    """Regression: a never-allocated epoch id used to read as complete."""
    wpq = WritePendingQueue()
    full_delivery(wpq, 0, epoch=0, locked=False)
    with pytest.raises(KeyError):
        wpq.epoch_complete(7)
    assert wpq.epoch_known(0)
    assert not wpq.epoch_known(7)


def test_epoch_complete_on_empty_wpq_rejects_any_epoch():
    wpq = WritePendingQueue()
    with pytest.raises(KeyError):
        wpq.epoch_complete(0)


def test_epoch_stays_known_after_drain():
    """A fully drained epoch is complete — distinct from never existing."""
    wpq = WritePendingQueue()
    full_delivery(wpq, 0, epoch=0, locked=False)
    wpq.drain_completed()
    assert len(wpq) == 0
    assert wpq.epoch_complete(0)


def test_unlock_epoch_drains_gathered_items():
    wpq = WritePendingQueue()
    wpq.allocate(0, epoch_id=1, locked=True)
    wpq.deliver(0, TupleItem.DATA)
    wpq.unlock_epoch(1)
    entry = wpq.entry(0)
    assert not entry.locked
    assert TupleItem.DATA in entry.drained


def test_crash_invalidates_incomplete_locked_entries():
    """The heart of 2SP: partial tuples never reach NVM."""
    wpq = WritePendingQueue()
    full_delivery(wpq, 0)
    wpq.allocate(1)
    wpq.deliver(1, TupleItem.DATA)
    wpq.deliver(1, TupleItem.COUNTER)  # no MAC, no root ack
    persisted, invalidated = wpq.crash_flush()
    assert [e.persist_id for e in persisted] == [0]
    assert [e.persist_id for e in invalidated] == [1]
    assert len(wpq) == 0


def test_crash_preserves_unlocked_drained_items():
    """EP: same-epoch items that already drained are durable."""
    wpq = WritePendingQueue()
    wpq.allocate(0, epoch_id=0, locked=False)
    wpq.deliver(0, TupleItem.DATA)
    persisted, invalidated = wpq.crash_flush()
    assert [e.persist_id for e in persisted] == [0]
    assert persisted[0].drained == {TupleItem.DATA}
    assert invalidated == []


def test_crash_invalidates_unlocked_entry_with_nothing_drained():
    """An unlocked entry that gathered only the root ack (or nothing)
    has no durable components: it is invalidated, not persisted."""
    wpq = WritePendingQueue()
    wpq.allocate(0, epoch_id=0, locked=False)
    wpq.ack_root(0)  # root ack never drains to NVM
    wpq.allocate(1, epoch_id=0, locked=False)  # nothing delivered at all
    persisted, invalidated = wpq.crash_flush()
    assert persisted == []
    assert sorted(e.persist_id for e in invalidated) == [0, 1]
    assert all(not e.drained for e in invalidated)
    # The arrived set survives the flush for post-mortem inspection.
    assert TupleItem.ROOT_ACK in invalidated[0].arrived


def test_payloads_travel_with_items():
    wpq = WritePendingQueue()
    wpq.allocate(0)
    wpq.deliver(0, TupleItem.DATA, payload=b"cipher")
    assert wpq.entry(0).payloads[TupleItem.DATA] == b"cipher"


def test_unknown_persist_raises():
    wpq = WritePendingQueue()
    with pytest.raises(KeyError):
        wpq.deliver(0, TupleItem.DATA)


def test_invalid_capacity():
    with pytest.raises(ValueError):
        WritePendingQueue(capacity=0)
