"""Cross-validation: scoreboard models against the cycle-accurate engine.

The scoreboards are fast recurrences with the same scheduling rules as
the PTT/ETT cycle engine.  For the strictly-ordered schemes the two must
agree cycle-for-cycle; for the OOO schemes (where the scoreboard's issue
port and epoch gating are mild approximations) the completion times must
agree within a small tolerance and node-update counts exactly.
"""

import random

import pytest

from repro.core.schedulers import make_scoreboard
from repro.core.schemes import UpdateScheme
from repro.core.update_engine import CycleAccurateEngine, EngineConfig
from repro.crypto.bmt import BMTGeometry


def run_engine(scheme, leaves, epochs=None, mac=40):
    geometry = BMTGeometry(num_leaves=512, arity=8)  # 4 levels
    engine = CycleAccurateEngine(
        geometry, EngineConfig(scheme=scheme, mac_latency=mac, ptt_capacity=256)
    )
    for i, leaf in enumerate(leaves):
        epoch = epochs[i] if epochs else 0
        # A full ETT stalls the core at the barrier: tick until a slot
        # frees (exactly what the hardware does).
        while not engine.submit(i, leaf, epoch_id=epoch):
            engine.tick()
    engine.run_until_drained()
    return engine


ENGINES = ["skip_ahead", "stepped"]


def run_scoreboard(scheme, leaves, epochs=None, mac=40, engine="skip_ahead"):
    geometry = BMTGeometry(num_leaves=512, arity=8)
    sb = make_scoreboard(scheme, geometry, mac_latency=mac, engine=engine)
    if scheme.uses_epochs:
        completions = {}
        by_epoch = {}
        for i, leaf in enumerate(leaves):
            by_epoch.setdefault(epochs[i], []).append((i, leaf))
        for epoch in sorted(by_epoch):
            for timing in sb.submit_epoch(by_epoch[epoch], arrival=0):
                completions[timing.persist_id] = timing.completion
        return completions, sb
    completions = {
        i: sb.submit(i, leaf, arrival=0).completion for i, leaf in enumerate(leaves)
    }
    return completions, sb


@pytest.mark.parametrize("engine_kind", ENGINES)
@pytest.mark.parametrize("scheme", [UpdateScheme.SP, UpdateScheme.PIPELINE])
def test_strict_schemes_agree_exactly(scheme, engine_kind):
    rng = random.Random(42)
    leaves = [rng.randrange(512) for _ in range(24)]
    engine = run_engine(scheme, leaves)
    completions, sb = run_scoreboard(scheme, leaves, engine=engine_kind)
    assert engine.completions == completions
    assert engine.node_update_count == sb.node_update_count


@pytest.mark.parametrize("engine_kind", ENGINES)
@pytest.mark.parametrize("scheme", [UpdateScheme.O3, UpdateScheme.COALESCING])
def test_epoch_schemes_agree_within_tolerance(scheme, engine_kind):
    rng = random.Random(43)
    leaves = [rng.randrange(512) for _ in range(24)]
    epochs = [i // 8 for i in range(24)]
    engine = run_engine(scheme, leaves, epochs)
    completions, sb = run_scoreboard(scheme, leaves, epochs, engine=engine_kind)
    assert engine.node_update_count == sb.node_update_count
    assert set(engine.completions) == set(completions)
    for pid in completions:
        delta = abs(engine.completions[pid] - completions[pid])
        # Tolerance: one MAC latency of modelling slack per epoch level.
        assert delta <= 80, f"persist {pid}: engine {engine.completions[pid]} vs sb {completions[pid]}"


def test_sequential_agreement_with_gaps():
    """Arrival gaps (idle engine) must not desynchronize the models."""
    geometry = BMTGeometry(num_leaves=512, arity=8)
    engine = CycleAccurateEngine(
        geometry, EngineConfig(scheme=UpdateScheme.SP, mac_latency=40)
    )
    sb = make_scoreboard(UpdateScheme.SP, geometry, mac_latency=40)
    engine.submit(0, 5)
    engine.run_until_drained()
    sb_t0 = sb.submit(0, 5, arrival=0).completion
    assert engine.completions[0] == sb_t0
    # Second persist arrives long after the first finished.
    engine.tick(1000 - engine.now)
    engine.submit(1, 9)
    engine.run_until_drained()
    sb_t1 = sb.submit(1, 9, arrival=1000).completion
    assert engine.completions[1] == sb_t1


@pytest.mark.parametrize(
    "scheme",
    [
        UpdateScheme.SP,
        UpdateScheme.PIPELINE,
        UpdateScheme.UNORDERED,
        UpdateScheme.O3,
        UpdateScheme.COALESCING,
    ],
)
def test_skip_idle_fast_forward_is_invisible(scheme):
    """run_until_drained(skip_idle=True) must not change any outcome.

    The fast-forward only jumps over ticks in which nothing progressed,
    so completions, node-update counts, and the final drain cycle must
    all match the plain per-cycle run exactly.
    """
    rng = random.Random(44)
    leaves = [rng.randrange(512) for _ in range(24)]
    epochs = [i // 8 for i in range(24)] if scheme.uses_epochs else None
    geometry = BMTGeometry(num_leaves=512, arity=8)

    def build():
        engine = CycleAccurateEngine(
            geometry, EngineConfig(scheme=scheme, mac_latency=40, ptt_capacity=256)
        )
        for i, leaf in enumerate(leaves):
            while not engine.submit(i, leaf, epoch_id=epochs[i] if epochs else 0):
                engine.tick()
        return engine

    plain = build()
    plain.run_until_drained()
    fast = build()
    fast.run_until_drained(skip_idle=True)
    assert fast.completions == plain.completions
    assert fast.node_update_count == plain.node_update_count
    assert fast.bmt_cache_misses == plain.bmt_cache_misses
    assert fast.now == plain.now


def test_pipeline_agreement_with_staggered_arrivals():
    geometry = BMTGeometry(num_leaves=512, arity=8)
    engine = CycleAccurateEngine(
        geometry, EngineConfig(scheme=UpdateScheme.PIPELINE, mac_latency=40)
    )
    sb = make_scoreboard(UpdateScheme.PIPELINE, geometry, mac_latency=40)
    arrivals = [0, 15, 90, 91, 300]
    leaves = [3, 100, 3, 200, 511]
    expected = {}
    for i, (arrival, leaf) in enumerate(zip(arrivals, leaves)):
        expected[i] = sb.submit(i, leaf, arrival=arrival).completion
    for i, (arrival, leaf) in enumerate(zip(arrivals, leaves)):
        engine.tick(max(0, arrival - engine.now))
        engine.submit(i, leaf)
    engine.run_until_drained()
    assert engine.completions == expected
