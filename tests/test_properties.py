"""Property-based tests (hypothesis) for core invariants.

These check the algebraic properties the paper's correctness argument
rests on: BMT root determinism and order-independence, LCA algebra,
counter serialization, encryption round-trips, coalescing conservation,
and persist-order invariants of the update engines.
"""

from hypothesis import given, settings, strategies as st

from repro.core.coalescing import CoalescingUnit
from repro.core.invariants import check_root_order
from repro.core.schedulers import make_scoreboard
from repro.core.schemes import UpdateScheme
from repro.core.update_engine import CycleAccurateEngine, EngineConfig
from repro.crypto.bmt import BMTGeometry, BonsaiMerkleTree
from repro.crypto.counters import MINOR_COUNTER_MAX, SplitCounter
from repro.crypto.encryption import CounterModeEncryptor
from repro.crypto.keys import KeySchedule
from repro.crypto.mac import StatefulMAC
from repro.persistency.models import PersistencyModel

KEYS = KeySchedule(b"property-test-key")
GEOMETRY = BMTGeometry(num_leaves=64, arity=8)

leaf_indices = st.integers(min_value=0, max_value=63)
blocks64 = st.binary(min_size=64, max_size=64)


# ----------------------------------------------------------------------
# crypto round-trips
# ----------------------------------------------------------------------


@given(plaintext=blocks64, address=st.integers(0, 2**40), seed=st.binary(max_size=16))
def test_encryption_roundtrip(plaintext, address, seed):
    enc = CounterModeEncryptor(KEYS)
    assert enc.decrypt(enc.encrypt(plaintext, address, seed), address, seed) == plaintext


@given(
    plaintext=blocks64,
    address=st.integers(0, 2**40),
    seed_a=st.binary(max_size=8),
    seed_b=st.binary(max_size=8),
)
def test_mac_distinguishes_seeds(plaintext, address, seed_a, seed_b):
    mac = StatefulMAC(KEYS)
    tag_a = mac.compute(plaintext, address, seed_a)
    tag_b = mac.compute(plaintext, address, seed_b)
    assert (tag_a == tag_b) == (seed_a == seed_b)


# ----------------------------------------------------------------------
# counter serialization
# ----------------------------------------------------------------------


@given(
    major=st.integers(0, 2**64 - 1),
    minors=st.lists(
        st.integers(0, MINOR_COUNTER_MAX), min_size=64, max_size=64
    ),
)
def test_split_counter_roundtrip(major, minors):
    ctr = SplitCounter()
    ctr.major = major
    ctr.minors = list(minors)
    assert SplitCounter.from_bytes(ctr.to_bytes()) == ctr


@given(ops=st.lists(st.integers(0, 63), max_size=300))
def test_counter_monotonicity(ops):
    """A block's effective counter (major, minor) never repeats across
    increments — the pad-uniqueness requirement of counter mode."""
    ctr = SplitCounter()
    seen = {(0, tuple([0] * 64))}
    for block in ops:
        ctr.increment(block)
        state = (ctr.major, tuple(ctr.minors))
        assert state not in seen
        seen.add(state)


# ----------------------------------------------------------------------
# BMT algebra
# ----------------------------------------------------------------------


@given(updates=st.lists(st.tuples(leaf_indices, blocks64), max_size=20))
def test_bmt_root_depends_only_on_final_state(updates):
    """The root is a pure function of the final counter-block contents,
    independent of the update order/history — the property that makes
    OOO and coalesced updates safe (§IV-B)."""
    tree = BonsaiMerkleTree(GEOMETRY, KEYS)
    final = {}
    for leaf, block in updates:
        tree.update_leaf(leaf, block)
        final[leaf] = block
    fresh = BonsaiMerkleTree(GEOMETRY, KEYS)
    for leaf in sorted(final):
        fresh.update_leaf(leaf, final[leaf])
    assert tree.root == fresh.root


@given(updates=st.lists(st.tuples(leaf_indices, blocks64), max_size=16))
def test_bmt_rebuild_equals_incremental(updates):
    tree = BonsaiMerkleTree(GEOMETRY, KEYS)
    final = {}
    for leaf, block in updates:
        tree.update_leaf(leaf, block)
        final[leaf] = block
    rebuilt = BonsaiMerkleTree(GEOMETRY, KEYS)
    assert rebuilt.rebuild_from_counters(final) == tree.root


@given(updates=st.lists(st.tuples(leaf_indices, blocks64), min_size=1, max_size=16))
def test_bmt_verify_accepts_own_state(updates):
    tree = BonsaiMerkleTree(GEOMETRY, KEYS)
    final = {}
    for leaf, block in updates:
        tree.update_leaf(leaf, block)
        final[leaf] = block
    for leaf, block in final.items():
        assert tree.verify_leaf(leaf, block)


@given(a=leaf_indices, b=leaf_indices, c=leaf_indices)
def test_lca_properties(a, b, c):
    g = GEOMETRY
    lab = g.lca_of_leaves(a, b)
    # Symmetry.
    assert lab == g.lca_of_leaves(b, a)
    # The LCA is an ancestor (or the leaf itself) of both.
    for leaf in (a, b):
        assert lab in g.update_path(leaf)
    # Idempotence: lca with itself is the leaf.
    assert g.lca_of_leaves(a, a) == g.leaf_label(a)
    # The pairwise LCA of three leaves: the shallowest pairwise LCA
    # is an ancestor of all three.
    lall = min(
        (g.lca_of_leaves(a, b), g.lca_of_leaves(b, c), g.lca_of_leaves(a, c)),
        key=g.level_of,
    )
    for leaf in (a, b, c):
        assert lall in g.update_path(leaf)


# ----------------------------------------------------------------------
# coalescing conservation
# ----------------------------------------------------------------------


@given(leaves=st.lists(leaf_indices, min_size=1, max_size=24))
def test_coalescing_covers_exactly_needed_nodes(leaves):
    """Coalescing never loses a node update and never duplicates the
    suffix it removed."""
    unit = CoalescingUnit(GEOMETRY)
    persists = unit.coalesce_epoch(list(enumerate(leaves)))
    covered = [label for p in persists for label in p.path]
    needed = set()
    for leaf in leaves:
        needed.update(GEOMETRY.update_path(leaf))
    assert set(covered) == needed
    # Savings are real: total updates never exceed the uncoalesced count.
    assert len(covered) <= len(leaves) * GEOMETRY.levels
    # Delegation chains terminate at a persist that updates the root.
    for p in persists:
        final = CoalescingUnit.resolve_delegate(persists, p.persist_id)
        final_persist = next(x for x in persists if x.persist_id == final)
        assert GEOMETRY.ROOT_LABEL in final_persist.path


# ----------------------------------------------------------------------
# engine ordering invariants
# ----------------------------------------------------------------------


@settings(deadline=None, max_examples=25)
@given(leaves=st.lists(leaf_indices, min_size=1, max_size=12))
def test_strict_engines_never_violate_invariant2(leaves):
    for scheme in (UpdateScheme.SP, UpdateScheme.PIPELINE):
        engine = CycleAccurateEngine(
            GEOMETRY, EngineConfig(scheme=scheme, mac_latency=7)
        )
        for i, leaf in enumerate(leaves):
            while not engine.submit(i, leaf):
                engine.tick()
        engine.run_until_drained()
        assert not check_root_order(engine.events, PersistencyModel.STRICT)


@settings(deadline=None, max_examples=25)
@given(
    leaves=st.lists(leaf_indices, min_size=1, max_size=12),
    epoch_size=st.integers(1, 6),
)
def test_epoch_engines_never_violate_invariant2(leaves, epoch_size):
    for scheme in (UpdateScheme.O3, UpdateScheme.COALESCING):
        engine = CycleAccurateEngine(
            GEOMETRY, EngineConfig(scheme=scheme, mac_latency=7)
        )
        for i, leaf in enumerate(leaves):
            while not engine.submit(i, leaf, epoch_id=i // epoch_size):
                engine.tick()
        engine.run_until_drained()
        assert not check_root_order(engine.events, PersistencyModel.EPOCH)
        assert len(engine.completions) == len(leaves)


@settings(deadline=None, max_examples=25)
@given(leaves=st.lists(leaf_indices, min_size=1, max_size=20))
def test_scoreboard_strict_completions_monotonic(leaves):
    for scheme in (UpdateScheme.SP, UpdateScheme.PIPELINE):
        sb = make_scoreboard(scheme, GEOMETRY, mac_latency=7)
        times = [sb.submit(i, leaf, arrival=i).completion for i, leaf in enumerate(leaves)]
        assert times == sorted(times)
