"""Tests for the post-crash recovery-time model."""

import pytest

from repro.core.schemes import UpdateScheme
from repro.crypto.bmt import BMTGeometry
from repro.recovery.rebuild import RecoveryEstimate, RecoveryTimeModel
from repro.system.config import SystemConfig


@pytest.fixture
def model(small_geometry):
    return RecoveryTimeModel(small_geometry, mac_latency=10, nvm_read_cycles=100)


def test_full_rebuild_counts_every_node(model, small_geometry):
    # 3 levels: 1 + 8 + 64 nodes.
    assert model.full_rebuild_nodes() == 73


def test_touched_rebuild_counts_distinct_path_nodes(model, small_geometry):
    # One page: its whole path.
    assert model.touched_rebuild_nodes([0]) == small_geometry.levels
    # Two sibling pages share all ancestors: 2 leaves + 2 shared.
    assert model.touched_rebuild_nodes([0, 1]) == 4
    # Distant pages share only the root.
    assert model.touched_rebuild_nodes([0, 63]) == 5


def test_touched_never_exceeds_full(model):
    assert model.touched_rebuild_nodes(range(64)) == model.full_rebuild_nodes()


def test_estimate_full(model, small_geometry):
    estimate = model.estimate("full")
    assert estimate.counter_blocks_read == small_geometry.num_leaves
    assert estimate.nodes_recomputed == 73
    assert estimate.total_cycles > 0


def test_estimate_touched_scales_with_footprint(model):
    small = model.estimate("touched", range(2))
    large = model.estimate("touched", range(32))
    assert small.total_cycles < large.total_cycles
    assert large.total_cycles <= model.estimate("full").total_cycles


def test_touched_requires_pages(model):
    with pytest.raises(ValueError):
        model.estimate("touched")


def test_invalid_strategy(model):
    with pytest.raises(ValueError):
        model.estimate("magic")


def test_invalid_hash_units(small_geometry):
    with pytest.raises(ValueError):
        RecoveryTimeModel(small_geometry, hash_units=0)


def test_hash_units_parallelize(small_geometry):
    serial = RecoveryTimeModel(small_geometry, hash_units=1).estimate("full")
    parallel = RecoveryTimeModel(small_geometry, hash_units=8).estimate("full")
    assert parallel.hash_cycles < serial.hash_cycles


def test_speedup_touched_vs_full_is_large_for_sparse(paper_geometry):
    model = RecoveryTimeModel(paper_geometry)
    assert model.speedup_touched_vs_full(range(100)) > 100


def test_total_seconds(model):
    estimate = model.estimate("full")
    assert estimate.total_seconds(clock_ghz=4.0) == pytest.approx(
        estimate.total_cycles / 4e9
    )


def test_paper_scale_full_rebuild_is_tens_of_ms(paper_geometry):
    """An 8 GB memory's full rebuild lands in the tens of milliseconds —
    the magnitude that motivated Anubis/Triad-NVM recovery work."""
    model = RecoveryTimeModel(paper_geometry)
    estimate = model.estimate("full")
    assert 0.005 < estimate.total_seconds() < 0.5


# ----------------------------------------------------------------------
# page -> leaf mapping (the touched-page index-space bugfix)
# ----------------------------------------------------------------------


def test_monolithic_pages_fan_out_to_eight_leaves(small_geometry):
    """Regression: touched pages are 4 KB regions, not leaf labels.

    Under the monolithic counter organization one page covers 8
    counter-block leaves, so 2 touched pages must cost 16 reads — the
    old model read `len(pages)` and walked `update_path(page)` in the
    wrong index space, undercounting 8x.
    """
    model = RecoveryTimeModel(
        small_geometry, mac_latency=10, nvm_read_cycles=100, leaves_per_page=8
    )
    estimate = model.estimate("touched", [0, 1])
    assert estimate.counter_blocks_read == 16
    assert model.touched_leaves([0, 1]) == set(range(16))
    # 16 leaves under 2 distinct middle nodes plus the root.
    assert estimate.nodes_recomputed == 16 + 2 + 1


def test_split_pages_map_one_to_one(small_geometry):
    model = RecoveryTimeModel(
        small_geometry, mac_latency=10, nvm_read_cycles=100, leaves_per_page=1
    )
    estimate = model.estimate("touched", [0, 1])
    assert estimate.counter_blocks_read == 2
    assert estimate.nodes_recomputed == 4


def test_touched_leaves_clamp_to_tree(small_geometry):
    model = RecoveryTimeModel(small_geometry, leaves_per_page=8)
    # Page 7 covers leaves 56..63; page 8 would start past the tree.
    assert model.touched_leaves([7]) == set(range(56, 64))
    assert model.touched_leaves([8]) == set()


def test_invalid_leaves_per_page(small_geometry):
    with pytest.raises(ValueError):
        RecoveryTimeModel(small_geometry, leaves_per_page=0)


def test_from_config_split_vs_monolithic():
    split = RecoveryTimeModel.from_config(SystemConfig())
    mono = RecoveryTimeModel.from_config(
        SystemConfig(counter_organization="monolithic")
    )
    assert split.leaves_per_page == 1
    assert mono.leaves_per_page == 8
    pages = range(2)
    assert (
        mono.estimate("touched", pages).counter_blocks_read
        == 8 * split.estimate("touched", pages).counter_blocks_read
    )


def test_from_config_picks_up_latencies():
    config = SystemConfig()
    model = RecoveryTimeModel.from_config(config)
    assert model.mac_latency == config.mac_latency
    assert model.nvm_read_cycles == config.nvm.read_latency
    assert model.geometry is config.geometry()


# ----------------------------------------------------------------------
# golden values and edge cases
# ----------------------------------------------------------------------


def test_estimate_full_golden_values(model):
    """Pin the full-rebuild arithmetic on the 64-leaf tree."""
    estimate = model.estimate("full")
    # reads = 64 leaves; read_cycles = 100 + 64 * 8 = 612.
    assert estimate.read_cycles == 612
    # hash_cycles = ceil(73 / 4 units) * 10 = 190.
    assert estimate.hash_cycles == 190
    # total = max + min // 8 = 612 + 23.
    assert estimate.total_cycles == 635


def test_estimate_touched_golden_values(model):
    estimate = model.estimate("touched", [0, 63])
    # 2 leaves read: 100 + 2 * 8 = 116; 5 nodes: ceil(5/4) * 10 = 20.
    assert estimate.counter_blocks_read == 2
    assert estimate.nodes_recomputed == 5
    assert estimate.read_cycles == 116
    assert estimate.hash_cycles == 20
    assert estimate.total_cycles == 116 + 20 // 8


def test_speedup_empty_touched_set(model):
    """No touched pages: only the fixed read latency remains, so the
    speedup is finite and equals full/fixed — never a ZeroDivisionError."""
    speedup = model.speedup_touched_vs_full([])
    full = model.estimate("full").total_cycles
    empty = model.estimate("touched", []).total_cycles
    assert empty > 0
    assert speedup == pytest.approx(full / empty)


def test_speedup_full_footprint_is_one(model):
    assert model.speedup_touched_vs_full(range(64)) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# scheme-aware estimates (the zoo's recovery axis)
# ----------------------------------------------------------------------


def test_scheme_estimates_order_as_designed(small_geometry):
    """The designs order exactly as their papers claim: whole-tree
    rebuilders slowest, Triad-NVM bounded, Anubis cache-bounded,
    Phoenix/SGX near-instant."""
    model = RecoveryTimeModel(small_geometry, mac_latency=10, nvm_read_cycles=100)
    full = model.estimate_for_scheme(UpdateScheme.SP)
    triad = model.estimate_for_scheme(UpdateScheme.TRIAD_NVM)
    anubis = model.estimate_for_scheme(UpdateScheme.ANUBIS, shadow_entries=16)
    phoenix = model.estimate_for_scheme(UpdateScheme.PHOENIX)
    sgx = model.estimate_for_scheme(UpdateScheme.SGX_SP)
    assert full.total_cycles > triad.total_cycles
    assert anubis.total_cycles < full.total_cycles
    assert phoenix.total_cycles < triad.total_cycles
    assert sgx.nodes_recomputed == 1


def test_triad_frontier_shrinks_with_more_persisted_levels(small_geometry):
    model = RecoveryTimeModel(small_geometry)
    one = model.estimate_for_scheme(UpdateScheme.TRIAD_NVM, triad_persist_levels=1)
    two = model.estimate_for_scheme(UpdateScheme.TRIAD_NVM, triad_persist_levels=2)
    assert two.nodes_recomputed < one.nodes_recomputed
    # Persisting every level leaves only the root check.
    everything = model.estimate_for_scheme(
        UpdateScheme.TRIAD_NVM, triad_persist_levels=small_geometry.levels
    )
    assert everything.nodes_recomputed == 1


def test_whole_tree_schemes_use_touched_map_when_available(small_geometry):
    model = RecoveryTimeModel(small_geometry)
    touched = model.estimate_for_scheme(UpdateScheme.SP, touched_pages=[0])
    assert touched.strategy == "touched"
    assert touched.total_cycles < model.estimate_for_scheme(UpdateScheme.SP).total_cycles


def test_scheme_estimates_validate_parameters(small_geometry):
    model = RecoveryTimeModel(small_geometry)
    with pytest.raises(ValueError):
        model.estimate_for_scheme(UpdateScheme.TRIAD_NVM, triad_persist_levels=0)
    with pytest.raises(ValueError):
        model.estimate_for_scheme(UpdateScheme.ANUBIS, shadow_entries=0)


# ----------------------------------------------------------------------
# measured recovery: the replay vs the analytic estimate
# ----------------------------------------------------------------------

# How far each scheme's analytic estimate may sit from a measured
# replay of the same recovery on the functional memory image:
#
# * ``touched`` (PLP schemes with a touched-page map) and ``phoenix``
#   are exact — the model counts precisely the distinct path labels /
#   the one verified root path the replay computes.
# * ``sgx_sp`` differs by exactly one node: the analytic estimate
#   charges the root *comparison* as a hash, the replay recomputes
#   nothing.
# * ``triad_nvm`` and ``anubis`` are dense upper bounds: the analytic
#   model assumes a full frontier level / a full shadow table, while
#   the measured replay touches only the sparse durable image, so
#   measured <= analytic always, with equality at full footprint.
MEASURED_TOLERANCE = {
    "touched": 0,
    "lazy_path": 0,
    "root_check": 1,
    "triad_frontier": None,  # upper bound only
    "shadow_replay": None,  # upper bound only
}


@pytest.fixture(scope="module")
def drained_app_memory():
    """A functional memory after a cleanly drained KV-store run."""
    from repro.app.kvstore import lower, replay_app
    from repro.app.workloads import resolve_workload
    from repro.campaign.grid import build_memory, semantics_for

    mem = build_memory(semantics_for("sp"))
    replay_app(mem, lower("undolog", resolve_workload("basic")))
    mem.drain()
    return mem


def test_measured_recovery_golden_values(drained_app_memory):
    """Pin the measured counts of the basic/undolog image.

    The workload touches pages 0 (KV table), 8 (log head), and 9 (log
    records): 3 counter blocks, 3 leaf hashes + 2 distinct parents +
    the root = 6 nodes.
    """
    from repro.recovery.rebuild import measure_recovery

    mem = drained_app_memory
    assert sorted(mem.nvm.counters) == [0, 8, 9]
    measured = measure_recovery(mem)
    assert measured.root_ok
    assert measured.strategy == "touched"
    assert measured.counter_blocks_read == 3
    assert measured.nodes_recomputed == 6


def test_measured_matches_touched_estimate_exactly(drained_app_memory):
    """The analytic touched estimate predicts the replay to the node."""
    from repro.recovery.rebuild import RecoveryTimeModel, measure_recovery

    mem = drained_app_memory
    model = RecoveryTimeModel(mem.geometry)
    measured = measure_recovery(mem, model=model)
    analytic = model.estimate("touched", sorted(mem.nvm.counters))
    assert measured.counter_blocks_read == analytic.counter_blocks_read
    assert measured.nodes_recomputed == analytic.nodes_recomputed
    assert measured.estimate.total_cycles == analytic.total_cycles


def test_measured_per_scheme_within_documented_tolerance(drained_app_memory):
    """Every scheme's measured replay sits within MEASURED_TOLERANCE
    of the analytic estimate — the depth PR 8 left open."""
    from repro.recovery.rebuild import RecoveryTimeModel, measure_recovery

    mem = drained_app_memory
    model = RecoveryTimeModel(mem.geometry)
    touched = sorted(mem.nvm.counters)
    for scheme in (
        UpdateScheme.TRIAD_NVM,
        UpdateScheme.PHOENIX,
        UpdateScheme.ANUBIS,
        UpdateScheme.SGX_SP,
    ):
        measured = measure_recovery(mem, model=model, scheme=scheme)
        analytic = model.estimate_for_scheme(scheme, touched_pages=touched)
        assert measured.root_ok, scheme
        assert measured.strategy == analytic.strategy
        tolerance = MEASURED_TOLERANCE[measured.strategy]
        if tolerance is None:
            assert measured.nodes_recomputed <= analytic.nodes_recomputed
            assert measured.counter_blocks_read <= analytic.counter_blocks_read
        else:
            assert (
                abs(measured.nodes_recomputed - analytic.nodes_recomputed)
                <= tolerance
            )
            assert measured.counter_blocks_read == analytic.counter_blocks_read


def test_measured_scheme_golden_values(drained_app_memory):
    """Golden measured counts per scheme on the basic/undolog image."""
    from repro.recovery.rebuild import measure_recovery

    mem = drained_app_memory
    golden = {
        UpdateScheme.TRIAD_NVM: (2, 1),  # 2 frontier parents, root only
        UpdateScheme.PHOENIX: (3, 3),  # one 3-level path
        UpdateScheme.ANUBIS: (3, 6),  # shadow = the 3 touched pages
        UpdateScheme.SGX_SP: (1, 0),  # stored-root comparison
    }
    for scheme, (reads, nodes) in golden.items():
        measured = measure_recovery(mem, scheme=scheme)
        assert measured.counter_blocks_read == reads, scheme
        assert measured.nodes_recomputed == nodes, scheme


def test_measured_dense_footprint_meets_dense_estimates():
    """At full footprint the sparse/dense gap closes: triad's measured
    frontier equals the analytic level count."""
    from repro.recovery.rebuild import RecoveryTimeModel, measure_recovery
    from repro.campaign.grid import build_memory, semantics_for
    from repro.system.secure_memory import BLOCK_SIZE, BLOCKS_PER_PAGE

    mem = build_memory(semantics_for("sp"))
    for page in range(64):
        mem.store(page * BLOCKS_PER_PAGE * BLOCK_SIZE, b"x" * BLOCK_SIZE)
    mem.drain()
    model = RecoveryTimeModel(mem.geometry)
    measured = measure_recovery(mem, model=model, scheme=UpdateScheme.TRIAD_NVM)
    analytic = model.estimate_for_scheme(UpdateScheme.TRIAD_NVM)
    assert measured.root_ok
    assert measured.counter_blocks_read == analytic.counter_blocks_read
    assert measured.nodes_recomputed == analytic.nodes_recomputed


def test_measured_detects_root_divergence(drained_app_memory):
    """A tampered counter block flips root_ok without raising."""
    from repro.recovery.rebuild import measure_recovery

    mem = drained_app_memory
    snapshot = dict(mem.nvm.counters)
    try:
        mem.nvm.counters[0] = bytes([0xFF]) * 64
        measured = measure_recovery(mem)
        assert not measured.root_ok
    finally:
        mem.nvm.counters.clear()
        mem.nvm.counters.update(snapshot)


def test_measured_validates_parameters(drained_app_memory):
    from repro.recovery.rebuild import measure_recovery

    with pytest.raises(ValueError):
        measure_recovery(
            drained_app_memory,
            scheme=UpdateScheme.TRIAD_NVM,
            triad_persist_levels=0,
        )
    with pytest.raises(ValueError):
        measure_recovery(
            drained_app_memory, scheme=UpdateScheme.ANUBIS, shadow_entries=0
        )
