"""Tests for the post-crash recovery-time model."""

import pytest

from repro.crypto.bmt import BMTGeometry
from repro.recovery.rebuild import RecoveryEstimate, RecoveryTimeModel


@pytest.fixture
def model(small_geometry):
    return RecoveryTimeModel(small_geometry, mac_latency=10, nvm_read_cycles=100)


def test_full_rebuild_counts_every_node(model, small_geometry):
    # 3 levels: 1 + 8 + 64 nodes.
    assert model.full_rebuild_nodes() == 73


def test_touched_rebuild_counts_distinct_path_nodes(model, small_geometry):
    # One page: its whole path.
    assert model.touched_rebuild_nodes([0]) == small_geometry.levels
    # Two sibling pages share all ancestors: 2 leaves + 2 shared.
    assert model.touched_rebuild_nodes([0, 1]) == 4
    # Distant pages share only the root.
    assert model.touched_rebuild_nodes([0, 63]) == 5


def test_touched_never_exceeds_full(model):
    assert model.touched_rebuild_nodes(range(64)) == model.full_rebuild_nodes()


def test_estimate_full(model, small_geometry):
    estimate = model.estimate("full")
    assert estimate.counter_blocks_read == small_geometry.num_leaves
    assert estimate.nodes_recomputed == 73
    assert estimate.total_cycles > 0


def test_estimate_touched_scales_with_footprint(model):
    small = model.estimate("touched", range(2))
    large = model.estimate("touched", range(32))
    assert small.total_cycles < large.total_cycles
    assert large.total_cycles <= model.estimate("full").total_cycles


def test_touched_requires_pages(model):
    with pytest.raises(ValueError):
        model.estimate("touched")


def test_invalid_strategy(model):
    with pytest.raises(ValueError):
        model.estimate("magic")


def test_invalid_hash_units(small_geometry):
    with pytest.raises(ValueError):
        RecoveryTimeModel(small_geometry, hash_units=0)


def test_hash_units_parallelize(small_geometry):
    serial = RecoveryTimeModel(small_geometry, hash_units=1).estimate("full")
    parallel = RecoveryTimeModel(small_geometry, hash_units=8).estimate("full")
    assert parallel.hash_cycles < serial.hash_cycles


def test_speedup_touched_vs_full_is_large_for_sparse(paper_geometry):
    model = RecoveryTimeModel(paper_geometry)
    assert model.speedup_touched_vs_full(range(100)) > 100


def test_total_seconds(model):
    estimate = model.estimate("full")
    assert estimate.total_seconds(clock_ghz=4.0) == pytest.approx(
        estimate.total_cycles / 4e9
    )


def test_paper_scale_full_rebuild_is_tens_of_ms(paper_geometry):
    """An 8 GB memory's full rebuild lands in the tens of milliseconds —
    the magnitude that motivated Anubis/Triad-NVM recovery work."""
    model = RecoveryTimeModel(paper_geometry)
    estimate = model.estimate("full")
    assert 0.005 < estimate.total_seconds() < 0.5
