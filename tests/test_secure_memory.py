"""Tests for the functional secure NVMM (stores, loads, crash, recover)."""

import pytest

from repro.mem.wpq import TupleItem
from repro.persistency.models import PersistencyModel
from repro.recovery.crash import CrashInjector
from repro.system.secure_memory import FunctionalSecureMemory, IntegrityError

from conftest import make_block


def make_memory(**kwargs):
    kwargs.setdefault("num_pages", 64)
    return FunctionalSecureMemory(**kwargs)


def addr(block):
    return block * 64


# ----------------------------------------------------------------------
# basic store/load
# ----------------------------------------------------------------------


def test_store_load_roundtrip_volatile():
    mem = make_memory()
    mem.store(addr(0), make_block(1))
    assert mem.load(addr(0)) == make_block(1)


def test_load_after_drain_decrypts_from_nvm():
    mem = make_memory()
    mem.store(addr(3), make_block(2))
    mem.drain()
    mem._volatile_data.clear()  # force the NVM path
    assert mem.load(addr(3)) == make_block(2)


def test_nvm_holds_ciphertext_not_plaintext():
    mem = make_memory()
    mem.store(addr(0), make_block(3))
    mem.drain()
    assert mem.nvm.data[0] != make_block(3)


def test_counter_advances_per_store():
    mem = make_memory()
    mem.store(addr(0), make_block(1))
    c1 = dict(mem.nvm.counters) if mem.nvm.counters else None
    mem.drain()
    first = mem.nvm.counters[0]
    mem.store(addr(0), make_block(2))
    mem.drain()
    assert mem.nvm.counters[0] != first


def test_alignment_and_bounds_enforced():
    mem = make_memory()
    with pytest.raises(ValueError):
        mem.store(1, make_block(0))
    with pytest.raises(ValueError):
        mem.store(addr(0), b"short")
    with pytest.raises(IndexError):
        mem.store(addr(64 * 64), make_block(0))


def test_non_persistent_store_stays_volatile():
    mem = make_memory()
    result = mem.store(addr(0), make_block(1), persistent=False)
    assert result is None
    assert mem.pending_persists == 0


# ----------------------------------------------------------------------
# integrity protection against tampering
# ----------------------------------------------------------------------


def test_tampered_ciphertext_detected():
    mem = make_memory()
    mem.store(addr(0), make_block(1))
    mem.drain()
    mem._volatile_data.clear()
    tampered = bytearray(mem.nvm.data[0])
    tampered[5] ^= 0xFF
    mem.tamper_data(addr(0), bytes(tampered))
    with pytest.raises(IntegrityError, match="MAC"):
        mem.load(addr(0))


def test_replayed_counter_detected_by_bmt():
    """Anti-replay: restoring an old counter block fails BMT verification."""
    mem = make_memory()
    mem.store(addr(0), make_block(1))
    mem.drain()
    old_counter = mem.nvm.counters[0]
    mem.store(addr(0), make_block(2))
    mem.drain()
    mem._volatile_data.clear()
    mem.tamper_counter(0, old_counter)
    with pytest.raises(IntegrityError):
        mem.load(addr(0))


def test_unverified_load_skips_checks():
    mem = make_memory()
    mem.store(addr(0), make_block(1))
    mem.drain()
    mem._volatile_data.clear()
    tampered = bytearray(mem.nvm.data[0])
    tampered[5] ^= 0xFF
    mem.tamper_data(addr(0), bytes(tampered))
    # verify=False returns (garbage) data without raising.
    assert mem.load(addr(0), verify=False) != make_block(1)


# ----------------------------------------------------------------------
# crash and recovery, strict persistency
# ----------------------------------------------------------------------


def test_clean_crash_recovers_all_persists():
    mem = make_memory()
    for i in range(10):
        mem.store(addr(i), make_block(i))
    mem.crash()
    report = mem.recover()
    assert report.recovered
    for i in range(10):
        assert mem.load(addr(i)) == make_block(i)


def test_operations_rejected_while_crashed():
    mem = make_memory()
    mem.store(addr(0), make_block(1))
    mem.crash()
    with pytest.raises(RuntimeError):
        mem.store(addr(1), make_block(2))
    with pytest.raises(RuntimeError):
        mem.load(addr(0))


def test_atomic_mode_invalidates_partial_persist_and_younger():
    """2SP: a dropped item voids the whole persist and younger ones."""
    mem = make_memory(atomic_tuples=True)
    mem.store(addr(0), make_block(0))
    victim = mem.store(addr(1), make_block(1))
    mem.store(addr(2), make_block(2))
    injector = CrashInjector().drop(victim, TupleItem.MAC)
    mem.crash(injector)
    report = mem.recover()
    assert report.recovered
    # Persist 0 survived; the victim and the younger persist rolled back.
    assert mem.load(addr(0)) == make_block(0)
    assert 1 not in mem.committed_state
    assert 2 not in mem.committed_state


def test_atomic_mode_older_value_restored():
    mem = make_memory(atomic_tuples=True)
    mem.store(addr(5), make_block(1))
    second = mem.store(addr(5), make_block(2))
    injector = CrashInjector().drop(second, TupleItem.COUNTER)
    mem.crash(injector)
    report = mem.recover()
    assert report.recovered
    assert mem.load(addr(5)) == make_block(1)


# ----------------------------------------------------------------------
# epoch persistency
# ----------------------------------------------------------------------


def test_epoch_persists_at_barrier():
    mem = make_memory(persistency=PersistencyModel.EPOCH, epoch_size=100)
    mem.store(addr(0), make_block(1))
    assert mem.pending_persists == 0
    ids = mem.barrier()
    assert len(ids) == 1
    assert mem.pending_persists == 1


def test_epoch_collapses_same_block_stores():
    mem = make_memory(persistency=PersistencyModel.EPOCH, epoch_size=100)
    for i in range(10):
        mem.store(addr(7), make_block(i))
    ids = mem.barrier()
    assert len(ids) == 1  # one persist for ten stores
    mem.crash()
    assert mem.recover().recovered
    assert mem.load(addr(7)) == make_block(9)


def test_implicit_epoch_boundary():
    mem = make_memory(persistency=PersistencyModel.EPOCH, epoch_size=2)
    mem.store(addr(0), make_block(0))
    mem.store(addr(1), make_block(1))  # closes the epoch
    assert mem.pending_persists == 2


def test_epoch_recovery_to_last_boundary():
    mem = make_memory(persistency=PersistencyModel.EPOCH, epoch_size=100)
    mem.store(addr(0), make_block(1))
    mem.barrier()
    mem.store(addr(1), make_block(2))  # open epoch, never flushed
    mem.crash()
    report = mem.recover()
    assert report.recovered
    assert mem.load(addr(0)) == make_block(1)
    assert 1 not in mem.committed_state


def test_committed_state_tracks_expectations():
    mem = make_memory()
    mem.store(addr(0), make_block(1))
    assert mem.committed_state == {0: make_block(1)}


# ----------------------------------------------------------------------
# split-counter overflow: page re-encryption
# ----------------------------------------------------------------------


def test_minor_counter_overflow_reencrypts_page():
    """Overflowing one block's 7-bit minor counter resets the page's
    minors; sibling blocks must be re-encrypted or they become
    undecryptable."""
    mem = make_memory()
    mem.store(addr(1), make_block(42))  # sibling in the same page
    for i in range(130):  # > 127: forces a minor-counter overflow
        mem.store(addr(0), make_block(i))
    mem.drain()
    mem._volatile_data.clear()
    # Both blocks still load and verify after the overflow.
    assert mem.load(addr(0)) == make_block(129)
    assert mem.load(addr(1)) == make_block(42)
    assert mem._counters.overflow_count == 1


def test_overflow_survives_crash_recovery():
    mem = make_memory()
    mem.store(addr(3), make_block(7))
    for i in range(130):
        mem.store(addr(0), make_block(i))
    mem.crash()
    report = mem.recover()
    assert report.recovered
    assert mem.load(addr(0)) == make_block(129)
    assert mem.load(addr(3)) == make_block(7)


def test_overflow_emits_extra_persists():
    """The re-encrypted siblings persist as their own tuples."""
    mem = make_memory()
    mem.store(addr(1), make_block(1))
    mem.store(addr(2), make_block(2))
    before = mem._next_persist_id
    for i in range(127):
        mem.store(addr(0), make_block(i))
    mid = mem._next_persist_id
    assert mid - before == 127  # no overflow yet
    mem.store(addr(0), make_block(127))  # 128th increment: overflow
    # The trigger persist plus two sibling re-encryptions.
    assert mem._next_persist_id - mid == 3
