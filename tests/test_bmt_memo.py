"""Tests for the BMT label-arithmetic memo caches (hot-path variant).

The memoized ``path_tuple``/``ancestors``/``lca`` must behave exactly
like naive re-derivation from the §V-C labelling formulas, and their
hit/miss accounting must reflect every lookup.
"""

import pytest

from repro.crypto.bmt import BMTGeometry
from repro.system.config import SystemConfig


def naive_path(g: BMTGeometry, leaf_index: int):
    label = g.leaf_label(leaf_index)
    path = [label]
    while label != g.ROOT_LABEL:
        label = (label - 1) // g.arity
        path.append(label)
    return path


def naive_ancestors(g: BMTGeometry, label: int):
    out = []
    while label != g.ROOT_LABEL:
        label = (label - 1) // g.arity
        out.append(label)
    return out


def naive_lca(g: BMTGeometry, a: int, b: int) -> int:
    ancestry_a = [a] + naive_ancestors(g, a)
    ancestry_b = set([b] + naive_ancestors(g, b))
    for label in ancestry_a:
        if label in ancestry_b:
            return label
    raise AssertionError("trees always share the root")


# ----------------------------------------------------------------------
# equivalence with the unmemoized algebra
# ----------------------------------------------------------------------


def test_path_tuple_matches_naive_walk(small_geometry):
    g = small_geometry
    for leaf in range(g.num_leaves):
        assert list(g.path_tuple(leaf)) == naive_path(g, leaf)
        assert g.update_path(leaf) == naive_path(g, leaf)


def test_paper_geometry_paths_match_naive(paper_geometry):
    g = paper_geometry
    for leaf in (0, 1, 4095, g.num_leaves // 2, g.num_leaves - 1):
        assert list(g.path_tuple(leaf)) == naive_path(g, leaf)


def test_ancestors_match_naive_walk(small_geometry):
    g = small_geometry
    for label in range(g._level_offsets[g.levels]):
        assert g.ancestors(label) == naive_ancestors(g, label)


def test_lca_matches_naive_on_all_pairs(small_geometry):
    g = small_geometry
    labels = [0, 1, 5, 8, 9, 16, 17, 40, 71, 72]
    for a in labels:
        for b in labels:
            assert g.lca(a, b) == naive_lca(g, a, b)


def test_level_of_matches_linear_scan(small_geometry):
    g = small_geometry
    for label in range(g._level_offsets[g.levels]):
        expected = next(
            level
            for level in range(g.levels)
            if g._level_offsets[level] <= label < g._level_offsets[level + 1]
        )
        assert g.level_of(label) == expected


# ----------------------------------------------------------------------
# memo behaviour
# ----------------------------------------------------------------------


def test_path_tuple_memo_hits_and_shares_tuple(small_geometry):
    g = small_geometry
    assert g.memo_info() == {"hits": 0, "misses": 0, "paths": 0, "ancestors": 0, "lcas": 0}
    first = g.path_tuple(3)
    assert (g.memo_hits, g.memo_misses) == (0, 1)
    second = g.path_tuple(3)
    assert (g.memo_hits, g.memo_misses) == (1, 1)
    assert second is first  # cached tuple is shared, by design
    assert g.memo_info()["paths"] == 1


def test_update_path_returns_fresh_mutable_list(small_geometry):
    g = small_geometry
    path = g.update_path(3)
    path.append(-1)  # mutating the copy ...
    assert g.update_path(3) == naive_path(g, 3)  # ... never corrupts the cache


def test_ancestors_returns_fresh_list(small_geometry):
    g = small_geometry
    first = g.ancestors(17)
    first.append(-1)
    assert g.ancestors(17) == naive_ancestors(g, 17)


def test_lca_memo_is_symmetric(small_geometry):
    g = small_geometry
    assert g.lca(9, 16) == g.lca(16, 9)
    # Both orders share one cache entry.
    assert g.memo_info()["lcas"] == 1
    assert (g.memo_hits, g.memo_misses) == (1, 1)


def test_memo_caches_are_per_geometry():
    a = BMTGeometry(num_leaves=64, arity=8)
    b = BMTGeometry(num_leaves=64, arity=8)
    a.path_tuple(0)
    assert b.memo_info()["paths"] == 0


def test_system_config_shares_geometry_instances():
    """Equal configs reuse one geometry, so memo warmth is shared."""
    g1 = SystemConfig().geometry()
    g2 = SystemConfig().geometry()
    assert g1 is g2
    assert SystemConfig().variant(memory_bytes=2**31).geometry() is not g1


def test_memoized_lookups_validate_range(small_geometry):
    g = small_geometry
    with pytest.raises(IndexError):
        g.path_tuple(g.num_leaves)
    with pytest.raises(IndexError):
        g.path_tuple(-1)
